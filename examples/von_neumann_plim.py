#!/usr/bin/env python3
"""A stored-program PLiM: code and data in the same resistive array.

The paper's architecture (Fig. 2) is a von Neumann machine: "the PLiM
controller ... read[s] instructions from the memory array and perform[s]
computing operations (majority) within the memory array".  This example
compiles a comparator, encodes the RM3 program into bits, stores it in the
upper region of the simulated RRAM array, and lets the fetch–decode–execute
controller run it — then compares cycle counts against the idealized
(no-fetch) machine model.

Run:  python examples/von_neumann_plim.py
"""

from repro import compile_mig
from repro.mig.build import LogicBuilder
from repro.mig.words import less_than
from repro.plim.controller import FetchingController
from repro.plim.machine import PlimMachine


def build_comparator(bits=4):
    builder = LogicBuilder(name=f"lt{bits}")
    a = builder.inputs(bits, "a")
    b = builder.inputs(bits, "b")
    builder.output(less_than(builder, a, b), "lt")
    return builder.mig


def main():
    bits = 4
    mig = build_comparator(bits)
    result = compile_mig(mig)
    program = result.program
    print(f"{bits}-bit comparator -> {program.num_instructions} RM3 instructions, "
          f"{program.num_rrams} work RRAMs")

    controller = FetchingController(program)
    image = controller.image
    print(
        f"\nstored program: {image.num_instructions} instructions x "
        f"{image.bits_per_instruction} bits "
        f"({len(image.bits)} cells of code above {controller.data_cells} data cells)"
    )

    def word(prefix, value):
        return {f"{prefix}{i}": (value >> i) & 1 for i in range(bits)}

    print("\nexecuting from the array (a < b?):")
    for a, b in [(3, 9), (9, 3), (7, 7), (0, 15)]:
        controller = FetchingController(program)
        outputs = controller.run(word("a", a) | word("b", b))
        print(
            f"  {a:2d} < {b:2d} -> {outputs['lt']}   "
            f"[{controller.fetch_cycles} fetch + "
            f"{controller.execute_cycles} execute cycles]"
        )
        assert outputs["lt"] == int(a < b)

    # Compare with the idealized machine (operands/writes only, no fetch).
    machine = PlimMachine.for_program(program)
    machine.run_program(program, word("a", 3) | word("b", 9))
    controller = FetchingController(program)
    controller.run(word("a", 3) | word("b", 9))
    print(
        f"\ncycle accounting per run: idealized machine {machine.cycle_count}, "
        f"von Neumann controller {controller.total_cycles} "
        f"(fetch overhead x{controller.total_cycles / machine.cycle_count:.1f})"
    )


if __name__ == "__main__":
    main()
