#!/usr/bin/env python3
"""Reproduce the paper's Table 1 over the EPFL benchmark suite.

Runs all three configurations (naïve / MIG rewriting / rewriting and
compilation) on every benchmark and prints the table in the paper's layout,
followed by the paper's own numbers for comparison.

Run:  python examples/epfl_table1.py [scale] [--shuffled]

``scale`` is ``ci`` (fast), ``default`` (seconds per circuit) or ``paper``
(full Table 1 sizes; minutes in pure Python).  ``--shuffled`` permutes the
gate order first, emulating netlist-file order — the condition under which
the candidate-selection scheme earns the paper's large #R reductions (see
EXPERIMENTS.md).
"""

import sys

from repro.eval.table1 import format_table1, paper_rows_table, run_table1


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    scale = args[0] if args else "default"
    shuffled = "--shuffled" in sys.argv

    def progress(name, row):
        print(
            f"  {name:11s} I {row.naive_i:>7d} -> {row.full_i:>7d}   "
            f"R {row.naive_r:>5d} -> {row.full_r:>5d}   ({row.seconds:.1f}s)",
            file=sys.stderr,
        )

    print(f"running Table 1 at scale={scale} shuffled={shuffled} ...", file=sys.stderr)
    result = run_table1(scale=scale, shuffled=shuffled, progress=progress)
    print()
    print(format_table1(result))
    print("\nThe paper's Table 1, for side-by-side comparison:")
    print(paper_rows_table())


if __name__ == "__main__":
    main()
