#!/usr/bin/env python3
"""In-memory arithmetic: run real additions inside a simulated RRAM array.

Builds the EPFL-style ripple-carry adder, compiles it with and without the
paper's optimizations, and then actually *adds numbers* by executing the
compiled RM3 program on the PLiM machine model — the "processing inside
the memory" the paper's architecture is about.

Run:  python examples/adder_on_plim.py [bits]
"""

import random
import sys

from repro import compile_mig
from repro.circuits.arithmetic import make_adder
from repro.core.compiler import CompilerOptions
from repro.plim.machine import PlimMachine


def load_word(values, prefix, value, bits):
    for i in range(bits):
        values[f"{prefix}{i}"] = (value >> i) & 1


def read_word(outputs, prefix, bits):
    return sum((outputs[f"{prefix}{i}"] & 1) << i for i in range(bits))


def main():
    bits = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    mig = make_adder(bits=bits)
    print(f"{bits}-bit adder: {mig.num_gates} majority gates")

    naive = compile_mig(
        mig, rewrite=False, compiler_options=CompilerOptions.naive()
    )
    smart = compile_mig(mig)
    print(
        f"  naive translation:     {naive.num_instructions:5d} instructions, "
        f"{naive.num_rrams:3d} work RRAMs"
    )
    print(
        f"  rewriting+compilation: {smart.num_instructions:5d} instructions, "
        f"{smart.num_rrams:3d} work RRAMs"
    )

    program = smart.program
    rng = random.Random(2016)
    print(f"\nadding numbers inside the array "
          f"({program.num_instructions} RM3 ops per addition):")
    for _ in range(5):
        x = rng.getrandbits(bits)
        y = rng.getrandbits(bits)
        inputs = {}
        load_word(inputs, "a", x, bits)
        load_word(inputs, "b", y, bits)
        machine = PlimMachine.for_program(program)
        outputs = machine.run_program(program, inputs)
        total = read_word(outputs, "s", bits) | (outputs["cout"] << bits)
        status = "ok" if total == x + y else "WRONG"
        print(f"  {x:>10d} + {y:>10d} = {total:>11d}   [{status}]")
        assert total == x + y


if __name__ == "__main__":
    main()
