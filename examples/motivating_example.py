#!/usr/bin/env python3
"""The paper's §3 motivating examples (Fig. 3), end to end.

Reconstructs the exact MIGs behind the paper's listings and regenerates all
four programs:

* Fig. 3(a): a 2-node MIG with two double-complemented nodes costs 6
  instructions / 2 RRAMs naïvely; after Ω.I rewriting, 4 / 1.
* Fig. 3(b): a 6-node MIG where translation order and operand selection
  alone shrink the program from 19 to 15 instructions (7 → 4 RRAMs).

Every program is executed on the machine model against the MIG.

Run:  python examples/motivating_example.py
"""

from repro.eval import fig3
from repro.plim.verify import verify_program


def show(title, mig, program):
    check = verify_program(mig, program)
    print(f"--- {title} ({program.num_instructions} instructions, "
          f"{program.num_rrams} work RRAMs, verified: {check.ok}) ---")
    print(program.listing())
    print()


def main():
    report = fig3.run_fig3()
    print(report.summary())
    print()
    show("Fig. 3(a) before rewriting, naive translation",
         fig3.fig3a_before(), report.fig3a_before_naive)
    show("Fig. 3(a) after rewriting, smart compilation",
         fig3.fig3a_after(), report.fig3a_after_smart)
    show("Fig. 3(b) naive: index order, child-order operands",
         fig3.fig3b(), report.fig3b_naive)
    show("Fig. 3(b) smart: priority schedule, case-based operands",
         fig3.fig3b(), report.fig3b_smart)

    assert report.fig3b_naive.num_instructions == 19
    assert report.fig3b_smart.num_instructions == 15
    print("All four programs match the paper's §3 counts.")


if __name__ == "__main__":
    main()
