#!/usr/bin/env python3
"""Quickstart: build a function, compile it to PLiM, run it, verify it.

Walks the full journey of the paper (plus this reproduction's
multi-objective extensions) in ~80 lines:

1. build an MIG for a full adder — first the AOIG-style transposition
   (paper Fig. 1(a)), then the majority-native form (Fig. 1(b));
2. rewrite it for the PLiM architecture — the paper's size objective and
   the multi-objective ``objective="balanced"`` loop — and sweep the full
   (#N, #D) Pareto frontier;
3. compile it to RM3 instructions (Algorithm 2) and print the paper-style
   listing;
4. execute the program on the PLiM machine model and check it against the
   MIG on every input combination.

Run:  python examples/quickstart.py
"""

from repro import compile_mig, pareto_sweep
from repro.mig.analysis import stats
from repro.mig.build import LogicBuilder
from repro.plim.machine import PlimMachine
from repro.plim.verify import verify_program


def build_full_adder(style: str):
    builder = LogicBuilder(style=style, name=f"fa-{style}")
    a, b, cin = builder.input("a"), builder.input("b"), builder.input("cin")
    total, carry = builder.full_adder(a, b, cin)
    builder.output(total, "sum")
    builder.output(carry, "cout")
    return builder.mig


def main():
    # -- Fig. 1: the same function, two MIG shapes ----------------------
    aoig = build_full_adder("aoig")
    maj = build_full_adder("maj")
    print("Fig. 1 — AOIG transposition vs majority-native MIG:")
    print(f"  AOIG-style: {stats(aoig)}")
    print(f"  MAJ-native: {stats(maj)}")

    # -- Algorithms 1+2: rewrite and compile ----------------------------
    result = compile_mig(aoig, effort=4)
    print(
        f"\nCompiled {result.source_mig.num_gates}-gate MIG "
        f"(rewritten to {result.num_gates} gates) into "
        f"{result.num_instructions} RM3 instructions using "
        f"{result.num_rrams} work RRAMs:\n"
    )
    print(result.program.listing())

    # -- beyond the paper: objectives and the (#N, #D) frontier ---------
    # "balanced" interleaves size and depth rewriting to a joint fixed
    # point — the right default when the target executes gates in
    # parallel; serial PLiM only pays for #N, which "size" minimizes.
    balanced = compile_mig(aoig, objective="balanced")
    print(
        f"\nobjective='balanced': {balanced.num_gates} gates, "
        f"{balanced.num_instructions} instructions"
    )
    # A mini Pareto sweep: every non-dominated (#N, #D) operating point,
    # each compiled through Algorithm 2 and equivalence-checked.  The
    # SynthesisCache memoizes the sweep under the MIG's structural
    # fingerprint — the second call is a lookup (pass cache_dir= a path
    # instead of a SynthesisCache to persist across runs).
    from repro import SynthesisCache

    cache = SynthesisCache()
    front = pareto_sweep(aoig, workers=1, cache=cache)
    pareto_sweep(aoig, workers=1, cache=cache)  # front-cache hit
    print(
        f"(#N, #D) frontier of {front.circuit} "
        f"(cache: {cache.stats.hits} hit / {cache.stats.misses} miss):"
    )
    for point in front:
        print(
            f"  {point.label:>10s}: N={point.num_gates} D={point.depth} "
            f"-> I={point.num_instructions} R={point.num_rrams} "
            f"[{point.equivalence}]"
        )

    # -- Fig. 2: execute on the PLiM machine ----------------------------
    program = result.program
    machine = PlimMachine.for_program(program)
    outputs = machine.run_program(program, {"a": 1, "b": 1, "cin": 0})
    print(f"\n1 + 1 + 0 on the machine: sum={outputs['sum']} cout={outputs['cout']}")
    print(
        f"controller ran {machine.instruction_count} instructions "
        f"({machine.cycle_count} cycles)"
    )

    # -- and prove it computes the right function everywhere ------------
    check = verify_program(aoig, program)
    print(
        f"\nverification: {'OK' if check.ok else 'FAILED'} "
        f"({check.mode}, {check.patterns_checked} input patterns)"
    )
    assert check.ok


if __name__ == "__main__":
    main()
