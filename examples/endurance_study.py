#!/usr/bin/env python3
"""Endurance study: how the RRAM allocation policy spreads write wear.

RRAM cells survive a bounded number of programming cycles.  §4.2.3 of the
paper picks a FIFO free list "to address endurance constraints": the oldest
released cell is reused first, so writes rotate over many cells.  This
example compiles a benchmark under FIFO / LIFO / FRESH allocation, executes
each program on the machine model, and reports actual per-cell write
counts.

Run:  python examples/endurance_study.py [benchmark] [scale]
"""

import random
import sys

from repro.circuits.registry import BENCHMARK_NAMES, benchmark_info
from repro.eval.ablations import allocator_ablation, format_allocator_ablation


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "voter"
    scale = sys.argv[2] if len(sys.argv) > 2 else "default"
    if name not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}")

    mig = benchmark_info(name).build(scale)
    print(f"{name} ({scale}): {mig.num_gates} gates, "
          f"{mig.num_pis} inputs, {mig.num_pos} outputs\n")
    points = allocator_ablation(mig)
    print(format_allocator_ablation(name, points))

    fifo = next(p for p in points if p.policy == "fifo")
    lifo = next(p for p in points if p.policy == "lifo")
    fresh = next(p for p in points if p.policy == "fresh")
    print(
        f"\nFIFO vs LIFO peak wear: {fifo.wear.max_writes} vs "
        f"{lifo.wear.max_writes} writes on the hottest cell "
        f"(same cell count: {fifo.rrams} vs {lifo.rrams})."
    )
    print(
        f"FRESH avoids reuse entirely: peak wear {fresh.wear.max_writes}, "
        f"but needs {fresh.rrams} cells instead of {fifo.rrams}."
    )
    print(
        "\nLower gini = more even wear. The paper's FIFO choice trades no "
        "cells at all for a flatter wear profile than LIFO."
    )


if __name__ == "__main__":
    main()
