"""Reproduction of the paper's Table 1 (experimental evaluation).

For every benchmark, three configurations are measured exactly as in the
paper:

1. **naïve** — child-order translation in as-given index order on the
   initial non-optimized MIG;
2. **MIG rewriting** — the same naïve translation after Algorithm 1
   (effort 4, like the paper's experiments);
3. **rewriting and compilation** — Algorithm 1 followed by the full
   Algorithm 2 compiler.

Improvements are reported against the naïve columns, as in the paper.  Two
harness options deviate-by-default and are reported explicitly:

* ``paper_accounting=True`` leaves complemented outputs in place (the
  paper's convention); ``False`` charges 2 instructions per inverted
  output.
* ``shuffled=True`` first permutes each MIG into a random topological
  order, emulating the locality-free gate order of netlist files (our
  generators' creation order is already depth-first, which makes the naïve
  baseline's RRAM usage far better than the paper's — see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.circuits.registry import BENCHMARK_NAMES, benchmark_info
from repro.core.batch import parallel_imap, resolve_workers
from repro.core.cache import SynthesisCache, payload_cache_ref, worker_cache
from repro.core.resilience import FaultPlan, TaskFailure, TaskPolicy
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.eval.reporting import format_table, improvement, to_csv
from repro.mig.context import AnalysisContext
from repro.mig.graph import Mig
from repro.mig.reorder import shuffle_topological


@dataclass(frozen=True)
class Table1Row:
    """Measured numbers for one benchmark (one row of Table 1)."""

    name: str
    pi: int
    po: int
    naive_n: int
    naive_i: int
    naive_r: int
    rewr_n: int
    rewr_i: int
    rewr_r: int
    full_i: int
    full_r: int
    #: MIG depth before/after rewriting (not a paper column — depth is what
    #: parallel in-memory targets care about; serial PLiM only needs #N)
    naive_d: int = 0
    rewr_d: int = 0
    seconds: float = 0.0

    @property
    def rewr_i_impr(self) -> float:
        return improvement(self.naive_i, self.rewr_i)

    @property
    def rewr_r_impr(self) -> float:
        return improvement(self.naive_r, self.rewr_r)

    @property
    def full_i_impr(self) -> float:
        return improvement(self.naive_i, self.full_i)

    @property
    def full_r_impr(self) -> float:
        return improvement(self.naive_r, self.full_r)


@dataclass
class Table1Result:
    """All rows plus the Σ row of the reproduction run.

    ``failures`` lists the benchmarks whose row task failed permanently
    under a skip/degrade :class:`~repro.core.resilience.TaskPolicy`
    (``(name, TaskFailure)`` pairs); their rows are absent from ``rows``
    and the Σ row covers the surviving benchmarks only.
    """

    rows: list[Table1Row]
    scale: str
    effort: int
    shuffled: bool
    paper_accounting: bool
    failures: list = field(default_factory=list)

    def total(self) -> Table1Row:
        def s(attr):
            return sum(getattr(r, attr) for r in self.rows)

        return Table1Row(
            name="SUM",
            pi=s("pi"),
            po=s("po"),
            naive_n=s("naive_n"),
            naive_i=s("naive_i"),
            naive_r=s("naive_r"),
            rewr_n=s("rewr_n"),
            rewr_i=s("rewr_i"),
            rewr_r=s("rewr_r"),
            full_i=s("full_i"),
            full_r=s("full_r"),
            # depth is not additive across circuits; the Σ row reports the
            # deepest circuit (rendered specially by the formatters)
            naive_d=max((r.naive_d for r in self.rows), default=0),
            rewr_d=max((r.rewr_d for r in self.rows), default=0),
            seconds=s("seconds"),
        )


def measure_mig(
    mig: Mig,
    name: str,
    *,
    effort: int = 4,
    paper_accounting: bool = True,
    compiler_options: Optional[CompilerOptions] = None,
    engine: str = "worklist",
    objective="size",
    cache: Optional[SynthesisCache] = None,
) -> Table1Row:
    """Run the three Table 1 configurations on one MIG.

    ``engine`` selects the Algorithm 1 implementation ("worklist" or
    "rebuild", see :class:`~repro.core.rewriting.RewriteOptions`) and
    ``objective`` its target — "size" is the paper's Algorithm 1; any
    other :class:`~repro.core.rewriting.RewriteOptions.objective` (e.g.
    a "plim" cost model) yields a what-if table of the same layout.
    ``cache`` memoizes the rewriting step (the row's dominant cost) under
    the MIG's fingerprint, so repeated table runs of one circuit family
    reuse it.
    """
    start = time.perf_counter()
    fix = not paper_accounting
    naive_opts = CompilerOptions.naive(fix_output_polarity=fix)
    full_opts = compiler_options or CompilerOptions(fix_output_polarity=fix)

    # One context per graph: the naive compile and the #N measurement share
    # the cleanup; the two compiles of the rewritten MIG share all analyses.
    context = AnalysisContext(mig)
    naive_prog = PlimCompiler(naive_opts).compile(mig, context=context)
    clean = context.cleaned().mig

    rewritten = rewrite_for_plim(
        mig,
        RewriteOptions(
            effort=effort, po_negation_cost=2 if fix else 0, engine=engine,
            objective=objective,
        ),
        cache=cache,
    )
    rewritten_context = AnalysisContext(rewritten)
    rewr_prog = PlimCompiler(naive_opts).compile(rewritten, context=rewritten_context)
    full_prog = PlimCompiler(full_opts).compile(rewritten, context=rewritten_context)

    return Table1Row(
        name=name,
        pi=mig.num_pis,
        po=mig.num_pos,
        naive_n=clean.num_gates,
        naive_i=naive_prog.num_instructions,
        naive_r=naive_prog.num_rrams,
        rewr_n=rewritten.num_gates,
        rewr_i=rewr_prog.num_instructions,
        rewr_r=rewr_prog.num_rrams,
        full_i=full_prog.num_instructions,
        full_r=full_prog.num_rrams,
        naive_d=context.cleaned().depth,
        rewr_d=rewritten_context.depth,
        seconds=time.perf_counter() - start,
    )


def run_benchmark(
    name: str,
    scale: str = "default",
    *,
    effort: int = 4,
    shuffled: bool = False,
    shuffle_seed: int = 42,
    paper_accounting: bool = True,
    engine: str = "worklist",
    objective="size",
    cache: Optional[SynthesisCache] = None,
) -> Table1Row:
    """Build one EPFL benchmark and measure its Table 1 row.

    ``shuffled=True`` disables the cache for the row: the fingerprint is
    deliberately creation-order invariant, so a shuffled build shares its
    cache key with the as-built one — a hit would silently substitute the
    as-built rewriting results and void the very order-sensitivity the
    flag exists to measure.
    """
    mig = benchmark_info(name).build(scale)
    if shuffled:
        mig = shuffle_topological(mig, seed=shuffle_seed)
        cache = None
    return measure_mig(
        mig,
        name,
        effort=effort,
        paper_accounting=paper_accounting,
        engine=engine,
        objective=objective,
        cache=cache,
    )


def _benchmark_task(payload):
    """Module-level task so the table can fan out over a process pool.

    Returns ``(row, fresh_cache_entries)`` — the read-only + merge cache
    protocol, like :func:`repro.core.batch._compile_task`.
    """
    (name, scale, effort, shuffled, shuffle_seed, paper_accounting, engine,
     objective, cache_ref) = payload
    cache = worker_cache(cache_ref)
    row = run_benchmark(
        name,
        scale,
        effort=effort,
        shuffled=shuffled,
        shuffle_seed=shuffle_seed,
        paper_accounting=paper_accounting,
        engine=engine,
        objective=objective,
        cache=cache,
    )
    return row, cache.export_fresh() if cache is not None else []


def run_table1(
    names: Optional[Sequence[str]] = None,
    scale: str = "default",
    *,
    effort: int = 4,
    shuffled: bool = False,
    shuffle_seed: int = 42,
    paper_accounting: bool = True,
    progress=None,
    workers: Optional[int] = None,
    engine: str = "worklist",
    objective="size",
    cache: Optional[SynthesisCache] = None,
    cache_dir=None,
    policy: Optional[TaskPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> Table1Result:
    """Run the full Table 1 reproduction.

    ``progress`` is an optional callback ``(name, row)`` invoked per
    benchmark as its row completes — live row-by-row output for any
    worker count (the pooled path streams ordered results through
    :func:`~repro.core.batch.parallel_imap`).  ``workers`` fans the
    benchmarks out over a process pool (``None``, the default, means one
    per CPU — the package-wide convention); row order is deterministic
    regardless.  ``engine`` selects the Algorithm 1 implementation and
    ``objective`` its target ("size", the paper's; cost-model objectives
    like "plim" produce a what-if table with the same layout — models are
    picklable, so pooled runs work).
    ``cache``/``cache_dir`` attach a
    :class:`~repro.core.cache.SynthesisCache` memoizing each row's
    rewriting step (pool workers read-only, merged here; ignored for
    ``shuffled=True`` runs, whose whole point is order sensitivity that
    the order-invariant fingerprint would cache away).

    ``policy`` is an optional :class:`~repro.core.resilience.TaskPolicy`;
    under ``on_error="skip"`` (or a ``"degrade"`` whose inline re-run also
    fails) the failed benchmark's row is dropped and recorded on
    :attr:`Table1Result.failures` while the remaining rows complete.
    ``fault_plan`` injects deterministic faults for testing.
    """
    if cache is None and cache_dir is not None:
        cache = SynthesisCache(cache_dir)
    selected = list(names) if names is not None else list(BENCHMARK_NAMES)
    inline = resolve_workers(workers) <= 1 or len(selected) <= 1
    cache_ref = payload_cache_ref(cache, inline)
    payloads = [
        (name, scale, effort, shuffled, shuffle_seed, paper_accounting, engine,
         objective, cache_ref)
        for name in selected
    ]
    rows = []
    failures = []
    results = parallel_imap(
        _benchmark_task, payloads, workers=workers,
        policy=policy, fault_plan=fault_plan,
    )
    for name, outcome in zip(selected, results):
        if isinstance(outcome, TaskFailure):
            failures.append((name, outcome))
            continue
        row, entries = outcome
        rows.append(row)
        if cache is not None:
            # a no-op for inline runs (the entries are already this
            # cache's); merges read-only pool workers' results otherwise
            cache.absorb(entries)
        if progress is not None:
            progress(name, row)
    return Table1Result(
        rows=rows,
        scale=scale,
        effort=effort,
        shuffled=shuffled,
        paper_accounting=paper_accounting,
        failures=failures,
    )


_HEADERS = [
    "Benchmark", "PI/PO",
    "#N", "#D", "#I", "#R",
    "#N'", "#D'", "#I'", "I impr.", "#R'", "R impr.",
    "#I''", "I impr.", "#R''", "R impr.",
]


def _row_cells(row: Table1Row) -> list:
    return [
        row.name,
        f"{row.pi}/{row.po}",
        row.naive_n, row.naive_d, row.naive_i, row.naive_r,
        row.rewr_n, row.rewr_d, row.rewr_i, f"{row.rewr_i_impr:.2f}%",
        row.rewr_r, f"{row.rewr_r_impr:.2f}%",
        row.full_i, f"{row.full_i_impr:.2f}%",
        row.full_r, f"{row.full_r_impr:.2f}%",
    ]


def _sum_cells(total: Table1Row) -> list:
    """Σ-row cells: depth columns show ``max <d>`` (depth is not additive)."""
    cells = _row_cells(total)
    cells[3] = f"max {total.naive_d}"
    cells[7] = f"max {total.rewr_d}"
    return cells


def format_table1(result: Table1Result, with_paper: bool = True) -> str:
    """Paper-layout rendering of the reproduction, plus the paper deltas."""
    rows = [_row_cells(r) for r in result.rows]
    rows.append(_sum_cells(result.total()))
    table = format_table(_HEADERS, rows)
    header = (
        f"Table 1 reproduction — scale={result.scale}, effort={result.effort}, "
        f"order={'shuffled' if result.shuffled else 'as-built'}, "
        f"accounting={'paper' if result.paper_accounting else 'honest'}\n"
        "(naive | MIG rewriting | rewriting and compilation; improvements vs naive)\n"
    )
    text = header + table
    if with_paper:
        total = result.total()
        text += (
            "\n\nPaper Table 1 totals:     rewriting  I -20.09%  R -14.83%   "
            "rewriting+compilation  I -19.95%  R -61.40%"
            f"\nThis run:                 rewriting  I {total.rewr_i_impr:+.2f}%  "
            f"R {total.rewr_r_impr:+.2f}%   rewriting+compilation  "
            f"I {total.full_i_impr:+.2f}%  R {total.full_r_impr:+.2f}%"
        )
    return text


def table1_csv(result: Table1Result) -> str:
    """CSV export of the reproduction rows (plus the Σ row)."""
    rows = [_row_cells(r) for r in result.rows]
    rows.append(_sum_cells(result.total()))
    return to_csv(_HEADERS, rows)


def paper_rows_table(names: Optional[Sequence[str]] = None) -> str:
    """The paper's own Table 1 numbers, for side-by-side comparison."""
    rows = []
    for name in names if names is not None else BENCHMARK_NAMES:
        p = benchmark_info(name).paper
        rows.append([
            name, f"{p.pi}/{p.po}",
            p.naive_n, "-", p.naive_i, p.naive_r,
            p.rewr_n, "-", p.rewr_i, f"{improvement(p.naive_i, p.rewr_i):.2f}%",
            p.rewr_r, f"{improvement(p.naive_r, p.rewr_r):.2f}%",
            p.full_i, f"{improvement(p.naive_i, p.full_i):.2f}%",
            p.full_r, f"{improvement(p.naive_r, p.full_r):.2f}%",
        ])
    return format_table(_HEADERS, rows)
