"""Experiment harness regenerating every table and figure of the paper.

* :mod:`repro.eval.table1` — the main evaluation (paper Table 1): naïve
  vs. MIG rewriting vs. rewriting + compilation over the EPFL suite.
* :mod:`repro.eval.fig3` — the §3 motivating examples, reconstructed
  exactly from the paper's instruction listings.
* :mod:`repro.eval.ablations` — effort sweep, candidate-selection rules,
  allocator policy/endurance, output-polarity accounting (DESIGN.md
  X1–X5).
* :mod:`repro.eval.reporting` — fixed-width tables and CSV export shared
  by the harness, the CLI, and the benchmarks.
"""

from repro.eval.table1 import Table1Result, Table1Row, format_table1, run_table1

__all__ = ["Table1Result", "Table1Row", "format_table1", "run_table1"]
