"""Ablation studies called out in DESIGN.md (experiments X1–X5).

* :func:`effort_sweep` — rewriting effort (Algorithm 1 cycles) vs. cost.
* :func:`objective_ablation` — size vs. depth vs. balanced rewriting
  objectives (#N/#D/#I/#R trade-off of the multi-objective loop).
* :func:`pareto_ablation` — the full (#N, #D) frontier from the
  depth-budgeted sweep (:func:`repro.core.pareto.pareto_sweep`), in both
  MIG and PLiM terms.
* :func:`selection_ablation` — scheduling/translation rule combinations on
  as-built vs. shuffled gate order.
* :func:`allocator_ablation` — FIFO vs. LIFO vs. FRESH allocation and the
  endurance (write-wear) consequences, executed on the machine model.
* :func:`polarity_ablation` — paper vs. honest output-polarity accounting.
* :func:`cost_loop_ablation` — #N-guided vs. cost-model-guided rewriting:
  does closing the synthesis↔scheduling loop
  (:func:`repro.core.rewriting.compile_cost_loop`) beat the size-optimal
  MIG in real #I?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.circuits.registry import benchmark_info
from repro.core.batch import parallel_map
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.cost import CompiledPlim
from repro.core.pareto import ParetoFront, pareto_sweep
from repro.core.rewriting import (
    OBJECTIVES,
    CostLoopResult,
    RewriteOptions,
    compile_cost_loop,
    rewrite_for_plim,
)
from repro.eval.reporting import format_table
from repro.mig.analysis import depth as analysis_depth
from repro.mig.context import AnalysisContext
from repro.mig.graph import Mig
from repro.mig.reorder import shuffle_topological
from repro.plim.endurance import EnduranceReport


# ----------------------------------------------------------------------
# X1: rewriting effort sweep
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EffortPoint:
    effort: int
    num_gates: int
    instructions: int
    rrams: int
    depth: int = 0


def effort_sweep(
    mig: Mig, efforts: Sequence[int] = (0, 1, 2, 4, 8)
) -> list[EffortPoint]:
    """Compile ``mig`` after each rewriting effort level."""
    compiler = PlimCompiler(CompilerOptions(fix_output_polarity=False))
    points = []
    for effort in efforts:
        rewritten = (
            mig
            if effort == 0
            else rewrite_for_plim(mig, RewriteOptions(effort=effort, early_exit=False))
        )
        program = compiler.compile(rewritten)
        points.append(
            EffortPoint(
                effort=effort,
                num_gates=rewritten.num_gates,
                instructions=program.num_instructions,
                rrams=program.num_rrams,
                depth=analysis_depth(rewritten),
            )
        )
    return points


def format_effort_sweep(name: str, points: Sequence[EffortPoint]) -> str:
    rows = [[p.effort, p.num_gates, p.depth, p.instructions, p.rrams] for p in points]
    return f"Effort sweep — {name}\n" + format_table(
        ["effort", "#N", "#D", "#I", "#R"], rows
    )


# ----------------------------------------------------------------------
# X6: rewriting objective (size vs depth vs balanced)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ObjectivePoint:
    objective: str
    num_gates: int
    depth: int
    instructions: int
    rrams: int


def objective_ablation(
    mig: Mig, rewrite_effort: int = 4, engine: str = "worklist"
) -> list[ObjectivePoint]:
    """Compile under each rewriting objective and record #N/#D/#I/#R.

    ``size`` is the paper's Algorithm 1 (serial PLiM programs only care
    about node count); ``depth`` optimizes the critical path for parallel
    in-memory targets; ``balanced`` interleaves both to a joint fixed
    point.
    """
    compiler = PlimCompiler(CompilerOptions(fix_output_polarity=False))
    points = []
    for objective in OBJECTIVES:
        rewritten = rewrite_for_plim(
            mig,
            RewriteOptions(
                effort=rewrite_effort, engine=engine, objective=objective
            ),
        )
        program = compiler.compile(rewritten)
        points.append(
            ObjectivePoint(
                objective=objective,
                num_gates=rewritten.num_gates,
                depth=analysis_depth(rewritten),
                instructions=program.num_instructions,
                rrams=program.num_rrams,
            )
        )
    return points


def format_objective_ablation(name: str, points: Sequence[ObjectivePoint]) -> str:
    rows = [
        [p.objective, p.num_gates, p.depth, p.instructions, p.rrams] for p in points
    ]
    return f"Rewriting-objective ablation — {name}\n" + format_table(
        ["objective", "#N", "#D", "#I", "#R"], rows
    )


# ----------------------------------------------------------------------
# X7: (#N, #D) Pareto frontier
# ----------------------------------------------------------------------


def pareto_ablation(
    mig: Mig, rewrite_effort: int = 4, max_points: Optional[int] = 8
) -> ParetoFront:
    """The (#N, #D) frontier of depth-budgeted rewriting on one MIG.

    A thin wrapper over :func:`repro.core.pareto.pareto_sweep` with an
    ablation-friendly cap on intermediate budget points; runs inline
    (``workers=1``) because the ablation harness already fans sections out
    over a process pool.
    """
    return pareto_sweep(
        mig, effort=rewrite_effort, workers=1, max_points=max_points
    )


#: axis name → table-header shorthand for :func:`format_pareto_front`
_AXIS_LABELS = {
    "num_gates": "#N",
    "depth": "#D",
    "num_instructions": "#I",
    "num_rrams": "#R",
    "cycles": "cycles",
    "wear": "wear",
}


def format_pareto_front(name: str, front: ParetoFront) -> str:
    """Render a :class:`ParetoFront` in the ablation table layout.

    Frontier points first (ascending #D), then the dominated candidates
    the sweep explored, marked in the ``front`` column.  The header names
    the sweep's axes; when an executed axis (``cycles``/``wear``) is
    swept, its measured column is appended after #R.
    """
    axes = getattr(front, "axes", ("num_gates", "depth"))
    executed = [a for a in ("cycles", "wear") if a in axes]
    rows = [
        [
            p.label,
            "yes" if on_front else "dominated",
            p.num_gates,
            p.depth,
            p.num_instructions,
            p.num_rrams,
        ]
        + [p.metric(a) for a in executed]
        + [p.source, p.equivalence or "-"]
        for on_front, points in ((True, front.points), (False, front.dominated))
        for p in points
    ]
    axis_names = ", ".join(_AXIS_LABELS.get(a, a) for a in axes)
    return f"Pareto ({axis_names}) frontier — {name}\n" + format_table(
        ["point", "front", "#N", "#D", "#I", "#R"]
        + [_AXIS_LABELS[a] for a in executed]
        + ["start", "equivalence"],
        rows,
    )


# ----------------------------------------------------------------------
# X2/X5: scheduling and translation rules
# ----------------------------------------------------------------------

#: label → compiler options for the selection study
SELECTION_CONFIGS: dict[str, CompilerOptions] = {
    "naive": CompilerOptions.naive(fix_output_polarity=False),
    "index+cases": CompilerOptions.no_selection(fix_output_polarity=False),
    "releasing": CompilerOptions(fix_output_polarity=False, reorder="none"),
    "paper-rules": CompilerOptions(
        fix_output_polarity=False, reorder="none", level_rule=True
    ),
    "paper+unblock": CompilerOptions(
        fix_output_polarity=False, reorder="none", level_rule=True, unblocking_rule=True
    ),
    "dfs+releasing": CompilerOptions(fix_output_polarity=False),  # the default
}


@dataclass(frozen=True)
class SelectionPoint:
    config: str
    order: str  # "as-built" or "shuffled"
    instructions: int
    rrams: int


def selection_ablation(
    mig: Mig, shuffle_seed: int = 42, rewrite_effort: int = 4
) -> list[SelectionPoint]:
    """All selection configs on as-built and shuffled gate orders."""
    rewritten = rewrite_for_plim(mig, RewriteOptions(effort=rewrite_effort))
    # One AnalysisContext per gate order: all six option sets of an order
    # share its parents/levels/use-count analyses.
    orders = [
        ("as-built", AnalysisContext(rewritten)),
        ("shuffled", AnalysisContext(shuffle_topological(rewritten, seed=shuffle_seed))),
    ]
    points = []
    for label, options in SELECTION_CONFIGS.items():
        for order_label, context in orders:
            program = PlimCompiler(options).compile(context.mig, context=context)
            points.append(
                SelectionPoint(
                    config=label,
                    order=order_label,
                    instructions=program.num_instructions,
                    rrams=program.num_rrams,
                )
            )
    return points


def format_selection_ablation(name: str, points: Sequence[SelectionPoint]) -> str:
    rows = [[p.config, p.order, p.instructions, p.rrams] for p in points]
    return f"Candidate-selection ablation — {name}\n" + format_table(
        ["config", "order", "#I", "#R"], rows
    )


# ----------------------------------------------------------------------
# X3: allocator policy and endurance
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AllocatorPoint:
    policy: str
    instructions: int
    rrams: int
    wear: EnduranceReport


def allocator_ablation(
    mig: Mig,
    policies: Sequence[str] = ("fifo", "lifo", "fresh"),
    rewrite_effort: int = 4,
    input_seed: int = 7,
) -> list[AllocatorPoint]:
    """Compile with each allocator policy and measure real write wear.

    Each policy is measured through the :class:`~repro.core.cost
    .CompiledPlim` cost model — the same endurance-aware path guided
    rewriting optimizes against — so the wear numbers here are exactly
    the ones a ``plim``-objective rewrite would see: the program is
    executed once on the machine model (width 1, seeded random inputs)
    and the per-cell programming pulses counted, not estimated.
    """
    rewritten = rewrite_for_plim(mig, RewriteOptions(effort=rewrite_effort))
    # One AnalysisContext shared across the per-policy compiles.
    context = AnalysisContext(rewritten)
    points = []
    for policy in policies:
        model = CompiledPlim(allocator_policy=policy, input_seed=input_seed)
        report = model.measure(rewritten, context=context)
        points.append(
            AllocatorPoint(
                policy=policy,
                instructions=report["num_instructions"],
                rrams=report["num_rrams"],
                wear=report.wear,
            )
        )
    return points


def format_allocator_ablation(name: str, points: Sequence[AllocatorPoint]) -> str:
    rows = [
        [
            p.policy,
            p.instructions,
            p.rrams,
            p.wear.max_writes,
            f"{p.wear.mean_writes:.2f}",
            f"{p.wear.gini:.3f}",
        ]
        for p in points
    ]
    return f"Allocator/endurance ablation — {name}\n" + format_table(
        ["policy", "#I", "#R", "max writes/cell", "mean writes", "gini"], rows
    )


# ----------------------------------------------------------------------
# X4: output-polarity accounting
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PolarityPoint:
    accounting: str
    instructions: int
    rrams: int
    inverted_outputs: int


def polarity_ablation(mig: Mig, rewrite_effort: int = 4) -> list[PolarityPoint]:
    """Paper accounting (complemented outputs free) vs. honest fix-up."""
    points = []
    for paper in (True, False):
        fix = not paper
        rewritten = rewrite_for_plim(
            mig, RewriteOptions(effort=rewrite_effort, po_negation_cost=2 if fix else 0)
        )
        program = PlimCompiler(
            CompilerOptions(fix_output_polarity=fix)
        ).compile(rewritten)
        inverted = sum(1 for loc in program.output_cells.values() if loc.inverted)
        points.append(
            PolarityPoint(
                accounting="paper" if paper else "honest",
                instructions=program.num_instructions,
                rrams=program.num_rrams,
                inverted_outputs=inverted,
            )
        )
    return points


def format_polarity_ablation(name: str, points: Sequence[PolarityPoint]) -> str:
    rows = [
        [p.accounting, p.instructions, p.rrams, p.inverted_outputs] for p in points
    ]
    return f"Output-polarity accounting — {name}\n" + format_table(
        ["accounting", "#I", "#R", "outputs left inverted"], rows
    )


# ----------------------------------------------------------------------
# X8: cost-model-guided rewriting (the closed synthesis↔scheduling loop)
# ----------------------------------------------------------------------


def cost_loop_ablation(
    mig: Mig, rewrite_effort: int = 4, objective: str = "plim"
) -> CostLoopResult:
    """Run the compiled-cost loop and keep its full candidate audit trail.

    A thin wrapper over :func:`repro.core.rewriting.compile_cost_loop`:
    every Algorithm 1 variant the guided search tried is in
    ``result.steps`` with its measured metrics, so the formatted section
    shows exactly where #N-optimal and #I-optimal diverge.
    """
    return compile_cost_loop(mig, objective=objective, effort=rewrite_effort)


def format_cost_loop_ablation(name: str, result: CostLoopResult) -> str:
    def row(step):
        m = step.metrics
        return [
            step.iteration,
            step.variant,
            "kept" if step.accepted else "-",
            m.get("num_gates", "-"),
            m.get("depth", "-"),
            m.get("num_instructions", "-"),
            m.get("num_rrams", "-"),
        ]

    rows = [row(step) for step in result.steps]
    base = result.baseline.get("num_instructions", "-")
    status = "converged" if result.converged else "budget exhausted"
    summary = (
        f"# {result.model} objective: #I {base} -> {result.num_instructions}, "
        f"{result.iterations} round(s), {status}"
    )
    return (
        f"Cost-loop ablation — {name}\n"
        + format_table(
            ["round", "variant", "kept", "#N", "#D", "#I", "#R"], rows
        )
        + f"\n{summary}"
    )


def _ablation_section(payload) -> str:
    """One formatted ablation section (module-level for pool dispatch)."""
    section, name, scale = payload
    mig = benchmark_info(name).build(scale)
    if section == "effort":
        return format_effort_sweep(name, effort_sweep(mig))
    if section == "objective":
        return format_objective_ablation(name, objective_ablation(mig))
    if section == "pareto":
        return format_pareto_front(name, pareto_ablation(mig))
    if section == "selection":
        return format_selection_ablation(name, selection_ablation(mig))
    if section == "allocator":
        return format_allocator_ablation(name, allocator_ablation(mig))
    if section == "polarity":
        return format_polarity_ablation(name, polarity_ablation(mig))
    if section == "cost_loop":
        return format_cost_loop_ablation(name, cost_loop_ablation(mig))
    raise ValueError(f"unknown ablation section {section!r}")


ABLATION_SECTIONS = (
    "effort", "objective", "pareto", "selection", "allocator", "polarity",
    "cost_loop",
)


def run_benchmark_ablations(
    name: str, scale: str = "default", *, workers: Optional[int] = None
) -> str:
    """Every ablation section on one benchmark; returns the combined report.

    ``workers`` fans the studies out over a process pool (they are
    independent; ``None``, the default, means one worker per CPU — the
    package-wide convention); the section order of the report is fixed
    either way.
    """
    payloads = [(section, name, scale) for section in ABLATION_SECTIONS]
    return "\n\n".join(parallel_map(_ablation_section, payloads, workers=workers))
