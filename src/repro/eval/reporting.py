"""Small text-report helpers shared by the evaluation harness and CLI."""

from __future__ import annotations

import csv
import io
from typing import Iterable, Sequence


def improvement(baseline: float, value: float) -> float:
    """Relative improvement in percent (positive = better than baseline).

    Matches the paper's Table 1 convention: ``(1 - value/baseline) * 100``.
    """
    if baseline == 0:
        return 0.0
    return (1.0 - value / baseline) * 100.0


def format_percent(value: float) -> str:
    """Paper-style percentage with two decimals (negative = regression)."""
    return f"{value:.2f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    align_left: Sequence[int] = (0,),
) -> str:
    """Fixed-width ASCII table; columns in ``align_left`` left-justified."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i in align_left:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered)
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """CSV rendering of a report table."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()
