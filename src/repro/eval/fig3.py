"""The paper's §3 motivating examples (Fig. 3), reconstructed exactly.

The MIG structures below were reverse-engineered from the paper's
instruction listings (every RM3 line of the listings constrains the child
polarities uniquely):

* **Fig. 3(a)** — a two-node MIG before/after rewriting:
  ``N1 = ⟨i1 ī2 ī3⟩``, ``N2 = ⟨i2 ī4 N̄1⟩`` (two double-complemented
  nodes: 6 instructions / 2 RRAMs naïvely) versus the rewritten
  ``N1' = ⟨ī1 i2 i3⟩``, ``N2' = ⟨ī2 i4 N1'⟩`` (ideal single complements:
  4 instructions / 1 RRAM).  ``N2' = ¬N2`` — Ω.I flips the output
  polarity, which the paper's accounting leaves in place.
* **Fig. 3(b)** — a six-node MIG where naïve child-order translation costs
  19 instructions / 7 RRAMs while the paper's smart order and operand
  selection reaches 15 instructions / 4 RRAMs.

The expected counts are module constants so tests and benchmarks assert
against them in one place.  Note on RRAMs: the paper's listings number
cells consecutively without reuse (7 for Fig. 3(b) naïve); with the §4.2.3
free-list allocator the same naïve translation needs only 5 distinct
cells, which is what this package reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.batch import compile_many
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.plim.program import Program

#: Fig. 3(a): paper listing counts (before → after rewriting).
FIG3A_BEFORE_INSTRUCTIONS = 6
FIG3A_BEFORE_RRAMS = 2
FIG3A_AFTER_INSTRUCTIONS = 4
FIG3A_AFTER_RRAMS = 1

#: Fig. 3(b): paper listing counts (naïve vs smart translation).
FIG3B_NAIVE_INSTRUCTIONS = 19
FIG3B_NAIVE_RRAMS_PAPER = 7  # the listing allocates cells without reuse
FIG3B_NAIVE_RRAMS_FIFO = 5  # same translation with the §4.2.3 allocator
FIG3B_SMART_INSTRUCTIONS = 15
FIG3B_SMART_RRAMS = 4


def fig3a_before() -> Mig:
    """The left (unoptimized) MIG of Fig. 3(a)."""
    mig = Mig(name="fig3a-before")
    i1, i2, i3, i4 = (mig.add_pi(f"i{k}") for k in range(1, 5))
    n1 = mig.add_maj(i1, ~i2, ~i3)
    n2 = mig.add_maj(i2, ~i4, ~n1)
    mig.add_po(n2, "f")
    return mig


def fig3a_after() -> Mig:
    """The right (rewritten) MIG of Fig. 3(a): Ω.I applied to ``N1``.

    ``N1' = ¬N1 = ⟨ī1 i2 i3⟩``; ``N2``'s edge to it turns plain, leaving
    both nodes with the ideal single complemented child.  (The paper's
    printed "after" listing computes ``⟨ī2 i4 N̄1⟩``, which is *not*
    equivalent to its "before" listing — a polarity typo in the paper; we
    use the function-preserving Ω.I image, which reaches the same counts.)
    """
    mig = Mig(name="fig3a-after")
    i1, i2, i3, i4 = (mig.add_pi(f"i{k}") for k in range(1, 5))
    n1 = mig.add_maj(~i1, i2, i3)
    n2 = mig.add_maj(i2, ~i4, n1)
    mig.add_po(n2, "f")
    return mig


def fig3b() -> Mig:
    """The six-node MIG of Fig. 3(b) (reconstructed from both listings)."""
    mig = Mig(name="fig3b")
    i1, i2, i3 = (mig.add_pi(f"i{k}") for k in range(1, 4))
    n1 = mig.add_maj(Signal.CONST0, i1, i2)  # ⟨0 i1 i2⟩  = i1 ∧ i2
    n2 = mig.add_maj(Signal.CONST1, ~i2, i3)  # ⟨1 ī2 i3⟩ = ī2 ∨ i3
    n3 = mig.add_maj(i1, i2, i3)
    n4 = mig.add_maj(n1, i3, Signal.CONST1)  # ⟨n1 i3 1⟩ = n1 ∨ i3
    n5 = mig.add_maj(n1, ~n2, n3)
    n6 = mig.add_maj(n4, ~n5, n1)
    mig.add_po(n6, "f")
    return mig


@dataclass(frozen=True)
class Fig3Report:
    """Programs and counts for the full Fig. 3 regeneration."""

    fig3a_before_naive: Program
    fig3a_after_smart: Program
    fig3b_naive: Program
    fig3b_smart: Program

    def summary(self) -> str:
        lines = [
            "Fig. 3(a): rewriting a 2-node MIG",
            f"  before, naive:  {self.fig3a_before_naive.num_instructions} instructions, "
            f"{self.fig3a_before_naive.num_rrams} RRAMs  (paper: 6, 2)",
            f"  after,  smart:  {self.fig3a_after_smart.num_instructions} instructions, "
            f"{self.fig3a_after_smart.num_rrams} RRAMs  (paper: 4, 1)",
            "Fig. 3(b): translation order and operand selection",
            f"  naive:          {self.fig3b_naive.num_instructions} instructions, "
            f"{self.fig3b_naive.num_rrams} RRAMs  (paper: 19, 7 without cell reuse)",
            f"  smart:          {self.fig3b_smart.num_instructions} instructions, "
            f"{self.fig3b_smart.num_rrams} RRAMs  (paper: 15, 4)",
        ]
        return "\n".join(lines)


def naive_compiler() -> PlimCompiler:
    """The naïve translator under the paper's accounting."""
    return PlimCompiler(CompilerOptions.naive(fix_output_polarity=False))


def smart_compiler() -> PlimCompiler:
    """The full compiler under the paper's accounting.

    ``reorder="none"`` because the paper's Algorithm 2 schedules the
    as-given node indices; with it, both Fig. 3 programs match the paper's
    counts exactly.
    """
    return PlimCompiler(CompilerOptions(fix_output_polarity=False, reorder="none"))


def run_fig3(workers: Optional[int] = 1) -> Fig3Report:
    """Regenerate all four programs of the motivating examples.

    Goes through the batched driver: each MIG is compiled under both the
    naïve and smart option sets with one shared analysis context (Fig. 3(b)
    genuinely uses both; the report picks the cells the paper shows).
    """
    option_sets = {
        "naive": naive_compiler().options,
        "smart": smart_compiler().options,
    }
    results = compile_many(
        [fig3a_before(), fig3a_after(), fig3b()],
        option_sets,
        workers=workers,
        keep_programs=True,
    )
    programs = {(r.circuit_index, r.option_label): r.program for r in results}
    return Fig3Report(
        fig3a_before_naive=programs[(0, "naive")],
        fig3a_after_smart=programs[(1, "smart")],
        fig3b_naive=programs[(2, "naive")],
        fig3b_smart=programs[(2, "smart")],
    )
