"""End-to-end convenience API: rewrite an MIG and compile it to PLiM.

This is the one-call entry point a downstream user wants::

    from repro import compile_mig
    result = compile_mig(mig)           # rewrite (effort 4) + smart compile
    print(result.program.listing())
    print(result.num_instructions, result.num_rrams)

The returned :class:`CompileResult` keeps both the original and the
rewritten MIG so callers can inspect what rewriting did, and carries the
exact option sets used (for reproducibility of the evaluation harness).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Optional

from repro.core.cache import SynthesisCache
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.cost import CostModel
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.mig.context import AnalysisContext
from repro.mig.graph import Mig
from repro.plim.program import Program


@dataclass
class CompileResult:
    """Everything produced by one compilation pipeline run.

    The ``*_seconds`` fields are per-stage wall-clock of this run:
    ``rewrite_seconds`` covers Algorithm 1 (0.0 when rewriting is off or
    answered by the cache's stored result in negligible time — the timer
    still measures the lookup), ``schedule_seconds`` graph preparation
    plus candidate-scheduler construction, ``translate_seconds`` the
    Algorithm 2 translation loop, and ``verify_seconds`` is filled in by
    callers that run :func:`repro.plim.verify.verify_program` on the
    result (0.0 otherwise).
    """

    program: Program
    source_mig: Mig
    compiled_mig: Mig
    compiler_options: CompilerOptions
    rewrite_options: Optional[RewriteOptions]
    rewrite_seconds: float = 0.0
    schedule_seconds: float = 0.0
    translate_seconds: float = 0.0
    verify_seconds: float = 0.0

    @property
    def num_instructions(self) -> int:
        """The paper's #I."""
        return self.program.num_instructions

    @property
    def num_rrams(self) -> int:
        """The paper's #R."""
        return self.program.num_rrams

    @property
    def num_gates(self) -> int:
        """The paper's #N (gates of the MIG actually compiled)."""
        return self.compiled_mig.num_gates

    def __repr__(self) -> str:
        return (
            f"<CompileResult: N={self.num_gates} I={self.num_instructions} "
            f"R={self.num_rrams}>"
        )


def compile_mig(
    mig: Mig,
    *,
    rewrite: bool = True,
    effort: int = 4,
    engine: str = "worklist",
    objective: "str | CostModel" = "size",
    compiler_options: Optional[CompilerOptions] = None,
    rewrite_options: Optional[RewriteOptions] = None,
    context: Optional[AnalysisContext] = None,
    cache: Optional[SynthesisCache] = None,
) -> CompileResult:
    """Rewrite (optional) and compile ``mig`` into a PLiM program.

    ``effort`` is the rewriter's cycle count, ``engine`` its
    implementation ("worklist" in-place or "rebuild" pass pipeline) and
    ``objective`` its target ("size" — Algorithm 1, the default — "depth"
    for critical-path rewriting, "balanced" for the interleaved
    multi-objective loop, or a :class:`~repro.core.cost.CostModel`
    instance/alias such as "plim" for guided measure-and-select rewriting
    against real compiled cost — see :func:`repro.core.rewriting
    .compile_cost_loop` for the loop with full reporting; all ignored
    when an explicit ``rewrite_options`` is given).  When the compiler is
    configured to fix
    output polarity (the default), the rewriter is told to charge
    complemented outputs accordingly.

    ``context`` is an optional :class:`AnalysisContext` of the graph the
    compiler will actually see (i.e. of ``mig`` itself when
    ``rewrite=False``); pass the same one across repeated calls to share
    the structural analyses.  It is ignored when rewriting is enabled,
    since rewriting produces a fresh graph.  ``cache`` is an optional
    :class:`~repro.core.cache.SynthesisCache` that memoizes the rewriting
    step under the input's :meth:`~repro.mig.graph.Mig.fingerprint`
    (``plimc compile --cache-dir`` threads a persistent one through here).

    Returns a :class:`CompileResult`: the :class:`~repro.plim.program.Program`
    plus both the original and the compiled MIG and the exact option sets
    used.

    Example:

        >>> from repro import Mig, compile_mig
        >>> mig = Mig()
        >>> a, b, c = (mig.add_pi(n) for n in "abc")
        >>> _ = mig.add_po(mig.add_maj(a, b, c), "maj")
        >>> result = compile_mig(mig)
        >>> (result.num_gates, result.num_instructions, result.num_rrams)
        (1, 5, 2)
        >>> compile_mig(mig, objective="balanced").num_gates
        1
    """
    copts = compiler_options if compiler_options is not None else CompilerOptions()
    ropts: Optional[RewriteOptions] = None
    compiled = mig
    rewrite_seconds = 0.0
    if rewrite:
        if rewrite_options is not None:
            ropts = rewrite_options
        else:
            po_cost = 2 if copts.fix_output_polarity else 0
            ropts = RewriteOptions(
                effort=effort,
                po_negation_cost=po_cost,
                engine=engine,
                objective=objective,
            )
        start = perf_counter()
        compiled = rewrite_for_plim(mig, ropts, cache=cache)
        rewrite_seconds = perf_counter() - start
        context = None
    compiler = PlimCompiler(copts)
    program = compiler.compile(compiled, context=context)
    timings = compiler.last_timings
    return CompileResult(
        program=program,
        source_mig=mig,
        compiled_mig=compiled,
        compiler_options=copts,
        rewrite_options=ropts,
        rewrite_seconds=rewrite_seconds,
        schedule_seconds=timings["schedule_seconds"],
        translate_seconds=timings["translate_seconds"],
    )
