"""MIG rewriting for the PLiM architecture (paper §4.1, Algorithm 1).

Each effort cycle applies, in the paper's order:

1. ``Ω.M`` — majority-rule node elimination,
2. ``Ω.D(R→L)`` — distributivity right-to-left (removes one node),
3. ``Ω.A; Ω.C`` — associativity/commutativity reshaping,
4. ``Ω.M; Ω.D(R→L)`` — elimination again on the reshaped graph,
5. ``Ω.I(R→L)(1–3)`` — *cost-aware* inverter propagation: a gate with two
   or three complemented children is replaced by its complement (pushing
   one inversion onto each fanout edge) when the local cost balance —
   fewer negations here vs. possibly more at the fanout targets — does not
   get worse ("transferring a complemented edge can be also unfavorable if
   the target node already has a single complemented edge"),
6. ``Ω.I(R→L)`` — a final unconditional sweep "to ensure the most costly
   case is eliminated".

The cost balance uses the §4.2.2-derived model in :mod:`repro.core.cost`:
one missing/extra negation is two instructions and one RRAM.  Complemented
primary outputs are free in the paper's accounting; when the compiler runs
with ``fix_output_polarity`` they cost 2 instructions each, which
``RewriteOptions.po_negation_cost`` feeds into the balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.cost import NEGATION_INSTRUCTIONS, estimate_instructions, negations_needed
from repro.mig.algebra import (
    pass_associativity,
    pass_associativity_depth,
    pass_commutativity,
    pass_complementary_associativity,
    pass_distributivity_rl,
    pass_majority,
    pass_push_inverters,
)
from repro.mig.analysis import complement_stats, depth
from repro.mig.graph import Mig


@dataclass(frozen=True)
class RewriteOptions:
    """Knobs of Algorithm 1."""

    #: number of rewriting cycles (the paper's experiments use 4)
    effort: int = 4
    #: cost charged per complemented primary output (0 = paper accounting)
    po_negation_cost: int = 0
    #: skip size rules (Ω.M/Ω.D/Ω.A/Ω.C) — inverter propagation only
    size_rules: bool = True
    #: skip inverter propagation — size rules only
    inverter_rules: bool = True
    #: stop early once a cycle reaches a fixed point
    early_exit: bool = True
    #: also apply the derived Ψ.A rule (complementary associativity) in the
    #: reshaping step — not part of the paper's Algorithm 1, but part of
    #: the MIG algebra's derived rule set and strictly size-safe
    use_psi: bool = False


def rewrite_for_plim(mig: Mig, options: Optional[RewriteOptions] = None) -> Mig:
    """Run Algorithm 1 on ``mig`` and return the rewritten MIG."""
    opts = options if options is not None else RewriteOptions()
    for _cycle in range(opts.effort):
        before = _signature(mig)
        if opts.size_rules:
            mig = pass_majority(mig)  # Ω.M
            mig = pass_distributivity_rl(mig)  # Ω.D(R→L)
            mig = pass_associativity(mig)  # Ω.A
            if opts.use_psi:
                mig = pass_complementary_associativity(mig)  # Ψ.A
            mig = pass_commutativity(mig)  # Ω.C
            mig = pass_majority(mig)  # Ω.M
            mig = pass_distributivity_rl(mig)  # Ω.D(R→L)
        if opts.inverter_rules:
            mig = pass_inverter_cost_aware(mig, opts.po_negation_cost)  # Ω.I(R→L)(1–3)
            mig = pass_push_inverters(mig, threshold=3)  # Ω.I(R→L): worst case only
        if opts.early_exit and _signature(mig) == before:
            break
    # Inverter propagation may have changed which children are complemented;
    # restore the translation-friendly child order for child-order consumers.
    mig = pass_commutativity(mig)
    return mig


def _signature(mig: Mig) -> tuple:
    """Cheap fixed-point detector for the effort loop."""
    return (mig.num_gates, complement_stats(mig).by_count, estimate_instructions(mig))


def rewrite_depth(mig: Mig, effort: int = 4) -> Mig:
    """Depth-oriented MIG rewriting (Ω.A critical-path swaps + Ω.M).

    The companion RRAM-synthesis paper (Shirinzadeh et al., DATE'16 —
    reference [13]) optimizes MIGs for both area and depth; PLiM programs
    are serial so Table 1 only needs area, but depth matters for any
    parallel in-memory target.  Iterates associativity swaps that move
    late-arriving signals off inner gates until the depth stops improving
    (at most ``effort`` rounds).  Function-preserving and never
    size-increasing beyond the Ω.A reshaping itself.
    """
    best = mig
    best_depth = depth(mig)
    for _ in range(effort):
        candidate = pass_majority(pass_associativity_depth(best))
        candidate_depth = depth(candidate)
        if candidate_depth >= best_depth:
            break
        best, best_depth = candidate, candidate_depth
    return best


def pass_inverter_cost_aware(mig: Mig, po_negation_cost: int = 0) -> Mig:
    """Ω.I(R→L)(1–3): benefit-checked complement pushes, PIs→POs order.

    For every gate with ≥2 complemented non-constant children, compare the
    translation cost of the gate and its fanout targets with and without
    replacing the gate by its complement.  The decision is greedy in
    topological order: flips already decided for earlier nodes are exact,
    later siblings are estimated at their current polarity.
    """
    # Parent edges (parent, child_slot) and PO polarities from the input graph.
    parent_edges: dict[int, list[tuple[int, int]]] = {v: [] for v in mig.nodes()}
    for p in mig.gates():
        for slot, child in enumerate(mig.children(p)):
            if not child.is_const:
                parent_edges[child.node].append((p, slot))
    po_polarity: dict[int, list[bool]] = {}
    for po in mig.pos():
        if not po.is_const:
            po_polarity.setdefault(po.node, []).append(po.inverted)

    flipped: dict[int, bool] = {}

    def extra_cost(num_complemented: int, has_const: bool) -> int:
        return NEGATION_INSTRUCTIONS * negations_needed(num_complemented, has_const)

    def parent_profile(p: int) -> tuple[int, bool]:
        """Parent's complemented-child count under current flip decisions."""
        complemented = 0
        has_const = False
        for child in mig.children(p):
            if child.is_const:
                has_const = True
                continue
            polarity = child.inverted ^ flipped.get(child.node, False)
            complemented += polarity
        return complemented, has_const

    def gate_fn(new: Mig, old: int, mapped):
        nonconst = [s for s in mapped if not s.is_const]
        complemented = sum(1 for s in nonconst if s.inverted)
        has_const = len(nonconst) < 3
        if complemented < 2:
            return new.add_maj(*mapped)
        # Cost at this node if we flip: complements become k - c.
        delta = extra_cost(len(nonconst) - complemented, has_const) - extra_cost(
            complemented, has_const
        )
        # Cost at each fanout target: its edge to us toggles polarity.
        for p, slot in parent_edges[old]:
            c_p, const_p = parent_profile(p)
            edge = mig.children(p)[slot]
            currently_inverted = edge.inverted ^ flipped.get(old, False)
            c_p_flipped = c_p + (-1 if currently_inverted else 1)
            delta += extra_cost(c_p_flipped, const_p) - extra_cost(c_p, const_p)
        # Complemented primary outputs (only charged in honest mode).
        if po_negation_cost:
            for inverted in po_polarity.get(old, ()):
                delta += po_negation_cost * (-1 if inverted else 1)
        if delta <= 0:
            flipped[old] = True
            return ~new.add_maj(*(~s for s in mapped))
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    return new
