"""MIG rewriting for the PLiM architecture (paper §4.1, Algorithm 1).

Two engines implement the algorithm:

* ``engine="worklist"`` (the default) — an in-place, worklist-driven
  sweep over one mutable graph: each effort cycle seeds every live gate in
  topological order, applies the Ω rule sequence locally through
  :meth:`~repro.mig.graph.Mig.replace_node`, and re-enqueues only the
  fan-in/fan-out cone a rule touched.  The fixed-point signature is
  maintained incrementally (O(1) per check), and dead-node compaction is
  deferred to a single final cleanup;
* ``engine="rebuild"`` — the original pass pipeline in which every Ω pass
  is a full :meth:`~repro.mig.graph.Mig.rebuild` (one effort cycle copies
  the whole MIG ~8 times).  Kept as the differential-testing oracle.

Each effort cycle applies, in the paper's order:

1. ``Ω.M`` — majority-rule node elimination,
2. ``Ω.D(R→L)`` — distributivity right-to-left (removes one node),
3. ``Ω.A; Ω.C`` — associativity/commutativity reshaping,
4. ``Ω.M; Ω.D(R→L)`` — elimination again on the reshaped graph,
5. ``Ω.I(R→L)(1–3)`` — *cost-aware* inverter propagation: a gate with two
   or three complemented children is replaced by its complement (pushing
   one inversion onto each fanout edge) when the local cost balance —
   fewer negations here vs. possibly more at the fanout targets — does not
   get worse ("transferring a complemented edge can be also unfavorable if
   the target node already has a single complemented edge"),
6. ``Ω.I(R→L)`` — a final unconditional sweep "to ensure the most costly
   case is eliminated".

The cost balance uses the §4.2.2-derived model in :mod:`repro.core.cost`:
one missing/extra negation is two instructions and one RRAM.  Complemented
primary outputs are free in the paper's accounting; when the compiler runs
with ``fix_output_polarity`` they cost 2 instructions each, which
``RewriteOptions.po_negation_cost`` feeds into the balance.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Optional, Union

if TYPE_CHECKING:  # import cycle: cache deserialization reaches back here
    from repro.core.cache import SynthesisCache
    from repro.plim.program import Program

from repro.core.cost import (
    COST_MODELS,
    CompiledPlim,
    CostModel,
    Depth,
    NodeCount,
    estimate_from_histogram,
    estimate_instructions,
    negation_cost,
    resolve_cost_model,
)
from repro.errors import MigError, ReproError
from repro.mig.algebra import (
    complement_profile,
    flip_complement,
    pass_associativity,
    pass_associativity_depth,
    pass_commutativity,
    pass_complementary_associativity,
    pass_distributivity_rl,
    pass_majority,
    pass_push_inverters,
    try_associativity,
    try_associativity_depth,
    try_complementary_associativity,
    try_distributivity_rl,
    try_majority,
    try_push_inverters,
)
from repro.mig.analysis import complement_stats, depth
from repro.mig.graph import Mig
from repro.mig.signal import Signal


@dataclass(frozen=True)
class RewriteOptions:
    """Knobs of Algorithm 1 (all fields have sensible defaults).

    Example:

        >>> from repro import RewriteOptions
        >>> RewriteOptions().objective, RewriteOptions().engine
        ('size', 'worklist')
        >>> RewriteOptions(objective="size", depth_budget=12).depth_budget
        12
    """

    #: number of rewriting cycles (the paper's experiments use 4)
    effort: int = 4
    #: cost charged per complemented primary output (0 = paper accounting)
    po_negation_cost: int = 0
    #: skip size rules (Ω.M/Ω.D/Ω.A/Ω.C) — inverter propagation only
    size_rules: bool = True
    #: skip inverter propagation — size rules only
    inverter_rules: bool = True
    #: stop early once a cycle reaches a fixed point
    early_exit: bool = True
    #: also apply the derived Ψ.A rule (complementary associativity) in the
    #: reshaping step — not part of the paper's Algorithm 1, but part of
    #: the MIG algebra's derived rule set and strictly size-safe
    use_psi: bool = False
    #: "worklist" (in-place, incremental — the default) or "rebuild" (the
    #: original whole-graph pass pipeline, kept as the oracle)
    engine: str = "worklist"
    #: optimization target: "size" (the paper's Algorithm 1 — serial PLiM
    #: programs only care about node count), "depth" (critical-path Ω.A
    #: swaps only — parallel in-memory targets), "balanced" (interleave
    #: size and depth effort cycles until a joint fixed point), or a
    #: :class:`~repro.core.cost.CostModel` — by instance, or by alias
    #: ("static-plim"/"plim") — which runs the guided measure-and-select
    #: driver against that model's objective
    objective: Union[str, CostModel] = "size"
    #: hard depth ceiling for size rewriting (worklist engine only): size
    #: rules reject any candidate that could push a primary-output level
    #: past the budget, so ``objective="size"``/``"balanced"`` can shrink
    #: the graph without deepening it beyond ``depth_budget`` levels.
    #: ``None`` (the default) places no ceiling.  A budget below the input
    #: MIG's depth is infeasible and raises
    #: :class:`~repro.errors.MigError`.
    depth_budget: Optional[int] = None


ENGINES = ("worklist", "rebuild")
#: the built-in rewriting strategies (legacy string objectives)
OBJECTIVES = ("size", "depth", "balanced")
#: cost-model aliases additionally accepted by ``objective`` (the
#: "size"/"depth" aliases of :data:`repro.core.cost.COST_MODELS` map onto
#: the strategies above; these two run the guided driver)
MODEL_OBJECTIVES = ("static-plim", "plim")


def _normalize_objective(
    opts: RewriteOptions,
) -> tuple[RewriteOptions, Optional[CostModel]]:
    """Resolve ``opts.objective`` to (canonical options, guided model).

    Strings in :data:`OBJECTIVES` are the legacy strategies (returned
    unchanged, no model).  Cost-model aliases and instances resolve
    through :func:`~repro.core.cost.resolve_cost_model`; models whose
    ``strategy`` is ``"size"``/``"depth"`` collapse onto the dedicated
    engines (``objective=NodeCount()`` is bit-identical to
    ``objective="size"`` — and shares its cache entries, because the
    canonicalized options are the cache key).  Guided models are stored
    back into the options as instances, so ``"plim"`` and
    ``CompiledPlim()`` share one cache identity too.
    """
    objective = opts.objective
    if isinstance(objective, str) and objective in OBJECTIVES:
        return opts, None
    if not isinstance(objective, CostModel) and (
        not isinstance(objective, str) or objective not in COST_MODELS
    ):
        raise ReproError(
            f"unknown rewrite objective {objective!r}; expected one of "
            f"{OBJECTIVES + MODEL_OBJECTIVES} or a CostModel instance"
        )
    model = resolve_cost_model(objective)
    if type(model) in (NodeCount, Depth):
        return replace(opts, objective=model.strategy), None
    return replace(opts, objective=model), model


def rewrite_for_plim(
    mig: Mig,
    options: Optional[RewriteOptions] = None,
    *,
    cache: "Optional[SynthesisCache]" = None,
) -> Mig:
    """Run MIG rewriting on ``mig`` and return the rewritten MIG.

    ``options.objective`` picks the target: ``"size"`` is the paper's
    Algorithm 1, ``"depth"`` the critical-path rewriter, ``"balanced"``
    the interleaved multi-objective loop.  ``options.depth_budget`` puts a
    hard depth ceiling under size rewriting (worklist engine only; a
    budget below the input's depth raises
    :class:`~repro.errors.MigError`).  ``mig`` itself is never modified,
    whichever engine and objective run.

    ``cache`` is an optional :class:`~repro.core.cache.SynthesisCache`:
    the result is memoized under ``(mig.fingerprint(), options)``, so a
    repeated rewrite of a structurally identical input — regardless of its
    gate-creation order — is a lookup instead of a recomputation.

    Example — ``⟨a b ⟨a b c⟩⟩`` collapses to ``⟨a b c⟩`` (Ω.A + Ω.M),
    with or without a depth budget:

        >>> from repro import Mig, RewriteOptions, rewrite_for_plim
        >>> m = Mig()
        >>> a, b, c = m.add_pi("a"), m.add_pi("b"), m.add_pi("c")
        >>> _ = m.add_po(m.add_maj(a, b, m.add_maj(a, b, c)), "f")
        >>> m.num_gates, rewrite_for_plim(m).num_gates
        (2, 1)
        >>> rewrite_for_plim(m, RewriteOptions(depth_budget=2)).num_gates
        1
    """
    opts = options if options is not None else RewriteOptions()
    if opts.engine not in ENGINES:
        raise ReproError(
            f"unknown rewrite engine {opts.engine!r}; expected one of {ENGINES}"
        )
    opts, model = _normalize_objective(opts)
    if opts.depth_budget is not None:
        if opts.depth_budget < 0:
            raise ReproError(
                f"depth_budget must be non-negative, got {opts.depth_budget}"
            )
        if opts.engine != "worklist":
            raise ReproError(
                "depth_budget requires engine='worklist' (the rebuild "
                "oracle has no incremental level maintenance to gate on)"
            )
        if opts.objective == "depth":
            raise ReproError(
                "depth_budget applies to the 'size' and 'balanced' "
                "objectives; objective='depth' already minimizes depth"
            )
    fingerprint = None
    if cache is not None:
        fingerprint = mig.fingerprint()
        hit = cache.get_rewrite(fingerprint, opts)
        if hit is not None:
            return hit
    if model is not None:
        result = _rewrite_guided(mig, opts, model, cache=cache)
    elif opts.objective == "size":
        if opts.engine == "worklist":
            result = _rewrite_worklist(mig, opts)
        else:
            result = _rewrite_rebuild(mig, opts)
    elif opts.engine == "worklist":
        result = _rewrite_objective_worklist(mig, opts)
    else:
        result = _rewrite_objective_rebuild(mig, opts)
    if cache is not None:
        cache.put_rewrite(fingerprint, opts, result)
    return result


def _size_cycle_rebuild(mig: Mig, opts: RewriteOptions) -> Mig:
    """One Algorithm 1 effort cycle as whole-graph rebuild passes."""
    if opts.size_rules:
        mig = pass_majority(mig)  # Ω.M
        mig = pass_distributivity_rl(mig)  # Ω.D(R→L)
        mig = pass_associativity(mig)  # Ω.A
        if opts.use_psi:
            mig = pass_complementary_associativity(mig)  # Ψ.A
        mig = pass_commutativity(mig)  # Ω.C
        mig = pass_majority(mig)  # Ω.M
        mig = pass_distributivity_rl(mig)  # Ω.D(R→L)
    if opts.inverter_rules:
        mig = pass_inverter_cost_aware(mig, opts.po_negation_cost)  # Ω.I(R→L)(1–3)
        mig = pass_push_inverters(mig, threshold=3)  # Ω.I(R→L): worst case only
    return mig


def _rewrite_rebuild(mig: Mig, opts: RewriteOptions) -> Mig:
    """The original pass pipeline: every Ω pass is a full graph rebuild."""
    for _cycle in range(opts.effort):
        before = _signature(mig)
        mig = _size_cycle_rebuild(mig, opts)
        if opts.early_exit and _signature(mig) == before:
            break
    # Inverter propagation may have changed which children are complemented;
    # restore the translation-friendly child order for child-order consumers.
    mig = pass_commutativity(mig)
    return mig


def _signature(mig: Mig) -> tuple:
    """Cheap fixed-point detector for the effort loop (full traversal)."""
    return (mig.num_gates, complement_stats(mig).by_count, estimate_instructions(mig))


# ----------------------------------------------------------------------
# the worklist engine
# ----------------------------------------------------------------------


def _rewrite_worklist(mig: Mig, opts: RewriteOptions) -> Mig:
    """Algorithm 1 as one incremental sweep per effort cycle.

    Works on a private dead-free copy of ``mig`` with in-place maintenance
    enabled; one final cleanup compacts the tombstones and restores a
    creation-order index, and the closing Ω.C pass restores the
    translation-friendly child order exactly like the rebuild engine.
    """
    work, _ = mig.rebuild()  # private copy; also the initial Ω.M cleanup
    work.enable_inplace()
    if opts.depth_budget is not None:
        work.enable_levels()
        _check_budget_feasible(work, opts.depth_budget)
    for _cycle in range(opts.effort):
        # Cycle 0 measures the fixed point against the *raw* input, exactly
        # like the rebuild engine: a first cycle that only cleans up or
        # reshapes (no count change against the cleaned graph) must not
        # exit early, because reshaping feeds the next cycle's Ω.D.
        before = _signature(mig) if _cycle == 0 else _inplace_signature(work)
        _size_cycle_worklist(work, opts)
        if opts.early_exit and _inplace_signature(work) == before:
            break
    # Inverter propagation may have changed which children are complemented;
    # restore the translation-friendly child order (Ω.C) in place, then
    # compact the tombstones with the single final cleanup.
    _sweep_commutativity(work)
    final, _ = work.rebuild()
    return final


def _check_budget_feasible(work: Mig, depth_budget: int) -> None:
    """Raise :class:`MigError` when ``work`` already violates the budget.

    Size rules can only *keep* PO levels under the ceiling — they cannot
    drive an over-budget graph back under it — so a budget below the
    (cleaned) input's depth is rejected up front.  Callers who need a
    tighter depth first should run ``objective="depth"`` rewriting and
    budget the result (which is what :func:`repro.core.pareto.pareto_sweep`
    does per sweep point).
    """
    current = work.current_depth()
    if current > depth_budget:
        raise MigError(
            f"depth budget {depth_budget} is infeasible: the input MIG has "
            f"depth {current}; rewrite with objective='depth' first or "
            f"raise the budget"
        )


def _inplace_signature(mig: Mig) -> tuple:
    """O(1) counterpart of :func:`_signature` for in-place graphs.

    Same (gate count, complement histogram, instruction estimate) triple,
    but read from the incrementally maintained counters instead of a full
    traversal.
    """
    num_gates, hist, zero_comp_no_const = mig.inplace_signature()
    estimate = estimate_from_histogram(num_gates, hist, zero_comp_no_const)
    return (num_gates, hist, estimate)


def _size_cycle_worklist(work: Mig, opts: RewriteOptions) -> None:
    """One Algorithm 1 effort cycle as in-place worklist sweeps."""
    if opts.size_rules:
        _worklist_size_sweep(work, opts)
    if opts.inverter_rules:
        _sweep_inverters_cost_aware(work, opts.po_negation_cost)
        _sweep_push_inverters(work, threshold=3)


def _worklist_size_sweep(work: Mig, opts: RewriteOptions) -> None:
    """One size-rule cycle: the paper's Ω.M; Ω.D; Ω.A[; Ψ.A]; Ω.C; Ω.M; Ω.D.

    Each phase is a worklist that seeds every live gate in topological
    order, applies its rule locally, and re-enqueues only the nodes a
    rewrite touched (Ω.M and structural-hash merging additionally cascade
    inside ``replace_node``, so every phase is also an Ω.M pass).  Keeping
    the rebuild pipeline's phase order — all Ω.D applications before any
    Ω.A reshaping, with the Ω.C reorder in between — keeps the two engines'
    search order, and therefore their results, closely aligned.

    With ``opts.depth_budget`` set (level-maintained graphs only), every
    phase gates its candidates so no primary-output level can exceed the
    budget — size rewriting under a hard depth ceiling.
    """
    budget = opts.depth_budget
    _worklist_phase(work, (try_majority, try_distributivity_rl), depth_budget=budget)
    reshaping = [try_associativity]
    if opts.use_psi:
        reshaping.append(try_complementary_associativity)
    _worklist_phase(work, tuple(reshaping), depth_budget=budget)
    # The reshaping rules keep rejected candidates as speculative
    # zero-fanout gates (they seed sharing like a pass's abandoned nodes);
    # sweep them at the phase boundary, like a pass's trailing rebuild.
    work.collect_unused()
    _sweep_commutativity(work)
    _worklist_phase(work, (try_majority, try_distributivity_rl), depth_budget=budget)


def _worklist_phase(
    work: Mig,
    rules: tuple,
    revisit: bool = False,
    depth_budget: Optional[int] = None,
) -> None:
    """Run one rule family over a worklist seeded with all live gates.

    With ``revisit=False`` (the pass-faithful default) every seed is
    visited once, like one rebuild pass: merge/collapse cascades still run
    inside ``replace_node``, and follow-up opportunities are picked up by
    the next phase or cycle.  ``revisit=True`` re-enqueues the affected
    cone until a local fixed point — more eager, but the greedier search
    order can land in different (not reliably better) local optima, so the
    engine keeps it off to stay aligned with the rebuild oracle.  A step
    budget bounds pathological reshaping loops either way (Ω.A is
    size-neutral, so a cycle of free swaps could otherwise ping-pong).
    """
    queue = deque(work.topo_gates())
    queued = set(queue)
    fanouts = work.fanout_snapshot()
    budget = 20 * len(work) + 1000
    while queue and budget > 0:
        budget -= 1
        v = queue.popleft()
        queued.discard(v)
        if not work.is_gate(v):
            continue
        for rule in rules:
            affected = rule(work, v, fanouts, depth_budget)
            # A rule can fire and still report an empty affected set (the
            # replacement is a literal and ``v`` was read only by POs, so
            # no gate's children changed); ``v`` is tombstoned then, and
            # the next rule must not run on the dead node.
            if affected or not work.is_gate(v):
                break
        if revisit:
            for u in affected:
                if u not in queued and work.is_gate(u):
                    queue.append(u)
                    queued.add(u)


def _sweep_commutativity(work: Mig) -> None:
    """In-place Ω.C: per-gate slot permutation, same scoring and canonical
    tie-breaking as :func:`~repro.mig.algebra.pass_commutativity`.

    Purely a stored-order change (the strash key is order-insensitive), so
    no worklist is needed — one linear sweep suffices.
    """
    from repro.mig.algebra import (
        SLOT_SCORES_CONST,
        SLOT_SCORES_INVERTED,
        SLOT_SCORES_PLAIN,
        SLOT_SCORES_PLAIN_SINGLE_GATE,
        _best_permutation,
        structural_keys,
    )

    keys = structural_keys(work)
    # bound once: this sweep is a hot path (encoding views work on both
    # the array core and the DictMig reference core)
    ca, cb, cc = work._ca, work._cb, work._cc
    refs = work._refs
    for v in list(work.topo_gates()):
        ea = ca[v]
        if ea < 0:
            continue
        triple = (Signal(ea), Signal(cb[v]), Signal(cc[v]))
        scores = []
        child_keys = []
        for child in triple:
            encoding = int(child)
            n = encoding >> 1
            child_keys.append(keys[n])
            if n == 0:
                scores.append(SLOT_SCORES_CONST)
            elif encoding & 1:
                scores.append(SLOT_SCORES_INVERTED)
            elif ca[n] >= 0 and refs[n] == 1:
                scores.append(SLOT_SCORES_PLAIN_SINGLE_GATE)
            else:
                scores.append(SLOT_SCORES_PLAIN)
        a, b, z = _best_permutation(scores, triple, child_keys)
        new_triple = (triple[a], triple[b], triple[z])
        if new_triple != triple:
            work.reorder_children(v, new_triple)


def _sweep_inverters_cost_aware(work: Mig, po_negation_cost: int = 0) -> None:
    """In-place Ω.I(R→L)(1–3): benefit-checked flips, children before parents.

    The same greedy decision as :func:`pass_inverter_cost_aware`: flips
    already applied to earlier (topologically lower) nodes are exact, later
    siblings are estimated at their current polarity — which is simply the
    current in-place state.  The flip balance consults the static model's
    :func:`~repro.core.cost.negation_cost` (it *is* the per-node
    :class:`~repro.core.cost.StaticPlim` objective, restricted to the
    touched nodes).
    """
    extra_cost = negation_cost
    order = list(work.topo_gates())
    position = {v: i for i, v in enumerate(order)}
    evicted: set[int] = set()
    ca, cb, cc = work._ca, work._cb, work._cc  # encoding views, hot sweep
    for v in order:
        if ca[v] < 0:  # replaced by an earlier flip's cascade
            continue
        enc = (ca[v], cb[v], cc[v])
        num_nonconst = sum(1 for e in enc if e >= 2)
        complemented = sum(1 for e in enc if e >= 2 and e & 1)
        has_const = num_nonconst < 3
        flip = False
        if complemented >= 2:
            # Cost at this node if we flip: complements become k - c.
            delta = extra_cost(num_nonconst - complemented, has_const) - extra_cost(
                complemented, has_const
            )
            # Cost at each fanout target: its edge to us toggles polarity.
            for p in work.parents_of_node(v):
                pe = (ca[p], cb[p], cc[p])
                c_p, const_p = Mig._profile_enc(*pe)
                for edge in pe:
                    if edge >> 1 == v:
                        c_p_flipped = c_p + (-1 if edge & 1 else 1)
                        delta += extra_cost(c_p_flipped, const_p) - extra_cost(
                            c_p, const_p
                        )
            # Complemented primary outputs (only charged in honest mode).
            if po_negation_cost:
                for po in work.po_edges_of(v):
                    delta += po_negation_cost * (-1 if po.inverted else 1)
            flip = delta <= 0
        _visit_for_flip(work, v, flip, position, evicted)


def _sweep_push_inverters(work: Mig, threshold: int) -> None:
    """In-place unconditional Ω.I(R→L) sweep (:func:`try_push_inverters`)."""
    order = list(work.topo_gates())
    position = {v: i for i, v in enumerate(order)}
    evicted: set[int] = set()
    ca, cb, cc = work._ca, work._cb, work._cc  # encoding views, hot sweep
    for v in order:
        if ca[v] < 0:
            continue
        inverted_nonconst = sum(
            1 for e in (ca[v], cb[v], cc[v]) if e >= 2 and e & 1
        )
        _visit_for_flip(work, v, inverted_nonconst >= threshold, position, evicted)


def _visit_for_flip(
    work: Mig,
    v: int,
    flip: bool,
    position: dict[int, int],
    evicted: set[int],
) -> None:
    """Apply (or skip) one flip with a rebuild pass's merge order.

    A rebuild pass re-creates every gate in order, so when a flip's new
    key matches a gate that the pass has *not reached yet*, the flipped
    node is created fresh and the stale gate merges into it later, at its
    own position.  In place that means: evict the stale owner from the
    strash before flipping, and re-hash every evicted gate when its turn
    comes (merging it into whichever node now owns its key).
    """
    if flip:
        a, b, c = work.children(v)
        owner = work.strash_owner(~a, ~b, ~c)
        if (
            owner is not None
            and work.is_gate(owner)
            and position.get(owner, -1) > position[v]
        ):
            work.evict_strash(owner)
            evicted.add(owner)
        flip_complement(work, v)
    elif v in evicted:
        evicted.discard(v)
        work.rehash_node(v)


# ----------------------------------------------------------------------
# depth and balanced objectives (the multi-objective synthesis loop)
# ----------------------------------------------------------------------


def _rewrite_objective_rebuild(mig: Mig, opts: RewriteOptions) -> Mig:
    """Depth/balanced objectives on the rebuild pass pipeline (the oracle).

    ``objective="depth"`` is the original one-shot ``rewrite_depth``
    semantics: iterate ``pass_associativity_depth`` + Ω.M, accept only
    strictly depth-improving rounds.  ``objective="balanced"`` interleaves
    one full Algorithm 1 size cycle with one depth cycle per round until
    the joint (size signature, depth) fixed point — the depth cycle runs
    *after* the size cycle so area reshaping cannot undo the depth gains.
    """
    if opts.objective == "depth":
        best = mig
        best_depth = depth(mig)
        for _ in range(opts.effort):
            candidate = pass_majority(pass_associativity_depth(best))
            candidate_depth = depth(candidate)
            if candidate_depth >= best_depth:
                break
            best, best_depth = candidate, candidate_depth
        return best
    current = mig
    for _cycle in range(opts.effort):
        before = (_signature(current), depth(current))
        current = _size_cycle_rebuild(current, opts)
        current = pass_majority(pass_associativity_depth(current))
        if opts.early_exit and (_signature(current), depth(current)) == before:
            break
    # restore the translation-friendly child order, like the size engine
    return pass_commutativity(current)


def _rewrite_objective_worklist(mig: Mig, opts: RewriteOptions) -> Mig:
    """Depth/balanced objectives on the in-place worklist engine.

    One private dead-free copy with incremental level maintenance
    (:meth:`~repro.mig.graph.Mig.enable_levels`), so every depth query
    during the sweep reads maintained levels instead of traversing the
    graph.  Each effort cycle runs (balanced only) one Algorithm 1 size
    cycle, then one depth phase of local
    :func:`~repro.mig.algebra.try_associativity_depth` moves; the loop
    stops at the joint (signature, depth) fixed point.  Depth is
    monotonically non-increasing across the depth phases: every local
    move strictly lowers the rewritten node's level and can raise no
    other node's.
    """
    work = _private_clean_copy(mig)
    work.enable_inplace()
    # drop unreachable cones a clone carried over (rebuild() parity)
    work.collect_unused()
    work.enable_levels()
    if opts.depth_budget is not None:
        _check_budget_feasible(work, opts.depth_budget)
    edits_at_start = work.edit_count
    balanced = opts.objective == "balanced"
    for _cycle in range(opts.effort):
        before_sig = _inplace_signature(work)
        before_depth = work.current_depth()
        if balanced:
            _size_cycle_worklist(work, opts)
        _worklist_phase(work, (try_associativity_depth,))
        work.collect_unused()
        if balanced:
            # joint fixed point: neither objective moved this cycle
            if opts.early_exit and (
                _inplace_signature(work),
                work.current_depth(),
            ) == (before_sig, before_depth):
                break
        elif work.current_depth() >= before_depth:
            # pure depth mirrors the oracle's strict-improvement rule:
            # stop as soon as a cycle fails to lower the global depth
            # (already-applied local moves are harmless — depth is
            # monotonically non-increasing under the rule)
            break
    if balanced:
        # restore the translation-friendly child order, like the size engine
        _sweep_commutativity(work)
    if work.edit_count == edits_at_start:
        return work  # no structural edits: the private copy is already clean
    final, _ = work.rebuild()
    return final


def _private_clean_copy(mig: Mig) -> Mig:
    """A private, Ω.M-simplified copy of ``mig`` for in-place rewriting.

    ``rebuild()`` is the safe default (it drops tombstones and re-simplifies
    every gate); an input that is verifiably clean already — append-only, no
    tombstones, no trivially reducible gate — is
    :meth:`~repro.mig.graph.Mig.clone`-copied instead, which skips the whole
    per-gate re-hash.  Unreachable cones a clone carries over are swept by
    the caller with ``collect_unused()`` once in-place maintenance is on.
    """
    if not mig.is_append_clean():
        return mig.rebuild()[0]
    return mig.clone()


# ----------------------------------------------------------------------
# guided rewriting and the synthesize→schedule→re-synthesize loop
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CostLoopStep:
    """One candidate evaluation of the guided loop (for reporting)."""

    #: guided round (0 = the un-rewritten input's baseline measurement)
    iteration: int
    #: which strategy produced the candidate ("input", "size", "size+psi",
    #: "balanced", "depth")
    variant: str
    #: whether the candidate improved the model objective and was kept
    accepted: bool
    #: the model's metrics for the candidate
    metrics: dict


@dataclass(frozen=True)
class CostLoopResult:
    """Result of :func:`compile_cost_loop`.

    ``mig`` is the cost-selected rewritten graph, ``program`` its
    Algorithm 2 compilation under the model's own compiler options (so
    the reported #I/#R are exactly what the loop optimized).
    ``baseline``/``final`` are the model's metrics before/after, and
    ``steps`` the full audit trail of candidate evaluations.
    """

    mig: Mig
    program: "Program"
    model: str
    steps: tuple
    iterations: int
    converged: bool
    baseline: dict
    final: dict
    seconds: float

    @property
    def num_instructions(self) -> int:
        return self.program.num_instructions

    @property
    def num_rrams(self) -> int:
        return self.program.num_rrams

    @property
    def num_gates(self) -> int:
        return self.mig.num_gates

    def __repr__(self) -> str:
        return (
            f"<CostLoopResult[{self.model}]: N={self.num_gates} "
            f"I={self.num_instructions} R={self.num_rrams} "
            f"iterations={self.iterations}"
            f"{' converged' if self.converged else ''}>"
        )


def _guided_variants(opts: RewriteOptions) -> tuple:
    """The candidate rewriting strategies one guided round explores.

    Algorithm 1 variants that land in *different* local optima: plain
    size rewriting, size with the derived Ψ.A rule (which frequently
    trades a node of sharing for a cheaper complement structure — the
    single biggest #I winner on the registry), the balanced loop, and —
    when no depth budget constrains the search — pure depth rewriting
    (occasionally cheaper to translate at equal #N).  The model, not the
    strategy, decides what is kept.
    """
    base = dict(
        effort=opts.effort,
        po_negation_cost=opts.po_negation_cost,
        size_rules=opts.size_rules,
        inverter_rules=opts.inverter_rules,
        early_exit=opts.early_exit,
        engine=opts.engine,
    )
    variants = [
        ("size", RewriteOptions(objective="size", depth_budget=opts.depth_budget, **base)),
        (
            "size+psi",
            RewriteOptions(
                objective="size", use_psi=True, depth_budget=opts.depth_budget, **base
            ),
        ),
        (
            "balanced",
            RewriteOptions(objective="balanced", depth_budget=opts.depth_budget, **base),
        ),
    ]
    if opts.depth_budget is None:
        variants.append(("depth", RewriteOptions(objective="depth", **base)))
    return tuple(variants)


def _guided_search(
    mig: Mig,
    opts: RewriteOptions,
    model: CostModel,
    *,
    cache: "Optional[SynthesisCache]" = None,
    max_rounds: Optional[int] = None,
    progress: Optional[Callable[["CostLoopStep"], None]] = None,
) -> tuple[Mig, list, int, bool]:
    """Measure-and-select driver: iterate rewriting to a model fixed point.

    Each round rewrites the incumbent under every :func:`_guided_variants`
    strategy, measures each candidate with ``model``, and keeps the best
    (strictly improving) one; the loop stops when a round improves
    nothing (``converged``) or after ``max_rounds`` rounds (the bounded
    iteration budget — defaults to ``opts.effort``).  The un-rewritten
    input is the baseline candidate, so the result is never worse than
    the input under the model.  Returns
    ``(best, steps, rounds_run, converged)``.
    """
    current = mig if mig.is_append_clean() else mig.rebuild()[0]
    best = current
    report = model.measure(best, cache=cache)
    best_key = report.objective
    steps: list[CostLoopStep] = [
        CostLoopStep(0, "input", True, dict(report.metrics))
    ]
    if progress is not None:
        progress(steps[0])
    budget = max(1, opts.effort if max_rounds is None else max_rounds)
    converged = False
    rounds = 0
    for rounds in range(1, budget + 1):
        improved = False
        for variant, vopts in _guided_variants(opts):
            candidate = rewrite_for_plim(best, vopts, cache=cache)
            report = model.measure(candidate, cache=cache)
            accepted = report.objective < best_key
            steps.append(
                CostLoopStep(rounds, variant, accepted, dict(report.metrics))
            )
            if progress is not None:
                progress(steps[-1])
            if accepted:
                best, best_key = candidate, report.objective
                improved = True
        if not improved:
            converged = True
            break
    return best, steps, rounds, converged


def _rewrite_guided(
    mig: Mig,
    opts: RewriteOptions,
    model: CostModel,
    *,
    cache: "Optional[SynthesisCache]" = None,
) -> Mig:
    """``rewrite_for_plim`` body for guided (cost-model) objectives."""
    best, _, _, _ = _guided_search(mig, opts, model, cache=cache)
    return best


def compile_cost_loop(
    mig: Mig,
    *,
    objective: Union[str, CostModel] = "plim",
    effort: int = 4,
    max_iterations: int = 4,
    compiler_options=None,
    cache: "Optional[SynthesisCache]" = None,
    progress: Optional[Callable[["CostLoopStep"], None]] = None,
) -> CostLoopResult:
    """Iterate synthesize→schedule→re-synthesize to a cost fixed point.

    The closed loop ROADMAP item 3 asks for: rewrite the MIG, measure the
    candidate with ``objective`` (default ``"plim"`` — a real Algorithm 2
    compile + machine execution via
    :class:`~repro.core.cost.CompiledPlim`), feed the measurement back as
    the selection criterion, and repeat until no rewriting strategy
    improves the measured cost (or ``max_iterations`` rounds elapse — the
    bounded iteration budget).  ``effort`` is each inner rewrite's
    Algorithm 1 cycle count; ``cache`` memoizes the inner rewrites *and*
    the cost-model measurements (the ``"measurements"`` cache kind, on
    top of the model's own per-fingerprint memo), so converged loops are
    cheap to re-run — across processes when the cache is disk-backed.

    The final program is compiled under ``compiler_options`` when given,
    else under the model's own accounting
    (:meth:`~repro.core.cost.CompiledPlim.compiler_options`, falling back
    to paper accounting), so the reported #I/#R are exactly the quantity
    the loop minimized.

    Example — the loop never does worse than one-shot size rewriting:

        >>> from repro import Mig, compile_cost_loop, compile_mig
        >>> from repro.core.compiler import CompilerOptions
        >>> m = Mig()
        >>> a, b, c = (m.add_pi(n) for n in "abc")
        >>> _ = m.add_po(~m.add_maj(~a, ~b, c), "f")
        >>> loop = compile_cost_loop(m)
        >>> one_shot = compile_mig(
        ...     m, compiler_options=CompilerOptions(fix_output_polarity=False))
        >>> loop.num_instructions <= one_shot.num_instructions
        True
    """
    from repro.core.compiler import CompilerOptions, PlimCompiler

    start = time.perf_counter()
    model = resolve_cost_model(objective)
    opts = RewriteOptions(effort=effort, objective=model)
    best, steps, rounds, converged = _guided_search(
        mig, opts, model, cache=cache, max_rounds=max_iterations,
        progress=progress,
    )
    copts = compiler_options
    if copts is None:
        if isinstance(model, CompiledPlim):
            copts = model.compiler_options()
        else:
            copts = CompilerOptions(fix_output_polarity=False)
    program = PlimCompiler(copts).compile(best)
    final = model.measure(best, cache=cache)
    return CostLoopResult(
        mig=best,
        program=program,
        model=model.name,
        steps=tuple(steps),
        iterations=rounds,
        converged=converged,
        baseline=dict(steps[0].metrics),
        final=dict(final.metrics),
        seconds=time.perf_counter() - start,
    )


def rewrite_depth(mig: Mig, effort: int = 4, engine: str = "worklist") -> Mig:
    """Depth-oriented MIG rewriting (Ω.A critical-path swaps + Ω.M).

    The companion RRAM-synthesis paper (Shirinzadeh et al., DATE'16 —
    reference [13]) optimizes MIGs for both area and depth; PLiM programs
    are serial so Table 1 only needs area, but depth matters for any
    parallel in-memory target.  Convenience wrapper for
    ``rewrite_for_plim(mig, RewriteOptions(objective="depth"))``; pass
    ``engine="rebuild"`` for the original pass-pipeline oracle.
    Function-preserving and never size-increasing beyond the Ω.A
    reshaping itself.

    Example — a late-arriving signal is swapped off the critical path:

        >>> from repro import Mig, rewrite_depth
        >>> from repro.mig.analysis import depth
        >>> m = Mig()
        >>> a, b, c, d, e, f = (m.add_pi(n) for n in "abcdef")
        >>> deep = m.add_maj(a, b, c)                       # level 1
        >>> _ = m.add_po(m.add_maj(f, d, m.add_maj(e, d, deep)), "y")
        >>> depth(m), depth(rewrite_depth(m))
        (3, 2)
    """
    return rewrite_for_plim(
        mig, RewriteOptions(effort=effort, engine=engine, objective="depth")
    )


def pass_inverter_cost_aware(mig: Mig, po_negation_cost: int = 0) -> Mig:
    """Ω.I(R→L)(1–3): benefit-checked complement pushes, PIs→POs order.

    For every gate with ≥2 complemented non-constant children, compare the
    translation cost of the gate and its fanout targets with and without
    replacing the gate by its complement.  The decision is greedy in
    topological order: flips already decided for earlier nodes are exact,
    later siblings are estimated at their current polarity.
    """
    # Parent edges (parent, child_slot) and PO polarities from the input graph.
    parent_edges: dict[int, list[tuple[int, int]]] = {v: [] for v in mig.nodes()}
    for p in mig.gates():
        for slot, child in enumerate(mig.children(p)):
            if not child.is_const:
                parent_edges[child.node].append((p, slot))
    po_polarity: dict[int, list[bool]] = {}
    for po in mig.pos():
        if not po.is_const:
            po_polarity.setdefault(po.node, []).append(po.inverted)

    flipped: dict[int, bool] = {}
    extra_cost = negation_cost

    def parent_profile(p: int) -> tuple[int, bool]:
        """Parent's complemented-child count under current flip decisions."""
        complemented = 0
        has_const = False
        for child in mig.children(p):
            if child.is_const:
                has_const = True
                continue
            polarity = child.inverted ^ flipped.get(child.node, False)
            complemented += polarity
        return complemented, has_const

    def gate_fn(new: Mig, old: int, mapped):
        num_nonconst, complemented, has_const = complement_profile(mapped)
        if complemented < 2:
            return new.add_maj(*mapped)
        # Cost at this node if we flip: complements become k - c.
        delta = extra_cost(num_nonconst - complemented, has_const) - extra_cost(
            complemented, has_const
        )
        # Cost at each fanout target: its edge to us toggles polarity.
        for p, slot in parent_edges[old]:
            c_p, const_p = parent_profile(p)
            edge = mig.children(p)[slot]
            currently_inverted = edge.inverted ^ flipped.get(old, False)
            c_p_flipped = c_p + (-1 if currently_inverted else 1)
            delta += extra_cost(c_p_flipped, const_p) - extra_cost(c_p, const_p)
        # Complemented primary outputs (only charged in honest mode).
        if po_negation_cost:
            for inverted in po_polarity.get(old, ()):
                delta += po_negation_cost * (-1 if inverted else 1)
        if delta <= 0:
            flipped[old] = True
            return ~new.add_maj(*(~s for s in mapped))
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    return new
