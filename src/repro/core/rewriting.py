"""MIG rewriting for the PLiM architecture (paper §4.1, Algorithm 1).

Two engines implement the algorithm:

* ``engine="worklist"`` (the default) — an in-place, worklist-driven
  sweep over one mutable graph: each effort cycle seeds every live gate in
  topological order, applies the Ω rule sequence locally through
  :meth:`~repro.mig.graph.Mig.replace_node`, and re-enqueues only the
  fan-in/fan-out cone a rule touched.  The fixed-point signature is
  maintained incrementally (O(1) per check), and dead-node compaction is
  deferred to a single final cleanup;
* ``engine="rebuild"`` — the original pass pipeline in which every Ω pass
  is a full :meth:`~repro.mig.graph.Mig.rebuild` (one effort cycle copies
  the whole MIG ~8 times).  Kept as the differential-testing oracle.

Each effort cycle applies, in the paper's order:

1. ``Ω.M`` — majority-rule node elimination,
2. ``Ω.D(R→L)`` — distributivity right-to-left (removes one node),
3. ``Ω.A; Ω.C`` — associativity/commutativity reshaping,
4. ``Ω.M; Ω.D(R→L)`` — elimination again on the reshaped graph,
5. ``Ω.I(R→L)(1–3)`` — *cost-aware* inverter propagation: a gate with two
   or three complemented children is replaced by its complement (pushing
   one inversion onto each fanout edge) when the local cost balance —
   fewer negations here vs. possibly more at the fanout targets — does not
   get worse ("transferring a complemented edge can be also unfavorable if
   the target node already has a single complemented edge"),
6. ``Ω.I(R→L)`` — a final unconditional sweep "to ensure the most costly
   case is eliminated".

The cost balance uses the §4.2.2-derived model in :mod:`repro.core.cost`:
one missing/extra negation is two instructions and one RRAM.  Complemented
primary outputs are free in the paper's accounting; when the compiler runs
with ``fix_output_polarity`` they cost 2 instructions each, which
``RewriteOptions.po_negation_cost`` feeds into the balance.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # import cycle: cache deserialization reaches back here
    from repro.core.cache import SynthesisCache

from repro.core.cost import NEGATION_INSTRUCTIONS, estimate_instructions, negations_needed
from repro.errors import MigError, ReproError
from repro.mig.algebra import (
    flip_complement,
    pass_associativity,
    pass_associativity_depth,
    pass_commutativity,
    pass_complementary_associativity,
    pass_distributivity_rl,
    pass_majority,
    pass_push_inverters,
    try_associativity,
    try_associativity_depth,
    try_complementary_associativity,
    try_distributivity_rl,
    try_majority,
    try_push_inverters,
)
from repro.mig.analysis import complement_stats, depth
from repro.mig.graph import Mig
from repro.mig.signal import Signal


@dataclass(frozen=True)
class RewriteOptions:
    """Knobs of Algorithm 1 (all fields have sensible defaults).

    Example:

        >>> from repro import RewriteOptions
        >>> RewriteOptions().objective, RewriteOptions().engine
        ('size', 'worklist')
        >>> RewriteOptions(objective="size", depth_budget=12).depth_budget
        12
    """

    #: number of rewriting cycles (the paper's experiments use 4)
    effort: int = 4
    #: cost charged per complemented primary output (0 = paper accounting)
    po_negation_cost: int = 0
    #: skip size rules (Ω.M/Ω.D/Ω.A/Ω.C) — inverter propagation only
    size_rules: bool = True
    #: skip inverter propagation — size rules only
    inverter_rules: bool = True
    #: stop early once a cycle reaches a fixed point
    early_exit: bool = True
    #: also apply the derived Ψ.A rule (complementary associativity) in the
    #: reshaping step — not part of the paper's Algorithm 1, but part of
    #: the MIG algebra's derived rule set and strictly size-safe
    use_psi: bool = False
    #: "worklist" (in-place, incremental — the default) or "rebuild" (the
    #: original whole-graph pass pipeline, kept as the oracle)
    engine: str = "worklist"
    #: optimization target: "size" (the paper's Algorithm 1 — serial PLiM
    #: programs only care about node count), "depth" (critical-path Ω.A
    #: swaps only — parallel in-memory targets), or "balanced" (interleave
    #: size and depth effort cycles until a joint fixed point)
    objective: str = "size"
    #: hard depth ceiling for size rewriting (worklist engine only): size
    #: rules reject any candidate that could push a primary-output level
    #: past the budget, so ``objective="size"``/``"balanced"`` can shrink
    #: the graph without deepening it beyond ``depth_budget`` levels.
    #: ``None`` (the default) places no ceiling.  A budget below the input
    #: MIG's depth is infeasible and raises
    #: :class:`~repro.errors.MigError`.
    depth_budget: Optional[int] = None


ENGINES = ("worklist", "rebuild")
OBJECTIVES = ("size", "depth", "balanced")


def rewrite_for_plim(
    mig: Mig,
    options: Optional[RewriteOptions] = None,
    *,
    cache: "Optional[SynthesisCache]" = None,
) -> Mig:
    """Run MIG rewriting on ``mig`` and return the rewritten MIG.

    ``options.objective`` picks the target: ``"size"`` is the paper's
    Algorithm 1, ``"depth"`` the critical-path rewriter, ``"balanced"``
    the interleaved multi-objective loop.  ``options.depth_budget`` puts a
    hard depth ceiling under size rewriting (worklist engine only; a
    budget below the input's depth raises
    :class:`~repro.errors.MigError`).  ``mig`` itself is never modified,
    whichever engine and objective run.

    ``cache`` is an optional :class:`~repro.core.cache.SynthesisCache`:
    the result is memoized under ``(mig.fingerprint(), options)``, so a
    repeated rewrite of a structurally identical input — regardless of its
    gate-creation order — is a lookup instead of a recomputation.

    Example — ``⟨a b ⟨a b c⟩⟩`` collapses to ``⟨a b c⟩`` (Ω.A + Ω.M),
    with or without a depth budget:

        >>> from repro import Mig, RewriteOptions, rewrite_for_plim
        >>> m = Mig()
        >>> a, b, c = m.add_pi("a"), m.add_pi("b"), m.add_pi("c")
        >>> _ = m.add_po(m.add_maj(a, b, m.add_maj(a, b, c)), "f")
        >>> m.num_gates, rewrite_for_plim(m).num_gates
        (2, 1)
        >>> rewrite_for_plim(m, RewriteOptions(depth_budget=2)).num_gates
        1
    """
    opts = options if options is not None else RewriteOptions()
    if opts.engine not in ENGINES:
        raise ReproError(
            f"unknown rewrite engine {opts.engine!r}; expected one of {ENGINES}"
        )
    if opts.objective not in OBJECTIVES:
        raise ReproError(
            f"unknown rewrite objective {opts.objective!r}; "
            f"expected one of {OBJECTIVES}"
        )
    if opts.depth_budget is not None:
        if opts.depth_budget < 0:
            raise ReproError(
                f"depth_budget must be non-negative, got {opts.depth_budget}"
            )
        if opts.engine != "worklist":
            raise ReproError(
                "depth_budget requires engine='worklist' (the rebuild "
                "oracle has no incremental level maintenance to gate on)"
            )
        if opts.objective == "depth":
            raise ReproError(
                "depth_budget applies to the 'size' and 'balanced' "
                "objectives; objective='depth' already minimizes depth"
            )
    fingerprint = None
    if cache is not None:
        fingerprint = mig.fingerprint()
        hit = cache.get_rewrite(fingerprint, opts)
        if hit is not None:
            return hit
    if opts.objective == "size":
        if opts.engine == "worklist":
            result = _rewrite_worklist(mig, opts)
        else:
            result = _rewrite_rebuild(mig, opts)
    elif opts.engine == "worklist":
        result = _rewrite_objective_worklist(mig, opts)
    else:
        result = _rewrite_objective_rebuild(mig, opts)
    if cache is not None:
        cache.put_rewrite(fingerprint, opts, result)
    return result


def _size_cycle_rebuild(mig: Mig, opts: RewriteOptions) -> Mig:
    """One Algorithm 1 effort cycle as whole-graph rebuild passes."""
    if opts.size_rules:
        mig = pass_majority(mig)  # Ω.M
        mig = pass_distributivity_rl(mig)  # Ω.D(R→L)
        mig = pass_associativity(mig)  # Ω.A
        if opts.use_psi:
            mig = pass_complementary_associativity(mig)  # Ψ.A
        mig = pass_commutativity(mig)  # Ω.C
        mig = pass_majority(mig)  # Ω.M
        mig = pass_distributivity_rl(mig)  # Ω.D(R→L)
    if opts.inverter_rules:
        mig = pass_inverter_cost_aware(mig, opts.po_negation_cost)  # Ω.I(R→L)(1–3)
        mig = pass_push_inverters(mig, threshold=3)  # Ω.I(R→L): worst case only
    return mig


def _rewrite_rebuild(mig: Mig, opts: RewriteOptions) -> Mig:
    """The original pass pipeline: every Ω pass is a full graph rebuild."""
    for _cycle in range(opts.effort):
        before = _signature(mig)
        mig = _size_cycle_rebuild(mig, opts)
        if opts.early_exit and _signature(mig) == before:
            break
    # Inverter propagation may have changed which children are complemented;
    # restore the translation-friendly child order for child-order consumers.
    mig = pass_commutativity(mig)
    return mig


def _signature(mig: Mig) -> tuple:
    """Cheap fixed-point detector for the effort loop (full traversal)."""
    return (mig.num_gates, complement_stats(mig).by_count, estimate_instructions(mig))


# ----------------------------------------------------------------------
# the worklist engine
# ----------------------------------------------------------------------


def _rewrite_worklist(mig: Mig, opts: RewriteOptions) -> Mig:
    """Algorithm 1 as one incremental sweep per effort cycle.

    Works on a private dead-free copy of ``mig`` with in-place maintenance
    enabled; one final cleanup compacts the tombstones and restores a
    creation-order index, and the closing Ω.C pass restores the
    translation-friendly child order exactly like the rebuild engine.
    """
    work, _ = mig.rebuild()  # private copy; also the initial Ω.M cleanup
    work.enable_inplace()
    if opts.depth_budget is not None:
        work.enable_levels()
        _check_budget_feasible(work, opts.depth_budget)
    for _cycle in range(opts.effort):
        # Cycle 0 measures the fixed point against the *raw* input, exactly
        # like the rebuild engine: a first cycle that only cleans up or
        # reshapes (no count change against the cleaned graph) must not
        # exit early, because reshaping feeds the next cycle's Ω.D.
        before = _signature(mig) if _cycle == 0 else _inplace_signature(work)
        _size_cycle_worklist(work, opts)
        if opts.early_exit and _inplace_signature(work) == before:
            break
    # Inverter propagation may have changed which children are complemented;
    # restore the translation-friendly child order (Ω.C) in place, then
    # compact the tombstones with the single final cleanup.
    _sweep_commutativity(work)
    final, _ = work.rebuild()
    return final


def _check_budget_feasible(work: Mig, depth_budget: int) -> None:
    """Raise :class:`MigError` when ``work`` already violates the budget.

    Size rules can only *keep* PO levels under the ceiling — they cannot
    drive an over-budget graph back under it — so a budget below the
    (cleaned) input's depth is rejected up front.  Callers who need a
    tighter depth first should run ``objective="depth"`` rewriting and
    budget the result (which is what :func:`repro.core.pareto.pareto_sweep`
    does per sweep point).
    """
    current = work.current_depth()
    if current > depth_budget:
        raise MigError(
            f"depth budget {depth_budget} is infeasible: the input MIG has "
            f"depth {current}; rewrite with objective='depth' first or "
            f"raise the budget"
        )


def _inplace_signature(mig: Mig) -> tuple:
    """O(1) counterpart of :func:`_signature` for in-place graphs.

    Same (gate count, complement histogram, instruction estimate) triple,
    but read from the incrementally maintained counters instead of a full
    traversal.
    """
    num_gates, hist, zero_comp_no_const = mig.inplace_signature()
    estimate = num_gates + NEGATION_INSTRUCTIONS * (
        hist[2] + 2 * hist[3] + zero_comp_no_const
    )
    return (num_gates, hist, estimate)


def _size_cycle_worklist(work: Mig, opts: RewriteOptions) -> None:
    """One Algorithm 1 effort cycle as in-place worklist sweeps."""
    if opts.size_rules:
        _worklist_size_sweep(work, opts)
    if opts.inverter_rules:
        _sweep_inverters_cost_aware(work, opts.po_negation_cost)
        _sweep_push_inverters(work, threshold=3)


def _worklist_size_sweep(work: Mig, opts: RewriteOptions) -> None:
    """One size-rule cycle: the paper's Ω.M; Ω.D; Ω.A[; Ψ.A]; Ω.C; Ω.M; Ω.D.

    Each phase is a worklist that seeds every live gate in topological
    order, applies its rule locally, and re-enqueues only the nodes a
    rewrite touched (Ω.M and structural-hash merging additionally cascade
    inside ``replace_node``, so every phase is also an Ω.M pass).  Keeping
    the rebuild pipeline's phase order — all Ω.D applications before any
    Ω.A reshaping, with the Ω.C reorder in between — keeps the two engines'
    search order, and therefore their results, closely aligned.

    With ``opts.depth_budget`` set (level-maintained graphs only), every
    phase gates its candidates so no primary-output level can exceed the
    budget — size rewriting under a hard depth ceiling.
    """
    budget = opts.depth_budget
    _worklist_phase(work, (try_majority, try_distributivity_rl), depth_budget=budget)
    reshaping = [try_associativity]
    if opts.use_psi:
        reshaping.append(try_complementary_associativity)
    _worklist_phase(work, tuple(reshaping), depth_budget=budget)
    # The reshaping rules keep rejected candidates as speculative
    # zero-fanout gates (they seed sharing like a pass's abandoned nodes);
    # sweep them at the phase boundary, like a pass's trailing rebuild.
    work.collect_unused()
    _sweep_commutativity(work)
    _worklist_phase(work, (try_majority, try_distributivity_rl), depth_budget=budget)


def _worklist_phase(
    work: Mig,
    rules: tuple,
    revisit: bool = False,
    depth_budget: Optional[int] = None,
) -> None:
    """Run one rule family over a worklist seeded with all live gates.

    With ``revisit=False`` (the pass-faithful default) every seed is
    visited once, like one rebuild pass: merge/collapse cascades still run
    inside ``replace_node``, and follow-up opportunities are picked up by
    the next phase or cycle.  ``revisit=True`` re-enqueues the affected
    cone until a local fixed point — more eager, but the greedier search
    order can land in different (not reliably better) local optima, so the
    engine keeps it off to stay aligned with the rebuild oracle.  A step
    budget bounds pathological reshaping loops either way (Ω.A is
    size-neutral, so a cycle of free swaps could otherwise ping-pong).
    """
    queue = deque(work.topo_gates())
    queued = set(queue)
    fanouts = work.fanout_snapshot()
    budget = 20 * len(work) + 1000
    while queue and budget > 0:
        budget -= 1
        v = queue.popleft()
        queued.discard(v)
        if not work.is_gate(v):
            continue
        for rule in rules:
            affected = rule(work, v, fanouts, depth_budget)
            # A rule can fire and still report an empty affected set (the
            # replacement is a literal and ``v`` was read only by POs, so
            # no gate's children changed); ``v`` is tombstoned then, and
            # the next rule must not run on the dead node.
            if affected or not work.is_gate(v):
                break
        if revisit:
            for u in affected:
                if u not in queued and work.is_gate(u):
                    queue.append(u)
                    queued.add(u)


def _sweep_commutativity(work: Mig) -> None:
    """In-place Ω.C: per-gate slot permutation, same scoring and canonical
    tie-breaking as :func:`~repro.mig.algebra.pass_commutativity`.

    Purely a stored-order change (the strash key is order-insensitive), so
    no worklist is needed — one linear sweep suffices.
    """
    from repro.mig.algebra import (
        SLOT_SCORES_CONST,
        SLOT_SCORES_INVERTED,
        SLOT_SCORES_PLAIN,
        SLOT_SCORES_PLAIN_SINGLE_GATE,
        _best_permutation,
        structural_keys,
    )

    keys = structural_keys(work)
    # bound once: this sweep is a hot path (encoding views work on both
    # the array core and the DictMig reference core)
    ca, cb, cc = work._ca, work._cb, work._cc
    refs = work._refs
    for v in list(work.topo_gates()):
        ea = ca[v]
        if ea < 0:
            continue
        triple = (Signal(ea), Signal(cb[v]), Signal(cc[v]))
        scores = []
        child_keys = []
        for child in triple:
            encoding = int(child)
            n = encoding >> 1
            child_keys.append(keys[n])
            if n == 0:
                scores.append(SLOT_SCORES_CONST)
            elif encoding & 1:
                scores.append(SLOT_SCORES_INVERTED)
            elif ca[n] >= 0 and refs[n] == 1:
                scores.append(SLOT_SCORES_PLAIN_SINGLE_GATE)
            else:
                scores.append(SLOT_SCORES_PLAIN)
        a, b, z = _best_permutation(scores, triple, child_keys)
        new_triple = (triple[a], triple[b], triple[z])
        if new_triple != triple:
            work.reorder_children(v, new_triple)


def _sweep_inverters_cost_aware(work: Mig, po_negation_cost: int = 0) -> None:
    """In-place Ω.I(R→L)(1–3): benefit-checked flips, children before parents.

    The same greedy decision as :func:`pass_inverter_cost_aware`: flips
    already applied to earlier (topologically lower) nodes are exact, later
    siblings are estimated at their current polarity — which is simply the
    current in-place state.
    """

    def extra_cost(num_complemented: int, has_const: bool) -> int:
        return NEGATION_INSTRUCTIONS * negations_needed(num_complemented, has_const)

    order = list(work.topo_gates())
    position = {v: i for i, v in enumerate(order)}
    evicted: set[int] = set()
    ca, cb, cc = work._ca, work._cb, work._cc  # encoding views, hot sweep
    for v in order:
        if ca[v] < 0:  # replaced by an earlier flip's cascade
            continue
        enc = (ca[v], cb[v], cc[v])
        num_nonconst = sum(1 for e in enc if e >= 2)
        complemented = sum(1 for e in enc if e >= 2 and e & 1)
        has_const = num_nonconst < 3
        flip = False
        if complemented >= 2:
            # Cost at this node if we flip: complements become k - c.
            delta = extra_cost(num_nonconst - complemented, has_const) - extra_cost(
                complemented, has_const
            )
            # Cost at each fanout target: its edge to us toggles polarity.
            for p in work.parents_of_node(v):
                pe = (ca[p], cb[p], cc[p])
                c_p, const_p = Mig._profile_enc(*pe)
                for edge in pe:
                    if edge >> 1 == v:
                        c_p_flipped = c_p + (-1 if edge & 1 else 1)
                        delta += extra_cost(c_p_flipped, const_p) - extra_cost(
                            c_p, const_p
                        )
            # Complemented primary outputs (only charged in honest mode).
            if po_negation_cost:
                for po in work.po_edges_of(v):
                    delta += po_negation_cost * (-1 if po.inverted else 1)
            flip = delta <= 0
        _visit_for_flip(work, v, flip, position, evicted)


def _sweep_push_inverters(work: Mig, threshold: int) -> None:
    """In-place unconditional Ω.I(R→L) sweep (:func:`try_push_inverters`)."""
    order = list(work.topo_gates())
    position = {v: i for i, v in enumerate(order)}
    evicted: set[int] = set()
    ca, cb, cc = work._ca, work._cb, work._cc  # encoding views, hot sweep
    for v in order:
        if ca[v] < 0:
            continue
        inverted_nonconst = sum(
            1 for e in (ca[v], cb[v], cc[v]) if e >= 2 and e & 1
        )
        _visit_for_flip(work, v, inverted_nonconst >= threshold, position, evicted)


def _visit_for_flip(
    work: Mig,
    v: int,
    flip: bool,
    position: dict[int, int],
    evicted: set[int],
) -> None:
    """Apply (or skip) one flip with a rebuild pass's merge order.

    A rebuild pass re-creates every gate in order, so when a flip's new
    key matches a gate that the pass has *not reached yet*, the flipped
    node is created fresh and the stale gate merges into it later, at its
    own position.  In place that means: evict the stale owner from the
    strash before flipping, and re-hash every evicted gate when its turn
    comes (merging it into whichever node now owns its key).
    """
    if flip:
        a, b, c = work.children(v)
        owner = work.strash_owner(~a, ~b, ~c)
        if (
            owner is not None
            and work.is_gate(owner)
            and position.get(owner, -1) > position[v]
        ):
            work.evict_strash(owner)
            evicted.add(owner)
        flip_complement(work, v)
    elif v in evicted:
        evicted.discard(v)
        work.rehash_node(v)


# ----------------------------------------------------------------------
# depth and balanced objectives (the multi-objective synthesis loop)
# ----------------------------------------------------------------------


def _rewrite_objective_rebuild(mig: Mig, opts: RewriteOptions) -> Mig:
    """Depth/balanced objectives on the rebuild pass pipeline (the oracle).

    ``objective="depth"`` is the original one-shot ``rewrite_depth``
    semantics: iterate ``pass_associativity_depth`` + Ω.M, accept only
    strictly depth-improving rounds.  ``objective="balanced"`` interleaves
    one full Algorithm 1 size cycle with one depth cycle per round until
    the joint (size signature, depth) fixed point — the depth cycle runs
    *after* the size cycle so area reshaping cannot undo the depth gains.
    """
    if opts.objective == "depth":
        best = mig
        best_depth = depth(mig)
        for _ in range(opts.effort):
            candidate = pass_majority(pass_associativity_depth(best))
            candidate_depth = depth(candidate)
            if candidate_depth >= best_depth:
                break
            best, best_depth = candidate, candidate_depth
        return best
    current = mig
    for _cycle in range(opts.effort):
        before = (_signature(current), depth(current))
        current = _size_cycle_rebuild(current, opts)
        current = pass_majority(pass_associativity_depth(current))
        if opts.early_exit and (_signature(current), depth(current)) == before:
            break
    # restore the translation-friendly child order, like the size engine
    return pass_commutativity(current)


def _rewrite_objective_worklist(mig: Mig, opts: RewriteOptions) -> Mig:
    """Depth/balanced objectives on the in-place worklist engine.

    One private dead-free copy with incremental level maintenance
    (:meth:`~repro.mig.graph.Mig.enable_levels`), so every depth query
    during the sweep reads maintained levels instead of traversing the
    graph.  Each effort cycle runs (balanced only) one Algorithm 1 size
    cycle, then one depth phase of local
    :func:`~repro.mig.algebra.try_associativity_depth` moves; the loop
    stops at the joint (signature, depth) fixed point.  Depth is
    monotonically non-increasing across the depth phases: every local
    move strictly lowers the rewritten node's level and can raise no
    other node's.
    """
    work = _private_clean_copy(mig)
    work.enable_inplace()
    # drop unreachable cones a clone carried over (rebuild() parity)
    work.collect_unused()
    work.enable_levels()
    if opts.depth_budget is not None:
        _check_budget_feasible(work, opts.depth_budget)
    edits_at_start = work.edit_count
    balanced = opts.objective == "balanced"
    for _cycle in range(opts.effort):
        before_sig = _inplace_signature(work)
        before_depth = work.current_depth()
        if balanced:
            _size_cycle_worklist(work, opts)
        _worklist_phase(work, (try_associativity_depth,))
        work.collect_unused()
        if balanced:
            # joint fixed point: neither objective moved this cycle
            if opts.early_exit and (
                _inplace_signature(work),
                work.current_depth(),
            ) == (before_sig, before_depth):
                break
        elif work.current_depth() >= before_depth:
            # pure depth mirrors the oracle's strict-improvement rule:
            # stop as soon as a cycle fails to lower the global depth
            # (already-applied local moves are harmless — depth is
            # monotonically non-increasing under the rule)
            break
    if balanced:
        # restore the translation-friendly child order, like the size engine
        _sweep_commutativity(work)
    if work.edit_count == edits_at_start:
        return work  # no structural edits: the private copy is already clean
    final, _ = work.rebuild()
    return final


def _private_clean_copy(mig: Mig) -> Mig:
    """A private, Ω.M-simplified copy of ``mig`` for in-place rewriting.

    ``rebuild()`` is the safe default (it drops tombstones and re-simplifies
    every gate); an input that is verifiably clean already — append-only, no
    tombstones, no trivially reducible gate — is
    :meth:`~repro.mig.graph.Mig.clone`-copied instead, which skips the whole
    per-gate re-hash.  Unreachable cones a clone carries over are swept by
    the caller with ``collect_unused()`` once in-place maintenance is on.
    """
    if not mig.is_append_clean():
        return mig.rebuild()[0]
    return mig.clone()


def rewrite_depth(mig: Mig, effort: int = 4, engine: str = "worklist") -> Mig:
    """Depth-oriented MIG rewriting (Ω.A critical-path swaps + Ω.M).

    The companion RRAM-synthesis paper (Shirinzadeh et al., DATE'16 —
    reference [13]) optimizes MIGs for both area and depth; PLiM programs
    are serial so Table 1 only needs area, but depth matters for any
    parallel in-memory target.  Convenience wrapper for
    ``rewrite_for_plim(mig, RewriteOptions(objective="depth"))``; pass
    ``engine="rebuild"`` for the original pass-pipeline oracle.
    Function-preserving and never size-increasing beyond the Ω.A
    reshaping itself.

    Example — a late-arriving signal is swapped off the critical path:

        >>> from repro import Mig, rewrite_depth
        >>> from repro.mig.analysis import depth
        >>> m = Mig()
        >>> a, b, c, d, e, f = (m.add_pi(n) for n in "abcdef")
        >>> deep = m.add_maj(a, b, c)                       # level 1
        >>> _ = m.add_po(m.add_maj(f, d, m.add_maj(e, d, deep)), "y")
        >>> depth(m), depth(rewrite_depth(m))
        (3, 2)
    """
    return rewrite_for_plim(
        mig, RewriteOptions(effort=effort, engine=engine, objective="depth")
    )


def pass_inverter_cost_aware(mig: Mig, po_negation_cost: int = 0) -> Mig:
    """Ω.I(R→L)(1–3): benefit-checked complement pushes, PIs→POs order.

    For every gate with ≥2 complemented non-constant children, compare the
    translation cost of the gate and its fanout targets with and without
    replacing the gate by its complement.  The decision is greedy in
    topological order: flips already decided for earlier nodes are exact,
    later siblings are estimated at their current polarity.
    """
    # Parent edges (parent, child_slot) and PO polarities from the input graph.
    parent_edges: dict[int, list[tuple[int, int]]] = {v: [] for v in mig.nodes()}
    for p in mig.gates():
        for slot, child in enumerate(mig.children(p)):
            if not child.is_const:
                parent_edges[child.node].append((p, slot))
    po_polarity: dict[int, list[bool]] = {}
    for po in mig.pos():
        if not po.is_const:
            po_polarity.setdefault(po.node, []).append(po.inverted)

    flipped: dict[int, bool] = {}

    def extra_cost(num_complemented: int, has_const: bool) -> int:
        return NEGATION_INSTRUCTIONS * negations_needed(num_complemented, has_const)

    def parent_profile(p: int) -> tuple[int, bool]:
        """Parent's complemented-child count under current flip decisions."""
        complemented = 0
        has_const = False
        for child in mig.children(p):
            if child.is_const:
                has_const = True
                continue
            polarity = child.inverted ^ flipped.get(child.node, False)
            complemented += polarity
        return complemented, has_const

    def gate_fn(new: Mig, old: int, mapped):
        nonconst = [s for s in mapped if not s.is_const]
        complemented = sum(1 for s in nonconst if s.inverted)
        has_const = len(nonconst) < 3
        if complemented < 2:
            return new.add_maj(*mapped)
        # Cost at this node if we flip: complements become k - c.
        delta = extra_cost(len(nonconst) - complemented, has_const) - extra_cost(
            complemented, has_const
        )
        # Cost at each fanout target: its edge to us toggles polarity.
        for p, slot in parent_edges[old]:
            c_p, const_p = parent_profile(p)
            edge = mig.children(p)[slot]
            currently_inverted = edge.inverted ^ flipped.get(old, False)
            c_p_flipped = c_p + (-1 if currently_inverted else 1)
            delta += extra_cost(c_p_flipped, const_p) - extra_cost(c_p, const_p)
        # Complemented primary outputs (only charged in honest mode).
        if po_negation_cost:
            for inverted in po_polarity.get(old, ()):
                delta += po_negation_cost * (-1 if inverted else 1)
        if delta <= 0:
            flipped[old] = True
            return ~new.add_maj(*(~s for s in mapped))
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    return new
