"""The PLiM compiler: Algorithm 2 of the paper.

The compilation loop maintains ``COMP[v]`` (has node ``v`` been computed?)
and a queue of *candidates* — gates whose children are all computed.  Each
iteration pops the best candidate, translates it into RM3 instructions
(§4.2.2), marks it computed, and enqueues any parents that became ready.

:class:`CompilerOptions` selects between the paper's optimizing
configuration and the baselines used in the evaluation:

* ``CompilerOptions()`` — the full compiler: priority-queue scheduling,
  case-based operand selection, complement caching, FIFO allocation.
* ``CompilerOptions.naive()`` — the §3 baseline: index-order scheduling and
  child-order operand selection with no complement caching.
* ``CompilerOptions.no_selection()`` — only the candidate-selection scheme
  disabled (the literal reading of the Table 1 baseline): index order but
  smart per-node translation.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Optional

from repro.core.allocator import POLICIES, RramAllocator
from repro.core.schedule import make_scheduler, make_scheduler_fast
from repro.core.translate import CONSUMED, TranslationState, translate_node
from repro.core.translate_fast import FastTranslationState, translate_node_fast
from repro.errors import CompilationError
from repro.mig.context import AnalysisContext
from repro.mig.graph import _GATE, Mig
from repro.plim.program import Program


def _program_cost(program: Program) -> tuple[int, int]:
    """Ranking for ``reorder="best"``: fewest work RRAMs, then fewest
    instructions."""
    return (program.num_rrams, program.num_instructions)

SCHEDULING_MODES = ("priority", "index")
OPERAND_MODES = ("cases", "child_order")
IMPLEMENTATIONS = ("fast", "object")


@dataclass(frozen=True)
class CompilerOptions:
    """Configuration knobs of the compiler (see module docstring)."""

    scheduling: str = "priority"
    operand_selection: str = "cases"
    complement_caching: bool = True
    allocator_policy: str = "fifo"
    #: True: complemented outputs are inverted into a cell (2 extra
    #: instructions each); False: the paper's accounting — outputs may rest
    #: in complemented form, flagged in the program's output contract.
    fix_output_polarity: bool = True
    #: drop dead gates before compiling (node indices are then re-packed)
    clean: bool = True
    #: pre-ordering pass: "dfs" re-indexes gates in PO-driven depth-first
    #: postorder before scheduling, making cell liveness independent of the
    #: input file's gate order; "none" keeps the given order (the naïve
    #: baseline translates in as-given index order, like the paper's);
    #: "best" (default) compiles under both orders and keeps the program
    #: with fewer work RRAMs — DFS wins on hostile orders, the as-given
    #: order can win when the builder interleaved shared consumers.
    reorder: str = "best"
    #: candidate-selection rule toggles (ablation X5).  The paper's
    #: comparator is releasing → levels → index; on creation-ordered MIGs
    #: the level rule degrades liveness badly (it digs breadth-first along
    #: the lowest parent-level frontier), so the default uses principle (i)
    #: with dynamic refresh only.  ``unblocking_rule`` is this package's
    #: one-step lookahead extension of principle (i).
    unblocking_rule: bool = False
    level_rule: bool = False
    #: hard budget on distinct work RRAMs (#R); None = unlimited.  Under
    #: pressure, cached complements are evicted and recomputed on demand
    #: (the paper's future-work item: "constraints in the optimization,
    #: e.g., a limited number of RRAMs").  Infeasible budgets raise
    #: CompilationError.
    max_work_cells: "Optional[int]" = None
    #: which Algorithm 2 engine runs: "fast" (default) works on raw child
    #: encodings with array-backed per-node state and lazy comments;
    #: "object" is the original Signal/dict/Operand path, kept verbatim as
    #: the differential oracle.  Both emit byte-identical programs
    #: (tests/test_compile_fast_differential.py, BENCH_plim_compile.json).
    implementation: str = "fast"

    @classmethod
    def paper_selection(cls, **overrides) -> "CompilerOptions":
        """The literal §4.2.1 comparator: releasing, then parent levels."""
        base = cls(level_rule=True)
        return replace(base, **overrides)

    def __post_init__(self):
        if self.scheduling not in SCHEDULING_MODES:
            raise CompilationError(
                f"unknown scheduling {self.scheduling!r}; expected one of {SCHEDULING_MODES}"
            )
        if self.operand_selection not in OPERAND_MODES:
            raise CompilationError(
                f"unknown operand selection {self.operand_selection!r}; "
                f"expected one of {OPERAND_MODES}"
            )
        if self.allocator_policy not in POLICIES:
            raise CompilationError(
                f"unknown allocator policy {self.allocator_policy!r}; "
                f"expected one of {POLICIES}"
            )
        if self.reorder not in ("none", "dfs", "best"):
            raise CompilationError(
                f"unknown reorder mode {self.reorder!r}; "
                "expected 'none', 'dfs', or 'best'"
            )
        if self.implementation not in IMPLEMENTATIONS:
            raise CompilationError(
                f"unknown implementation {self.implementation!r}; "
                f"expected one of {IMPLEMENTATIONS}"
            )

    @classmethod
    def naive(cls, **overrides) -> "CompilerOptions":
        """The §3 baseline translator."""
        base = cls(
            scheduling="index",
            operand_selection="child_order",
            complement_caching=False,
            reorder="none",
        )
        return replace(base, **overrides)

    @classmethod
    def no_selection(cls, **overrides) -> "CompilerOptions":
        """Only candidate selection disabled (Table 1's literal baseline)."""
        base = cls(scheduling="index", reorder="none")
        return replace(base, **overrides)


class PlimCompiler:
    """Compiles MIGs into PLiM programs (paper Algorithm 2)."""

    def __init__(self, options: Optional[CompilerOptions] = None):
        self.options = options if options is not None else CompilerOptions()
        self._timings = {"schedule_seconds": 0.0, "translate_seconds": 0.0}

    @property
    def last_timings(self) -> dict[str, float]:
        """Per-stage wall-clock of the most recent :meth:`compile` call.

        ``schedule_seconds`` covers graph preparation (cleanup, reorder,
        cached analyses) plus candidate-scheduler construction;
        ``translate_seconds`` covers the translation loop and output
        fix-up.  With ``reorder="best"`` both compilations are included.
        """
        return dict(self._timings)

    def compile(self, mig: Mig, context: Optional[AnalysisContext] = None) -> Program:
        """Translate ``mig`` into an executable :class:`Program`.

        Pass the same :class:`AnalysisContext` to repeated calls on one MIG
        (e.g. when sweeping option sets) and the per-order structural
        analyses — cleanup, DFS reorder, parents, levels, use counts — are
        computed once and shared across all of them.
        """
        self._timings = {"schedule_seconds": 0.0, "translate_seconds": 0.0}
        start = perf_counter()
        ctx = AnalysisContext.of(mig, context)
        if self.options.clean:
            ctx = ctx.cleaned()
        if self.options.reorder in ("dfs", "best"):
            dfs_ctx = ctx.reordered_dfs()
        self._timings["schedule_seconds"] += perf_counter() - start
        if self.options.reorder == "dfs":
            return self._compile_ordered(dfs_ctx)
        if self.options.reorder == "best":
            as_given = self._compile_ordered(ctx)
            dfs = self._compile_ordered(dfs_ctx)
            return dfs if _program_cost(dfs) < _program_cost(as_given) else as_given
        return self._compile_ordered(ctx)

    def _compile_ordered(self, ctx: AnalysisContext) -> Program:
        """Run Algorithm 2 on an MIG whose node order is final."""
        # The fast engine reads the flat-array internals of Mig; duck-typed
        # graphs without them (e.g. the DictMig reference implementation)
        # always take the object path.
        if self.options.implementation == "fast" and hasattr(ctx.mig, "_kind"):
            return self._compile_ordered_fast(ctx)
        return self._compile_ordered_object(ctx)

    def _compile_ordered_fast(self, ctx: AnalysisContext) -> Program:
        """The encoding-level Algorithm 2 loop (same schedule, flat state)."""
        start = perf_counter()
        mig = ctx.mig
        program = Program(
            input_cells={name: i for i, name in enumerate(mig.pi_names())},
            name=mig.name,
        )
        allocator = RramAllocator(
            first_address=mig.num_pis, policy=self.options.allocator_policy
        )
        state = FastTranslationState(
            ctx,
            program,
            allocator,
            complement_caching=self.options.complement_caching,
            max_work_cells=self.options.max_work_cells,
        )
        naive = self.options.operand_selection == "child_order"

        parents = ctx.parents
        n = len(mig)
        ca, cb, cc = mig._ca, mig._cb, mig._cc
        kind = mig._kind
        computed = bytearray(n)
        computed[0] = 1
        for pi in mig.pis():
            computed[pi.node] = 1
        pending = array("q", [0]) * n
        gate_order = ctx.gate_order
        for v in gate_order:
            pending[v] = (
                (not computed[ca[v] >> 1])
                + (not computed[cb[v] >> 1])
                + (not computed[cc[v] >> 1])
            )
        scheduler = make_scheduler_fast(self.options, ctx, state, pending)
        push = scheduler.push
        for v in gate_order:
            if not pending[v]:
                push(v)
        self._timings["schedule_seconds"] += perf_counter() - start

        start = perf_counter()
        translated = 0
        remaining = state.remaining
        pop = scheduler.pop
        refresh = scheduler.refresh
        while len(scheduler):
            v = pop()
            translate_node_fast(state, v, naive=naive)
            computed[v] = 1
            translated += 1
            for parent in parents[v]:
                p = pending[parent] - 1
                pending[parent] = p
                if p == 0:
                    push(parent)
                elif p == 1:
                    # The last missing child of `parent` just became more
                    # attractive (unblocking rule) — re-rank it if queued.
                    for e in (ca[parent], cb[parent], cc[parent]):
                        sibling = e >> 1
                        if not computed[sibling] and sibling in scheduler:
                            refresh(sibling)
            # A child whose remaining uses just dropped to 1 raises the
            # releasing count of its still-queued consumers.
            for e in (ca[v], cb[v], cc[v]):
                child = e >> 1
                if kind[child] == _GATE and remaining[child] == 1:
                    for consumer in parents[child]:
                        if consumer in scheduler:
                            refresh(consumer)
        if translated != mig.num_gates:
            raise CompilationError(
                f"translated {translated} of {mig.num_gates} gates — cyclic or broken MIG"
            )

        self._finalize_outputs_fast(mig, state, program)
        self._timings["translate_seconds"] += perf_counter() - start
        return program

    def _compile_ordered_object(self, ctx: AnalysisContext) -> Program:
        """The original object-path loop — the differential oracle."""
        start = perf_counter()
        mig = ctx.mig
        program = Program(
            input_cells={name: i for i, name in enumerate(mig.pi_names())},
            name=mig.name,
        )
        allocator = RramAllocator(
            first_address=mig.num_pis, policy=self.options.allocator_policy
        )
        state = TranslationState(
            ctx,
            program,
            allocator,
            complement_caching=self.options.complement_caching,
            max_work_cells=self.options.max_work_cells,
        )
        naive = self.options.operand_selection == "child_order"

        parents = ctx.parents

        computed: set[int] = {0}
        for pi in mig.pis():
            computed.add(pi.node)
        pending_children: dict[int, int] = {}
        for v in ctx.gate_order:
            pending_children[v] = sum(
                1 for c in mig.children(v) if c.node not in computed
            )
        scheduler = make_scheduler(self.options, ctx, state, pending_children)
        for v in ctx.gate_order:
            if pending_children[v] == 0:
                scheduler.push(v)
        self._timings["schedule_seconds"] += perf_counter() - start

        start = perf_counter()
        translated = 0
        while len(scheduler):
            v = scheduler.pop()
            translate_node(state, v, naive=naive)
            computed.add(v)
            translated += 1
            for parent in parents[v]:
                pending_children[parent] -= 1
                if pending_children[parent] == 0:
                    scheduler.push(parent)
                elif pending_children[parent] == 1:
                    # The last missing child of `parent` just became more
                    # attractive (unblocking rule) — re-rank it if queued.
                    for sibling in mig.children(parent):
                        if sibling.node not in computed and sibling.node in scheduler:
                            scheduler.refresh(sibling.node)
            # A child whose remaining uses just dropped to 1 raises the
            # releasing count of its still-queued consumers.
            for child in mig.children(v):
                if mig.is_gate(child.node) and state.remaining_uses[child.node] == 1:
                    for consumer in parents[child.node]:
                        if consumer in scheduler:
                            scheduler.refresh(consumer)
        if translated != mig.num_gates:
            raise CompilationError(
                f"translated {translated} of {mig.num_gates} gates — cyclic or broken MIG"
            )

        self._finalize_outputs(mig, state, program)
        self._timings["translate_seconds"] += perf_counter() - start
        return program

    # ------------------------------------------------------------------

    def _finalize_outputs_fast(
        self, mig: Mig, state: FastTranslationState, program: Program
    ) -> None:
        """Encoding-level twin of :meth:`_finalize_outputs`."""
        for po, name in zip(mig.pos(), mig.po_names()):
            if po.is_const:
                address = state.alloc()
                state.emit_set_const(address, po.const_value, target=name)
                program.set_output(name, address)
                continue
            if po.inverted and self.options.fix_output_polarity:
                address = state.materialize_complement(po.node)
                program.set_output(name, address, inverted=False)
                continue
            address = state.value_cell[po.node]
            if address < 0:  # never computed, or consumed by a parent
                raise CompilationError(
                    f"output {name!r} refers to node {po.node} whose cell was lost"
                )
            program.set_output(name, address, inverted=po.inverted)

    def _finalize_outputs(self, mig: Mig, state: TranslationState, program: Program) -> None:
        """Record (and, in honest mode, fix up) every output's location."""
        for po, name in zip(mig.pos(), mig.po_names()):
            if po.is_const:
                address = state.alloc()
                state.emit_set_const(address, po.const_value, target=name)
                program.set_output(name, address)
                continue
            if po.inverted and self.options.fix_output_polarity:
                address = state.materialize_complement(po.node)
                program.set_output(name, address, inverted=False)
                continue
            address = state.value_cell.get(po.node)
            if address is None or address == CONSUMED:
                raise CompilationError(
                    f"output {name!r} refers to node {po.node} whose cell was lost"
                )
            program.set_output(name, address, inverted=po.inverted)
