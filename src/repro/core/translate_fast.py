"""Encoding-level node translation: the array-fast twin of ``translate.py``.

Same case analysis — operand B cases (a)–(h) of Fig. 5, destination Z cases
(a)–(e) of Fig. 6, the operand-A rules, and the naïve §3 child order — but
working directly on the graph core's flat child encodings
(``(node << 1) | complement``) instead of :class:`~repro.mig.signal.Signal`
triples, with the per-node cell / complement-cell / remaining-uses maps held
in ``array('q')`` slabs indexed by node id instead of dicts, and comments
recorded as lazy descriptors on the program spine instead of f-strings.

The decision order, allocation order, eviction order, and emitted
instruction stream (including comments, once rendered) are *identical* to
:mod:`repro.core.translate` — the object path is kept verbatim as the
differential oracle, and ``tests/test_compile_fast_differential.py`` +
``BENCH_plim_compile.json`` hold the two byte-identical across the whole
registry.  Operand encodings reuse the ISA convention
(:func:`repro.plim.isa.encode_operand`): constants 0/1 are ``1``/``3``,
cell ``k`` is ``2k``.
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro.core.allocator import RramAllocator
from repro.errors import CompilationError
from repro.mig.context import AnalysisContext
from repro.mig.graph import _GATE
from repro.plim.isa import ONE_ENC, ZERO_ENC
from repro.plim.program import (
    COMMENT_CELL_CONST,
    COMMENT_CELL_NODE,
    COMMENT_CELL_SIG,
    COMMENT_TARGET_CONST,
    Program,
)

#: sentinel: a node's value cell was overwritten in place by a parent
CONSUMED = -1
#: sentinel: the node has no cell yet (PIs are seeded with their input cell)
NOT_COMPUTED = -2
#: sentinel: no cached complement cell
NO_CELL = -1


class FastTranslationState:
    """Flat-array twin of :class:`repro.core.translate.TranslationState`.

    Per-node state lives in ``array('q')`` columns indexed by node id; the
    insertion-ordered complement-cache mirror ``_compl_order`` is maintained
    only under a work-cell budget, where eviction order (oldest cached
    complement first — dict insertion order in the oracle) is observable.
    """

    __slots__ = (
        "context",
        "mig",
        "program",
        "allocator",
        "complement_caching",
        "max_work_cells",
        "value_cell",
        "compl_cell",
        "remaining",
        "_protected",
        "_pending_temps",
        "_compl_order",
        "_ca",
        "_cb",
        "_cc",
        "_kind",
    )

    def __init__(
        self,
        context: AnalysisContext,
        program: Program,
        allocator: RramAllocator,
        complement_caching: bool = True,
        max_work_cells: Optional[int] = None,
    ):
        mig = context.mig
        self.context = context
        self.mig = mig
        self.program = program
        self.allocator = allocator
        self.complement_caching = complement_caching
        self.max_work_cells = max_work_cells
        n = len(mig)
        self.value_cell = array("q", [NOT_COMPUTED]) * n
        self.compl_cell = array("q", [NO_CELL]) * n
        remaining = array("q", [0]) * n
        for node, uses in context.use_counts.items():
            remaining[node] = uses
        self.remaining = remaining
        self._protected: set[int] = set()
        self._pending_temps: list[int] = []
        self._compl_order: Optional[dict[int, int]] = (
            {} if max_work_cells is not None else None
        )
        self._ca = mig._ca
        self._cb = mig._cb
        self._cc = mig._cc
        self._kind = mig._kind
        pi_node_names: dict[int, str] = {}
        input_cells = program.input_cells
        for pi, name in zip(mig.pis(), mig.pi_names()):
            self.value_cell[pi.node] = input_cells[name]
            pi_node_names[pi.node] = name
        program.pi_node_names = pi_node_names

    # ------------------------------------------------------------------
    # allocation / eviction (mirrors TranslationState.alloc)
    # ------------------------------------------------------------------

    def alloc(self) -> int:
        allocator = self.allocator
        if (
            self.max_work_cells is not None
            and allocator.num_free == 0
            and allocator.num_allocated >= self.max_work_cells
        ):
            self._evict_complement_cache()
        address = allocator.request()
        self.program.register_work_cell(address)
        self._protected.add(address)
        return address

    def _evict_complement_cache(self) -> None:
        """Free the oldest unprotected cached complement (or fail)."""
        protected = self._protected
        for node, address in self._compl_order.items():
            if address not in protected:
                del self._compl_order[node]
                self.compl_cell[node] = NO_CELL
                self.allocator.release(address)
                return
        raise CompilationError(
            f"work-cell budget of {self.max_work_cells} exceeded and no "
            "cached complement is evictable; the function needs more RRAMs"
        )

    def alloc_temp(self) -> int:
        address = self.alloc()
        self._pending_temps.append(address)
        return address

    def release_temps(self) -> None:
        for address in self._pending_temps:
            self.allocator.release(address)
        self._pending_temps.clear()

    # ------------------------------------------------------------------
    # emission helpers (lazy-comment variants of the oracle's)
    # ------------------------------------------------------------------

    def emit_set_const(self, address: int, bit: int, target: Optional[str] = None) -> None:
        program = self.program
        if target:
            if bit:
                program.append_encoded(
                    ONE_ENC, ZERO_ENC, address, COMMENT_TARGET_CONST, 0, 1, target
                )
            else:
                program.append_encoded(
                    ZERO_ENC, ONE_ENC, address, COMMENT_TARGET_CONST, 0, 0, target
                )
        elif bit:
            program.append_encoded(
                ONE_ENC, ZERO_ENC, address, COMMENT_CELL_CONST, address, 1
            )
        else:
            program.append_encoded(
                ZERO_ENC, ONE_ENC, address, COMMENT_CELL_CONST, address, 0
            )

    def emit_load(self, address: int, source_enc: int, signal_enc: int) -> None:
        """``X ← source`` (clear, then load); comment ``label <- signal``."""
        self.emit_set_const(address, 0)
        self.program.append_encoded(
            source_enc, ZERO_ENC, address, COMMENT_CELL_SIG, address, signal_enc
        )

    def emit_load_compl(self, address: int, source_enc: int, signal_enc: int) -> None:
        """``X ← ¬source`` (clear, then inverted load)."""
        self.emit_set_const(address, 0)
        self.program.append_encoded(
            ONE_ENC, source_enc, address, COMMENT_CELL_SIG, address, signal_enc
        )

    # ------------------------------------------------------------------
    # value access
    # ------------------------------------------------------------------

    def value_operand_enc(self, node: int) -> int:
        """Encoded operand reading ``node``'s plain value from its cell."""
        address = self.value_cell[node]
        if address == CONSUMED:
            raise CompilationError(f"node {node}'s value cell was already overwritten")
        if address == NOT_COMPUTED:
            raise CompilationError(f"node {node} has not been computed yet")
        return address << 1

    def materialize_complement(self, node: int, as_temp: bool = False) -> int:
        """Ensure a cell holds ``¬node``; returns its address."""
        if self.complement_caching:
            cached = self.compl_cell[node]
            if cached != NO_CELL:
                self._protected.add(cached)
                return cached
        address = self.alloc_temp() if as_temp else self.alloc()
        self.emit_load_compl(address, self.value_operand_enc(node), (node << 1) | 1)
        if self.complement_caching and not as_temp:
            self.compl_cell[node] = address
            if self._compl_order is not None:
                self._compl_order[node] = address
        return address

    # ------------------------------------------------------------------
    # reference counting / release (paper §4.2.3)
    # ------------------------------------------------------------------

    def consume_children(self, node: int) -> None:
        remaining = self.remaining
        for enc in (self._ca[node], self._cb[node], self._cc[node]):
            if enc < 2:  # constant child
                continue
            child = enc >> 1
            uses = remaining[child] - 1
            if uses < 0:
                raise CompilationError(f"use count of node {child} went negative")
            remaining[child] = uses
            if uses == 0:
                self._release_node(child)

    def _release_node(self, node: int) -> None:
        if self._kind[node] == _GATE:
            address = self.value_cell[node]
            if address >= 0:
                self.allocator.release(address)
                self.value_cell[node] = CONSUMED
        compl = self.compl_cell[node]
        if compl != NO_CELL:
            self.compl_cell[node] = NO_CELL
            if self._compl_order is not None:
                self._compl_order.pop(node, None)
            self.allocator.release(compl)


def translate_node_fast(state: FastTranslationState, node: int, naive: bool = False) -> None:
    """Translate one gate into RM3 instructions (§4.2.2 or naïve §3)."""
    state._protected.clear()
    ea, eb, ec = state._ca[node], state._cb[node], state._cc[node]
    if naive:
        a_enc, b_enc, z = _plan_child_order(state, ea, eb, ec)
    else:
        a_enc, b_enc, z = _plan_cases(state, ea, eb, ec)
    state.program.append_encoded(a_enc, b_enc, z, COMMENT_CELL_NODE, z, node)
    state.value_cell[node] = z
    state.release_temps()
    state.consume_children(node)


# ----------------------------------------------------------------------
# the paper's case analysis (Figs. 5 and 6), on raw encodings
# ----------------------------------------------------------------------


def _plan_cases(state: FastTranslationState, ea: int, eb: int, ec: int):
    children = (ea, eb, ec)
    b_index, b_enc = _select_operand_b(state, children)
    if b_index == 0:
        r0, r1 = 1, 2
    elif b_index == 1:
        r0, r1 = 0, 2
    else:
        r0, r1 = 0, 1
    z_index, z = _select_destination(state, children, r0, r1)
    a_enc = _operand_a(state, children[r1 if z_index == r0 else r0])
    return a_enc, b_enc, z


def _select_operand_b(state: FastTranslationState, children) -> tuple[int, int]:
    """Fig. 5: choose the child that enters the majority complemented."""
    remaining = state.remaining
    complemented: list[int] = []  # child indices, encoding order preserved
    plain: list[int] = []
    const_index = -1
    for i in range(3):
        e = children[i]
        if e < 2:
            if const_index < 0:
                const_index = i
        elif e & 1:
            complemented.append(i)
        else:
            plain.append(i)

    if len(complemented) == 1:
        # (a) ideal case: the single complemented child.
        i = complemented[0]
        return i, state.value_operand_enc(children[i] >> 1)
    if len(complemented) >= 2:
        # (b)/(d) prefer a complemented child with further readers (it
        # cannot be a destination anyway) ...
        for i in complemented:
            if remaining[children[i] >> 1] > 1:
                return i, state.value_operand_enc(children[i] >> 1)
        # (e) ... otherwise the first complemented child.
        i = complemented[0]
        return i, state.value_operand_enc(children[i] >> 1)
    # No complemented child from here on.
    if const_index >= 0:
        # (c) B becomes the inverse of the constant (¬B is the constant).
        return const_index, ONE_ENC if children[const_index] == 0 else ZERO_ENC
    if state.complement_caching:
        # (f) a child whose complement is already stored in some cell.
        compl_cell = state.compl_cell
        for i in plain:
            address = compl_cell[children[i] >> 1]
            if address != NO_CELL:
                state._protected.add(address)
                return i, address << 1
    # (g) complement a multi-fanout child (excluded as destination) ...
    as_temp = not state.complement_caching
    for i in plain:
        if remaining[children[i] >> 1] > 1:
            return i, state.materialize_complement(children[i] >> 1, as_temp=as_temp) << 1
    # (h) ... or, failing everything, the first child.
    i = plain[0]
    return i, state.materialize_complement(children[i] >> 1, as_temp=as_temp) << 1


def _select_destination(
    state: FastTranslationState, children, r0: int, r1: int
) -> tuple[int, int]:
    """Fig. 6: choose the destination cell Z among the two non-B children."""
    remaining = state.remaining
    compl_cell = state.compl_cell
    # (a) complemented child, last use, complement already in a cell:
    # overwrite that cell.
    for i in (r0, r1):
        e = children[i]
        if e < 2 or not e & 1:
            continue
        node = e >> 1
        if remaining[node] == 1:
            address = compl_cell[node]
            if address != NO_CELL:
                compl_cell[node] = NO_CELL
                if state._compl_order is not None:
                    state._compl_order.pop(node, None)
                state._protected.add(address)
                return i, address
    # (b) plain gate child on its last use: overwrite its value cell.
    kind = state._kind
    for i in (r0, r1):
        e = children[i]
        if e < 2 or e & 1:
            continue
        node = e >> 1
        if kind[node] == _GATE and remaining[node] == 1:
            address = state.value_cell[node]
            if address == CONSUMED:
                raise CompilationError(f"node {node} consumed twice")
            state.value_cell[node] = CONSUMED  # ownership moves to the parent
            state._protected.add(address)
            return i, address
    # (c) constant child: fresh cell initialized to the constant.
    for i in (r0, r1):
        e = children[i]
        if e < 2:
            address = state.alloc()
            state.emit_set_const(address, e)
            return i, address
    # (d) complemented child: fresh cell loaded with its complement.
    for i in (r0, r1):
        e = children[i]
        if e & 1:
            address = state.alloc()
            state.emit_load_compl(address, state.value_operand_enc(e >> 1), e)
            return i, address
    # (e) plain child (multi-fanout or a primary input): copy its value.
    e = children[r0]
    address = state.alloc()
    state.emit_load(address, state.value_operand_enc(e >> 1), e)
    return r0, address


def _operand_a(state: FastTranslationState, e: int) -> int:
    """Operand A rules (end of §4.2.2) for the remaining child."""
    if e < 2:
        # (a) constant child, complement edge folded into the value.
        return (e << 1) | 1
    node = e >> 1
    if not e & 1:
        # (b) plain child: read its value cell.
        return state.value_operand_enc(node)
    address = state.compl_cell[node]
    if address != NO_CELL:
        # (c) complement already available.
        state._protected.add(address)
        return address << 1
    # (d) fabricate (and cache) the complement.
    return state.materialize_complement(node, as_temp=not state.complement_caching) << 1


# ----------------------------------------------------------------------
# naïve child-order selection (paper §3)
# ----------------------------------------------------------------------


def _plan_child_order(state: FastTranslationState, ea: int, eb: int, ec: int):
    """Operands in child order: A ← child 1, B ← child 2, Z ← child 3."""
    # Operand B must deliver the child's value through the built-in
    # inversion: a complemented edge reads the child's plain cell, a plain
    # edge needs the complement fabricated (never cached in naïve mode).
    if eb < 2:
        b_enc = ONE_ENC if eb == 0 else ZERO_ENC
    elif eb & 1:
        b_enc = state.value_operand_enc(eb >> 1)
    else:
        b_enc = state.materialize_complement(eb >> 1, as_temp=True) << 1
    z = _naive_destination(state, ec)
    a_enc = _operand_a(state, ea)
    return a_enc, b_enc, z


def _naive_destination(state: FastTranslationState, e: int) -> int:
    """Destination for the naïve translator: child 3's value in a cell."""
    if e < 2:
        address = state.alloc()
        state.emit_set_const(address, e)
        return address
    node = e >> 1
    if e & 1:
        address = state.alloc()
        state.emit_load_compl(address, state.value_operand_enc(node), e)
        return address
    if state._kind[node] == _GATE and state.remaining[node] == 1:
        address = state.value_cell[node]
        if address == CONSUMED:
            raise CompilationError(f"node {node} consumed twice")
        state.value_cell[node] = CONSUMED
        return address
    address = state.alloc()
    state.emit_load(address, state.value_operand_enc(node), e)
    return address
