"""Batched (optionally parallel) compilation driver.

The paper's evaluation — and any iterative synthesis loop built on top of
this compiler — compiles the same circuits many times under different
option sets.  This module is the one place that workload goes through:

* :func:`compile_many` — compile M circuits × N option sets.  Each
  circuit's option sets run in one task sharing a single
  :class:`~repro.mig.context.AnalysisContext`, so structural analyses are
  paid once per distinct node order; tasks fan out over a process pool
  when ``workers > 1``.  Results come back in deterministic
  (circuit-major, option-minor) order regardless of worker count.
* :func:`parallel_map` — the underlying ordered pool map, reused by the
  evaluation harness (Table 1, ablations) for coarser-grained tasks.

Circuits may be given as :class:`~repro.mig.graph.Mig` objects, registry
names (``"adder"``), or ``(name, scale)`` pairs.  Name specs are resolved
*inside* the worker, so only a tiny payload crosses the process boundary.

Both maps run on :mod:`repro.core.resilience`'s supervised per-task
worker pool instead of a bare ``pool.map``: an optional
:class:`~repro.core.resilience.TaskPolicy` adds per-task deadlines,
retries and structured :class:`~repro.core.resilience.TaskFailure`
records, and a crashed worker (OOM kill, ``os._exit``) costs exactly the
task it was running instead of aborting the whole run with a
``BrokenProcessPool``.  Without a policy the behavior matches the old
pool: the first error propagates.

This is deliberately dependency-free (stdlib ``multiprocessing`` only)
and is the seam future scaling work — sharding, result caching, remote
backends — plugs into.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import (
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

from repro.circuits.registry import build as build_benchmark
from repro.core.cache import SynthesisCache, payload_cache_ref, worker_cache
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.resilience import (
    FaultPlan,
    TaskFailure,
    TaskPolicy,
    iter_tasks,
    run_tasks,
)
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.errors import ReproError
from repro.mig.context import AnalysisContext
from repro.mig.graph import Mig
from repro.plim.program import Program

_T = TypeVar("_T")
_R = TypeVar("_R")

#: a compilable circuit: an MIG, a registry name, or a (name, scale) pair
CircuitSpec = Union[Mig, str, tuple]


def resolve_workers(workers: Optional[int]) -> int:
    """``None`` → one worker per CPU; explicit counts must be >= 1.

    A zero or negative worker count is a caller bug that used to be
    silently clamped to 1; it now raises
    :class:`~repro.errors.ReproError` so the mistake surfaces at the
    boundary it was made (CLI flag, library call) instead of quietly
    serializing a sweep.
    """
    if workers is None:
        return os.cpu_count() or 1
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise ReproError(
            f"workers must be a positive integer or None (= one per CPU), "
            f"got {workers!r}"
        )
    return workers


def parallel_imap(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: Optional[int] = None,
    *,
    policy: Optional[TaskPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> "Iterator[_R]":
    """Yield ``fn(x)`` per item, in input order, pooled like
    :func:`parallel_map`.

    The streaming counterpart of :func:`parallel_map`: results come out
    one by one as they become available (in input order), so callers can
    report progress row by row even when a pool is running — the
    evaluation harness's live table output depends on this.

    ``policy`` configures per-task deadlines/retries/failure disposition
    (see :class:`~repro.core.resilience.TaskPolicy`); under
    ``on_error="skip"``/``"degrade"`` an unrecovered task's slot yields
    its :class:`~repro.core.resilience.TaskFailure` record instead of a
    result.  ``fault_plan`` injects deterministic faults for testing.
    """
    items = list(items)
    yield from iter_tasks(
        fn,
        items,
        workers=min(resolve_workers(workers), max(1, len(items))),
        policy=policy,
        fault_plan=fault_plan,
    )


async def parallel_map_async(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: Optional[int] = None,
    *,
    policy: Optional[TaskPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    force_pool: bool = False,
) -> "list[_R]":
    """:func:`parallel_map` awaitable from asyncio code — the async bridge.

    The supervised map is blocking (it multiplexes worker pipes with
    ``multiprocessing.connection.wait``), so an asyncio caller — the
    ``plimc serve`` front door — must not run it on the event loop.  This
    wrapper runs the whole map on a thread-pool thread via
    :func:`asyncio.to_thread` and awaits the result; everything else
    (ordering, policies, fault plans) is exactly :func:`parallel_map`.

    ``force_pool=True`` forwards to :func:`repro.core.resilience.iter_tasks`:
    even a single item then runs on a supervised worker process, which is
    what gives one HTTP request an enforceable deadline and crash
    isolation.
    """
    import asyncio

    items = list(items)
    resolved = min(resolve_workers(workers), max(1, len(items)))
    return await asyncio.to_thread(
        run_tasks,
        fn,
        items,
        workers=resolved,
        policy=policy,
        fault_plan=fault_plan,
        force_pool=force_pool,
    )


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: Optional[int] = None,
    *,
    policy: Optional[TaskPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> "list[_R]":
    """``[fn(x) for x in items]`` with deterministic ordering, fanned out
    over a supervised process pool when more than one worker resolves.

    ``workers=None`` (the default, the package-wide convention) means one
    worker per CPU.  ``fn`` and the items must be picklable (``fn`` a
    module-level function).  With one worker (or one item) everything
    runs inline in this process — no pool, no pickling — which is also
    the fallback the tests rely on for exact reproducibility checks.

    ``policy``/``fault_plan`` are forwarded to the resilience engine —
    see :func:`parallel_imap` and :mod:`repro.core.resilience`.
    """
    return list(
        parallel_imap(fn, items, workers=workers, policy=policy, fault_plan=fault_plan)
    )


@dataclass(frozen=True)
class BatchResult:
    """One (circuit, option set) cell of a :func:`compile_many` run."""

    circuit: str
    option_label: str
    circuit_index: int
    option_index: int
    num_gates: int
    num_instructions: int
    num_rrams: int
    seconds: float
    program: Optional[Program] = None

    @property
    def counts(self) -> tuple[int, int, int]:
        """The paper's (#N, #I, #R) triple."""
        return (self.num_gates, self.num_instructions, self.num_rrams)

    def to_dict(self) -> dict:
        """JSON-ready row (shared by ``plimc batch --json`` and the bench
        snapshot so the two schemas cannot drift)."""
        return {
            "circuit": self.circuit,
            "config": self.option_label,
            "num_gates": self.num_gates,
            "num_instructions": self.num_instructions,
            "num_rrams": self.num_rrams,
            "seconds": round(self.seconds, 6),
        }

    def __repr__(self) -> str:
        return (
            f"<BatchResult {self.circuit}/{self.option_label}: "
            f"N={self.num_gates} I={self.num_instructions} R={self.num_rrams}>"
        )


def _resolve_spec(spec: CircuitSpec) -> tuple[str, Mig]:
    """Materialize a circuit spec into ``(display name, MIG)``."""
    if isinstance(spec, Mig):
        return spec.name or "mig", spec
    if isinstance(spec, str):
        return spec, build_benchmark(spec)
    if isinstance(spec, tuple) and len(spec) == 2:
        name, scale = spec
        return name, build_benchmark(name, scale)
    raise ReproError(
        f"cannot interpret circuit spec {spec!r}; expected an Mig, a registry "
        "name, or a (name, scale) pair"
    )


def _compile_task(payload):
    """One worker task: every option set on one circuit, context shared.

    Returns ``(results, fresh_cache_entries)``; the entries implement the
    read-only + merge cache protocol (workers never write to disk, the
    parent absorbs what they computed).
    """
    (circuit_index, spec, option_sets, rewrite, effort, keep_programs, cache_ref) = (
        payload
    )
    cache = worker_cache(cache_ref)
    name, mig = _resolve_spec(spec)
    if rewrite:
        mig = rewrite_for_plim(mig, RewriteOptions(effort=effort), cache=cache)
    context = AnalysisContext(mig)
    # Prime the analyses every option set shares so the first set's timer
    # doesn't absorb the one-time cost (order-dependent reorders like the
    # "best" DFS image stay inside the timers — they are real per-set work
    # the first time an option set asks for them).
    if any(options.clean for _, options in option_sets):
        shared = context.cleaned()
        _ = shared.parents, shared.levels, shared.use_counts
    if any(not options.clean for _, options in option_sets):
        _ = context.parents, context.levels, context.use_counts
    results = []
    for option_index, (label, options) in enumerate(option_sets):
        start = time.perf_counter()
        program = PlimCompiler(options).compile(mig, context=context)
        compiled = (context.cleaned() if options.clean else context).mig
        results.append(
            BatchResult(
                circuit=name,
                option_label=label,
                circuit_index=circuit_index,
                option_index=option_index,
                num_gates=compiled.num_gates,
                num_instructions=program.num_instructions,
                num_rrams=program.num_rrams,
                seconds=time.perf_counter() - start,
                program=program if keep_programs else None,
            )
        )
    return results, cache.export_fresh() if cache is not None else []


def _label_option_sets(
    option_sets: "Optional[Union[Sequence[CompilerOptions], Mapping[str, CompilerOptions]]]",
) -> list[tuple[str, CompilerOptions]]:
    if option_sets is None:
        return [("default", CompilerOptions())]
    if isinstance(option_sets, Mapping):
        return list(option_sets.items())
    return [(f"opt{i}", options) for i, options in enumerate(option_sets)]


def compile_many(
    migs_or_specs: Sequence[CircuitSpec],
    option_sets: "Optional[Union[Sequence[CompilerOptions], Mapping[str, CompilerOptions]]]" = None,
    *,
    workers: Optional[int] = None,
    rewrite: bool = False,
    effort: int = 4,
    keep_programs: bool = False,
    cache: Optional[SynthesisCache] = None,
    cache_dir=None,
    policy: Optional[TaskPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> "list[Union[BatchResult, TaskFailure]]":
    """Compile every circuit under every option set; return all cells.

    ``option_sets`` is a sequence of :class:`CompilerOptions` (labelled
    ``opt0, opt1, ...``) or a mapping ``label → options`` (e.g.
    :data:`repro.eval.ablations.SELECTION_CONFIGS`); ``None`` means the
    default full compiler.  With ``rewrite=True`` each circuit first runs
    Algorithm 1 at ``effort`` (once, shared by all its option sets).

    The result list is ordered circuit-major, option-minor — byte-identical
    for any ``workers`` value.  ``workers=None`` (the default, the
    package-wide convention) uses one worker per CPU.  Programs
    are dropped from the results unless ``keep_programs=True`` (they are
    the bulky part of the pickle when results cross process boundaries).

    ``cache``/``cache_dir`` attach a
    :class:`~repro.core.cache.SynthesisCache` memoizing the ``rewrite=True``
    rewriting step per circuit fingerprint.  Pool workers use the cache
    read-only (a disk-backed view when it has a ``cache_dir``) and ship
    the entries they computed back; only this process merges and writes.
    A *memory-only* cache therefore only helps inline runs (one worker)
    and same-process repeats — pooled workers start empty unless the
    cache has a ``cache_dir`` they can read.

    ``policy`` attaches a :class:`~repro.core.resilience.TaskPolicy` to
    the pool (one task = one circuit with all its option sets): with
    ``on_error="skip"`` a circuit whose task failed permanently — crashed
    worker, blown deadline, raised exception after all retries — takes a
    single :class:`~repro.core.resilience.TaskFailure` slot in the result
    list (at its circuit-major position) while every other circuit's
    cells survive.  Without a policy the first failure raises, as before.
    ``fault_plan`` injects deterministic faults by task index (testing).

    Example — two registry circuits under the default option set:

        >>> from repro import compile_many
        >>> cells = compile_many([("ctrl", "ci"), ("router", "ci")])
        >>> [(c.circuit, c.option_label) for c in cells]
        [('ctrl', 'default'), ('router', 'default')]
        >>> all(c.num_instructions > 0 for c in cells)
        True
    """
    if cache is None and cache_dir is not None:
        cache = SynthesisCache(cache_dir)
    inline = resolve_workers(workers) <= 1 or len(migs_or_specs) <= 1
    cache_ref = payload_cache_ref(cache, inline)
    labelled = _label_option_sets(option_sets)
    payloads = [
        (index, spec, labelled, rewrite, effort, keep_programs, cache_ref)
        for index, spec in enumerate(migs_or_specs)
    ]
    grouped = parallel_map(
        _compile_task, payloads, workers=workers, policy=policy,
        fault_plan=fault_plan,
    )
    flattened: "list[Union[BatchResult, TaskFailure]]" = []
    for outcome in grouped:
        if isinstance(outcome, TaskFailure):
            flattened.append(outcome)
            continue
        group, entries = outcome
        if cache is not None and not inline:
            cache.absorb(entries)
        flattened.extend(group)
    return flattened
