"""Content-addressed synthesis cache.

Rewriting is the compiler's dominant cost, and sweep-shaped workloads
(:func:`~repro.core.pareto.pareto_sweep`, Table 1 runs, benchmark
snapshots) rewrite the same circuits over and over.  The
:class:`SynthesisCache` memoizes the two expensive products behind a
*content address* — :meth:`repro.mig.graph.Mig.fingerprint`, a canonical
structural hash that is invariant under gate-creation order and
strash-equivalent rebuilds — so a repeated rewrite of the same circuit
(or of a reordered-but-identical build of it) is a lookup, not a
recomputation:

* **rewrites** — ``rewrite_for_plim`` results, keyed on
  ``(fingerprint, RewriteOptions)``, serialized in the native ``.mig``
  text format;
* **fronts** — whole :class:`~repro.core.pareto.ParetoFront` results,
  keyed on ``(fingerprint, sweep parameters)``, serialized as JSON;
* **compilations** — whole request-shaped answers (rewritten ``.mig``
  text + compiled ``.plim`` program + the (#N, #I, #R) counts), keyed on
  ``(fingerprint, RewriteOptions, CompilerOptions)`` — what a
  ``plimc serve`` warm hit returns without recomputing Algorithm 2.
* **measurements** — :class:`~repro.core.cost.CostReport` results of
  expensive cost models (:class:`~repro.core.cost.CompiledPlim`), keyed
  on ``(fingerprint, repr(model))`` — the guided rewriting drivers and
  ``compile_cost_loop`` measure hundreds of candidate graphs, many of
  them structurally repeated across iterations and runs.

The cache is in-memory by default; give it a ``cache_dir`` and every
entry is also persisted to disk (atomic ``os.replace`` writes), so
repeated ``plimc pareto`` / ``plimc table1`` / benchmark runs of one
circuit family reuse results across processes.  Corrupt or unreadable
entries are treated as misses (and removed best-effort), never as errors.

For a given build of a circuit, a cache hit never changes *what* a
caller computes, only how long it takes: the stored result is exactly
what a cold run on that build produced.  Because the address
canonicalizes gate-creation order, a *reordered* build of a cached
circuit also hits — and receives the canonical representative's
functionally identical (but possibly not bit-identical) result.  That
is the designed trade-off of content addressing; studies whose subject
is order sensitivity itself must bypass the cache, as
:func:`repro.eval.table1.run_benchmark` does for shuffled rows.

Process pools cooperate through the read-only + merge protocol:
:func:`payload_cache_ref` turns a cache into a picklable payload field,
workers rebuild a read-only view with :func:`worker_cache` (disk reads
allowed, no writes), ship the entries they computed back via
:meth:`SynthesisCache.export_fresh`, and the parent merges them with
:meth:`SynthesisCache.absorb` — so only the main process ever writes.
Note the implication for *memory-only* caches: a pool worker starts
empty (there is no disk store to read), so an in-memory cache only
accelerates inline runs (one worker) and same-process repeats — give the
cache a ``cache_dir`` whenever pooled workers should see prior results.

Example — the second rewrite of a circuit is a hit:

    >>> from repro import Mig, RewriteOptions, SynthesisCache, rewrite_for_plim
    >>> m = Mig()
    >>> a, b, c = m.add_pi("a"), m.add_pi("b"), m.add_pi("c")
    >>> _ = m.add_po(m.add_maj(a, b, m.add_maj(a, b, c)), "f")
    >>> cache = SynthesisCache()
    >>> rewrite_for_plim(m, cache=cache).num_gates
    1
    >>> rewrite_for_plim(m, cache=cache).num_gates
    1
    >>> (cache.stats.hits, cache.stats.misses, cache.stats.stores)
    (1, 1, 1)
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro._version import __version__
from repro.errors import ReproError
from repro.mig.graph import Mig
from repro.mig.io_mig import read_mig, write_mig

#: entry kinds (also the on-disk subdirectory names)
REWRITE_KIND = "rewrites"
FRONT_KIND = "fronts"
COMPILATION_KIND = "compilations"
MEASUREMENT_KIND = "measurements"

_EXTENSIONS = {
    REWRITE_KIND: ".mig",
    FRONT_KIND: ".json",
    COMPILATION_KIND: ".json",
    MEASUREMENT_KIND: ".json",
}

#: prefix of in-flight atomic-write temp files (never valid entries)
_TMP_PREFIX = ".tmp-"

#: bump when a serialization format changes: old entries then simply miss
_FORMAT_VERSION = 1

#: REVISION OF THE SYNTHESIS ALGORITHMS THE CACHED RESULTS EMBODY.
#: Bump this in any PR that changes what rewriting (or the Pareto sweep)
#: produces — new/changed Ω rules, engine search-order changes, chain
#: policy changes — so persistent cache dirs never serve a pre-change
#: result as if the current algorithms had computed it (old entries then
#: simply miss and are recomputed).  The package version is folded in as
#: well, but it moves too rarely to be the only guard.
ALGORITHM_REVISION = 6  # PR 8: pluggable cost models.  Rewrite keys now
# embed the canonicalized cost-model identity (``RewriteOptions.objective``
# may be a CostModel whose repr reaches the key) and Pareto front keys the
# sweep's axes; pre-model entries must miss rather than answer for an
# objective they never saw.
# (Previously 5 — PR 5: warm chains + cache introduced.  Deliberately NOT
# bumped for the array-backed graph core: the storage swap was
# differentially verified bit-identical, so dict-core-era entries stayed
# valid verbatim.)

_KEY_SALT = f"{_FORMAT_VERSION}.{ALGORITHM_REVISION}.{__version__}"


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`SynthesisCache` instance.

    Counters are mutated through :meth:`bump` and read through
    :meth:`snapshot`, both of which hold the same lock — so a reader
    (``plimc cache stats``, the ``plimc serve`` ``/cache/stats``
    endpoint) always observes a *consistent* set of counters even while
    another thread is trimming or querying the cache.  Reading the
    fields one by one without the lock can interleave with concurrent
    bumps and report impossibilities such as more hits than lookups.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: corrupt or unreadable entries recovered as misses
    errors: int = 0
    #: entries dropped to enforce ``max_bytes`` (memory and disk summed)
    evictions: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, counter: str, amount: int = 1) -> None:
        """Atomically add ``amount`` to one counter."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def snapshot(self) -> dict:
        """One consistent reading of every counter, plus the derived
        ``lookups`` (hits + misses) and ``hit_rate`` (hits / lookups, 0.0
        when nothing was looked up).  Because all values come from a
        single locked read, ``hits <= lookups`` always holds in the
        returned dict — the invariant the reported JSON promises."""
        with self._lock:
            hits, misses = self.hits, self.misses
            counters = {
                "hits": hits,
                "misses": misses,
                "stores": self.stores,
                "errors": self.errors,
                "evictions": self.evictions,
            }
        lookups = hits + misses
        counters["lookups"] = lookups
        counters["hit_rate"] = round(hits / lookups, 6) if lookups else 0.0
        return counters

    def to_dict(self) -> dict:
        snap = self.snapshot()
        return {k: snap[k] for k in ("hits", "misses", "stores", "errors", "evictions")}

    def __getstate__(self):
        snap = self.snapshot()
        return {k: snap[k] for k in ("hits", "misses", "stores", "errors", "evictions")}

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


class SynthesisCache:
    """Memoizes rewriting results and Pareto fronts by content address.

    ``cache_dir=None`` (the default) keeps everything in memory;
    otherwise entries are also written under ``cache_dir`` and found
    again by later processes.  ``read_only=True`` never writes to disk
    (the worker side of the read-only + merge protocol) and implies
    ``collect_fresh``: serialized fresh entries are retained for
    :meth:`export_fresh`.  Ordinary long-lived caches do *not* collect
    fresh entries (the texts would accumulate unboundedly alongside the
    deserialized values); only worker-side views built by
    :func:`worker_cache` do, and they are drained once per task.

    ``max_bytes`` caps the cache at a byte budget with least-recently-
    used eviction, so a long-lived ``cache_dir`` cannot grow without
    bound.  The in-memory map (sized by each entry's serialized text)
    and the disk store (sized by file size, ordered by mtime — disk
    hits touch their file, so mtime *is* recency) are enforced
    independently against the same budget after every store.  The
    most recent entry always survives, even when it alone exceeds the
    cap; :meth:`trim` enforces an explicit cap once, without that
    exemption.  Eviction is safe under concurrent writers sharing one
    directory: entries are written atomically, eviction races resolve
    to whoever unlinks first, and losing a race is never an error.

    Example:

        >>> from repro.core.cache import SynthesisCache
        >>> cache = SynthesisCache()
        >>> cache.get_rewrite("fp", None) is None
        True
        >>> cache.stats.misses
        1
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        *,
        read_only: bool = False,
        collect_fresh: bool = False,
        max_bytes: Optional[int] = None,
    ):
        if max_bytes is not None and (
            not isinstance(max_bytes, int)
            or isinstance(max_bytes, bool)
            or max_bytes < 1
        ):
            raise ReproError(
                f"max_bytes must be a positive integer or None (= unbounded), "
                f"got {max_bytes!r}"
            )
        self._dir = Path(cache_dir) if cache_dir is not None else None
        self._read_only = read_only
        self._collect_fresh = collect_fresh or read_only
        self._max_bytes = max_bytes
        self._mem: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._sizes: dict[tuple[str, str], int] = {}
        self._mem_bytes = 0
        self._fresh: list[tuple[str, str, str]] = []
        self.stats = CacheStats()

    @property
    def cache_dir(self) -> Optional[Path]:
        """The on-disk directory, or ``None`` for an in-memory cache."""
        return self._dir

    @property
    def read_only(self) -> bool:
        """True when this instance never writes to disk."""
        return self._read_only

    @property
    def max_bytes(self) -> Optional[int]:
        """The LRU byte cap, or ``None`` for an unbounded cache."""
        return self._max_bytes

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------

    @staticmethod
    def rewrite_key(fingerprint: str, options) -> str:
        """Content address of one ``(input, RewriteOptions)`` rewrite.

        ``options`` is a frozen dataclass of primitives, so its ``repr``
        is a canonical token; ``None`` stands for the default options.
        Keys are salted with the package version (see ``_KEY_SALT``).
        """
        token = f"rewrite{_KEY_SALT}|{fingerprint}|{options!r}"
        return hashlib.sha256(token.encode("utf-8")).hexdigest()

    @staticmethod
    def front_key(fingerprint: str, params: dict) -> str:
        """Content address of one ``(input, sweep parameters)`` front.

        Salted with the package version like :meth:`rewrite_key`."""
        token = (
            f"front{_KEY_SALT}|{fingerprint}|"
            + json.dumps(params, sort_keys=True)
        )
        return hashlib.sha256(token.encode("utf-8")).hexdigest()

    @staticmethod
    def measurement_key(fingerprint: str, model) -> str:
        """Content address of one ``(input, cost model)`` measurement.

        Cost models are frozen dataclasses, so ``repr(model)`` is a
        canonical token; the salt folds in ``ALGORITHM_REVISION``, so a
        report measured by older compiler/machine semantics never
        answers for the current ones.
        """
        token = f"measurement{_KEY_SALT}|{fingerprint}|{model!r}"
        return hashlib.sha256(token.encode("utf-8")).hexdigest()

    @staticmethod
    def compilation_key(fingerprint: str, rewrite_options, compiler_options) -> str:
        """Content address of one whole compilation (Algorithm 1 + 2).

        Both option sets are frozen dataclasses of primitives, so their
        ``repr``\\ s are canonical tokens (exactly like
        :meth:`rewrite_key`); ``None`` stands for the respective default.
        """
        token = (
            f"compilation{_KEY_SALT}|{fingerprint}|"
            f"{rewrite_options!r}|{compiler_options!r}"
        )
        return hashlib.sha256(token.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # rewrites
    # ------------------------------------------------------------------

    def get_rewrite(self, fingerprint: str, options) -> Optional[Mig]:
        """The cached rewrite of the MIG fingerprinting ``fingerprint``
        under ``options``, or ``None``.  Hits return a private copy."""
        hit = self._get(REWRITE_KIND, self.rewrite_key(fingerprint, options))
        if hit is None:
            return None
        return hit.clone()

    def put_rewrite(self, fingerprint: str, options, result: Mig) -> None:
        """Store ``result`` as the rewrite of ``fingerprint`` under
        ``options`` (a no-op when the entry already exists)."""
        key = self.rewrite_key(fingerprint, options)
        if (REWRITE_KIND, key) in self._mem:
            return
        self._put(REWRITE_KIND, key, result.clone(), _serialize_mig(result))

    # ------------------------------------------------------------------
    # Pareto fronts
    # ------------------------------------------------------------------

    def get_front(self, fingerprint: str, params: dict):
        """The cached :class:`~repro.core.pareto.ParetoFront` for
        ``(fingerprint, params)``, or ``None``."""
        return self._get(FRONT_KIND, self.front_key(fingerprint, params))

    def put_front(self, fingerprint: str, params: dict, front) -> None:
        """Store a sweep's :class:`~repro.core.pareto.ParetoFront`."""
        key = self.front_key(fingerprint, params)
        if (FRONT_KIND, key) in self._mem:
            return
        self._put(FRONT_KIND, key, front, json.dumps(front.to_dict(), indent=2))

    # ------------------------------------------------------------------
    # whole compilations (Algorithm 1 + Algorithm 2 + serializations)
    # ------------------------------------------------------------------

    def get_compilation(
        self, fingerprint: str, rewrite_options, compiler_options
    ) -> Optional[dict]:
        """The cached compilation record for ``fingerprint`` under both
        option sets, or ``None``.  Hits return a private copy.

        A *compilation record* is the JSON-ready dict a request-serving
        caller needs to answer without recomputing anything: the
        rewritten graph (``"mig"``, native text), the PLiM program
        (``"program"``, ``.plim`` text) and the (#N, #I, #R) counts.
        Rewrites alone are already memoized per
        :meth:`~repro.mig.graph.Mig.fingerprint`; at interactive circuit
        sizes Algorithm 2 costs as much again, so ``plimc serve`` caches
        the whole answer.
        """
        hit = self._get(
            COMPILATION_KIND,
            self.compilation_key(fingerprint, rewrite_options, compiler_options),
        )
        return dict(hit) if hit is not None else None

    def put_compilation(
        self, fingerprint: str, rewrite_options, compiler_options, record: dict
    ) -> None:
        """Store a compilation record (no-op when the entry exists)."""
        key = self.compilation_key(fingerprint, rewrite_options, compiler_options)
        if (COMPILATION_KIND, key) in self._mem:
            return
        self._put(
            COMPILATION_KIND, key, dict(record), json.dumps(record, sort_keys=True)
        )

    # ------------------------------------------------------------------
    # cost-model measurements (CompiledPlim / StaticPlim reports)
    # ------------------------------------------------------------------

    def get_measurement(self, fingerprint: str, model):
        """The cached :class:`~repro.core.cost.CostReport` of measuring
        ``fingerprint`` under ``model``, or ``None``.

        Reports are frozen; hits return the shared instance.
        """
        return self._get(MEASUREMENT_KIND, self.measurement_key(fingerprint, model))

    def put_measurement(self, fingerprint: str, model, report) -> None:
        """Store one cost-model measurement (no-op when the entry exists)."""
        key = self.measurement_key(fingerprint, model)
        if (MEASUREMENT_KIND, key) in self._mem:
            return
        self._put(
            MEASUREMENT_KIND, key, report, json.dumps(report.to_dict(), sort_keys=True)
        )

    # ------------------------------------------------------------------
    # the read-only + merge protocol (process pools)
    # ------------------------------------------------------------------

    def export_fresh(self) -> list[tuple[str, str, str]]:
        """Drain the serialized entries added since the last export.

        Worker processes call this after their task and ship the result
        back to the parent, which merges with :meth:`absorb`.  Only
        collecting caches (``read_only=True`` or ``collect_fresh=True``,
        i.e. :func:`worker_cache` views) retain fresh entries; for an
        ordinary cache this returns ``[]``.
        """
        fresh, self._fresh = self._fresh, []
        return fresh

    def absorb(self, entries: list[tuple[str, str, str]]) -> int:
        """Merge serialized ``(kind, key, text)`` entries from a worker.

        Returns the number of entries that were new to this cache.
        Malformed entries are counted as errors and skipped.
        """
        added = 0
        for kind, key, text in entries:
            if (kind, key) in self._mem:
                continue
            try:
                value = _deserialize(kind, text)
            except Exception:
                self.stats.bump("errors")
                continue
            self._put(kind, key, value, text)
            added += 1
        return added

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry (memory and disk); returns the count removed.

        An entry that lives both in memory and on disk (the normal state
        of a live persistent cache) counts once — the keys are
        deduplicated, not summed per location.
        """
        removed = set(self._mem)
        self._mem.clear()
        self._sizes.clear()
        self._mem_bytes = 0
        self._fresh.clear()
        if self._dir is not None:
            for kind in _EXTENSIONS:
                directory = self._dir / kind
                if not directory.is_dir():
                    continue
                for path in directory.iterdir():
                    if path.is_file():
                        try:
                            path.unlink()
                        except OSError:
                            continue
                        # leftovers of interrupted atomic writes are
                        # reaped but are not entries
                        if not path.name.startswith(_TMP_PREFIX):
                            removed.add((kind, path.stem))
        return len(removed)

    def trim(self, max_bytes: int) -> int:
        """Enforce ``max_bytes`` once, now, on memory and disk alike.

        Unlike the standing cap set at construction, a trim has no
        keep-the-latest exemption: ``trim(0)`` empties the cache.
        Returns the number of entries evicted (memory + disk; an entry
        living in both places counts twice, as two evictions happen).
        """
        if not isinstance(max_bytes, int) or isinstance(max_bytes, bool) \
                or max_bytes < 0:
            raise ReproError(
                f"trim budget must be a non-negative integer, got {max_bytes!r}"
            )
        evicted = self._enforce_mem_cap(max_bytes, keep_latest=False)
        evicted += self._enforce_disk_cap(max_bytes, keep_latest=False)
        return evicted

    def disk_usage(self) -> dict:
        """Per-kind entry counts and byte totals of the disk store.

        Leftover ``.tmp-*`` files from interrupted atomic writes are not
        entries (no key resolves to them) and are excluded; files
        removed mid-scan by a concurrent process are skipped, never
        double-counted.
        """
        usage = {}
        for kind in _EXTENSIONS:
            files = 0
            size = 0
            if self._dir is not None:
                directory = self._dir / kind
                if directory.is_dir():
                    for path in directory.iterdir():
                        if path.name.startswith(_TMP_PREFIX):
                            continue
                        try:
                            st = path.stat()
                        except OSError:
                            continue  # unlinked by a concurrent evictor
                        if path.is_file():
                            files += 1
                            size += st.st_size
            usage[kind] = {"entries": files, "bytes": size}
        return usage

    def stats_snapshot(self) -> dict:
        """One consistent, JSON-ready view of the cache's health.

        The single source of truth behind ``plimc cache stats --json``
        and the ``plimc serve`` ``GET /cache/stats`` endpoint, so the two
        can never drift.  Counters come from one atomic
        :meth:`CacheStats.snapshot` reading (a concurrent :meth:`trim`
        or lookup can never make the report claim more hits than
        lookups), the memory figures from this instance's live map, and
        the disk figures from :meth:`disk_usage`.
        """
        return {
            "cache_dir": str(self._dir) if self._dir is not None else None,
            "max_bytes": self._max_bytes,
            "read_only": self._read_only,
            "counters": self.stats.snapshot(),
            "memory": {"entries": len(self._mem), "bytes": self._mem_bytes},
            "disk": self.disk_usage(),
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _get(self, kind: str, key: str):
        value = self._mem.get((kind, key))
        if value is not None:
            try:
                self._mem.move_to_end((kind, key))
            except KeyError:
                # a concurrent trim() evicted the entry between the read
                # and the recency bump; the value in hand is still good
                pass
            self.stats.bump("hits")
            return value
        found = self._disk_get(kind, key)
        if found is not None:
            value, size = found
            self._mem_insert(kind, key, value, size)
            self._enforce_mem_cap(self._max_bytes)
            if not self._read_only:
                # a disk hit is a *use*: refresh the file's mtime so LRU
                # eviction (which orders by mtime) sees the recency
                try:
                    os.utime(self._entry_path(kind, key))
                except OSError:
                    pass
            self.stats.bump("hits")
            return value
        self.stats.bump("misses")
        return None

    def _mem_insert(self, kind: str, key: str, value, size: int) -> None:
        entry = (kind, key)
        if entry in self._mem:
            self._mem_bytes -= self._sizes.get(entry, 0)
            self._mem.move_to_end(entry)
        self._mem[entry] = value
        self._sizes[entry] = size
        self._mem_bytes += size

    def _enforce_mem_cap(self, cap: Optional[int], keep_latest: bool = True) -> int:
        if cap is None:
            return 0
        evicted = 0
        floor = 1 if keep_latest else 0
        while self._mem_bytes > cap and len(self._mem) > floor:
            entry, _ = self._mem.popitem(last=False)
            self._mem_bytes -= self._sizes.pop(entry, 0)
            self.stats.bump("evictions")
            evicted += 1
        return evicted

    def _disk_entries(self) -> list:
        """``(mtime, size, path)`` of every disk entry, oldest first."""
        entries = []
        for kind in _EXTENSIONS:
            directory = self._dir / kind
            if not directory.is_dir():
                continue
            for path in directory.iterdir():
                if path.name.startswith(_TMP_PREFIX):
                    continue
                try:
                    st = path.stat()
                except OSError:
                    continue  # a concurrent writer/evictor removed it
                if path.is_file():
                    entries.append((st.st_mtime, st.st_size, path))
        entries.sort(key=lambda e: (e[0], e[2].name))
        return entries

    def _enforce_disk_cap(self, cap: Optional[int], keep_latest: bool = True) -> int:
        if cap is None or self._dir is None or self._read_only:
            return 0
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        if keep_latest and entries:
            entries = entries[:-1]  # the newest write always survives
        evicted = 0
        for _, size, path in entries:
            if total <= cap:
                break
            try:
                path.unlink()
            except OSError:
                continue  # a concurrent evictor won the race — fine
            total -= size
            self.stats.bump("evictions")
            evicted += 1
        return evicted

    def _put(self, kind: str, key: str, value, text: str) -> None:
        self._mem_insert(kind, key, value, len(text.encode("utf-8")))
        self._enforce_mem_cap(self._max_bytes)
        if self._collect_fresh:
            self._fresh.append((kind, key, text))
        self.stats.bump("stores")
        if self._dir is None or self._read_only:
            return
        path = self._entry_path(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=_TMP_PREFIX, suffix=path.suffix
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.bump("errors")  # disk store failed; memory entry stands
            return
        self._enforce_disk_cap(self._max_bytes)

    def _disk_get(self, kind: str, key: str):
        """``(value, serialized size)`` of the disk entry, or ``None``."""
        if self._dir is None:
            return None
        path = self._entry_path(kind, key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            return _deserialize(kind, text), len(text.encode("utf-8"))
        except Exception:
            # Corrupt entry: recover by treating it as a miss and removing
            # the file (best-effort) so the recomputed result replaces it.
            self.stats.bump("errors")
            if not self._read_only:
                try:
                    path.unlink()
                except OSError:
                    pass
            return None

    def _entry_path(self, kind: str, key: str) -> Path:
        return self._dir / kind / f"{key}{_EXTENSIONS[kind]}"

    def __repr__(self) -> str:
        where = str(self._dir) if self._dir is not None else "memory"
        return (
            f"<SynthesisCache {where}: {len(self._mem)} entries, "
            f"{self.stats.hits} hits / {self.stats.misses} misses>"
        )


def _serialize_mig(mig: Mig) -> str:
    out = io.StringIO()
    write_mig(mig, out)
    return out.getvalue()


def _deserialize(kind: str, text: str):
    if kind == REWRITE_KIND:
        return read_mig(io.StringIO(text))
    if kind == FRONT_KIND:
        # Local import: pareto imports this module at load time.
        from repro.core.pareto import ParetoFront

        return ParetoFront.from_dict(json.loads(text))
    if kind == COMPILATION_KIND:
        record = json.loads(text)
        if not isinstance(record, dict):
            raise ValueError("compilation entry is not a JSON object")
        return record
    if kind == MEASUREMENT_KIND:
        # Local import: cost imports nothing from here, but keep symmetry
        # with the front branch and the module import-light.
        from repro.core.cost import CostReport

        return CostReport.from_dict(json.loads(text))
    raise ValueError(f"unknown cache entry kind {kind!r}")


# ----------------------------------------------------------------------
# payload plumbing for process pools
# ----------------------------------------------------------------------


def payload_cache_ref(cache: Optional[SynthesisCache], inline: bool):
    """The picklable stand-in for ``cache`` in a worker payload.

    ``inline=True`` (the task runs in this process) passes the instance
    through unchanged, so memory hits are shared.  Pool workers instead
    get the cache directory (or ``True`` for a memory-only cache) and
    rebuild a read-only view with :func:`worker_cache`.
    """
    if cache is None:
        return None
    if inline:
        return cache
    return str(cache.cache_dir) if cache.cache_dir is not None else True


def worker_cache(cache_ref) -> Optional[SynthesisCache]:
    """Materialize a payload's cache reference inside the task.

    Returns the shared instance (inline execution), a read-only
    disk-backed view (pool worker of a persistent cache), a fresh
    collect-only cache (pool worker of a memory cache), or ``None``.
    """
    if cache_ref is None:
        return None
    if isinstance(cache_ref, SynthesisCache):
        return cache_ref
    if cache_ref is True:
        return SynthesisCache(collect_fresh=True)
    return SynthesisCache(cache_ref, read_only=True)
