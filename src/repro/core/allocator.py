"""RRAM allocation (paper §4.2.3).

The allocator hands out work-cell addresses through a two-operation
interface — ``request`` and ``release`` — backed by a free list of released
cells.  The paper's policy is **FIFO**: the *oldest* released cell is reused
first, so consecutive reuse is spread over many physical cells instead of
cycling the most recently freed one; that addresses RRAM endurance limits.
LIFO (stack) and FRESH (never reuse) policies are provided for the
endurance ablation (DESIGN.md experiment X3).

The number of *distinct* addresses ever handed out is the paper's ``#R``
metric.
"""

from __future__ import annotations

from collections import deque

from repro.errors import AllocationError

POLICIES = ("fifo", "lifo", "fresh")


class RramAllocator:
    """Work-RRAM address allocator with a recyclable free list."""

    def __init__(self, first_address: int = 0, policy: str = "fifo"):
        if policy not in POLICIES:
            raise AllocationError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        if first_address < 0:
            raise AllocationError(f"first_address must be non-negative, got {first_address}")
        self.policy = policy
        self._next_fresh = first_address
        self._first_address = first_address
        self._free: deque[int] = deque()
        self._in_use: set[int] = set()
        self._ever_allocated: list[int] = []

    def request(self) -> int:
        """Return a ready-to-use cell address.

        Reuses a released cell according to the policy, or allocates a
        fresh address.  The caller must assume the cell's content is
        unknown (reused cells keep their last value).
        """
        if self._free and self.policy != "fresh":
            if self.policy == "fifo":
                address = self._free.popleft()  # oldest released first
            else:  # lifo
                address = self._free.pop()  # most recently released first
        else:
            address = self._next_fresh
            self._next_fresh += 1
            self._ever_allocated.append(address)
        self._in_use.add(address)
        return address

    def release(self, address: int) -> None:
        """Return a cell to the free list."""
        if address not in self._in_use:
            raise AllocationError(
                f"cell {address} is not currently allocated (double free or foreign address)"
            )
        self._in_use.remove(address)
        self._free.append(address)

    @property
    def num_allocated(self) -> int:
        """Distinct addresses ever handed out (the paper's #R)."""
        return len(self._ever_allocated)

    @property
    def allocated_addresses(self) -> list[int]:
        """Every address ever handed out, in first-allocation order."""
        return list(self._ever_allocated)

    @property
    def num_in_use(self) -> int:
        """Cells currently held by the compiler."""
        return len(self._in_use)

    @property
    def num_free(self) -> int:
        """Cells currently on the free list."""
        return len(self._free)

    def is_allocated(self, address: int) -> bool:
        """True if ``address`` is currently held."""
        return address in self._in_use

    def __repr__(self) -> str:
        return (
            f"<RramAllocator policy={self.policy} allocated={self.num_allocated} "
            f"in_use={self.num_in_use} free={self.num_free}>"
        )
