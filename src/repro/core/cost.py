"""Cost models: what rewriting optimizes, from node counts to real PLiM cost.

The rewriting algorithm (paper §4.1) optimizes the MIG "w.r.t. the expected
number of instructions and required RRAMs in the translated PLiM program"
*before* compilation runs, so it needs a per-node estimate of how expensive
translation will be.  The estimate follows the §4.2.2 case analysis:

* exactly **one** complemented (non-constant) child is free — operand B
  absorbs it (``RM3`` computes ``⟨A ¬B Z⟩``);
* every complemented child beyond the first costs one *negation*:
  two instructions and one extra RRAM;
* a node with **no** complemented child needs one negation too — unless a
  constant child lets operand B be the constant's inverse for free.

The static model intentionally ignores dynamic effects (complement caching,
cell reuse); those depend on the schedule and are handled by the compiler
itself.

On top of the per-node estimators this module defines the pluggable
:class:`CostModel` abstraction the rewriting drivers and the Pareto sweep
optimize against:

* :class:`NodeCount` — the paper's Algorithm 1 objective (#N);
* :class:`Depth` — critical-path length (#D) for parallel targets;
* :class:`StaticPlim` — the §4.2.2 instruction/RRAM estimate above;
* :class:`CompiledPlim` — the *real* cost: run Algorithm 2 on the
  candidate and report measured #I/#R/cycles plus endurance wear from an
  actual machine execution (:mod:`repro.plim.endurance`), memoized per
  :meth:`~repro.mig.graph.Mig.fingerprint`.

Models are frozen dataclasses: their ``repr`` is deterministic and feeds
the :class:`~repro.core.cache.SynthesisCache` key (two rewrites under
different models never share an entry), and they pickle cleanly across
the process-pool seams.  Resolve string aliases with
:func:`resolve_cost_model`:

    >>> from repro.core.cost import resolve_cost_model
    >>> resolve_cost_model("plim")
    CompiledPlim(paper_accounting=True, allocator_policy='fifo', input_seed=7, implementation='fast')
    >>> resolve_cost_model("size").name
    'size'
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.errors import ReproError
from repro.mig.algebra import complement_profile
from repro.mig.analysis import depth as mig_depth
from repro.mig.graph import Mig
from repro.plim.endurance import EnduranceReport, work_cell_wear
from repro.plim.machine import PlimMachine
from repro.plim.program import Program

if TYPE_CHECKING:  # import cycle: the compiler's translator uses this module
    from repro.mig.context import AnalysisContext

#: instructions needed to materialize one complement into a work cell
NEGATION_INSTRUCTIONS = 2
#: work cells needed per materialized complement
NEGATION_RRAMS = 1


def classify_children(mig: Mig, node: int) -> tuple[int, int, bool]:
    """Return ``(num_nonconst, num_complemented_nonconst, has_const_child)``."""
    return complement_profile(mig.children(node))


def negations_needed(num_complemented: int, has_const: bool) -> int:
    """Complement materializations a node's translation will need.

    ``num_complemented`` counts complemented non-constant children.
    """
    if num_complemented >= 1:
        return num_complemented - 1  # operand B absorbs one
    if has_const:
        return 0  # operand B becomes the constant's inverse
    return 1  # a complement must be fabricated for operand B


def node_instruction_cost(mig: Mig, node: int) -> int:
    """Expected instructions to translate ``node`` (≥ 1)."""
    _, complemented, has_const = classify_children(mig, node)
    return 1 + NEGATION_INSTRUCTIONS * negations_needed(complemented, has_const)


def estimate_instructions(mig: Mig, po_negation_cost: int = 0) -> int:
    """Expected total instructions for the whole MIG.

    ``po_negation_cost`` charges that many instructions per complemented
    primary output (0 reproduces the paper's accounting, where outputs may
    rest in complemented form; 2 models an explicit fix-up).
    """
    total = sum(node_instruction_cost(mig, v) for v in mig.gates())
    if po_negation_cost:
        total += po_negation_cost * sum(1 for po in mig.pos() if po.inverted and not po.is_const)
    return total


def estimate_extra_rrams(mig: Mig) -> int:
    """Expected work cells spent on complement materializations alone.

    A lower bound companion to :func:`estimate_instructions`; the true #R
    additionally depends on scheduling and cell reuse.
    """
    total = 0
    for v in mig.gates():
        _, complemented, has_const = classify_children(mig, v)
        total += NEGATION_RRAMS * negations_needed(complemented, has_const)
    return total


@dataclass(frozen=True)
class CostEstimate:
    """Bundle of the static estimates for reporting."""

    num_gates: int
    instructions: int
    extra_rrams: int


def estimate(mig: Mig, po_negation_cost: int = 0) -> CostEstimate:
    """Collect a :class:`CostEstimate` for ``mig``."""
    return CostEstimate(
        num_gates=mig.num_gates,
        instructions=estimate_instructions(mig, po_negation_cost),
        extra_rrams=estimate_extra_rrams(mig),
    )


def estimate_from_histogram(
    num_gates: int, hist: Sequence[int], zero_comp_no_const: int
) -> int:
    """:func:`estimate_instructions` from incrementally maintained counters.

    ``hist[c]`` counts live gates with ``c`` complemented non-constant
    children; ``zero_comp_no_const`` those of ``hist[0]`` without a
    constant child.  The O(1) counterpart of the full traversal — the
    worklist engine's fixed-point signature reads it off
    :meth:`~repro.mig.graph.Mig.inplace_signature` every cycle.
    """
    return num_gates + NEGATION_INSTRUCTIONS * (
        hist[2] + 2 * hist[3] + zero_comp_no_const
    )


def negation_cost(num_complemented: int, has_const: bool) -> int:
    """Instructions spent on negations alone for one node's child profile.

    The quantity every inverter-propagation cost balance compares before
    and after a flip (``NEGATION_INSTRUCTIONS`` per materialization).
    """
    return NEGATION_INSTRUCTIONS * negations_needed(num_complemented, has_const)


def measure_program(
    program: Program, pi_names: Sequence[str], *, input_seed: int = 7
) -> tuple[PlimMachine, EnduranceReport]:
    """Execute ``program`` once (width 1) and return machine + work-cell wear.

    Inputs are pseudo-random bits drawn from ``input_seed``, so repeated
    measurements of the same program are deterministic.  Width 1 is the
    physical machine: flip counts are exact per-cell switching events (at
    wider words a "flip" means *any* universe flipped — see
    :mod:`repro.plim.endurance`); pulse counts are exact at any width.
    """
    machine = PlimMachine.for_program(program)
    rng = random.Random(input_seed)
    inputs = {name: rng.randint(0, 1) for name in pi_names}
    machine.run_program(program, inputs)
    return machine, work_cell_wear(machine, program)


# ----------------------------------------------------------------------
# pluggable cost models
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CostReport:
    """One model's measurement of one MIG.

    ``metrics`` maps metric names to numbers (every model reports at
    least ``num_gates`` and ``depth``); ``objective`` is the orderable
    tuple the rewriting drivers minimize (lexicographic — the model's
    primary metric first, tie-breakers after).  ``wear`` is attached by
    :class:`CompiledPlim` only.
    """

    model: str
    metrics: dict
    objective: tuple
    wear: Optional[EnduranceReport] = None

    def __getitem__(self, name: str):
        return self.metrics[name]

    def get(self, name: str, default=None):
        return self.metrics.get(name, default)

    def to_dict(self) -> dict:
        """JSON-ready form (the ``"measurements"`` cache serialization)."""
        return {
            "model": self.model,
            "metrics": dict(self.metrics),
            "objective": list(self.objective),
            "wear": asdict(self.wear) if self.wear is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CostReport":
        """Inverse of :meth:`to_dict` (objective back to a tuple)."""
        wear = data.get("wear")
        return cls(
            model=data["model"],
            metrics=dict(data["metrics"]),
            objective=tuple(data["objective"]),
            wear=EnduranceReport(**wear) if wear is not None else None,
        )


class CostModel:
    """Protocol of a rewriting objective (subclass the frozen dataclasses).

    A model measures a whole MIG (:meth:`measure`) and exposes the
    orderable :meth:`objective_key` the guided drivers minimize.
    ``strategy`` routes dispatch in
    :func:`~repro.core.rewriting.rewrite_for_plim`: ``"size"``/``"depth"``
    models run the dedicated (bit-identical) engines; ``"guided"`` models
    run the measure-and-select loop.  Implementations must be frozen
    dataclasses: a deterministic ``repr`` is the model's cache identity,
    and instances cross process-pool boundaries by pickle.
    """

    #: alias under which :func:`resolve_cost_model` finds the model
    name: str = "abstract"
    #: "size" | "depth" | "guided" — see class docstring
    strategy: str = "guided"

    def measure(
        self,
        mig: Mig,
        *,
        context: "Optional[AnalysisContext]" = None,
        cache=None,
    ) -> CostReport:
        """Measure ``mig``.  ``cache`` is an optional
        :class:`~repro.core.cache.SynthesisCache`; models whose
        measurement is expensive (:class:`CompiledPlim`) memoize reports
        under its ``"measurements"`` kind, cheap models ignore it."""
        raise NotImplementedError

    def objective_key(
        self,
        mig: Mig,
        *,
        context: "Optional[AnalysisContext]" = None,
        cache=None,
    ) -> tuple:
        """The orderable scalarization of :meth:`measure` (lower is better)."""
        return self.measure(mig, context=context, cache=cache).objective


@dataclass(frozen=True)
class NodeCount(CostModel):
    """#N — the paper's Algorithm 1 objective (serial PLiM programs pay
    one translation per gate, so node count is the first-order cost)."""

    name = "size"
    strategy = "size"

    def measure(self, mig: Mig, *, context=None, cache=None) -> CostReport:
        num_gates = mig.num_gates
        d = mig_depth(mig)
        return CostReport(
            model=self.name,
            metrics={"num_gates": num_gates, "depth": d},
            objective=(num_gates, d),
        )


@dataclass(frozen=True)
class Depth(CostModel):
    """#D — critical-path length, the cost parallel in-memory targets pay."""

    name = "depth"
    strategy = "depth"

    def measure(self, mig: Mig, *, context=None, cache=None) -> CostReport:
        num_gates = mig.num_gates
        d = mig_depth(mig)
        return CostReport(
            model=self.name,
            metrics={"num_gates": num_gates, "depth": d},
            objective=(d, num_gates),
        )


@dataclass(frozen=True)
class StaticPlim(CostModel):
    """The §4.2.2 estimator: expected #I (and extra RRAMs) before scheduling.

    Exactly the quantity Algorithm 1's inverter cost balance reasons
    about, lifted to a whole-graph objective.  ``po_negation_cost``
    charges complemented primary outputs (0 = the paper's accounting).
    """

    name = "static-plim"
    strategy = "guided"

    po_negation_cost: int = 0

    def measure(self, mig: Mig, *, context=None, cache=None) -> CostReport:
        instructions = estimate_instructions(mig, self.po_negation_cost)
        extra_rrams = estimate_extra_rrams(mig)
        num_gates = mig.num_gates
        d = mig_depth(mig)
        return CostReport(
            model=self.name,
            metrics={
                "instructions": instructions,
                "extra_rrams": extra_rrams,
                "num_gates": num_gates,
                "depth": d,
            },
            objective=(instructions, extra_rrams, num_gates, d),
        )


@dataclass(frozen=True)
class CompiledPlim(CostModel):
    """The real cost: Algorithm 2's measured #I/#R/cycles plus write wear.

    Every measurement compiles the candidate MIG with
    :class:`~repro.core.compiler.PlimCompiler` and executes the program
    once on the machine model (width 1, inputs seeded by ``input_seed``),
    so #I/#R are the scheduler's actual outputs, ``cycles`` the machine's
    counted read/read/write cycles, and ``wear`` a genuine
    :class:`~repro.plim.endurance.EnduranceReport` over the work cells.
    ``paper_accounting=False`` charges output-polarity fix-ups like
    ``plimc --honest``; ``allocator_policy`` selects the work-cell
    recycling policy whose wear is being measured.

    Compilation is the expensive part, so measurements are memoized per
    :meth:`~repro.mig.graph.Mig.fingerprint` on the model instance —
    the guided drivers re-measure unchanged candidates for free.  The
    memo is excluded from ``repr``/equality (cache identity) and dropped
    on pickle (workers re-measure rather than ship reports).  Pass a
    :class:`~repro.core.cache.SynthesisCache` to :meth:`measure` and the
    report is additionally memoized under the cache's ``"measurements"``
    kind — keyed on fingerprint + model repr (salted with
    ``ALGORITHM_REVISION``) — so repeated cost loops over one circuit
    family skip the compile-and-execute entirely, across processes when
    the cache is disk-backed.

    ``implementation`` selects the Algorithm 2 engine being measured;
    both emit byte-identical programs, so it only changes measurement
    *speed* — but it reaches the repr (cache identity) like every other
    field, so entries measured under different engines never alias.
    """

    name = "plim"
    strategy = "guided"

    paper_accounting: bool = True
    allocator_policy: str = "fifo"
    input_seed: int = 7
    implementation: str = "fast"
    _memo: dict = field(default_factory=dict, repr=False, compare=False)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_memo"] = {}
        return state

    def measure(self, mig: Mig, *, context=None, cache=None) -> CostReport:
        fingerprint = mig.fingerprint()
        hit = self._memo.get(fingerprint)
        if hit is not None:
            return hit
        if cache is not None:
            cached = cache.get_measurement(fingerprint, self)
            if cached is not None:
                self._memo[fingerprint] = cached
                return cached
        from repro.core.compiler import PlimCompiler

        program = PlimCompiler(self.compiler_options()).compile(mig, context=context)
        machine, wear = measure_program(
            program, mig.pi_names(), input_seed=self.input_seed
        )
        num_gates = mig.num_gates
        d = mig_depth(mig)
        report = CostReport(
            model=self.name,
            metrics={
                "num_instructions": program.num_instructions,
                "num_rrams": program.num_rrams,
                "cycles": machine.cycle_count,
                "num_gates": num_gates,
                "depth": d,
                "cells_written": wear.cells_written,
                "max_writes": wear.max_writes,
                "total_writes": wear.total_writes,
            },
            objective=(program.num_instructions, program.num_rrams, num_gates, d),
            wear=wear,
        )
        self._memo[fingerprint] = report
        if cache is not None:
            cache.put_measurement(fingerprint, self, report)
        return report

    def compiler_options(self):
        """The :class:`~repro.core.compiler.CompilerOptions` this model
        measures under (shared with the final ``compile_cost_loop``
        compile so the loop optimizes exactly what it ships)."""
        from repro.core.compiler import CompilerOptions

        return CompilerOptions(
            fix_output_polarity=not self.paper_accounting,
            allocator_policy=self.allocator_policy,
            implementation=self.implementation,
        )


#: string aliases accepted wherever a :class:`CostModel` is (``RewriteOptions
#: .objective``, ``plimc compile --objective``, ``compile_cost_loop``)
COST_MODELS = {
    "size": NodeCount,
    "depth": Depth,
    "static-plim": StaticPlim,
    "plim": CompiledPlim,
}


def resolve_cost_model(objective: Union[str, CostModel]) -> CostModel:
    """Map a string alias (or pass a model through) to a :class:`CostModel`.

    Raises :class:`~repro.errors.ReproError` for unknown aliases and for
    objects that are not cost models (``"balanced"`` is a rewriting
    *strategy*, not a measurable model, and is rejected here).
    """
    if isinstance(objective, CostModel):
        return objective
    factory = COST_MODELS.get(objective)
    if factory is None:
        raise ReproError(
            f"unknown cost model {objective!r}; expected one of "
            f"{tuple(COST_MODELS)} or a CostModel instance"
        )
    return factory()
