"""Static cost model: expected translation cost of MIG nodes.

The rewriting algorithm (paper §4.1) optimizes the MIG "w.r.t. the expected
number of instructions and required RRAMs in the translated PLiM program"
*before* compilation runs, so it needs a per-node estimate of how expensive
translation will be.  The estimate follows the §4.2.2 case analysis:

* exactly **one** complemented (non-constant) child is free — operand B
  absorbs it (``RM3`` computes ``⟨A ¬B Z⟩``);
* every complemented child beyond the first costs one *negation*:
  two instructions and one extra RRAM;
* a node with **no** complemented child needs one negation too — unless a
  constant child lets operand B be the constant's inverse for free.

The model intentionally ignores dynamic effects (complement caching, cell
reuse); those depend on the schedule and are handled by the compiler itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mig.graph import Mig

#: instructions needed to materialize one complement into a work cell
NEGATION_INSTRUCTIONS = 2
#: work cells needed per materialized complement
NEGATION_RRAMS = 1


def classify_children(mig: Mig, node: int) -> tuple[int, int, bool]:
    """Return ``(num_nonconst, num_complemented_nonconst, has_const_child)``."""
    nonconst = 0
    complemented = 0
    has_const = False
    for child in mig.children(node):
        if child.is_const:
            has_const = True
        else:
            nonconst += 1
            if child.inverted:
                complemented += 1
    return nonconst, complemented, has_const


def negations_needed(num_complemented: int, has_const: bool) -> int:
    """Complement materializations a node's translation will need.

    ``num_complemented`` counts complemented non-constant children.
    """
    if num_complemented >= 1:
        return num_complemented - 1  # operand B absorbs one
    if has_const:
        return 0  # operand B becomes the constant's inverse
    return 1  # a complement must be fabricated for operand B


def node_instruction_cost(mig: Mig, node: int) -> int:
    """Expected instructions to translate ``node`` (≥ 1)."""
    _, complemented, has_const = classify_children(mig, node)
    return 1 + NEGATION_INSTRUCTIONS * negations_needed(complemented, has_const)


def estimate_instructions(mig: Mig, po_negation_cost: int = 0) -> int:
    """Expected total instructions for the whole MIG.

    ``po_negation_cost`` charges that many instructions per complemented
    primary output (0 reproduces the paper's accounting, where outputs may
    rest in complemented form; 2 models an explicit fix-up).
    """
    total = sum(node_instruction_cost(mig, v) for v in mig.gates())
    if po_negation_cost:
        total += po_negation_cost * sum(1 for po in mig.pos() if po.inverted and not po.is_const)
    return total


def estimate_extra_rrams(mig: Mig) -> int:
    """Expected work cells spent on complement materializations alone.

    A lower bound companion to :func:`estimate_instructions`; the true #R
    additionally depends on scheduling and cell reuse.
    """
    total = 0
    for v in mig.gates():
        _, complemented, has_const = classify_children(mig, v)
        total += NEGATION_RRAMS * negations_needed(complemented, has_const)
    return total


@dataclass(frozen=True)
class CostEstimate:
    """Bundle of the static estimates for reporting."""

    num_gates: int
    instructions: int
    extra_rrams: int


def estimate(mig: Mig, po_negation_cost: int = 0) -> CostEstimate:
    """Collect a :class:`CostEstimate` for ``mig``."""
    return CostEstimate(
        num_gates=mig.num_gates,
        instructions=estimate_instructions(mig, po_negation_cost),
        extra_rrams=estimate_extra_rrams(mig),
    )
