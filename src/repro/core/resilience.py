"""Fault-tolerant task execution: policies, crash recovery, fault injection.

Every parallel surface of the package — :func:`~repro.core.batch.compile_many`,
:func:`~repro.core.pareto.pareto_sweep`, ``run_table1``, the benchmark
drivers — funnels through :func:`~repro.core.batch.parallel_map`, which in
turn runs on this module's :func:`run_tasks` engine.  The engine replaces
the old bare ``pool.map`` with *per-task supervision*, so one bad task no
longer aborts a whole sweep with a raw ``BrokenProcessPool`` traceback:

* **policies** — a :class:`TaskPolicy` declares per-task deadlines
  (``timeout_s``), retry counts with exponential ``backoff``, and what a
  *permanent* failure means: ``on_error="raise"`` (the default — behave
  like the old pool), ``"skip"`` (the failed slot becomes a structured
  :class:`TaskFailure` record, every other result survives), or
  ``"degrade"`` (one last unsupervised attempt inline in the driver
  process before recording the failure — recovers pool-environment
  failures at the cost of isolation).
* **crash recovery** — every worker process is supervised individually
  over its own pipe, so a worker killed mid-task (OOM killer,
  ``os._exit``, segfault) is *attributed to exactly the task it was
  running*; the worker is respawned and only that task is retried or
  recorded, while the rest of the pool keeps working.
* **deadlines** — a task past ``timeout_s`` has its worker killed (the
  only way to cancel running work in CPython) and respawned; the hung
  task is retried or recorded per policy.
* **determinism** — results are keyed by input index and reported in
  input order, so for a fixed fault pattern the output is identical for
  any worker count, exactly like the rest of the package.
* **fault injection** — a :class:`FaultPlan` pickled into the worker
  payloads can raise, sleep past a deadline, or ``os._exit`` the worker
  at chosen task indices and attempts, so all of the above is tested
  against *real* worker death, not mocks (see ``tests/test_resilience.py``).

Example — a crashing task under ``on_error="skip"`` costs exactly one slot:

    >>> from repro.core.resilience import TaskPolicy, TaskFailure
    >>> policy = TaskPolicy(on_error="skip")
    >>> policy.retries, policy.on_error
    (0, 'skip')
    >>> TaskPolicy(retries=-1)
    Traceback (most recent call last):
      ...
    repro.errors.ReproError: TaskPolicy.retries must be >= 0, got -1
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

from repro.errors import ReproError

__all__ = [
    "Fault",
    "FaultPlan",
    "TaskError",
    "TaskFailure",
    "TaskPolicy",
    "iter_tasks",
    "run_tasks",
    "split_failures",
]

#: permanent-failure dispositions a :class:`TaskPolicy` may declare
ON_ERROR_MODES = ("raise", "skip", "degrade")

#: failure kinds a :class:`TaskFailure` reports
FAILURE_KINDS = ("error", "timeout", "crash")

#: exit code of an injected ``os._exit`` crash (recognizable in messages)
_INJECTED_EXIT_CODE = 13


# ----------------------------------------------------------------------
# policies and failure records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TaskPolicy:
    """How the pool treats one task's misbehavior.

    ``timeout_s`` is the per-*attempt* wall-clock deadline (``None`` = no
    deadline; deadlines are enforced by killing the worker, which is the
    only way to cancel running work in CPython, so they only apply on the
    pooled path — inline execution cannot be cancelled).  ``retries`` is
    how many times a failed task is re-run before the failure is
    permanent (``retries=2`` = up to 3 attempts); ``backoff`` seconds
    delay the n-th retry by ``backoff * 2**(n-1)`` without blocking other
    tasks.  ``on_error`` decides what a permanent failure does to the
    whole run — see the module docstring.

    Invalid values raise :class:`~repro.errors.ReproError` at
    construction, so a mistyped ``--timeout -1`` fails loudly at the CLI
    boundary instead of silently drifting through the plumbing.
    """

    timeout_s: Optional[float] = None
    retries: int = 0
    backoff: float = 0.5
    on_error: str = "raise"

    def __post_init__(self):
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ReproError(
                f"TaskPolicy.timeout_s must be positive (or None), got "
                f"{self.timeout_s!r}"
            )
        if not isinstance(self.retries, int) or self.retries < 0:
            raise ReproError(
                f"TaskPolicy.retries must be >= 0, got {self.retries!r}"
            )
        if self.backoff < 0:
            raise ReproError(
                f"TaskPolicy.backoff must be >= 0, got {self.backoff!r}"
            )
        if self.on_error not in ON_ERROR_MODES:
            raise ReproError(
                f"TaskPolicy.on_error must be one of {ON_ERROR_MODES}, "
                f"got {self.on_error!r}"
            )

    def retry_delay(self, attempt: int) -> float:
        """Seconds to wait before re-running after failed attempt ``attempt``."""
        return self.backoff * (2 ** (attempt - 1)) if self.backoff else 0.0


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task's permanent failure.

    Under ``on_error="skip"``/``"degrade"`` these records take the failed
    task's slot in the (input-ordered) result list, so callers always see
    *where* something failed, with what, and after how many attempts —
    instead of one opaque pool exception that discards every result.
    """

    index: int
    #: "error" (the task raised), "timeout" (deadline exceeded, worker
    #: killed), or "crash" (the worker process died mid-task)
    kind: str
    message: str
    #: exception class name for ``kind="error"``, ``""`` otherwise
    error_type: str = ""
    attempts: int = 1

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "message": self.message,
            "error_type": self.error_type,
            "attempts": self.attempts,
        }

    @staticmethod
    def from_dict(data: dict) -> "TaskFailure":
        return TaskFailure(
            index=data["index"],
            kind=data["kind"],
            message=data["message"],
            error_type=data.get("error_type", ""),
            attempts=data.get("attempts", 1),
        )

    def __repr__(self) -> str:
        what = f"{self.error_type}: " if self.error_type else ""
        return (
            f"<TaskFailure #{self.index} {self.kind} after "
            f"{self.attempts} attempt(s): {what}{self.message}>"
        )


class TaskError(ReproError):
    """A task failed permanently under ``on_error="raise"``.

    Raised for *timeout* and *crash* failures (there is no original
    exception to re-raise for those); a task that raised an ordinary
    exception re-raises that exception itself, like the old pool did.
    The structured record is available as ``.failure``.
    """

    def __init__(self, failure: TaskFailure):
        super().__init__(
            f"task {failure.index} failed permanently "
            f"({failure.kind} after {failure.attempts} attempt(s)): "
            f"{failure.message}"
        )
        self.failure = failure


# ----------------------------------------------------------------------
# deterministic fault injection
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Fault:
    """One injected fault, applied before the task function runs.

    ``kind`` is ``"raise"`` (raise :class:`InjectedFault`), ``"sleep"``
    (sleep ``seconds`` — long enough and the task blows its deadline), or
    ``"exit"`` (``os._exit`` the worker process mid-task — a hard crash
    the supervisor must recover from).  ``attempts`` lists the attempt
    numbers the fault fires on (default: first attempt only, so retries
    observe recovery); ``worker_only=True`` restricts it to pooled worker
    processes, which is how the ``degrade`` disposition's inline
    last-resort attempt is exercised.
    """

    kind: str
    seconds: float = 0.0
    message: str = "injected fault"
    attempts: tuple = (1,)
    worker_only: bool = False

    def __post_init__(self):
        if self.kind not in ("raise", "sleep", "exit"):
            raise ReproError(
                f"Fault.kind must be raise/sleep/exit, got {self.kind!r}"
            )

    def fires(self, attempt: int) -> bool:
        return not self.attempts or attempt in self.attempts

    def apply(self, in_worker: bool) -> None:
        """Execute the fault (in the worker, or inline when allowed)."""
        if self.worker_only and not in_worker:
            return
        if self.kind == "raise":
            raise InjectedFault(self.message)
        if self.kind == "sleep":
            time.sleep(self.seconds)
            return
        if in_worker:  # "exit": kill the hosting process, hard
            os._exit(_INJECTED_EXIT_CODE)
        # Inline there is no worker to kill; simulate the crash as a
        # SimulatedCrash the engine records as kind="crash" (never take
        # the driver process down).
        raise SimulatedCrash(self.message)


class InjectedFault(RuntimeError):
    """The exception a ``Fault(kind="raise")`` raises inside a task."""


class SimulatedCrash(BaseException):
    """Stand-in for worker death on the inline path (see :meth:`Fault.apply`)."""


class FaultPlan:
    """A deterministic schedule of :class:`Fault`\\ s, keyed by task index.

    Plans are plain picklable data shipped inside worker payloads, so the
    injected behavior happens in the *real* execution context — a genuine
    ``os._exit`` in a genuine pool worker.  Multi-phase drivers
    (``pareto_sweep`` runs an anchor map then a chain map) key their
    faults by phase: ``FaultPlan(phases={"chain": {0: Fault("exit")}})``
    and each phase consumes its :meth:`scoped` view.
    """

    def __init__(
        self,
        faults: Optional[Mapping[int, Fault]] = None,
        *,
        phases: Optional[Mapping[str, Mapping[int, Fault]]] = None,
    ):
        self._phases: dict[str, dict[int, Fault]] = {
            name: dict(table) for name, table in (phases or {}).items()
        }
        if faults:
            self._phases.setdefault("", {}).update(faults)

    def scoped(self, phase: str) -> "FaultPlan":
        """The sub-plan for one named phase (empty when none declared)."""
        return FaultPlan(self._phases.get(phase, {}))

    def fault_for(self, index: int, attempt: int) -> Optional[Fault]:
        """The fault to apply to attempt ``attempt`` of task ``index``."""
        fault = self._phases.get("", {}).get(index)
        if fault is not None and fault.fires(attempt):
            return fault
        return None

    def __bool__(self) -> bool:
        return any(self._phases.values())

    def __repr__(self) -> str:
        n = sum(len(t) for t in self._phases.values())
        return f"<FaultPlan {n} fault(s)>"


# ----------------------------------------------------------------------
# the worker side
# ----------------------------------------------------------------------


def _worker_main(conn, fn) -> None:
    """Worker process loop: receive ``(index, attempt, item, fault)``,
    run ``fn(item)``, send ``(index, ok, payload, error_type, message)``.

    Exceptions are shipped back as data (the exception object itself when
    it pickles, a description otherwise) — the worker survives ordinary
    task errors and only dies on injected exits, signals, or a broken
    pipe to the supervisor.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        except KeyboardInterrupt:
            return
        if message is None:
            return
        index, attempt, item, fault = message
        try:
            if fault is not None:
                fault.apply(in_worker=True)
            result = fn(item)
        except KeyboardInterrupt:
            return
        except BaseException as exc:
            try:
                conn.send((index, False, exc, type(exc).__name__, str(exc)))
            except Exception:
                # the exception itself does not pickle; ship a description
                try:
                    conn.send((index, False, None, type(exc).__name__, str(exc)))
                except Exception:
                    return
            continue
        try:
            conn.send((index, True, result, "", ""))
        except Exception as exc:
            # the *result* does not pickle — report it as a task error
            # rather than dying and masquerading as a crash
            try:
                conn.send(
                    (index, False, None, type(exc).__name__,
                     f"task result could not be pickled: {exc}")
                )
            except Exception:
                return


class _Worker:
    """One supervised worker process with its private duplex pipe."""

    __slots__ = ("process", "conn", "index", "attempt", "deadline")

    def __init__(self, ctx, fn):
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child, fn), daemon=True
        )
        self.process.start()
        child.close()
        self.index: Optional[int] = None  # task currently running, if any
        self.attempt = 0
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.index is not None

    def assign(self, index: int, attempt: int, item, fault, timeout_s) -> None:
        self.conn.send((index, attempt, item, fault))
        self.index = index
        self.attempt = attempt
        self.deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )

    def finish(self) -> None:
        self.index = None
        self.attempt = 0
        self.deadline = None

    def stop(self, *, graceful: bool) -> None:
        """Tear the worker down; ``graceful`` tries a clean exit first."""
        if graceful and self.process.is_alive() and not self.busy:
            try:
                self.conn.send(None)
            except (OSError, ValueError):
                pass
            self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - stuck in a signal
            self.process.kill()
            self.process.join(timeout=1.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# the supervisor (driver side)
# ----------------------------------------------------------------------


def _describe_exit(process) -> str:
    code = process.exitcode
    if code is not None and code < 0:
        return f"worker pid {process.pid} killed by signal {-code}"
    return f"worker pid {process.pid} exited with code {code} mid-task"


class _Supervisor:
    """Runs ``fn`` over ``items`` on supervised workers under ``policy``."""

    def __init__(self, fn, items, workers, policy, fault_plan):
        self.fn = fn
        self.items = items
        self.policy = policy
        self.plan = fault_plan
        self.size = min(workers, len(items))
        self.ctx = multiprocessing.get_context()
        self.workers: list[_Worker] = []
        self.outcomes: dict[int, Any] = {}
        self.attempts = dict.fromkeys(range(len(items)), 0)
        # (ready_time, index): tasks awaiting (re)assignment; ready_time
        # implements retry backoff without blocking the whole supervisor
        self.queue: list[tuple[float, int]] = [(0.0, i) for i in range(len(items))]

    # -- event handling ------------------------------------------------

    def _assign_ready(self) -> None:
        now = time.monotonic()
        idle = [w for w in self.workers if not w.busy]
        while idle and self.queue and self.queue[0][0] <= now:
            _, index = self.queue.pop(0)
            attempt = self.attempts[index] + 1
            self.attempts[index] = attempt
            worker = idle.pop()
            fault = self.plan.fault_for(index, attempt) if self.plan else None
            worker.assign(
                index, attempt, self.items[index], fault, self.policy.timeout_s
            )

    def _wait_timeout(self) -> Optional[float]:
        now = time.monotonic()
        marks = [w.deadline for w in self.workers if w.busy and w.deadline]
        if self.queue and any(not w.busy for w in self.workers):
            marks.append(self.queue[0][0])
        if not marks:
            return None
        return max(0.0, min(marks) - now) + 0.01

    def _handle_message(self, worker: _Worker) -> None:
        index, ok, payload, error_type, message = worker.conn.recv()
        worker.finish()
        if ok:
            self.outcomes[index] = _Success(payload)
        else:
            self._task_failed(index, "error", message, error_type, payload)

    def _worker_died(self, worker: _Worker) -> None:
        index = worker.index
        worker.stop(graceful=False)
        self.workers.remove(worker)
        if index is None:
            # died while idle (e.g. crash-fault straggler): just replace
            self._replenish()
            return
        self._task_failed(index, "crash", _describe_exit(worker.process), "")
        self._replenish()

    def _kill_overdue(self) -> None:
        now = time.monotonic()
        for worker in list(self.workers):
            if worker.busy and worker.deadline and worker.deadline < now:
                index = worker.index
                worker.stop(graceful=False)
                self.workers.remove(worker)
                self._task_failed(
                    index,
                    "timeout",
                    f"task exceeded its {self.policy.timeout_s}s deadline "
                    f"(worker pid {worker.process.pid} killed)",
                    "",
                )
                self._replenish()

    def _replenish(self) -> None:
        """Keep one worker per outstanding (queued or running) task slot."""
        outstanding = len(self.queue) + sum(1 for w in self.workers if w.busy)
        while len(self.workers) < min(self.size, outstanding):
            self.workers.append(_Worker(self.ctx, self.fn))

    def _task_failed(self, index, kind, message, error_type, exc=None) -> None:
        attempt = self.attempts[index]
        if attempt <= self.policy.retries:
            delay = self.policy.retry_delay(attempt)
            self.queue.append((time.monotonic() + delay, index))
            self.queue.sort()
            return
        failure = TaskFailure(
            index=index,
            kind=kind,
            message=message,
            error_type=error_type,
            attempts=attempt,
        )
        self.outcomes[index] = self._dispose(failure, exc)

    def _dispose(self, failure: TaskFailure, exc):
        """Apply the policy's permanent-failure disposition."""
        if self.policy.on_error == "raise":
            if exc is not None and isinstance(exc, Exception):
                raise exc
            raise TaskError(failure)
        if self.policy.on_error == "degrade":
            # last resort: run unsupervised in this process (no deadline,
            # no isolation) — recovers pool-environment failures
            try:
                return _Success(
                    _run_one_inline(
                        self.fn,
                        self.items[failure.index],
                        failure.index,
                        failure.attempts + 1,
                        self.plan,
                    )
                )
            except SimulatedCrash:
                pass
            except Exception:
                pass
        return failure

    # -- the main loop -------------------------------------------------

    def run(self) -> Iterator[Any]:
        try:
            self._replenish()
            emitted = 0
            while len(self.outcomes) < len(self.items):
                self._assign_ready()
                triggers = {}
                for worker in self.workers:
                    triggers[worker.conn] = worker
                    triggers[worker.process.sentinel] = worker
                ready = multiprocessing.connection.wait(
                    list(triggers), timeout=self._wait_timeout()
                )
                seen = set()
                for obj in ready:
                    worker = triggers[obj]
                    if id(worker) in seen or worker not in self.workers:
                        continue
                    seen.add(id(worker))
                    handled = False
                    try:
                        if worker.conn.poll():
                            self._handle_message(worker)
                            handled = True
                    except (EOFError, OSError):
                        # broken pipe == the worker is gone, whatever
                        # is_alive says right now
                        self._worker_died(worker)
                        continue
                    if not handled and not worker.process.is_alive():
                        self._worker_died(worker)
                self._kill_overdue()
                while emitted < len(self.items) and emitted in self.outcomes:
                    outcome = self.outcomes[emitted]
                    yield outcome.value if isinstance(outcome, _Success) else outcome
                    emitted += 1
        finally:
            for worker in self.workers:
                worker.stop(graceful=not worker.busy)
            self.workers.clear()


@dataclass
class _Success:
    """Wrapper distinguishing a genuine result from a TaskFailure slot."""

    value: Any = field(default=None)


# ----------------------------------------------------------------------
# inline execution (one worker / one item) and the public API
# ----------------------------------------------------------------------


def _run_one_inline(fn, item, index, attempt, plan):
    fault = plan.fault_for(index, attempt) if plan else None
    if fault is not None:
        fault.apply(in_worker=False)
    return fn(item)


def _iter_inline(fn, items, policy, plan) -> Iterator[Any]:
    """The no-pool path: same policy semantics, minus deadlines (running
    work cannot be cancelled in-process) and minus real crashes (injected
    ``exit`` faults surface as ``kind="crash"`` failures instead of
    taking the driver down)."""
    for index, item in enumerate(items):
        attempt = 0
        while True:
            attempt += 1
            try:
                yield _run_one_inline(fn, item, index, attempt, plan)
                break
            except SimulatedCrash as crash:
                kind, error_type, message, exc = "crash", "", str(crash), None
            except Exception as caught:
                kind, error_type, message, exc = (
                    "error", type(caught).__name__, str(caught), caught
                )
            if attempt <= policy.retries:
                delay = policy.retry_delay(attempt)
                if delay:
                    time.sleep(delay)
                continue
            failure = TaskFailure(
                index=index, kind=kind, message=message,
                error_type=error_type, attempts=attempt,
            )
            if policy.on_error == "raise":
                if exc is not None:
                    raise exc
                raise TaskError(failure)
            if policy.on_error == "degrade":
                try:
                    yield _run_one_inline(fn, item, index, attempt + 1, plan)
                    break
                except (SimulatedCrash, Exception):
                    pass
            yield failure
            break


def iter_tasks(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    workers: int,
    policy: Optional[TaskPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    force_pool: bool = False,
) -> Iterator[Any]:
    """Stream ``fn(item)`` outcomes in input order under ``policy``.

    The streaming core of :func:`run_tasks` (and of
    :func:`repro.core.batch.parallel_imap`): each yielded outcome is
    either the task's result or — under ``on_error="skip"``/``"degrade"``
    after an unrecovered failure — its :class:`TaskFailure` record.
    ``workers`` is the *resolved* pool size; ``workers <= 1`` (or a
    single item) runs inline with the same retry/disposition semantics
    but no deadlines or crash isolation.

    ``force_pool=True`` supervises even a single item on a real worker
    process — the seam request-at-a-time callers (``plimc serve``) use to
    get enforceable deadlines and crash isolation for one task, which the
    inline fast path cannot provide.
    """
    items = list(items)
    policy = policy or TaskPolicy()
    if not items:
        return iter(())
    if not force_pool and (workers <= 1 or len(items) <= 1):
        return _iter_inline(fn, items, policy, fault_plan)
    return _Supervisor(fn, items, max(1, workers), policy, fault_plan).run()


def run_tasks(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    workers: int,
    policy: Optional[TaskPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    force_pool: bool = False,
) -> list:
    """``[fn(x) for x in items]`` under ``policy``; failed slots become
    :class:`TaskFailure` records (``on_error="skip"``/``"degrade"``) or
    raise (``on_error="raise"``, the default).  See :func:`iter_tasks`.
    """
    return list(
        iter_tasks(
            fn,
            items,
            workers=workers,
            policy=policy,
            fault_plan=fault_plan,
            force_pool=force_pool,
        )
    )


def split_failures(outcomes: Sequence[Any]) -> tuple[list, list[TaskFailure]]:
    """Partition a :func:`run_tasks` result into (results, failures)."""
    results, failures = [], []
    for outcome in outcomes:
        (failures if isinstance(outcome, TaskFailure) else results).append(outcome)
    return results, failures
