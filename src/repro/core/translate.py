"""Node translation (paper §4.2.2): one MIG gate → RM3 instructions.

``RM3(A, B, Z)`` computes ``Z ← ⟨A, ¬B, Z⟩``, so translating a gate
``⟨x y z⟩`` means deciding which child becomes the *inverted* operand B,
which child's value pre-loads the destination cell Z, and which is read
directly as A.  In the ideal case — exactly one complemented child (B) and
one releasable plain child (Z) — a gate costs a single instruction and zero
fresh cells; every deviation costs extra instructions and possibly extra
RRAMs.  This module implements the paper's full case analysis:

* operand B: cases (a)–(h) of Fig. 5,
* destination Z: cases (a)–(e) of Fig. 6,
* operand A: the four rules at the end of §4.2.2,

plus the *naïve* child-order selection of §3's motivating example (operands
A, B and destination Z taken from children 1, 2, 3 respectively), which is
the paper's baseline translator.

The :class:`TranslationState` tracks, per MIG node, the cell holding its
value, an optional cell holding its *complement* ("it is remembered for
future use", Fig. 5(f)), and the number of remaining readers — when that
count reaches zero the node's cells go back to the allocator (§4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.allocator import RramAllocator
from repro.errors import CompilationError
from repro.mig.context import AnalysisContext
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.plim.isa import Instruction, Operand, ONE, ZERO
from repro.plim.program import Program

#: sentinel: a node's value cell was overwritten in place by a parent
CONSUMED = -1


class TranslationState:
    """Mutable state shared by all node translations of one compilation."""

    def __init__(
        self,
        source: "Mig | AnalysisContext",
        program: Program,
        allocator: RramAllocator,
        remaining_uses: Optional[dict[int, int]] = None,
        complement_caching: bool = True,
        max_work_cells: Optional[int] = None,
    ):
        """``source`` is the graph being translated, either bare or wrapped
        in an :class:`AnalysisContext` (the compiler passes the context so
        the initial use counts come from its cache).  ``remaining_uses``
        may override the context-derived counts; it is mutated in place.
        """
        context = source if isinstance(source, AnalysisContext) else AnalysisContext(source)
        self.context = context
        self.mig = context.mig
        if remaining_uses is None:
            remaining_uses = context.fresh_uses()
        self.program = program
        self.allocator = allocator
        self.complement_caching = complement_caching
        #: hard budget on distinct work cells (#R); None = unlimited.
        #: Under pressure, cached complements are evicted (they are pure
        #: caches — recomputable from the node's value cell), implementing
        #: the paper's future-work item "constraints in the optimization,
        #: e.g., a limited number of RRAMs".
        self.max_work_cells = max_work_cells
        #: cells referenced by the node currently being translated —
        #: protected from cache eviction until its RM3 is emitted.
        self._protected: set[int] = set()
        #: node → cell currently holding its value (PIs: their input cell)
        self.value_cell: dict[int, int] = {}
        #: node → cell holding its complement (cache of Fig. 5(f))
        self.compl_cell: dict[int, int] = {}
        #: node → number of future reads (parent edges + PO edges)
        self.remaining_uses = remaining_uses
        #: temp cells to release right after the current node's RM3
        self._pending_temps: list[int] = []
        #: incremental cell → display-name map (input names, then @X1, @X2 ...)
        self._cell_names: dict[int, str] = {}
        for pi in self.mig.pis():
            name = self.mig.pi_name(pi.node)
            address = program.input_cells[name]
            self.value_cell[pi.node] = address
            self._cell_names[address] = name

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------

    def emit(self, a: Operand, b: Operand, z: int, comment: str = "") -> None:
        """Append one RM3 instruction."""
        self.program.append(Instruction(a, b, z, comment))

    def alloc(self) -> int:
        """Request a work cell and record it in the program's inventory.

        When a ``max_work_cells`` budget is set and a fresh address would
        exceed it, a cached complement cell is evicted (oldest first) so
        its address can be recycled; if nothing is evictable, compilation
        fails — the function genuinely needs more cells.
        """
        if (
            self.max_work_cells is not None
            and self.allocator.num_free == 0
            and self.allocator.num_allocated >= self.max_work_cells
        ):
            self._evict_complement_cache()
        address = self.allocator.request()
        self.program.register_work_cell(address)
        if address not in self._cell_names:
            self._cell_names[address] = f"@X{len(self.program.work_cells)}"
        self._protected.add(address)
        return address

    def _evict_complement_cache(self) -> None:
        """Free the oldest unprotected cached complement (or fail)."""
        victim = next(
            (
                (node, address)
                for node, address in self.compl_cell.items()
                if address not in self._protected
            ),
            None,
        )
        if victim is not None:
            node, address = victim
            del self.compl_cell[node]
            self.allocator.release(address)
            return
        raise CompilationError(
            f"work-cell budget of {self.max_work_cells} exceeded and no "
            "cached complement is evictable; the function needs more RRAMs"
        )

    def begin_node(self) -> None:
        """Reset per-node state (eviction protection)."""
        self._protected.clear()

    def protect(self, address: int) -> None:
        """Shield ``address`` from cache eviction for the current node."""
        self._protected.add(address)

    def alloc_temp(self) -> int:
        """Work cell released automatically after the current node."""
        address = self.alloc()
        self._pending_temps.append(address)
        return address

    def release_temps(self) -> None:
        """Release the per-node temporaries (naïve mode bookkeeping)."""
        for address in self._pending_temps:
            self.allocator.release(address)
        self._pending_temps.clear()

    def cell_label(self, address: int) -> str:
        """Readable cell name for instruction comments."""
        return self._cell_names.get(address, f"@{address}")

    def emit_set_const(self, address: int, bit: int, target: str = "") -> None:
        """``X ← bit`` in one instruction, from any prior cell state."""
        if bit:
            self.emit(ONE, ZERO, address, f"{target or self.cell_label(address)} <- 1")
        else:
            self.emit(ZERO, ONE, address, f"{target or self.cell_label(address)} <- 0")

    def emit_load(self, address: int, source: Operand, comment: str) -> None:
        """``X ← source`` in two instructions (clear, then load)."""
        self.emit_set_const(address, 0)
        self.emit(source, ZERO, address, comment)

    def emit_load_compl(self, address: int, source: Operand, comment: str) -> None:
        """``X ← ¬source`` in two instructions (clear, then inverted load)."""
        self.emit_set_const(address, 0)
        self.emit(ONE, source, address, comment)

    # ------------------------------------------------------------------
    # value access
    # ------------------------------------------------------------------

    def value_operand(self, node: int) -> Operand:
        """Operand reading ``node``'s plain value from its cell."""
        try:
            address = self.value_cell[node]
        except KeyError:
            raise CompilationError(f"node {node} has not been computed yet") from None
        if address == CONSUMED:
            raise CompilationError(f"node {node}'s value cell was already overwritten")
        return Operand.cell(address)

    def node_label(self, signal: Signal) -> str:
        """Readable label of a child signal for comments."""
        return self.mig.signal_name(signal)

    def materialize_complement(self, node: int, as_temp: bool = False) -> int:
        """Ensure a cell holds ``¬node``; returns its address.

        With caching enabled the cell is remembered for future readers and
        released together with the node; with ``as_temp`` (naïve mode) it
        is queued for release right after the current node.
        """
        if self.complement_caching and node in self.compl_cell:
            self._protected.add(self.compl_cell[node])
            return self.compl_cell[node]
        address = self.alloc_temp() if as_temp else self.alloc()
        label = self.cell_label(address)
        name = self.node_label(Signal.make(node, True))
        self.emit_load_compl(address, self.value_operand(node), f"{label} <- {name}")
        if self.complement_caching and not as_temp:
            self.compl_cell[node] = address
        return address

    # ------------------------------------------------------------------
    # reference counting / release (paper §4.2.3)
    # ------------------------------------------------------------------

    def consume_children(self, node: int) -> None:
        """Decrement use counts of ``node``'s children, releasing cells."""
        for child in self.mig.children(node):
            if child.is_const:
                continue
            self._decrement(child.node)

    def _decrement(self, node: int) -> None:
        uses = self.remaining_uses[node] - 1
        if uses < 0:
            raise CompilationError(f"use count of node {node} went negative")
        self.remaining_uses[node] = uses
        if uses == 0:
            self._release_node(node)

    def _release_node(self, node: int) -> None:
        """All readers done: hand the node's cells back to the allocator."""
        if self.mig.is_gate(node):
            address = self.value_cell.get(node)
            if address is not None and address != CONSUMED:
                self.allocator.release(address)
                self.value_cell[node] = CONSUMED
        # Primary-input cells are not allocator-managed, but a cached
        # complement of a PI is an ordinary work cell.
        compl = self.compl_cell.pop(node, None)
        if compl is not None:
            self.allocator.release(compl)


@dataclass(frozen=True)
class NodePlan:
    """Resolved operands for one gate's final RM3 instruction."""

    a: Operand
    b: Operand
    z: int


def translate_node(state: TranslationState, node: int, naive: bool = False) -> None:
    """Translate one gate into RM3 instructions (§4.2.2 or naïve §3)."""
    state.begin_node()
    children = state.mig.children(node)
    if naive:
        plan = _plan_child_order(state, children)
    else:
        plan = _plan_cases(state, children)
    state.emit(plan.a, plan.b, plan.z, f"{state.cell_label(plan.z)} <- n{node}")
    state.value_cell[node] = plan.z
    state.release_temps()
    state.consume_children(node)


# ----------------------------------------------------------------------
# the paper's case analysis (Figs. 5 and 6)
# ----------------------------------------------------------------------


def _plan_cases(state: TranslationState, children) -> NodePlan:
    b_index, b_operand = _select_operand_b(state, children)
    rest = [i for i in range(3) if i != b_index]
    z_index, z_cell = _select_destination(state, children, rest)
    (a_index,) = [i for i in rest if i != z_index]
    a_operand = _operand_a(state, children[a_index])
    return NodePlan(a=a_operand, b=b_operand, z=z_cell)


def _select_operand_b(state: TranslationState, children) -> tuple[int, Operand]:
    """Fig. 5: choose the child that enters the majority complemented."""
    uses = state.remaining_uses
    complemented = [
        (i, s) for i, s in enumerate(children) if not s.is_const and s.inverted
    ]
    plain = [
        (i, s) for i, s in enumerate(children) if not s.is_const and not s.inverted
    ]
    consts = [(i, s) for i, s in enumerate(children) if s.is_const]

    if len(complemented) == 1:
        # (a) ideal case: the single complemented child.
        i, s = complemented[0]
        return i, state.value_operand(s.node)
    if len(complemented) >= 2:
        if consts:
            # (b) several complemented children but a constant gives the
            # remaining operands flexibility; absorb a non-constant one —
            # prefer one with further readers (it cannot be a destination).
            for i, s in complemented:
                if uses[s.node] > 1:
                    return i, state.value_operand(s.node)
            i, s = complemented[0]
            return i, state.value_operand(s.node)
        # (d) a multi-fanout complemented child cannot serve as the
        # destination anyway, so let B claim it ...
        for i, s in complemented:
            if uses[s.node] > 1:
                return i, state.value_operand(s.node)
        # (e) ... otherwise the first complemented child.
        i, s = complemented[0]
        return i, state.value_operand(s.node)
    # No complemented child from here on.
    if consts:
        # (c) B becomes the inverse of the constant (¬B is the constant).
        _, s = consts[0]
        return consts[0][0], Operand.const(1 - s.const_value)
    if state.complement_caching:
        # (f) a child whose complement is already stored in some cell.
        for i, s in plain:
            if s.node in state.compl_cell:
                address = state.compl_cell[s.node]
                state.protect(address)
                return i, Operand.cell(address)
    # (g) complement a multi-fanout child (excluded as destination) ...
    for i, s in plain:
        if uses[s.node] > 1:
            return i, Operand.cell(
                state.materialize_complement(s.node, as_temp=not state.complement_caching)
            )
    # (h) ... or, failing everything, the first child.
    i, s = plain[0]
    return i, Operand.cell(
        state.materialize_complement(s.node, as_temp=not state.complement_caching)
    )


def _select_destination(
    state: TranslationState, children, candidates: list[int]
) -> tuple[int, int]:
    """Fig. 6: choose the destination cell Z among the two non-B children.

    Returns ``(child_index, cell_address)``.  The cell must hold the chosen
    child edge's value when the final RM3 executes.
    """
    uses = state.remaining_uses
    mig = state.mig

    # (a) complemented child, last use, complement already in a cell:
    # overwrite that cell.
    for i in candidates:
        s = children[i]
        if s.is_const or not s.inverted:
            continue
        if uses[s.node] == 1 and s.node in state.compl_cell:
            address = state.compl_cell.pop(s.node)
            state.protect(address)
            return i, address
    # (b) plain gate child on its last use: overwrite its value cell.
    for i in candidates:
        s = children[i]
        if s.is_const or s.inverted or not mig.is_gate(s.node):
            continue
        if uses[s.node] == 1:
            address = state.value_cell[s.node]
            if address == CONSUMED:
                raise CompilationError(f"node {s.node} consumed twice")
            state.value_cell[s.node] = CONSUMED  # ownership moves to the parent
            state.protect(address)
            return i, address
    # (c) constant child: fresh cell initialized to the constant.
    for i in candidates:
        s = children[i]
        if s.is_const:
            address = state.alloc()
            state.emit_set_const(address, s.const_value)
            return i, address
    # (d) complemented child: fresh cell loaded with its complement.
    for i in candidates:
        s = children[i]
        if s.inverted:
            address = state.alloc()
            label = state.cell_label(address)
            name = state.node_label(s)
            state.emit_load_compl(address, state.value_operand(s.node), f"{label} <- {name}")
            return i, address
    # (e) plain child (multi-fanout or a primary input): copy its value.
    i = candidates[0]
    s = children[i]
    address = state.alloc()
    label = state.cell_label(address)
    state.emit_load(address, state.value_operand(s.node), f"{label} <- {state.node_label(s)}")
    return i, address


def _operand_a(state: TranslationState, s: Signal) -> Operand:
    """Operand A rules (end of §4.2.2) for the remaining child."""
    if s.is_const:
        # (a) constant child, complement edge folded into the value.
        return Operand.const(s.const_value)
    if not s.inverted:
        # (b) plain child: read its value cell.
        return state.value_operand(s.node)
    if s.node in state.compl_cell:
        # (c) complement already available.
        address = state.compl_cell[s.node]
        state.protect(address)
        return Operand.cell(address)
    # (d) fabricate (and cache) the complement.
    return Operand.cell(
        state.materialize_complement(s.node, as_temp=not state.complement_caching)
    )


# ----------------------------------------------------------------------
# naïve child-order selection (paper §3)
# ----------------------------------------------------------------------


def _plan_child_order(state: TranslationState, children) -> NodePlan:
    """Operands in child order: A ← child 1, B ← child 2, Z ← child 3."""
    a_sig, b_sig, z_sig = children
    # Operand B must deliver the child's value through the built-in
    # inversion: a complemented edge reads the child's plain cell, a plain
    # edge needs the complement fabricated (never cached in naïve mode).
    if b_sig.is_const:
        b_operand = Operand.const(1 - b_sig.const_value)
    elif b_sig.inverted:
        b_operand = state.value_operand(b_sig.node)
    else:
        b_operand = Operand.cell(state.materialize_complement(b_sig.node, as_temp=True))
    z_cell = _naive_destination(state, z_sig)
    a_operand = _operand_a(state, a_sig)
    return NodePlan(a=a_operand, b=b_operand, z=z_cell)


def _naive_destination(state: TranslationState, s: Signal) -> int:
    """Destination for the naïve translator: child 3's value in a cell."""
    if s.is_const:
        address = state.alloc()
        state.emit_set_const(address, s.const_value)
        return address
    if s.inverted:
        address = state.alloc()
        label = state.cell_label(address)
        state.emit_load_compl(address, state.value_operand(s.node), f"{label} <- {state.node_label(s)}")
        return address
    if state.mig.is_gate(s.node) and state.remaining_uses[s.node] == 1:
        address = state.value_cell[s.node]
        if address == CONSUMED:
            raise CompilationError(f"node {s.node} consumed twice")
        state.value_cell[s.node] = CONSUMED
        return address
    address = state.alloc()
    label = state.cell_label(address)
    state.emit_load(address, state.value_operand(s.node), f"{label} <- {state.node_label(s)}")
    return address
