"""Pareto-front (#N, #D) synthesis sweep over depth-budgeted rewriting.

The paper's Algorithm 1 minimizes MIG *size* (#N) because serial PLiM
programs execute one RM3 per cycle; depth (#D) is what parallel in-memory
targets pay for.  The two objectives conflict — Ω.D restructuring shrinks
the graph but can deepen it — so a single operating point is the wrong
deliverable.  :func:`pareto_sweep` explores the whole trade-off instead:

1. anchor the sweep with the two extreme points — unconstrained
   ``objective="size"`` rewriting (best #N, depth ``d_max``) and
   ``objective="depth"`` rewriting (best depth ``d_min``);
2. for every depth budget ``d`` in ``[d_min, d_max)``, run size rewriting
   under the hard depth ceiling (``RewriteOptions.depth_budget`` — the
   ``try_*`` rules reject any candidate that could push a PO level past
   ``d``), starting from the depth-rewritten graph when the raw input is
   already deeper than ``d``;
3. compile every candidate through Algorithm 2 so each point is also
   reported in PLiM terms (#I instructions, #R work RRAMs), and
   equivalence-check it against the input;
4. deduplicate to the non-dominated (#N, #D) set.

Sweep points are independent, so they fan out over the same process-pool
seam as :func:`repro.core.batch.compile_many` (``workers > 1``); results
are deterministic regardless of worker count.

Example::

    >>> from repro.core.pareto import pareto_sweep
    >>> front = pareto_sweep(("i2c", "ci"), workers=1)
    >>> len(front.points) >= 1
    True
    >>> all(p.budget is None or p.depth <= p.budget for p in front)
    True
    >>> front.points == tuple(sorted(front.points, key=lambda p: p.depth))
    True
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.batch import CircuitSpec, _resolve_spec, parallel_map
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.errors import MigError
from repro.mig.analysis import depth as mig_depth
from repro.mig.equivalence import equivalent
from repro.mig.graph import Mig


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate operating point of the (#N, #D) sweep.

    ``num_gates``/``depth`` are the MIG-level coordinates the dominance
    filter runs on; ``num_instructions``/``num_rrams`` are the same point
    carried through Algorithm 2 (the #I'/#R' columns of Table 1, and
    ``depth`` doubles as #D' — Algorithm 2 is structure-preserving, so the
    compiled MIG's depth equals the rewritten MIG's).
    """

    #: "size" / "depth" for the two unconstrained extremes, "budget=<d>"
    #: for depth-budgeted size rewriting
    label: str
    #: the depth budget used (``None`` for the two unconstrained extremes)
    budget: Optional[int]
    num_gates: int  # the paper's #N
    depth: int  # #D (== #D': Algorithm 2 does not change the MIG)
    num_instructions: int  # #I
    num_rrams: int  # #R
    #: equivalence-check mode against the input ("exhaustive"/"random"),
    #: or ``None`` when the sweep ran with ``verify=False``
    equivalence: Optional[str]
    seconds: float

    @property
    def counts(self) -> tuple[int, int]:
        """The (#N, #D) coordinate the dominance filter compares."""
        return (self.num_gates, self.depth)

    def dominates(self, other: "ParetoPoint") -> bool:
        """Strict Pareto dominance on (#N, #D): no worse in both, better
        in at least one."""
        return (
            self.num_gates <= other.num_gates
            and self.depth <= other.depth
            and self.counts != other.counts
        )

    def to_dict(self) -> dict:
        """JSON-ready row (shared by ``plimc pareto --json`` and the bench
        snapshot so the two schemas cannot drift)."""
        return {
            "label": self.label,
            "budget": self.budget,
            "num_gates": self.num_gates,
            "depth": self.depth,
            "num_instructions": self.num_instructions,
            "num_rrams": self.num_rrams,
            "equivalence": self.equivalence,
            "seconds": round(self.seconds, 6),
        }

    def __repr__(self) -> str:
        return (
            f"<ParetoPoint {self.label}: N={self.num_gates} D={self.depth} "
            f"I={self.num_instructions} R={self.num_rrams}>"
        )


@dataclass(frozen=True)
class ParetoFront:
    """Result of one :func:`pareto_sweep` run.

    ``points`` is the non-dominated (#N, #D) set in ascending-depth order
    (so descending #N along the frontier); ``dominated`` keeps the losing
    candidates for reporting.
    """

    circuit: str
    effort: int
    points: tuple[ParetoPoint, ...]
    dominated: tuple[ParetoPoint, ...]
    seconds: float

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def size_point(self) -> ParetoPoint:
        """The minimum-#N end of the frontier."""
        return min(self.points, key=lambda p: (p.num_gates, p.depth))

    @property
    def depth_point(self) -> ParetoPoint:
        """The minimum-#D end of the frontier."""
        return min(self.points, key=lambda p: (p.depth, p.num_gates))

    def to_dict(self) -> dict:
        return {
            "circuit": self.circuit,
            "effort": self.effort,
            "points": [p.to_dict() for p in self.points],
            "dominated": [p.to_dict() for p in self.dominated],
            "seconds": round(self.seconds, 6),
        }

    def __repr__(self) -> str:
        span = (
            f"D {self.depth_point.depth}..{self.size_point.depth}, "
            f"N {self.size_point.num_gates}..{self.depth_point.num_gates}"
        )
        return f"<ParetoFront {self.circuit}: {len(self.points)} points ({span})>"


def _sweep_task(payload):
    """One sweep point, resolved and rewritten inside the worker process.

    ``seed`` is the depth-rewritten starting graph for budget points whose
    raw input is over budget; the depth-anchor task produces it once
    (``ship_rewritten=True`` makes the task return ``(point, rewritten)``
    so the parent can reuse the graph) instead of every budget worker
    re-deriving it.  Verification always runs against the raw input.
    """
    spec, mode, budget, effort, verify, fix_polarity, seed, ship_rewritten = payload
    _, mig = _resolve_spec(spec)
    start = time.perf_counter()
    if mode == "size":
        label = "size"
        rewritten = rewrite_for_plim(mig, RewriteOptions(effort=effort))
    elif mode == "depth":
        label = "depth"
        rewritten = rewrite_for_plim(
            mig, RewriteOptions(effort=effort, objective="depth")
        )
    else:  # depth-budgeted size rewriting
        label = f"budget={budget}"
        rewritten = rewrite_for_plim(
            mig if seed is None else seed,
            RewriteOptions(effort=effort, depth_budget=budget),
        )
    program = PlimCompiler(
        CompilerOptions(fix_output_polarity=fix_polarity)
    ).compile(rewritten)
    equivalence = None
    if verify:
        check = equivalent(mig, rewritten)
        if not check:
            raise MigError(
                f"pareto sweep point {label!r} is not equivalent to the "
                f"input (mode={check.mode}, output="
                f"{check.failing_output!r}, counterexample="
                f"{check.counterexample})"
            )
        equivalence = check.mode
    point = ParetoPoint(
        label=label,
        budget=budget,
        num_gates=rewritten.num_gates,
        depth=mig_depth(rewritten),
        num_instructions=program.num_instructions,
        num_rrams=program.num_rrams,
        equivalence=equivalence,
        seconds=time.perf_counter() - start,
    )
    if ship_rewritten:
        return point, rewritten
    return point


def _subsample(budgets: list[int], max_points: Optional[int]) -> list[int]:
    """Evenly subsample ``budgets`` to at most ``max_points``.

    Both ends are kept whenever two or more points fit; with exactly one,
    the low (tightest-budget) end wins.  ``0`` keeps no intermediate
    budgets — the sweep then consists of the two extremes only.
    """
    if max_points is None or len(budgets) <= max_points:
        return budgets
    if max_points <= 0:
        return []
    if max_points == 1:
        return budgets[:1]
    span = len(budgets) - 1
    picked = {round(i * span / (max_points - 1)) for i in range(max_points)}
    return [budgets[i] for i in sorted(picked)]


def _non_dominated(
    candidates: list[ParetoPoint],
) -> tuple[list[ParetoPoint], list[ParetoPoint]]:
    """Split candidates into (frontier, dominated-or-duplicate).

    Candidates are ranked by (depth, #N, #I, #R, label) and swept with the
    classic staircase filter: a point joins the frontier iff its #N is
    strictly below every point already on it (those all have depth no
    greater).  Duplicate (#N, #D) coordinates keep the best-ranked point.
    """
    front: list[ParetoPoint] = []
    dominated: list[ParetoPoint] = []
    best_gates: Optional[int] = None
    ranked = sorted(
        candidates,
        key=lambda p: (p.depth, p.num_gates, p.num_instructions, p.num_rrams, p.label),
    )
    for point in ranked:
        if best_gates is not None and point.num_gates >= best_gates:
            dominated.append(point)
            continue
        front.append(point)
        best_gates = point.num_gates
    return front, dominated


def pareto_sweep(
    circuit: Union[Mig, CircuitSpec],
    *,
    effort: int = 4,
    workers: Optional[int] = 1,
    max_points: Optional[int] = None,
    verify: bool = True,
    paper_accounting: bool = True,
) -> ParetoFront:
    """Sweep the (#N, #D) trade-off of ``circuit`` and return the frontier.

    ``circuit`` is anything :func:`repro.core.batch.compile_many` accepts:
    an :class:`~repro.mig.graph.Mig`, a registry name, or a
    ``(name, scale)`` pair (name specs are resolved inside the workers, so
    only a tiny payload crosses the process boundary — except budget
    points below the raw input's depth, whose payload carries the shared
    depth-rewritten seed graph; ``max_points`` bounds how many).
    ``workers`` fans
    the sweep points out over a process pool (``None`` = one per CPU);
    results are deterministic for any worker count.  ``max_points`` caps
    the number of intermediate depth budgets (evenly subsampled; ``0``
    sweeps the two extremes only); ``verify=True`` equivalence-checks every point against the
    input inside its worker and raises :class:`~repro.errors.MigError` on
    any mismatch.  ``paper_accounting=False`` charges output-polarity
    fix-ups in the Algorithm 2 compile (#I/#R), like ``plimc --honest``.

    Example::

        >>> from repro import pareto_sweep
        >>> front = pareto_sweep(("ctrl", "ci"))
        >>> front.depth_point.depth <= front.size_point.depth
        True
        >>> any(p.dominates(q) for p in front for q in front)
        False
    """
    name, mig = _resolve_spec(circuit)
    # Ship the resolved MIG to the workers when the caller passed one;
    # name/(name, scale) specs are rebuilt worker-side instead.
    spec = mig if isinstance(circuit, Mig) else circuit
    wall_start = time.perf_counter()
    fix_polarity = not paper_accounting

    # The two unconstrained extremes anchor the budget range.  The depth
    # anchor ships its rewritten graph back: it doubles as the starting
    # graph of every budget point whose raw input is over budget (the
    # rewrite is deterministic), so no worker has to re-derive it.
    input_depth = mig_depth(mig.cleanup()[0])
    size_pt, (depth_pt, depth_seed) = parallel_map(
        _sweep_task,
        [
            (spec, "size", None, effort, verify, fix_polarity, None, False),
            (spec, "depth", None, effort, verify, fix_polarity, None, True),
        ],
        workers=workers,
    )
    budgets = _subsample(
        list(range(depth_pt.depth, size_pt.depth)), max_points
    )
    budget_pts = parallel_map(
        _sweep_task,
        [
            (
                spec,
                "budget",
                d,
                effort,
                verify,
                fix_polarity,
                depth_seed if input_depth > d else None,
                False,
            )
            for d in budgets
        ],
        workers=workers,
    )
    front, dominated = _non_dominated([size_pt, depth_pt, *budget_pts])
    return ParetoFront(
        circuit=name,
        effort=effort,
        points=tuple(front),
        dominated=tuple(dominated),
        seconds=time.perf_counter() - wall_start,
    )
