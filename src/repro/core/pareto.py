"""Pareto-front (#N, #D) synthesis sweep over depth-budgeted rewriting.

The paper's Algorithm 1 minimizes MIG *size* (#N) because serial PLiM
programs execute one RM3 per cycle; depth (#D) is what parallel in-memory
targets pay for.  The two objectives conflict — Ω.D restructuring shrinks
the graph but can deepen it — so a single operating point is the wrong
deliverable.  :func:`pareto_sweep` explores the whole trade-off instead:

1. anchor the sweep with the two extreme points — unconstrained
   ``objective="size"`` rewriting (best #N, depth ``d_max``) and
   ``objective="depth"`` rewriting (best depth ``d_min``);
2. for every depth budget ``d`` in ``[d_min, d_max)``, run size rewriting
   under the hard depth ceiling (``RewriteOptions.depth_budget`` — the
   ``try_*`` rules reject any candidate that could push a PO level past
   ``d``).  Budgets are swept in *warm-started chains*: contiguous runs of
   budgets from tight to loose in which each point's rewrite is seeded
   with the previous point's rewritten MIG instead of the raw input
   (sound — relaxing the budget keeps the tighter point feasible, and the
   budget-gated rules only ever shrink #N from there).  Each warm step
   re-rewrites a small already-optimized graph instead of the raw input,
   so the saving grows with the width of the budget range (at ci scale
   the two anchor rewrites dominate and warm ≈ cold wall-clock —
   ``BENCH_pareto_incremental.json`` records both); warm chaining is also
   *iterated* rewriting and sometimes strictly improves the frontier.  An
   anti-drift guard recomputes the cold start whenever a warm step
   stalls, so a chain does not get stuck in a local optimum the cold
   sweep would have escaped (a heuristic — see :func:`_chain_task`);
3. compile every candidate through Algorithm 2 so each point is also
   reported in PLiM terms (#I instructions, #R work RRAMs), and
   equivalence-check it against the input;
4. deduplicate to the non-dominated set on the sweep's ``axes`` — the
   classic (#N, #D) pair by default, or any combination from
   :data:`PARETO_AXES` ((#I, #R), (#D, wear), …); executed axes
   additionally run each candidate on the machine model for cycle and
   endurance-wear metrics.

Chains are independent, so they fan out over the same process-pool seam
as :func:`repro.core.batch.compile_many` (``workers``); chain boundaries
are fixed (not derived from the worker count), so results are
deterministic regardless of worker count.  With a
:class:`~repro.core.cache.SynthesisCache` (``cache=`` / ``cache_dir=``)
the whole front is memoized under the input's
:meth:`~repro.mig.graph.Mig.fingerprint`, so repeated sweeps of one
circuit family are lookups — a hit changes the sweep's wall time, never
its output.

Example::

    >>> from repro.core.pareto import pareto_sweep
    >>> front = pareto_sweep(("i2c", "ci"), workers=1)
    >>> len(front.points) >= 1
    True
    >>> all(p.budget is None or p.depth <= p.budget for p in front)
    True
    >>> front.points == tuple(sorted(front.points, key=lambda p: p.depth))
    True
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.core.batch import (
    CircuitSpec,
    _resolve_spec,
    parallel_imap,
    resolve_workers,
)
from repro.core.cache import SynthesisCache, payload_cache_ref, worker_cache
from repro.core.cost import measure_program
from repro.core.resilience import FaultPlan, TaskFailure, TaskPolicy
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.errors import MigError
from repro.mig.analysis import depth as mig_depth
from repro.mig.equivalence import equivalent
from repro.mig.graph import Mig

#: metric names ``pareto_sweep(axes=...)`` accepts.  The first four are
#: free (every point carries them); ``cycles``/``wear`` additionally
#: execute each candidate's program on the machine model (width 1,
#: deterministic seeded inputs) — ``wear`` compares max per-cell writes
#: from the :mod:`repro.plim.endurance` report.
PARETO_AXES = (
    "num_gates", "depth", "num_instructions", "num_rrams", "cycles", "wear"
)
_DEFAULT_AXES = ("num_gates", "depth")
#: axes that need a machine execution per candidate
_EXECUTED_AXES = frozenset({"cycles", "wear"})

#: budgets per warm-started chain.  Chain boundaries are part of the
#: result definition — every chain head is a cold start, every later
#: budget a warm start — so the length is a fixed constant rather than
#: "budget count / worker count": results must be identical for any
#: worker count, and a per-worker partition would move the cold-start
#: positions whenever the pool size changed.  Four keeps plenty of
#: independent chains for the pool while bounding how far a warm chain
#: can drift from the cold baseline between anchoring cold starts.
CHAIN_LENGTH = 4


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate operating point of the (#N, #D) sweep.

    ``num_gates``/``depth`` are the MIG-level coordinates the dominance
    filter runs on; ``num_instructions``/``num_rrams`` are the same point
    carried through Algorithm 2 (the #I'/#R' columns of Table 1, and
    ``depth`` doubles as #D' — Algorithm 2 is structure-preserving, so the
    compiled MIG's depth equals the rewritten MIG's).
    """

    #: "size" / "depth" for the two unconstrained extremes, "budget=<d>"
    #: for depth-budgeted size rewriting
    label: str
    #: the depth budget used (``None`` for the two unconstrained extremes)
    budget: Optional[int]
    num_gates: int  # the paper's #N
    depth: int  # #D (== #D': Algorithm 2 does not change the MIG)
    num_instructions: int  # #I
    num_rrams: int  # #R
    #: equivalence-check mode against the input ("exhaustive"/"random"),
    #: or ``None`` when the sweep ran with ``verify=False``
    equivalence: Optional[str]
    seconds: float
    #: how the point's rewrite was seeded: "cold" (raw input / depth seed,
    #: the pre-incremental behavior), "warm" (previous chain point), or
    #: "cold-fallback" (the anti-drift guard recomputed and kept the cold
    #: start)
    source: str = "cold"
    #: machine cycles of one execution (3 per RM3), measured only when an
    #: executed axis ("cycles"/"wear") is swept; ``None`` otherwise
    cycles: Optional[int] = None
    #: max per-cell write count over the work cells (the endurance
    #: hotspot), measured only when an executed axis is swept
    max_writes: Optional[int] = None

    @property
    def counts(self) -> tuple[int, int]:
        """The (#N, #D) coordinate (kept for the default-axes consumers)."""
        return (self.num_gates, self.depth)

    def metric(self, axis: str) -> int:
        """The point's value on one sweep axis (see :data:`PARETO_AXES`)."""
        value = self.max_writes if axis == "wear" else getattr(self, axis, None)
        if value is None:
            raise MigError(
                f"pareto point {self.label!r} carries no {axis!r} metric "
                f"(executed axes need a sweep with that axis requested)"
            )
        return value

    def coordinate(self, axes: tuple = _DEFAULT_AXES) -> tuple:
        """The point's coordinate on the sweep's axes."""
        return tuple(self.metric(a) for a in axes)

    def dominates(self, other: "ParetoPoint", axes: tuple = _DEFAULT_AXES) -> bool:
        """Strict Pareto dominance on ``axes``: no worse anywhere, better
        somewhere (all metrics are minimized)."""
        mine = self.coordinate(axes)
        theirs = other.coordinate(axes)
        return mine != theirs and all(m <= t for m, t in zip(mine, theirs))

    def to_dict(self) -> dict:
        """JSON-ready row (shared by ``plimc pareto --json``, the bench
        snapshot and the synthesis cache so the schemas cannot drift)."""
        return {
            "label": self.label,
            "budget": self.budget,
            "num_gates": self.num_gates,
            "depth": self.depth,
            "num_instructions": self.num_instructions,
            "num_rrams": self.num_rrams,
            "equivalence": self.equivalence,
            "seconds": round(self.seconds, 6),
            "source": self.source,
            "cycles": self.cycles,
            "max_writes": self.max_writes,
        }

    @staticmethod
    def from_dict(data: dict) -> "ParetoPoint":
        """Inverse of :meth:`to_dict` (used by the synthesis cache)."""
        return ParetoPoint(
            label=data["label"],
            budget=data["budget"],
            num_gates=data["num_gates"],
            depth=data["depth"],
            num_instructions=data["num_instructions"],
            num_rrams=data["num_rrams"],
            equivalence=data["equivalence"],
            seconds=data["seconds"],
            source=data.get("source", "cold"),
            cycles=data.get("cycles"),
            max_writes=data.get("max_writes"),
        )

    def __repr__(self) -> str:
        return (
            f"<ParetoPoint {self.label}: N={self.num_gates} D={self.depth} "
            f"I={self.num_instructions} R={self.num_rrams}>"
        )


@dataclass(frozen=True)
class ParetoFront:
    """Result of one :func:`pareto_sweep` run.

    ``points`` is the non-dominated (#N, #D) set in ascending-depth order
    (so descending #N along the frontier); ``dominated`` keeps the losing
    candidates for reporting.
    """

    circuit: str
    effort: int
    points: tuple[ParetoPoint, ...]
    dominated: tuple[ParetoPoint, ...]
    seconds: float
    #: True when one or more sweep tasks failed permanently under a skip
    #: policy — the frontier is then a *partial* (but still verified and
    #: staircase-valid) view of the trade-off
    incomplete: bool = False
    #: labels of the points lost to failed tasks ("size"/"depth" anchors,
    #: "budget=<d>" chain points), in ascending-budget order
    failed_budgets: tuple = ()
    #: the structured failure records behind ``failed_budgets``
    failures: tuple = ()
    #: the metric pair (or tuple) the dominance filter ran on; the classic
    #: (#N, #D) sweep by default
    axes: tuple = _DEFAULT_AXES

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def size_point(self) -> ParetoPoint:
        """The minimum-#N end of the frontier."""
        return min(self.points, key=lambda p: (p.num_gates, p.depth))

    @property
    def depth_point(self) -> ParetoPoint:
        """The minimum-#D end of the frontier."""
        return min(self.points, key=lambda p: (p.depth, p.num_gates))

    def to_dict(self) -> dict:
        return {
            "circuit": self.circuit,
            "effort": self.effort,
            "points": [p.to_dict() for p in self.points],
            "dominated": [p.to_dict() for p in self.dominated],
            "seconds": round(self.seconds, 6),
            "incomplete": self.incomplete,
            "failed_budgets": list(self.failed_budgets),
            "failures": [f.to_dict() for f in self.failures],
            "axes": list(self.axes),
        }

    @staticmethod
    def from_dict(data: dict) -> "ParetoFront":
        """Inverse of :meth:`to_dict` (used by the synthesis cache)."""
        return ParetoFront(
            circuit=data["circuit"],
            effort=data["effort"],
            points=tuple(ParetoPoint.from_dict(p) for p in data["points"]),
            dominated=tuple(ParetoPoint.from_dict(p) for p in data["dominated"]),
            seconds=data["seconds"],
            incomplete=data.get("incomplete", False),
            failed_budgets=tuple(data.get("failed_budgets", ())),
            failures=tuple(
                TaskFailure.from_dict(f) for f in data.get("failures", ())
            ),
            axes=tuple(data.get("axes", _DEFAULT_AXES)),
        )

    def __repr__(self) -> str:
        if not self.points:
            return f"<ParetoFront {self.circuit}: empty (incomplete)>"
        span = (
            f"D {self.depth_point.depth}..{self.size_point.depth}, "
            f"N {self.size_point.num_gates}..{self.depth_point.num_gates}"
        )
        flag = ", incomplete" if self.incomplete else ""
        return (
            f"<ParetoFront {self.circuit}: {len(self.points)} points "
            f"({span}{flag})>"
        )


def _compile_point(
    mig: Mig,
    rewritten: Mig,
    label: str,
    budget: Optional[int],
    verify: bool,
    fix_polarity: bool,
    start: float,
    source: str,
    execute: bool = False,
) -> ParetoPoint:
    """Algorithm 2 + equivalence check for one rewritten sweep point.

    ``execute=True`` additionally runs the compiled program once on the
    machine model (width 1, deterministic seeded inputs) to measure
    cycles and endurance wear — required when an executed axis
    ("cycles"/"wear") is swept.
    """
    program = PlimCompiler(
        CompilerOptions(fix_output_polarity=fix_polarity)
    ).compile(rewritten)
    cycles = max_writes = None
    if execute:
        machine, wear = measure_program(program, rewritten.pi_names())
        cycles, max_writes = machine.cycle_count, wear.max_writes
    equivalence = None
    if verify:
        check = equivalent(mig, rewritten)
        if not check:
            raise MigError(
                f"pareto sweep point {label!r} is not equivalent to the "
                f"input (mode={check.mode}, output="
                f"{check.failing_output!r}, counterexample="
                f"{check.counterexample})"
            )
        equivalence = check.mode
    return ParetoPoint(
        label=label,
        budget=budget,
        num_gates=rewritten.num_gates,
        depth=mig_depth(rewritten),
        num_instructions=program.num_instructions,
        num_rrams=program.num_rrams,
        equivalence=equivalence,
        seconds=time.perf_counter() - start,
        source=source,
        cycles=cycles,
        max_writes=max_writes,
    )


def _anchor_task(payload):
    """One unconstrained extreme ("size"/"depth"), run inside a worker.

    The depth anchor ships its rewritten graph back (``ship_rewritten``):
    it doubles as the cold-start seed of every budget below the raw
    input's depth, so no chain worker has to re-derive it.  Verification
    always runs against the raw input.  Returns
    ``([point], shipped_rewritten_or_None, fresh_cache_entries)``.
    """
    spec, mode, effort, verify, fix_polarity, ship_rewritten, execute, cache_ref = payload
    cache = worker_cache(cache_ref)
    _, mig = _resolve_spec(spec)
    start = time.perf_counter()
    options = RewriteOptions(effort=effort)
    if mode == "depth":
        options = RewriteOptions(effort=effort, objective="depth")
    rewritten = rewrite_for_plim(mig, options, cache=cache)
    point = _compile_point(
        mig, rewritten, mode, None, verify, fix_polarity, start, "cold", execute
    )
    entries = cache.export_fresh() if cache is not None else []
    return [point], rewritten if ship_rewritten else None, entries


def _chain_task(payload):
    """One warm-started budget chain, run inside a worker.

    ``budgets`` is a contiguous ascending run.  The first budget is a
    *cold start* — exactly the pre-incremental per-budget behavior: seeded
    with the depth-rewritten graph when the raw input is over budget,
    with the raw input otherwise.  Every later budget is *warm-started*
    from the previous point's rewritten MIG, which is sound (its depth is
    within the tighter previous budget, hence within this one, and the
    budget-gated rules only ever shrink #N from there) and skips the
    expensive re-rewriting of the raw input.

    Anti-drift guard: a warm start inherits the previous point's local
    optimum, so when the warm step *stalls* (no #N improvement although
    the loosened budget should buy some — detected by comparing against
    the previous point's gate count, the chain's running
    signature-fixed-point) while still above the unconstrained size
    floor, the cold start the old code would have produced is recomputed
    and kept instead whenever it is at least as good.  The guard is a
    heuristic, not a proof: a warm step that improves #N but less than a
    cold start would have skips the recomputation, so
    warm-equals-or-dominates-cold is an *empirical* property — asserted
    on every registry circuit by ``tests/test_pareto.py`` and the
    ``bench_pareto.py`` CI snapshot, and to be strengthened here if a
    future circuit or rule change ever trips those gates.  Points whose
    warm rewrite already reached the floor skip the recomputation
    outright (in practice no cold start undercuts the unconstrained
    minimum).

    Returns ``(points, None, fresh_cache_entries)``.
    """
    (
        spec,
        budgets,
        effort,
        verify,
        fix_polarity,
        depth_seed,
        input_depth,
        size_floor,
        warm_start,
        execute,
        cache_ref,
    ) = payload
    cache = worker_cache(cache_ref)
    _, mig = _resolve_spec(spec)

    def cold_seed(budget: int) -> Mig:
        return depth_seed if input_depth > budget else mig

    points: list[ParetoPoint] = []
    previous: Optional[Mig] = None
    for budget in budgets:
        start = time.perf_counter()
        options = RewriteOptions(effort=effort, depth_budget=budget)
        if previous is None or not warm_start:
            rewritten = rewrite_for_plim(cold_seed(budget), options, cache=cache)
            source = "cold"
        else:
            rewritten = rewrite_for_plim(previous, options, cache=cache)
            source = "warm"
            stalled = rewritten.num_gates >= previous.num_gates
            if stalled and rewritten.num_gates > size_floor:
                cold = rewrite_for_plim(cold_seed(budget), options, cache=cache)
                if (cold.num_gates, mig_depth(cold)) < (
                    rewritten.num_gates,
                    mig_depth(rewritten),
                ):
                    rewritten, source = cold, "cold-fallback"
        previous = rewritten
        points.append(
            _compile_point(
                mig,
                rewritten,
                f"budget={budget}",
                budget,
                verify,
                fix_polarity,
                start,
                source,
                execute,
            )
        )
    entries = cache.export_fresh() if cache is not None else []
    return points, None, entries


def _subsample(budgets: list[int], max_points: Optional[int]) -> list[int]:
    """Evenly subsample ``budgets`` to at most ``max_points``.

    Both ends are kept whenever two or more points fit; with exactly one,
    the low (tightest-budget) end wins.  ``0`` keeps no intermediate
    budgets — the sweep then consists of the two extremes only.
    """
    if max_points is None or len(budgets) <= max_points:
        return budgets
    if max_points <= 0:
        return []
    if max_points == 1:
        return budgets[:1]
    span = len(budgets) - 1
    picked = {round(i * span / (max_points - 1)) for i in range(max_points)}
    return [budgets[i] for i in sorted(picked)]


def _chunked(budgets: list[int], length: int = CHAIN_LENGTH) -> list[list[int]]:
    """Split the ascending budget list into fixed-length chain runs."""
    return [budgets[i : i + length] for i in range(0, len(budgets), length)]


def _non_dominated(
    candidates: list[ParetoPoint],
    axes: tuple = _DEFAULT_AXES,
) -> tuple[list[ParetoPoint], list[ParetoPoint]]:
    """Split candidates into (frontier, dominated-or-duplicate) on ``axes``.

    Candidates are ranked by (reversed axes, #I, #R, label) — for the
    default (#N, #D) axes exactly the classic (depth, #N, #I, #R, label)
    staircase order, so default sweeps are bit-identical to the
    historical 2-axis filter — and filtered by strict Pareto dominance
    over the full candidate set (N-dimensional: no candidate may be ≤
    everywhere and < somewhere).  Duplicate coordinates keep the
    best-ranked point; the ranking is total (label last), so the split is
    deterministic for any candidate arrival order.
    """
    ranked = sorted(
        candidates,
        key=lambda p: (
            p.coordinate(tuple(reversed(axes))),
            p.num_instructions,
            p.num_rrams,
            p.label,
        ),
    )
    front: list[ParetoPoint] = []
    dominated: list[ParetoPoint] = []
    seen: set = set()
    for point in ranked:
        coord = point.coordinate(axes)
        if coord in seen or any(q.dominates(point, axes) for q in ranked):
            dominated.append(point)
            continue
        front.append(point)
        seen.add(coord)
    return front, dominated


def pareto_sweep(
    circuit: Union[Mig, CircuitSpec],
    *,
    effort: int = 4,
    workers: Optional[int] = None,
    max_points: Optional[int] = None,
    verify: bool = True,
    paper_accounting: bool = True,
    warm_start: bool = True,
    cache: Optional[SynthesisCache] = None,
    cache_dir=None,
    policy: Optional[TaskPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    axes: tuple = _DEFAULT_AXES,
    progress: Optional[Callable[[ParetoPoint], None]] = None,
) -> ParetoFront:
    """Sweep the cost trade-off of ``circuit`` and return the frontier.

    ``axes`` selects the metric pair (or tuple) the dominance filter
    minimizes — the classic MIG-level ``("num_gates", "depth")`` by
    default, or any combination from :data:`PARETO_AXES`, e.g.
    ``("num_instructions", "num_rrams")`` for the compiled-program
    trade-off or ``("depth", "wear")`` for latency vs. endurance.  The
    candidate generator is unchanged (depth-budgeted rewriting between
    the size and depth extremes — the diversity knob); only the
    measurement and the dominance filter follow the axes, and executed
    axes ("cycles"/"wear") additionally run every candidate's program on
    the machine model with deterministic seeded inputs.  Results remain
    deterministic for any worker count, and a cache hit never changes the
    output (fronts are keyed per-axes, on top of the cache's
    ``ALGORITHM_REVISION``).

    ``circuit`` is anything :func:`repro.core.batch.compile_many` accepts:
    an :class:`~repro.mig.graph.Mig`, a registry name, or a
    ``(name, scale)`` pair (name specs are resolved inside the workers, so
    only a tiny payload crosses the process boundary — except chains of
    budgets below the raw input's depth, whose payload carries the shared
    depth-rewritten seed graph; ``max_points`` bounds how many).
    ``workers`` fans the budget chains out over a process pool (``None``,
    the default, means one worker per CPU — the same convention as
    :func:`~repro.core.batch.compile_many`); results are deterministic
    for any worker count.  ``max_points`` caps the number of intermediate
    depth budgets (evenly subsampled; ``0`` sweeps the two extremes
    only); ``verify=True`` equivalence-checks every point against the
    input inside its worker and raises :class:`~repro.errors.MigError` on
    any mismatch.  ``paper_accounting=False`` charges output-polarity
    fix-ups in the Algorithm 2 compile (#I/#R), like ``plimc --honest``.

    ``warm_start=True`` (the default) sweeps budgets in warm-started
    chains (see :func:`_chain_task`); ``False`` restores the cold
    per-budget restarts of the pre-incremental sweep (the benchmark
    baseline).  ``cache``/``cache_dir`` attach a
    :class:`~repro.core.cache.SynthesisCache`: the finished front is
    memoized under the input's fingerprint and the sweep parameters, and
    every per-point rewrite under its own content address, so repeated
    sweeps of one circuit family — even across processes, with
    ``cache_dir`` — reuse points.  For a given build of a circuit a
    cache hit never changes the sweep's output, only its wall time.
    Note the address is the *content* fingerprint, which canonicalizes
    gate-creation order: sweeping a reordered build of an already-cached
    circuit returns the cached representative's front (functionally
    identical, possibly not bit-identical to what a cold sweep of the
    reordered build would produce).  Order-sensitivity studies must
    therefore run uncached — exactly as ``run_table1`` does for its
    ``shuffled=True`` rows.

    ``policy`` attaches a :class:`~repro.core.resilience.TaskPolicy` to
    the sweep's pools.  Under ``on_error="skip"``/``"degrade"`` a
    permanently failed task — a crashed or hung worker, a raised
    exception after all retries — no longer aborts the sweep: the
    surviving points are staircase-filtered as usual and the front comes
    back flagged ``incomplete=True`` with the lost point labels in
    ``failed_budgets`` (an anchor failure loses that extreme; a chain
    failure loses that chain's budgets).  Partial fronts are *never*
    cached, so a later healthy sweep recomputes the full frontier.
    ``fault_plan`` injects deterministic faults; the sweep consumes the
    ``"anchor"`` and ``"chain"`` phases of the plan (task indices within
    each phase).  ``progress`` is an optional callback invoked with each
    :class:`ParetoPoint` as it completes (anchors first, then budget
    chains, in input order; a cached front replays its points) — the
    serve layer streams these through ``GET /jobs/<id>``.

    Example::

        >>> from repro import pareto_sweep
        >>> front = pareto_sweep(("ctrl", "ci"), workers=1)
        >>> front.depth_point.depth <= front.size_point.depth
        True
        >>> any(p.dominates(q) for p in front for q in front)
        False
    """
    axes = tuple(axes)
    if len(axes) < 2:
        raise MigError(f"pareto axes need at least two metrics, got {axes!r}")
    if len(set(axes)) != len(axes):
        raise MigError(f"pareto axes must be distinct, got {axes!r}")
    unknown = [a for a in axes if a not in PARETO_AXES]
    if unknown:
        raise MigError(
            f"unknown pareto axes {unknown!r}; expected a subset of "
            f"{PARETO_AXES}"
        )
    execute = bool(_EXECUTED_AXES.intersection(axes))
    name, mig = _resolve_spec(circuit)
    # Ship the resolved MIG to the workers when the caller passed one;
    # name/(name, scale) specs are rebuilt worker-side instead.
    spec = mig if isinstance(circuit, Mig) else circuit
    wall_start = time.perf_counter()
    fix_polarity = not paper_accounting

    if cache is None and cache_dir is not None:
        cache = SynthesisCache(cache_dir)
    fingerprint = None
    front_params = None
    if cache is not None:
        fingerprint = mig.fingerprint()
        front_params = {
            "circuit": name,
            "effort": effort,
            "max_points": max_points,
            "verify": verify,
            "paper_accounting": paper_accounting,
            "warm_start": warm_start,
            "axes": list(axes),
        }
        hit = cache.get_front(fingerprint, front_params)
        if hit is not None:
            if progress is not None:
                # A cache hit replays the front's points through the
                # progress hook so streaming consumers (the serve layer's
                # job progress feed) observe the same shape either way.
                for point in hit.points:
                    progress(point)
            return hit
    inline = resolve_workers(workers) <= 1
    cache_ref = payload_cache_ref(cache, inline)

    # The two unconstrained extremes anchor the budget range.  The depth
    # anchor ships its rewritten graph back: it doubles as the cold-start
    # seed of every budget below the raw input's depth (the rewrite is
    # deterministic), so no worker has to re-derive it.
    plan = fault_plan or FaultPlan()
    input_depth = mig_depth(mig.cleanup()[0])
    anchor_results = parallel_imap(
        _anchor_task,
        [
            (spec, "size", effort, verify, fix_polarity, False, execute, cache_ref),
            (spec, "depth", effort, verify, fix_polarity, True, execute, cache_ref),
        ],
        workers=workers,
        policy=policy,
        fault_plan=plan.scoped("anchor"),
    )
    failures: list[TaskFailure] = []
    failed_labels: list[str] = []
    size_pt = depth_pt = depth_seed = None
    for label, outcome in zip(("size", "depth"), anchor_results):
        if isinstance(outcome, TaskFailure):
            failures.append(outcome)
            failed_labels.append(label)
            continue
        [point], shipped, entries = outcome
        if cache is not None and not inline:
            # read-only + merge protocol: pool workers never write; the
            # fresh entries they computed are merged (persisted) here.
            cache.absorb(entries)
        if progress is not None:
            progress(point)
        if label == "size":
            size_pt = point
        else:
            depth_pt, depth_seed = point, shipped

    # Intermediate budgets need both anchors: the depth extreme is the
    # range's floor, the size extreme its ceiling and the chains' stall
    # floor.  Losing either degrades to the surviving extreme(s) only.
    budget_pts: list[ParetoPoint] = []
    if size_pt is not None and depth_pt is not None:
        budgets = _subsample(
            list(range(depth_pt.depth, size_pt.depth)), max_points
        )
        chains = _chunked(budgets, 1 if not warm_start else CHAIN_LENGTH)
        chain_results = parallel_imap(
            _chain_task,
            [
                (
                    spec,
                    chain,
                    effort,
                    verify,
                    fix_polarity,
                    depth_seed if input_depth > chain[0] else None,
                    input_depth,
                    size_pt.num_gates,
                    warm_start,
                    execute,
                    cache_ref,
                )
                for chain in chains
            ],
            workers=workers,
            policy=policy,
            fault_plan=plan.scoped("chain"),
        )
        for chain, outcome in zip(chains, chain_results):
            if isinstance(outcome, TaskFailure):
                failures.append(outcome)
                failed_labels.extend(f"budget={b}" for b in chain)
                continue
            points, _, entries = outcome
            if cache is not None and not inline:
                cache.absorb(entries)
            if progress is not None:
                for point in points:
                    progress(point)
            budget_pts.extend(points)
    anchors = [p for p in (size_pt, depth_pt) if p is not None]
    front, dominated = _non_dominated([*anchors, *budget_pts], axes)
    result = ParetoFront(
        circuit=name,
        effort=effort,
        points=tuple(front),
        dominated=tuple(dominated),
        seconds=time.perf_counter() - wall_start,
        incomplete=bool(failures),
        failed_budgets=tuple(failed_labels),
        failures=tuple(failures),
        axes=axes,
    )
    if cache is not None and not result.incomplete:
        # partial fronts are never cached: a later healthy sweep must
        # recompute the budgets this one lost
        cache.put_front(fingerprint, front_params, result)
    return result
