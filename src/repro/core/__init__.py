"""The paper's contribution: MIG rewriting for PLiM and the PLiM compiler.

* :mod:`repro.core.rewriting` — Algorithm 1: MIG rewriting that minimizes
  expected instructions and RRAMs (size rules + inverter propagation).
* :mod:`repro.core.compiler` — Algorithm 2: the compilation loop.
* :mod:`repro.core.schedule` — §4.2.1 candidate selection priority queue.
* :mod:`repro.core.translate` — §4.2.2 node translation case analysis.
* :mod:`repro.core.allocator` — §4.2.3 RRAM allocation (FIFO free list).
* :mod:`repro.core.cost` — the static cost model driving rewriting choices.
* :mod:`repro.core.pipeline` — the end-to-end convenience API.
* :mod:`repro.core.batch` — the batched parallel compilation driver.
"""

from repro.core.allocator import RramAllocator
from repro.core.batch import BatchResult, compile_many, parallel_map
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.pipeline import CompileResult, compile_mig
from repro.core.rewriting import RewriteOptions, rewrite_for_plim

__all__ = [
    "RramAllocator",
    "BatchResult",
    "CompilerOptions",
    "PlimCompiler",
    "CompileResult",
    "compile_mig",
    "compile_many",
    "parallel_map",
    "RewriteOptions",
    "rewrite_for_plim",
]
