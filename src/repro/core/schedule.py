"""Candidate selection (paper §4.2.1).

Algorithm 2 keeps a priority queue of *candidates* — gates whose children
are all computed.  The ordering implements the paper's two principles:

1. **Release early**: prefer the candidate with more *releasing children*
   (children whose RRAM can be freed right after this computation — here:
   gate children whose last remaining reader is this candidate).
2. **Allocate late**: if neither wins on (1), prefer ``u`` when ``u``'s
   highest-level parent lies strictly below ``v``'s lowest-level parent —
   ``u``'s result is consumed soon, while ``v``'s would sit in a cell
   blocking it for a long time (Fig. 4(b)).

Ties fall back to the node index, which also makes the schedule fully
deterministic.  An index-ordered scheduler (plain topological order) is
provided for the naïve baseline and the "candidate selection disabled"
ablation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Protocol

#: level sentinel for candidates without gate parents (pure PO feeders):
#: nothing downstream waits for them, so they never win the level rule.
NO_PARENT_LEVEL = 1 << 30


@dataclass(frozen=True, slots=True)
class CandidateKey:
    """Comparison key implementing the paper's candidate preference.

    ``unblocks`` is this package's one-step lookahead extension of the
    paper's principle (i): a candidate that is the *last missing child* of
    some parent lets that parent (and its releasing children) run next, so
    partially computed regions complete instead of stranding live cells.
    Set it to zero to get the paper's literal comparator (the
    ``unblocking_rule`` compiler option / ablation X5).
    """

    releasing: int
    unblocks: int
    min_parent_level: int
    max_parent_level: int
    index: int

    def __lt__(self, other: "CandidateKey") -> bool:
        # (i) more releasing children wins.
        if self.releasing != other.releasing:
            return self.releasing > other.releasing
        # (i') more unblocked parents wins (lookahead extension).
        if self.unblocks != other.unblocks:
            return self.unblocks > other.unblocks
        # (ii) strict parent-level dominance: u's highest-level parent is
        # below v's lowest-level parent.
        if self.max_parent_level < other.min_parent_level:
            return True
        if other.max_parent_level < self.min_parent_level:
            return False
        # (iii) node index.
        return self.index < other.index


class Scheduler(Protocol):
    """Common protocol of the candidate schedulers."""

    def push(self, node: int) -> None: ...

    def pop(self) -> int: ...

    def __len__(self) -> int: ...


class PriorityScheduler:
    """The paper's priority queue with event-driven key refresh.

    Keys depend on dynamic state (remaining uses of children, pending
    children of parents), so a waiting entry's key can both decay *and
    improve* while it sits in the heap.  The compiler calls
    :meth:`refresh` whenever a translation changes a candidate's context;
    the scheduler re-inserts the node under its current key and invalidates
    the old entry through a per-node version counter.
    """

    def __init__(self, key_fn):
        """``key_fn(node) -> CandidateKey`` captures the dynamic context."""
        self._key_fn = key_fn
        self._heap: list[tuple[CandidateKey, int, int]] = []
        self._version: dict[int, int] = {}

    def push(self, node: int) -> None:
        self._version[node] = 0
        heapq.heappush(self._heap, (self._key_fn(node), node, 0))

    def refresh(self, node: int) -> None:
        """Re-rank ``node`` under its current key (no-op if not queued)."""
        version = self._version.get(node)
        if version is None:
            return
        self._version[node] = version + 1
        heapq.heappush(self._heap, (self._key_fn(node), node, version + 1))

    def __contains__(self, node: int) -> bool:
        return node in self._version

    def pop(self) -> int:
        while True:
            _, node, version = heapq.heappop(self._heap)
            if self._version.get(node) == version:
                del self._version[node]
                return node
            # stale entry superseded by a refresh — skip it

    def __len__(self) -> int:
        return len(self._version)


class IndexScheduler:
    """Pops candidates in node-index (topological creation) order."""

    def __init__(self):
        self._heap: list[int] = []
        self._members: set[int] = set()

    def push(self, node: int) -> None:
        self._members.add(node)
        heapq.heappush(self._heap, node)

    def refresh(self, node: int) -> None:
        """Index order is static — nothing to refresh."""

    def __contains__(self, node: int) -> bool:
        return node in self._members

    def pop(self) -> int:
        node = heapq.heappop(self._heap)
        self._members.remove(node)
        return node

    def __len__(self) -> int:
        return len(self._heap)


def make_scheduler(options, context, state, pending_children) -> "Scheduler":
    """Build the candidate scheduler for one compilation run.

    ``options`` is duck-typed (``scheduling``, ``unblocking_rule``,
    ``level_rule``) so this module stays import-independent of the
    compiler; ``context`` is the :class:`~repro.mig.context.AnalysisContext`
    of the graph being compiled — its cached parents and levels feed the
    priority key, so repeated compilations of the same node order share
    them.  ``state.remaining_uses`` and ``pending_children`` are the
    dynamic tables the key reads at refresh time.
    """
    if options.scheduling == "index":
        return IndexScheduler()

    mig = context.mig
    parents = context.parents
    node_levels = context.levels
    # A primary output consumes its node "right above" it: model it as
    # a parent one level up, otherwise PO feeders would be deferred to
    # the end of the schedule while their children sit in live cells.
    po_fed: set[int] = {po.node for po in mig.pos() if not po.is_const}
    use_unblocks = options.unblocking_rule
    use_levels = options.level_rule

    def key_fn(node: int) -> CandidateKey:
        releasing = sum(
            1
            for child in mig.children(node)
            if mig.is_gate(child.node) and state.remaining_uses[child.node] == 1
        )
        unblocks = 0
        if use_unblocks:
            unblocks = sum(1 for p in parents[node] if pending_children[p] == 1)
        if use_levels:
            parent_levels = [node_levels[p] for p in parents[node]]
            if node in po_fed:
                parent_levels.append(node_levels[node] + 1)
        else:
            parent_levels = [0]  # constant: the level rule never fires
        return make_key(node, releasing, parent_levels, unblocks)

    return PriorityScheduler(key_fn)


def make_scheduler_fast(options, context, state, pending_children) -> "Scheduler":
    """Array-fast twin of :func:`make_scheduler`: same order, cheaper keys.

    ``state`` is a :class:`~repro.core.translate_fast.FastTranslationState`
    (remaining uses in a flat ``array('q')``) and ``pending_children`` an
    array indexed by node id; the key function reads raw child encodings
    instead of building :class:`~repro.mig.signal.Signal` objects.  With the
    level rule off (the default) every :class:`CandidateKey` has
    ``min_parent_level == max_parent_level == 0``, so its comparator
    degenerates to ``(-releasing, -unblocks, index)`` — the key function
    returns exactly that tuple, which sorts identically at a fraction of
    the cost (keys of the two kinds never meet in one heap).  With the
    level rule on, the oracle's :class:`CandidateKey` is used unchanged.
    """
    if options.scheduling == "index":
        return IndexScheduler()

    from repro.mig.graph import _GATE  # local: keep module import-light

    mig = context.mig
    parents = context.parents
    remaining = state.remaining
    ca, cb, cc = mig._ca, mig._cb, mig._cc
    kind = mig._kind
    use_unblocks = options.unblocking_rule

    if options.level_rule:
        node_levels = context.levels
        po_fed: set[int] = {po.node for po in mig.pos() if not po.is_const}

        def level_key_fn(node: int) -> CandidateKey:
            releasing = 0
            for e in (ca[node], cb[node], cc[node]):
                child = e >> 1
                if kind[child] == _GATE and remaining[child] == 1:
                    releasing += 1
            unblocks = 0
            if use_unblocks:
                for p in parents[node]:
                    if pending_children[p] == 1:
                        unblocks += 1
            parent_levels = [node_levels[p] for p in parents[node]]
            if node in po_fed:
                parent_levels.append(node_levels[node] + 1)
            return make_key(node, releasing, parent_levels, unblocks)

        return PriorityScheduler(level_key_fn)

    def key_fn(node: int) -> tuple[int, int, int]:
        releasing = 0
        for e in (ca[node], cb[node], cc[node]):
            child = e >> 1
            if kind[child] == _GATE and remaining[child] == 1:
                releasing += 1
        unblocks = 0
        if use_unblocks:
            for p in parents[node]:
                if pending_children[p] == 1:
                    unblocks += 1
        return (-releasing, -unblocks, node)

    return PriorityScheduler(key_fn)


def make_key(
    node: int,
    releasing_children: int,
    parent_levels: list[int],
    unblocks: int = 0,
) -> CandidateKey:
    """Build a :class:`CandidateKey` from dynamic context.

    ``parent_levels`` lists the topological levels of the node's *gate*
    parents (with primary outputs modelled one level above the node);
    empty for dead gates only.
    """
    if parent_levels:
        lo, hi = min(parent_levels), max(parent_levels)
    else:
        lo = hi = NO_PARENT_LEVEL
    return CandidateKey(
        releasing=releasing_children,
        unblocks=unblocks,
        min_parent_level=lo,
        max_parent_level=hi,
        index=node,
    )
