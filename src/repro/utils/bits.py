"""Bit-manipulation helpers used by simulation and the word-level builders.

Bit-parallel simulation represents a signal's value under many input
patterns as one arbitrary-precision integer: bit ``p`` of the integer is the
signal's value under pattern ``p``.  Python integers make this both simple
and fast — a single ``&``/``|`` simulates every pattern at once.
"""

from __future__ import annotations


def full_mask(width: int) -> int:
    """Return an integer with the ``width`` lowest bits set.

    >>> full_mask(4)
    15
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def pattern_mask(var_index: int, num_vars: int) -> int:
    """Truth-table column of input variable ``var_index`` over ``num_vars``.

    Bit ``p`` of the result is bit ``var_index`` of the pattern number ``p``,
    for all ``2**num_vars`` patterns — the classic cofactor mask.

    >>> bin(pattern_mask(0, 3))
    '0b10101010'
    >>> bin(pattern_mask(2, 3))
    '0b11110000'
    """
    if not 0 <= var_index < num_vars:
        raise ValueError(f"var_index {var_index} out of range for {num_vars} variables")
    block = full_mask(1 << var_index) << (1 << var_index)
    repeats = 1 << (num_vars - var_index - 1)
    stride = 1 << (var_index + 1)
    value = 0
    for i in range(repeats):
        value |= block << (i * stride)
    return value


def popcount(value: int) -> int:
    """Number of set bits of a non-negative integer."""
    if value < 0:
        raise ValueError("popcount is defined for non-negative integers")
    return value.bit_count()


def bits_of(value: int, width: int) -> list[int]:
    """Little-endian list of the ``width`` lowest bits of ``value``.

    >>> bits_of(6, 4)
    [0, 1, 1, 0]
    """
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: list[int]) -> int:
    """Inverse of :func:`bits_of`: assemble a little-endian bit list.

    >>> from_bits([0, 1, 1, 0])
    6
    """
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {i} is {bit!r}, expected 0 or 1")
        value |= bit << i
    return value


def bit_length_of_mask(mask: int) -> int:
    """Number of patterns a simulation mask covers (its bit length rounded up).

    Used to recover the pattern count from a full mask.
    """
    return mask.bit_length()
