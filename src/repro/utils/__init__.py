"""Small shared helpers: bit manipulation and iteration utilities."""

from repro.utils.bits import (
    bit_length_of_mask,
    bits_of,
    from_bits,
    full_mask,
    pattern_mask,
    popcount,
)

__all__ = [
    "bit_length_of_mask",
    "bits_of",
    "from_bits",
    "full_mask",
    "pattern_mask",
    "popcount",
]
