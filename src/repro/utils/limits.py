"""Shared exhaustive-check input-count thresholds.

Both functional checkers in this package switch from exhaustive truth-table
comparison to randomized bit-parallel simulation once a circuit has too many
primary inputs for ``2^n`` patterns to be practical.  The two thresholds
live here — one module, two named constants — so the cut-over points cannot
drift apart silently:

* :data:`EXHAUSTIVE_EQUIVALENCE_LIMIT` (``14``) — used by
  :func:`repro.mig.equivalence.equivalent`.  MIG-vs-MIG comparison only
  simulates the two graphs, so one 16384-bit-packed pass per node is cheap
  and 2^14 assignments stay well under a second even for the larger
  registry circuits.
* :data:`EXHAUSTIVE_VERIFY_LIMIT` (``12``) — used by
  :func:`repro.plim.verify.verify_program`.  Program-vs-MIG verification
  additionally executes every RM3 instruction on the
  :class:`~repro.plim.machine.PlimMachine` model (per-instruction bookkeeping
  on a full crossbar image), which is roughly an order of magnitude heavier
  per pattern than graph simulation — hence the exhaustive window is two
  inputs (4x) smaller.

Callers can always override the default per call; these constants are the
package-wide defaults, not hard caps.
"""

from __future__ import annotations

#: exhaustive window for MIG-vs-MIG equivalence checking (pure simulation)
EXHAUSTIVE_EQUIVALENCE_LIMIT = 14

#: exhaustive window for program-vs-MIG machine-model verification (heavier
#: per pattern than graph simulation, hence the smaller window)
EXHAUSTIVE_VERIFY_LIMIT = 12
