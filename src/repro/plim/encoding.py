"""Binary encoding of RM3 instructions for in-array program storage.

The PLiM computer is a von Neumann machine over a single resistive array:
"the PLiM controller ... read[s] instructions from the memory array"
(paper §2.2).  This module defines the bit-level instruction format that
:class:`repro.plim.controller.FetchingController` uses to store programs in
the array itself.

Format (little-endian bit order within one instruction)::

    [ a_tag | a_value(addr_bits) | b_tag | b_value(addr_bits) | z(addr_bits) ]

``*_tag`` = 1 marks a constant operand whose bit sits in the value field's
LSB; ``*_tag`` = 0 marks a cell read from ``value``.  An instruction
occupies ``2 + 3*addr_bits`` bits; ``addr_bits`` is chosen from the
machine's cell count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError
from repro.plim.isa import Instruction, Operand
from repro.plim.program import Program


def address_bits_for(num_cells: int) -> int:
    """Address width needed for ``num_cells`` cells (at least 1)."""
    if num_cells < 1:
        raise MachineError("cannot encode programs for an empty array")
    return max(1, (num_cells - 1).bit_length())


def instruction_bits(addr_bits: int) -> int:
    """Bits occupied by one encoded instruction."""
    return 2 + 3 * addr_bits


def _encode_operand(operand: Operand, addr_bits: int) -> int:
    """Tag bit plus value field (tag is the LSB)."""
    if operand.is_const:
        return 1 | (operand.value << 1)
    if operand.value >= (1 << addr_bits):
        raise MachineError(
            f"cell address {operand.value} does not fit in {addr_bits} address bits"
        )
    return operand.value << 1


def _decode_operand(field: int, addr_bits: int) -> Operand:
    if field & 1:
        return Operand.const((field >> 1) & 1)
    return Operand.cell(field >> 1)


def encode_instruction(instruction: Instruction, addr_bits: int) -> int:
    """Pack one instruction into an integer of ``instruction_bits`` bits."""
    if instruction.z >= (1 << addr_bits):
        raise MachineError(
            f"destination {instruction.z} does not fit in {addr_bits} address bits"
        )
    field = addr_bits + 1
    word = _encode_operand(instruction.a, addr_bits)
    word |= _encode_operand(instruction.b, addr_bits) << field
    word |= instruction.z << (2 * field)
    return word


def decode_instruction(word: int, addr_bits: int) -> Instruction:
    """Inverse of :func:`encode_instruction` (comments are not stored)."""
    field = addr_bits + 1
    mask = (1 << field) - 1
    a = _decode_operand(word & mask, addr_bits)
    b = _decode_operand((word >> field) & mask, addr_bits)
    z = word >> (2 * field)
    return Instruction(a, b, z)


@dataclass(frozen=True)
class ProgramImage:
    """A program encoded as a flat bit vector for in-array storage."""

    bits: tuple[int, ...]
    addr_bits: int
    num_instructions: int

    @property
    def bits_per_instruction(self) -> int:
        return instruction_bits(self.addr_bits)

    def instruction_word(self, index: int) -> int:
        """The encoded word of instruction ``index``."""
        width = self.bits_per_instruction
        chunk = self.bits[index * width : (index + 1) * width]
        value = 0
        for i, bit in enumerate(chunk):
            value |= bit << i
        return value


def encode_program(program: Program, addr_bits: int | None = None) -> ProgramImage:
    """Encode a whole program; ``addr_bits`` defaults to fit its cells."""
    if addr_bits is None:
        addr_bits = address_bits_for(max(program.num_cells, 1))
    width = instruction_bits(addr_bits)
    bits: list[int] = []
    for instruction in program:
        word = encode_instruction(instruction, addr_bits)
        bits.extend((word >> i) & 1 for i in range(width))
    return ProgramImage(
        bits=tuple(bits), addr_bits=addr_bits, num_instructions=len(program)
    )


def decode_program(image: ProgramImage) -> list[Instruction]:
    """Recover the instruction sequence from an image."""
    return [
        decode_instruction(image.instruction_word(i), image.addr_bits)
        for i in range(image.num_instructions)
    ]
