"""PLiM programs: instruction sequences plus the memory-layout contract.

A :class:`Program` owns

* the ordered RM3 instructions,
* the input contract: which cell holds which primary input,
* the output contract: which cell holds which primary output on completion
  (with a polarity flag — rewriting may legally leave an output stored
  complemented when ``fix_output_polarity`` is off, matching the paper's
  listings), and
* the work-cell inventory, whose size is the paper's ``#R`` metric.

Programs can be pretty-printed in the paper's listing style and serialized
to/from a small text format (``.plim``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import ParseError
from repro.plim.isa import Instruction, Operand


@dataclass(frozen=True, slots=True)
class OutputLocation:
    """Where a primary output lives when the program halts."""

    cell: int
    inverted: bool = False  # True: the cell holds the *complement*


class Program:
    """An executable PLiM program with its I/O contract."""

    def __init__(
        self,
        input_cells: Optional[dict[str, int]] = None,
        name: Optional[str] = None,
    ):
        self.name = name
        self.instructions: list[Instruction] = []
        #: PI name → cell address (cells pre-loaded before execution).
        self.input_cells: dict[str, int] = dict(input_cells or {})
        #: PO name → :class:`OutputLocation`.
        self.output_cells: dict[str, OutputLocation] = {}
        #: Work cells ever allocated (the paper's #R), in allocation order.
        self.work_cells: list[int] = []
        self._work_cell_set: set[int] = set()

    # ------------------------------------------------------------------

    def append(self, instruction: Instruction) -> None:
        """Add one instruction to the end of the program."""
        self.instructions.append(instruction)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        """Add several instructions."""
        self.instructions.extend(instructions)

    def register_work_cell(self, address: int) -> None:
        """Record that ``address`` is used as a work cell."""
        if address not in self._work_cell_set:
            self._work_cell_set.add(address)
            self.work_cells.append(address)

    def set_output(self, name: str, cell: int, inverted: bool = False) -> None:
        """Declare where output ``name`` lives after execution."""
        self.output_cells[name] = OutputLocation(cell, inverted)

    # ------------------------------------------------------------------

    @property
    def num_instructions(self) -> int:
        """The paper's #I metric."""
        return len(self.instructions)

    @property
    def num_rrams(self) -> int:
        """The paper's #R metric: distinct work RRAMs used."""
        return len(self.work_cells)

    @property
    def num_cells(self) -> int:
        """Total cells touched (inputs + work cells)."""
        highest = -1
        for instr in self.instructions:
            highest = max(highest, instr.z)
            for op in (instr.a, instr.b):
                if not op.is_const:
                    highest = max(highest, op.value)
        for addr in self.input_cells.values():
            highest = max(highest, addr)
        return highest + 1

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def cell_namer(self):
        """Callable mapping a cell address to a paper-style name.

        Input cells render as their PI name; work cells as ``@X1 ...`` in
        allocation order; anything else as ``@addr``.
        """
        input_names = {addr: name for name, addr in self.input_cells.items()}
        work_names = {addr: f"@X{i + 1}" for i, addr in enumerate(self.work_cells)}

        def namer(address: int) -> str:
            if address in input_names:
                return input_names[address]
            if address in work_names:
                return work_names[address]
            return f"@{address}"

        return namer

    def listing(self, with_comments: bool = True) -> str:
        """Paper-style listing, e.g. ``01: 0, 1, @X1   X1 <- 0``."""
        namer = self.cell_namer()
        width = max(2, len(str(len(self.instructions))))
        lines = []
        for index, instr in enumerate(self.instructions, start=1):
            text = f"{index:0{width}d}: {instr.render(namer)}"
            if with_comments and instr.comment:
                text = f"{text:<36} {instr.comment}"
            lines.append(text)
        return "\n".join(lines)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"<Program{name}: {self.num_instructions} instructions, "
            f"{self.num_rrams} work RRAMs>"
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_text(self) -> str:
        """Serialize to the ``.plim`` text format."""
        lines = [f".plim {self.name or ''}".rstrip()]
        for name, addr in self.input_cells.items():
            lines.append(f".input {name} {addr}")
        for name, loc in self.output_cells.items():
            inv = " inv" if loc.inverted else ""
            lines.append(f".output {name} {loc.cell}{inv}")
        if self.work_cells:
            lines.append(".work " + " ".join(str(c) for c in self.work_cells))
        for instr in self.instructions:
            a, b = (op.render() for op in (instr.a, instr.b))
            comment = f" ; {instr.comment}" if instr.comment else ""
            lines.append(f"{a} {b} @{instr.z}{comment}")
        lines.append(".end")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "Program":
        """Parse the ``.plim`` text format produced by :meth:`to_text`."""
        program: Optional[Program] = None
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split(";")[0].strip()
            comment = raw.split(";", 1)[1].strip() if ";" in raw else ""
            if not line:
                continue
            if line.startswith(".plim"):
                name = line[len(".plim"):].strip() or None
                program = cls(name=name)
                continue
            if program is None:
                raise ParseError("file must start with a .plim header", lineno)
            if line == ".end":
                break
            if line.startswith(".input"):
                _, name, addr = line.split()
                program.input_cells[name] = int(addr)
            elif line.startswith(".output"):
                parts = line.split()
                inverted = len(parts) == 4 and parts[3] == "inv"
                program.set_output(parts[1], int(parts[2]), inverted)
            elif line.startswith(".work"):
                for token in line.split()[1:]:
                    program.register_work_cell(int(token))
            else:
                parts = line.split()
                if len(parts) != 3:
                    raise ParseError(f"malformed instruction {line!r}", lineno)
                a, b = (cls._parse_operand(tok, lineno) for tok in parts[:2])
                if not parts[2].startswith("@"):
                    raise ParseError(f"destination must be @addr, got {parts[2]!r}", lineno)
                program.append(Instruction(a, b, int(parts[2][1:]), comment))
        if program is None:
            raise ParseError("no .plim header found")
        return program

    @staticmethod
    def _parse_operand(token: str, lineno: int) -> Operand:
        if token in ("0", "1"):
            return Operand.const(int(token))
        if token.startswith("@"):
            return Operand.cell(int(token[1:]))
        raise ParseError(f"malformed operand {token!r}", lineno)
