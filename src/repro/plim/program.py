"""PLiM programs: instruction sequences plus the memory-layout contract.

A :class:`Program` owns

* the ordered RM3 instructions,
* the input contract: which cell holds which primary input,
* the output contract: which cell holds which primary output on completion
  (with a polarity flag — rewriting may legally leave an output stored
  complemented when ``fix_output_polarity`` is off, matching the paper's
  listings), and
* the work-cell inventory, whose size is the paper's ``#R`` metric.

Programs can be pretty-printed in the paper's listing style and serialized
to/from a small text format (``.plim``).

Internally the instruction stream lives in flat ``array('q')`` columns (the
same struct-of-arrays idiom as the MIG core): two operand-encoding columns,
one destination column, and a lazy comment descriptor per instruction.
:class:`~repro.plim.isa.Instruction` objects are materialized on demand by
the :attr:`Program.instructions` view, so building and measuring a
100k-instruction program allocates no per-RM3 dataclasses, and comments are
rendered only when a listing is actually produced.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import ParseError
from repro.plim.isa import Instruction, Operand, decode_operand, encode_operand


@dataclass(frozen=True, slots=True)
class OutputLocation:
    """Where a primary output lives when the program halts."""

    cell: int
    inverted: bool = False  # True: the cell holds the *complement*


# Lazy comment descriptors: each instruction carries a (kind, x, y[, text])
# tuple describing how to *build* its comment string instead of the string
# itself.  Kinds 2-5 cover every comment the translator emits; RAW keeps
# the general case (parsed files, hand-built programs) working.
COMMENT_NONE = 0  # no comment
COMMENT_RAW = 1  # literal string in the overflow table
COMMENT_CELL_CONST = 2  # "{label(x)} <- {y}"           (set-constant)
COMMENT_CELL_SIG = 3  # "{label(x)} <- {signal(y)}"   (load / inverted load)
COMMENT_CELL_NODE = 4  # "{label(x)} <- n{y}"          (a gate's final RM3)
COMMENT_TARGET_CONST = 5  # "{text} <- {y}"               (constant output)


class Program:
    """An executable PLiM program with its I/O contract."""

    def __init__(
        self,
        input_cells: Optional[dict[str, int]] = None,
        name: Optional[str] = None,
    ):
        self.name = name
        #: PI name → cell address (cells pre-loaded before execution).
        self.input_cells: dict[str, int] = dict(input_cells or {})
        #: PO name → :class:`OutputLocation`.
        self.output_cells: dict[str, OutputLocation] = {}
        #: Work cells ever allocated (the paper's #R), in allocation order.
        self.work_cells: list[int] = []
        self._work_cell_set: set[int] = set()
        #: PI node id → name, for lazy signal-name comments (set by the
        #: fast compiler; empty for parsed or hand-built programs).
        self.pi_node_names: dict[int, str] = {}
        # --- the flat instruction spine -------------------------------
        self._enc_a = array("q")  # operand A encodings
        self._enc_b = array("q")  # operand B encodings
        self._dst = array("q")  # destination addresses
        self._ck = bytearray()  # comment kinds
        self._cx = array("q")  # comment operand (cell address / unused)
        self._cy = array("q")  # comment payload (bit / signal enc / node)
        self._ctext: dict[int, str] = {}  # overflow strings (RAW / TARGET)
        #: bumped on every append — execution plans key on (len, version)
        self.version = 0
        self._instr_cache: list[Instruction] = []

    # ------------------------------------------------------------------

    def append(self, instruction: Instruction) -> None:
        """Add one instruction to the end of the program."""
        index = len(self._dst)
        self._enc_a.append(encode_operand(instruction.a))
        self._enc_b.append(encode_operand(instruction.b))
        self._dst.append(instruction.z)
        if instruction.comment:
            self._ck.append(COMMENT_RAW)
            self._ctext[index] = instruction.comment
        else:
            self._ck.append(COMMENT_NONE)
        self._cx.append(0)
        self._cy.append(0)
        self.version += 1

    def append_encoded(
        self,
        a_enc: int,
        b_enc: int,
        z: int,
        ckind: int = COMMENT_NONE,
        cx: int = 0,
        cy: int = 0,
        text: Optional[str] = None,
    ) -> None:
        """Fast-path append: pre-encoded operands and a lazy comment."""
        if text is not None:
            self._ctext[len(self._dst)] = text
        self._enc_a.append(a_enc)
        self._enc_b.append(b_enc)
        self._dst.append(z)
        self._ck.append(ckind)
        self._cx.append(cx)
        self._cy.append(cy)
        self.version += 1

    def extend(self, instructions: Iterable[Instruction]) -> None:
        """Add several instructions."""
        for instruction in instructions:
            self.append(instruction)

    def register_work_cell(self, address: int) -> None:
        """Record that ``address`` is used as a work cell."""
        if address not in self._work_cell_set:
            self._work_cell_set.add(address)
            self.work_cells.append(address)

    def set_output(self, name: str, cell: int, inverted: bool = False) -> None:
        """Declare where output ``name`` lives after execution."""
        self.output_cells[name] = OutputLocation(cell, inverted)

    # ------------------------------------------------------------------

    @property
    def instructions(self) -> list[Instruction]:
        """The instruction stream as :class:`Instruction` objects.

        Materialized lazily from the flat columns and cached; the spine is
        append-only, so a stale cache is topped up rather than rebuilt.
        Treat the returned list as read-only.
        """
        cache = self._instr_cache
        n = len(self._dst)
        if len(cache) < n:
            comment_at = self._comment_resolver()
            enc_a, enc_b, dst = self._enc_a, self._enc_b, self._dst
            for i in range(len(cache), n):
                cache.append(
                    Instruction(
                        decode_operand(enc_a[i]),
                        decode_operand(enc_b[i]),
                        dst[i],
                        comment_at(i),
                    )
                )
        return cache

    @property
    def num_instructions(self) -> int:
        """The paper's #I metric."""
        return len(self._dst)

    @property
    def num_rrams(self) -> int:
        """The paper's #R metric: distinct work RRAMs used."""
        return len(self.work_cells)

    @property
    def num_cells(self) -> int:
        """Total cells touched (inputs + work cells)."""
        highest = -1
        for z in self._dst:
            if z > highest:
                highest = z
        for column in (self._enc_a, self._enc_b):
            for enc in column:
                if not enc & 1 and enc >> 1 > highest:
                    highest = enc >> 1
        for addr in self.input_cells.values():
            if addr > highest:
                highest = addr
        return highest + 1

    def __len__(self) -> int:
        return len(self._dst)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def cell_namer(self):
        """Callable mapping a cell address to a paper-style name.

        Input cells render as their PI name; work cells as ``@X1 ...`` in
        allocation order; anything else as ``@addr``.
        """
        input_names = {addr: name for name, addr in self.input_cells.items()}
        work_names = {addr: f"@X{i + 1}" for i, addr in enumerate(self.work_cells)}

        def namer(address: int) -> str:
            if address in input_names:
                return input_names[address]
            if address in work_names:
                return work_names[address]
            return f"@{address}"

        return namer

    def _comment_resolver(self):
        """Callable mapping an instruction index to its comment string."""
        namer = self.cell_namer()
        pi_names = self.pi_node_names
        ck, cx, cy, ctext = self._ck, self._cx, self._cy, self._ctext

        def signame(enc: int) -> str:
            node = enc >> 1
            name = pi_names.get(node) or f"n{node}"
            return f"~{name}" if enc & 1 else name

        def comment_at(index: int) -> str:
            kind = ck[index]
            if kind == COMMENT_NONE:
                return ""
            if kind == COMMENT_RAW:
                return ctext[index]
            if kind == COMMENT_CELL_CONST:
                return f"{namer(cx[index])} <- {cy[index]}"
            if kind == COMMENT_CELL_SIG:
                return f"{namer(cx[index])} <- {signame(cy[index])}"
            if kind == COMMENT_CELL_NODE:
                return f"{namer(cx[index])} <- n{cy[index]}"
            return f"{ctext[index]} <- {cy[index]}"  # COMMENT_TARGET_CONST

        return comment_at

    @staticmethod
    def _render_operand(enc: int, namer=None) -> str:
        if enc & 1:
            return str(enc >> 1)
        return namer(enc >> 1) if namer is not None else f"@{enc >> 1}"

    def listing(self, with_comments: bool = True) -> str:
        """Paper-style listing, e.g. ``01: 0, 1, @X1   X1 <- 0``."""
        namer = self.cell_namer()
        comment_at = self._comment_resolver()
        width = max(2, len(str(len(self._dst))))
        lines = []
        for index in range(len(self._dst)):
            a = self._render_operand(self._enc_a[index], namer)
            b = self._render_operand(self._enc_b[index], namer)
            text = f"{index + 1:0{width}d}: {a}, {b}, {namer(self._dst[index])}"
            if with_comments:
                comment = comment_at(index)
                if comment:
                    text = f"{text:<36} {comment}"
            lines.append(text)
        return "\n".join(lines)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"<Program{name}: {self.num_instructions} instructions, "
            f"{self.num_rrams} work RRAMs>"
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_instr_cache"] = []  # rebuilt on demand after unpickling
        state.pop("_exec_plan", None)
        state.pop("_exec_plan_key", None)
        return state

    def to_text(self) -> str:
        """Serialize to the ``.plim`` text format."""
        lines = [f".plim {self.name or ''}".rstrip()]
        for name, addr in self.input_cells.items():
            lines.append(f".input {name} {addr}")
        for name, loc in self.output_cells.items():
            inv = " inv" if loc.inverted else ""
            lines.append(f".output {name} {loc.cell}{inv}")
        if self.work_cells:
            lines.append(".work " + " ".join(str(c) for c in self.work_cells))
        comment_at = self._comment_resolver()
        for index in range(len(self._dst)):
            a = self._render_operand(self._enc_a[index])
            b = self._render_operand(self._enc_b[index])
            comment = comment_at(index)
            suffix = f" ; {comment}" if comment else ""
            lines.append(f"{a} {b} @{self._dst[index]}{suffix}")
        lines.append(".end")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "Program":
        """Parse the ``.plim`` text format produced by :meth:`to_text`."""
        program: Optional[Program] = None
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split(";")[0].strip()
            comment = raw.split(";", 1)[1].strip() if ";" in raw else ""
            if not line:
                continue
            if line.startswith(".plim"):
                name = line[len(".plim"):].strip() or None
                program = cls(name=name)
                continue
            if program is None:
                raise ParseError("file must start with a .plim header", lineno)
            if line == ".end":
                break
            if line.startswith(".input"):
                _, name, addr = line.split()
                program.input_cells[name] = int(addr)
            elif line.startswith(".output"):
                parts = line.split()
                inverted = len(parts) == 4 and parts[3] == "inv"
                program.set_output(parts[1], int(parts[2]), inverted)
            elif line.startswith(".work"):
                for token in line.split()[1:]:
                    program.register_work_cell(int(token))
            else:
                parts = line.split()
                if len(parts) != 3:
                    raise ParseError(f"malformed instruction {line!r}", lineno)
                a, b = (cls._parse_operand(tok, lineno) for tok in parts[:2])
                if not parts[2].startswith("@"):
                    raise ParseError(f"destination must be @addr, got {parts[2]!r}", lineno)
                program.append(Instruction(a, b, int(parts[2][1:]), comment))
        if program is None:
            raise ParseError("no .plim header found")
        return program

    @staticmethod
    def _parse_operand(token: str, lineno: int) -> Operand:
        if token in ("0", "1"):
            return Operand.const(int(token))
        if token.startswith("@"):
            return Operand.cell(int(token[1:]))
        raise ParseError(f"malformed operand {token!r}", lineno)
