"""Functional verification of compiled programs against their source MIG.

The gold standard for every compiler configuration in this package: run the
program on the PLiM machine model and compare every output with the MIG's
simulation, either exhaustively (small input counts) or under packed random
patterns.  A single bit-parallel machine pass checks ``patterns_per_round``
input assignments at once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import VerificationError
from repro.mig.graph import Mig
from repro.mig.simulate import simulate
from repro.plim.machine import PlimMachine
from repro.plim.program import Program
from repro.utils.bits import full_mask, pattern_mask
from repro.utils.limits import EXHAUSTIVE_VERIFY_LIMIT


@dataclass(frozen=True)
class VerifyResult:
    """Outcome of a program-vs-MIG check."""

    ok: bool
    mode: str  # "exhaustive" or "random"
    patterns_checked: int
    failing_output: Optional[str] = None
    counterexample: Optional[dict[str, int]] = None

    def __bool__(self) -> bool:
        return self.ok


def verify_program(
    mig: Mig,
    program: Program,
    *,
    exhaustive_limit: int = EXHAUSTIVE_VERIFY_LIMIT,
    num_random_rounds: int = 4,
    patterns_per_round: int = 256,
    seed: int = 0x51AB,
    raise_on_mismatch: bool = False,
) -> VerifyResult:
    """Check that ``program`` computes exactly what ``mig`` computes.

    Exhaustive for up to ``exhaustive_limit`` primary inputs (every
    assignment packed into one machine pass; default
    :data:`~repro.utils.limits.EXHAUSTIVE_VERIFY_LIMIT` — smaller than the
    MIG-vs-MIG checker's window because each pattern also pays for the
    machine model, see that module), randomized otherwise.
    """
    names = mig.pi_names()
    missing = [n for n in names if n not in program.input_cells]
    if missing:
        raise VerificationError(f"program lacks input cells for {missing}")
    missing_pos = [n for n in mig.po_names() if n not in program.output_cells]
    if missing_pos:
        raise VerificationError(f"program lacks output locations for {missing_pos}")

    n = mig.num_pis
    if n <= exhaustive_limit:
        patterns = 1 << n
        assignment = {name: pattern_mask(i, n) for i, name in enumerate(names)}
        result = _run_round(mig, program, assignment, patterns)
        result = VerifyResult(
            ok=result.ok,
            mode="exhaustive",
            patterns_checked=patterns,
            failing_output=result.failing_output,
            counterexample=result.counterexample,
        )
    else:
        rng = random.Random(seed)
        mask = full_mask(patterns_per_round)
        checked = 0
        result = None
        for _ in range(num_random_rounds):
            assignment = {
                name: rng.getrandbits(patterns_per_round) & mask for name in names
            }
            round_result = _run_round(mig, program, assignment, patterns_per_round)
            checked += patterns_per_round
            if not round_result.ok:
                result = VerifyResult(
                    ok=False,
                    mode="random",
                    patterns_checked=checked,
                    failing_output=round_result.failing_output,
                    counterexample=round_result.counterexample,
                )
                break
        if result is None:
            result = VerifyResult(ok=True, mode="random", patterns_checked=checked)

    if raise_on_mismatch and not result.ok:
        raise VerificationError(
            f"program disagrees with MIG on output {result.failing_output!r} "
            f"under assignment {result.counterexample}"
        )
    return result


def _run_round(
    mig: Mig,
    program: Program,
    assignment: dict[str, int],
    patterns: int,
) -> VerifyResult:
    """One packed machine pass compared against MIG simulation."""
    machine = PlimMachine.for_program(program, width=patterns)
    actual = machine.run_program(program, assignment)
    expected = simulate(mig, assignment, patterns)
    for name in mig.po_names():
        if actual[name] != expected[name]:
            bad = actual[name] ^ expected[name]
            pattern = (bad & -bad).bit_length() - 1
            cex = {pi: (assignment[pi] >> pattern) & 1 for pi in mig.pi_names()}
            return VerifyResult(
                ok=False,
                mode="",
                patterns_checked=patterns,
                failing_output=name,
                counterexample=cex,
            )
    return VerifyResult(ok=True, mode="", patterns_checked=patterns)
