"""The PLiM instruction set: a single instruction, RM3.

``RM3(A, B, Z)`` updates the RRAM cell at address ``Z`` to the resistive
majority ``Z ← ⟨A, ¬B, Z⟩`` (paper §2.2 / §4.2.2): operand ``B`` enters the
majority complemented — that is what the physical bipolar RRAM write does —
and the destination cell contributes its *current* value and receives the
result.

Operands ``A`` and ``B`` are single-bit values read either from constants or
from the memory array; ``Z`` is always a cell address.  Useful idioms (all
taken from the paper's program listings):

====================  =========================  ======================
instruction           effect                     note
====================  =========================  ======================
``RM3(0, 1, @X)``     ``X ← 0``                  works from any state
``RM3(1, 0, @X)``     ``X ← 1``                  works from any state
``RM3(v, 0, @X)``     ``X ← v``   (if X = 0)     load
``RM3(1, v, @X)``     ``X ← ¬v``  (if X = 0)     inverted load
====================  =========================  ======================
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import MachineError


@dataclass(frozen=True, slots=True)
class Operand:
    """An RM3 source operand: a constant bit or a cell address.

    ``is_const`` selects the interpretation of ``value``: the literal bit
    (0/1) for constants, the cell address otherwise.
    """

    is_const: bool
    value: int

    @classmethod
    def const(cls, bit: int) -> "Operand":
        """Constant operand 0 or 1."""
        if bit not in (0, 1):
            raise MachineError(f"constant operand must be 0 or 1, got {bit!r}")
        return cls(True, bit)

    @classmethod
    def cell(cls, address: int) -> "Operand":
        """Operand read from the cell at ``address``."""
        if address < 0:
            raise MachineError(f"cell address must be non-negative, got {address}")
        return cls(False, address)

    def render(self, cell_namer=None) -> str:
        """Paper-style text: ``0``/``1`` for constants, ``@X`` for cells."""
        if self.is_const:
            return str(self.value)
        if cell_namer is not None:
            return cell_namer(self.value)
        return f"@{self.value}"

    def __str__(self) -> str:
        return self.render()


#: Shared constant operands (the overwhelmingly common ones).
ZERO = Operand.const(0)
ONE = Operand.const(1)


# ----------------------------------------------------------------------
# flat operand encoding
# ----------------------------------------------------------------------
#
# The array-backed program spine stores operands as single ints using the
# same low-bit-tag convention as the MIG child encodings:
#
#     enc = (value << 1) | is_const
#
# so constants 0/1 encode as 1/3 and cell ``k`` as ``2k``.  The encoding is
# total and reversible; ``Operand`` objects are materialized only when a
# caller actually asks for them.

#: encoded constant operands
ZERO_ENC = 1
ONE_ENC = 3


def encode_operand(operand: Operand) -> int:
    """Pack an :class:`Operand` into its flat int encoding."""
    return (operand.value << 1) | operand.is_const


def decode_operand(enc: int) -> Operand:
    """Materialize the :class:`Operand` for a flat encoding."""
    if enc & 1:
        return ONE if enc >> 1 else ZERO
    return Operand(False, enc >> 1)


@dataclass(frozen=True, slots=True)
class Instruction:
    """One RM3 instruction ``Z ← ⟨A, ¬B, Z⟩``.

    ``comment`` is free-form provenance recorded by the compiler (e.g.
    ``"X1 <- N3"``); it has no semantic effect.
    """

    a: Operand
    b: Operand
    z: int
    comment: str = ""

    def __post_init__(self):
        if self.z < 0:
            raise MachineError(f"destination address must be non-negative, got {self.z}")

    def render(self, cell_namer=None) -> str:
        """Paper-style rendering: ``A, B, @Z``."""
        z = f"@{self.z}" if cell_namer is None else cell_namer(self.z)
        return f"{self.a.render(cell_namer)}, {self.b.render(cell_namer)}, {z}"

    def __str__(self) -> str:
        return self.render()


def rm3(a: int, not_b: int, z: int) -> int:
    """The pure majority update: ``⟨a, ¬b, z⟩`` with ``¬b`` already applied.

    Operates bitwise so callers can pack many evaluation patterns into each
    integer (bit-parallel execution).
    """
    return (a & not_b) | (a & z) | (not_b & z)
