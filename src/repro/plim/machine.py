"""Executable model of the PLiM architecture (paper Fig. 2).

The machine is an RRAM array wrapped by a controller.  With ``LiM = 0`` the
array behaves as a standard RAM (read/write); with ``LiM = 1`` the
controller executes RM3 instructions: per instruction it reads operands
``A`` and ``B`` (from constants or from the array), then performs the write
``Z ← ⟨A, ¬B, Z⟩`` in place at the destination cell.

The model is *bit-parallel*: each cell stores a ``width``-bit integer whose
bit ``p`` is the cell's value in an independent evaluation universe ``p``.
``width=1`` is the physical machine; verification uses wide words to run
thousands of input patterns per pass.  Endurance accounting (device writes
and actual value flips per cell) is independent of width — one RM3 is one
programming pulse on one cell regardless of how many universes we simulate.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import MachineError
from repro.plim.isa import Instruction, Operand, rm3
from repro.plim.program import Program
from repro.utils.bits import full_mask


class PlimMachine:
    """RRAM array + controller with LiM and RAM operating modes."""

    def __init__(self, num_cells: int, width: int = 1):
        if num_cells < 0:
            raise MachineError(f"num_cells must be non-negative, got {num_cells}")
        if width < 1:
            raise MachineError(f"width must be positive, got {width}")
        self.width = width
        self.mask = full_mask(width)
        self.cells: list[int] = [0] * num_cells
        self.lim_enabled = False
        #: programming pulses per cell (every RM3/RAM write counts once)
        self.write_counts: list[int] = [0] * num_cells
        #: writes that actually changed the stored value
        self.flip_counts: list[int] = [0] * num_cells
        #: executed RM3 instructions
        self.instruction_count = 0
        #: controller cycles: read A, read B, write Z per RM3 (3 per instr)
        self.cycle_count = 0

    # ------------------------------------------------------------------
    # RAM mode
    # ------------------------------------------------------------------

    def read(self, address: int) -> int:
        """RAM-mode read of one cell."""
        self._check_address(address)
        return self.cells[address]

    def write(self, address: int, value: int) -> None:
        """RAM-mode write of one cell (counts as a programming pulse)."""
        if self.lim_enabled:
            raise MachineError("RAM write while LiM mode is active")
        self._check_address(address)
        value &= self.mask
        self._program_cell(address, value)

    # ------------------------------------------------------------------
    # LiM mode
    # ------------------------------------------------------------------

    def set_lim(self, enabled: bool) -> None:
        """Toggle logic-in-memory mode."""
        self.lim_enabled = bool(enabled)

    def execute(self, instruction: Instruction) -> int:
        """Execute one RM3 instruction; returns the value written to Z."""
        if not self.lim_enabled:
            raise MachineError("RM3 execution requires LiM mode (set_lim(True))")
        self._check_address(instruction.z)
        a = self._load_operand(instruction.a)
        not_b = self._load_operand(instruction.b) ^ self.mask
        z_old = self.cells[instruction.z]
        result = rm3(a, not_b, z_old) & self.mask
        self._program_cell(instruction.z, result)
        self.instruction_count += 1
        self.cycle_count += 3  # read A, read B, write Z
        return result

    def run(self, program: Program | Iterable[Instruction]) -> None:
        """Execute a whole program (or raw instruction sequence) in LiM mode."""
        was_lim = self.lim_enabled
        self.set_lim(True)
        instructions = program.instructions if isinstance(program, Program) else program
        for instruction in instructions:
            self.execute(instruction)
        self.set_lim(was_lim)

    # ------------------------------------------------------------------
    # program-level convenience
    # ------------------------------------------------------------------

    @classmethod
    def for_program(cls, program: Program, width: int = 1) -> "PlimMachine":
        """Machine sized to fit every cell a program touches."""
        return cls(max(program.num_cells, 1), width=width)

    def load_inputs(self, program: Program, values: dict[str, int]) -> None:
        """RAM-mode load of the program's input cells from ``values``."""
        for name, address in program.input_cells.items():
            try:
                self.write(address, values[name])
            except KeyError:
                raise MachineError(f"no value provided for input {name!r}") from None

    def read_outputs(self, program: Program) -> dict[str, int]:
        """Read the program's outputs, honouring polarity flags."""
        outputs: dict[str, int] = {}
        for name, location in program.output_cells.items():
            value = self.read(location.cell)
            if location.inverted:
                value ^= self.mask
            outputs[name] = value
        return outputs

    def run_program(self, program: Program, inputs: dict[str, int]) -> dict[str, int]:
        """Load inputs, run in LiM mode, read outputs."""
        self.load_inputs(program, inputs)
        self.run(program)
        return self.read_outputs(program)

    # ------------------------------------------------------------------

    def _load_operand(self, operand: Operand) -> int:
        if operand.is_const:
            return self.mask if operand.value else 0
        self._check_address(operand.value)
        return self.cells[operand.value]

    def _program_cell(self, address: int, value: int) -> None:
        if self.cells[address] != value:
            self.flip_counts[address] += 1
        self.cells[address] = value
        self.write_counts[address] += 1

    def _check_address(self, address: int) -> None:
        if not 0 <= address < len(self.cells):
            raise MachineError(
                f"cell address {address} out of range (array has {len(self.cells)} cells)"
            )

    def __repr__(self) -> str:
        mode = "LiM" if self.lim_enabled else "RAM"
        return (
            f"<PlimMachine: {len(self.cells)} cells x {self.width} bit(s), "
            f"mode={mode}, executed={self.instruction_count}>"
        )
