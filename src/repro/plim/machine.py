"""Executable model of the PLiM architecture (paper Fig. 2).

The machine is an RRAM array wrapped by a controller.  With ``LiM = 0`` the
array behaves as a standard RAM (read/write); with ``LiM = 1`` the
controller executes RM3 instructions: per instruction it reads operands
``A`` and ``B`` (from constants or from the array), then performs the write
``Z ← ⟨A, ¬B, Z⟩`` in place at the destination cell.

The model is *bit-parallel*: each cell stores a ``width``-bit integer whose
bit ``p`` is the cell's value in an independent evaluation universe ``p``.
``width=1`` is the physical machine; verification uses wide words to run
thousands of input patterns per pass.  Endurance accounting (device writes
and actual value flips per cell) is independent of width — one RM3 is one
programming pulse on one cell regardless of how many universes we simulate.

Program execution has three kernels sharing exact semantics (outputs,
write/flip counts, instruction and cycle counters):

* ``"object"`` — the original one-:class:`Instruction`-at-a-time
  interpreter (:meth:`PlimMachine.execute` in a loop); the differential
  oracle.
* ``"plan"`` — a per-program :class:`_ExecPlan` (the
  ``simulate._SimPlan`` pattern): operand resolution precomputed into flat
  index triples, cached on program identity, driving a tight list-based
  big-int loop.
* ``"numpy"`` — a chunked uint64 matrix kernel for the wide widths
  exhaustive verification uses; each cell is a row of 64-bit words.

``kernel="auto"`` (the default) picks ``"numpy"`` for wide runs when numpy
is available and ``"plan"`` otherwise.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import MachineError
from repro.plim.isa import Instruction, Operand, rm3
from repro.plim.program import Program
from repro.utils.bits import full_mask

try:  # pragma: no cover - exercised via the numpy kernel tests
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

KERNELS = ("auto", "object", "plan", "numpy")

#: ``auto`` switches to the numpy kernel at and above this width ...
_NUMPY_MIN_WIDTH = 1024
#: ... provided the program is long enough to amortize the matrix setup.
_NUMPY_MIN_INSTRUCTIONS = 64


class _ExecPlan:
    """Pre-resolved operands of one program, cached on program identity.

    ``ops`` holds one ``(a, b, z)`` triple per instruction where ``a`` and
    ``b`` are cell addresses or the negative constant sentinels ``-1``
    (constant 0) / ``-2`` (constant 1); binding maps the sentinels onto two
    constant slots appended after the machine's cells.
    """

    __slots__ = ("ops", "max_addr")

    def __init__(self, program: Program):
        ops: list[tuple[int, int, int]] = []
        max_addr = -1
        for a_enc, b_enc, z in zip(program._enc_a, program._enc_b, program._dst):
            if a_enc & 1:
                a = -1 - (a_enc >> 1)
            else:
                a = a_enc >> 1
                if a > max_addr:
                    max_addr = a
            if b_enc & 1:
                b = -1 - (b_enc >> 1)
            else:
                b = b_enc >> 1
                if b > max_addr:
                    max_addr = b
            if z > max_addr:
                max_addr = z
            ops.append((a, b, z))
        self.ops = ops
        self.max_addr = max_addr


def _plan_for(program: Program) -> _ExecPlan:
    """The program's cached execution plan (rebuilt after appends)."""
    key = (len(program), program.version)
    plan = getattr(program, "_exec_plan", None)
    if plan is not None and getattr(program, "_exec_plan_key", None) == key:
        return plan
    plan = _ExecPlan(program)
    program._exec_plan = plan
    program._exec_plan_key = key
    return plan


class PlimMachine:
    """RRAM array + controller with LiM and RAM operating modes."""

    def __init__(self, num_cells: int, width: int = 1, kernel: str = "auto"):
        if num_cells < 0:
            raise MachineError(f"num_cells must be non-negative, got {num_cells}")
        if width < 1:
            raise MachineError(f"width must be positive, got {width}")
        if kernel not in KERNELS:
            raise MachineError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        self.width = width
        self.mask = full_mask(width)
        self.kernel = kernel
        self.cells: list[int] = [0] * num_cells
        self.lim_enabled = False
        #: programming pulses per cell (every RM3/RAM write counts once)
        self.write_counts: list[int] = [0] * num_cells
        #: writes that actually changed the stored value
        self.flip_counts: list[int] = [0] * num_cells
        #: executed RM3 instructions
        self.instruction_count = 0
        #: controller cycles: read A, read B, write Z per RM3 (3 per instr)
        self.cycle_count = 0
        #: (plan, bound ops) of the last program run on this machine
        self._bound: Optional[tuple[_ExecPlan, list[tuple[int, int, int]]]] = None

    # ------------------------------------------------------------------
    # RAM mode
    # ------------------------------------------------------------------

    def read(self, address: int) -> int:
        """RAM-mode read of one cell."""
        self._check_address(address)
        return self.cells[address]

    def write(self, address: int, value: int) -> None:
        """RAM-mode write of one cell (counts as a programming pulse)."""
        if self.lim_enabled:
            raise MachineError("RAM write while LiM mode is active")
        self._check_address(address)
        value &= self.mask
        self._program_cell(address, value)

    # ------------------------------------------------------------------
    # LiM mode
    # ------------------------------------------------------------------

    def set_lim(self, enabled: bool) -> None:
        """Toggle logic-in-memory mode."""
        self.lim_enabled = bool(enabled)

    def execute(self, instruction: Instruction) -> int:
        """Execute one RM3 instruction; returns the value written to Z."""
        if not self.lim_enabled:
            raise MachineError("RM3 execution requires LiM mode (set_lim(True))")
        self._check_address(instruction.z)
        a = self._load_operand(instruction.a)
        not_b = self._load_operand(instruction.b) ^ self.mask
        z_old = self.cells[instruction.z]
        result = rm3(a, not_b, z_old) & self.mask
        self._program_cell(instruction.z, result)
        self.instruction_count += 1
        self.cycle_count += 3  # read A, read B, write Z
        return result

    def run(
        self,
        program: Program | Iterable[Instruction],
        kernel: Optional[str] = None,
    ) -> None:
        """Execute a whole program (or raw instruction sequence) in LiM mode.

        ``kernel`` overrides the machine's kernel for this run; raw
        instruction sequences always go through the object interpreter.
        """
        was_lim = self.lim_enabled
        self.set_lim(True)
        if not isinstance(program, Program):
            for instruction in program:
                self.execute(instruction)
            self.set_lim(was_lim)
            return
        chosen = kernel if kernel is not None else self.kernel
        if chosen not in KERNELS:
            raise MachineError(
                f"unknown kernel {chosen!r}; expected one of {KERNELS}"
            )
        if chosen == "auto":
            wide = (
                _np is not None
                and self.width >= _NUMPY_MIN_WIDTH
                and len(program) >= _NUMPY_MIN_INSTRUCTIONS
            )
            chosen = "numpy" if wide else "plan"
        if chosen == "numpy" and _np is None:
            raise MachineError("numpy kernel requested but numpy is not available")
        if chosen == "object":
            for instruction in program.instructions:
                self.execute(instruction)
        elif chosen == "numpy":
            self._run_numpy(program)
        else:
            self._run_plan(program)
        self.set_lim(was_lim)

    # ------------------------------------------------------------------
    # compiled kernels
    # ------------------------------------------------------------------

    def _bound_ops(self, plan: _ExecPlan) -> list[tuple[int, int, int]]:
        """Plan ops with constant sentinels bound to this machine's slots."""
        bound = self._bound
        if bound is not None and bound[0] is plan:
            return bound[1]
        n = len(self.cells)  # const 0 lives at n, const 1 at n + 1
        ops = [
            (a if a >= 0 else n - 1 - a, b if b >= 0 else n - 1 - b, z)
            for a, b, z in plan.ops
        ]
        self._bound = (plan, ops)
        return ops

    def _checked_plan(self, program: Program) -> _ExecPlan:
        plan = _plan_for(program)
        if plan.max_addr >= len(self.cells):
            raise MachineError(
                f"cell address {plan.max_addr} out of range "
                f"(array has {len(self.cells)} cells)"
            )
        return plan

    def _run_plan(self, program: Program) -> None:
        """Big-int kernel: one tight loop over pre-resolved operand triples."""
        plan = self._checked_plan(program)
        ops = self._bound_ops(plan)
        mask = self.mask
        n = len(self.cells)
        buf = self.cells + [0, mask]
        write_counts = self.write_counts
        flip_counts = self.flip_counts
        for a_i, b_i, z in ops:
            a = buf[a_i]
            not_b = buf[b_i] ^ mask
            old = buf[z]
            result = (a & not_b) | ((a | not_b) & old)
            if result != old:
                buf[z] = result
                flip_counts[z] += 1
            write_counts[z] += 1
        del buf[n:]
        self.cells = buf
        self.instruction_count += len(ops)
        self.cycle_count += 3 * len(ops)

    def _run_numpy(self, program: Program) -> None:
        """Chunked uint64 kernel: each cell is a row of 64-bit words."""
        np = _np
        plan = self._checked_plan(program)
        ops = self._bound_ops(plan)
        n = len(self.cells)
        words = (self.width + 63) >> 6
        nbytes = words * 8
        mem = np.zeros((n + 2, words), dtype=np.uint64)
        for i, value in enumerate(self.cells):
            if value:
                mem[i] = np.frombuffer(value.to_bytes(nbytes, "little"), dtype=np.uint64)
        mem[n + 1] = np.frombuffer(self.mask.to_bytes(nbytes, "little"), dtype=np.uint64)
        mask_row = mem[n + 1]
        write_counts = self.write_counts
        flip_counts = self.flip_counts
        t_not_b = np.empty(words, dtype=np.uint64)
        t_or = np.empty(words, dtype=np.uint64)
        for a_i, b_i, z in ops:
            a = mem[a_i]
            old = mem[z]
            np.bitwise_xor(mem[b_i], mask_row, out=t_not_b)
            np.bitwise_or(a, t_not_b, out=t_or)  # a | ¬b
            np.bitwise_and(t_not_b, a, out=t_not_b)  # a & ¬b
            np.bitwise_and(t_or, old, out=t_or)  # (a | ¬b) & old
            np.bitwise_or(t_not_b, t_or, out=t_not_b)  # the RM3 result
            if not np.array_equal(t_not_b, old):
                old[:] = t_not_b
                flip_counts[z] += 1
            write_counts[z] += 1
        for i in range(n):
            self.cells[i] = int.from_bytes(mem[i].tobytes(), "little")
        self.instruction_count += len(ops)
        self.cycle_count += 3 * len(ops)

    # ------------------------------------------------------------------
    # program-level convenience
    # ------------------------------------------------------------------

    @classmethod
    def for_program(
        cls, program: Program, width: int = 1, kernel: str = "auto"
    ) -> "PlimMachine":
        """Machine sized to fit every cell a program touches."""
        return cls(max(program.num_cells, 1), width=width, kernel=kernel)

    def load_inputs(self, program: Program, values: dict[str, int]) -> None:
        """RAM-mode load of the program's input cells from ``values``."""
        for name, address in program.input_cells.items():
            try:
                self.write(address, values[name])
            except KeyError:
                raise MachineError(f"no value provided for input {name!r}") from None

    def read_outputs(self, program: Program) -> dict[str, int]:
        """Read the program's outputs, honouring polarity flags."""
        outputs: dict[str, int] = {}
        for name, location in program.output_cells.items():
            value = self.read(location.cell)
            if location.inverted:
                value ^= self.mask
            outputs[name] = value
        return outputs

    def run_program(self, program: Program, inputs: dict[str, int]) -> dict[str, int]:
        """Load inputs, run in LiM mode, read outputs."""
        self.load_inputs(program, inputs)
        self.run(program)
        return self.read_outputs(program)

    # ------------------------------------------------------------------

    def _load_operand(self, operand: Operand) -> int:
        if operand.is_const:
            return self.mask if operand.value else 0
        self._check_address(operand.value)
        return self.cells[operand.value]

    def _program_cell(self, address: int, value: int) -> None:
        if self.cells[address] != value:
            self.flip_counts[address] += 1
        self.cells[address] = value
        self.write_counts[address] += 1

    def _check_address(self, address: int) -> None:
        if not 0 <= address < len(self.cells):
            raise MachineError(
                f"cell address {address} out of range (array has {len(self.cells)} cells)"
            )

    def __repr__(self) -> str:
        mode = "LiM" if self.lim_enabled else "RAM"
        return (
            f"<PlimMachine: {len(self.cells)} cells x {self.width} bit(s), "
            f"mode={mode}, executed={self.instruction_count}>"
        )
