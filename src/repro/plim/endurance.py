"""Endurance (write-wear) analysis of PLiM executions.

RRAM cells endure a bounded number of programming cycles, which is why the
paper's allocator recycles the *oldest* released cell first (FIFO): reuse is
spread across many cells instead of hammering the most recently freed one.
This module quantifies that effect from a machine's write counters so the
allocator ablation (DESIGN.md experiment X3) can report concrete numbers.

Run the machine with ``width=1`` when flip counts matter: with packed
patterns a "flip" means *any* universe flipped, which overstates physical
switching.  Pulse counts (``write_counts``) are exact at any width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.plim.machine import PlimMachine
from repro.plim.program import Program


@dataclass(frozen=True)
class EnduranceReport:
    """Write-traffic summary over a set of cells."""

    num_cells: int
    cells_written: int
    total_writes: int
    max_writes: int
    mean_writes: float
    stddev_writes: float
    gini: float  # 0 = perfectly even wear, → 1 = concentrated on few cells

    def __str__(self) -> str:
        return (
            f"cells={self.num_cells} written={self.cells_written} "
            f"total={self.total_writes} max={self.max_writes} "
            f"mean={self.mean_writes:.2f} stddev={self.stddev_writes:.2f} "
            f"gini={self.gini:.3f}"
        )


def wear_report(machine: PlimMachine, cells: list[int] | None = None) -> EnduranceReport:
    """Summarize write wear, optionally restricted to ``cells``."""
    counts = machine.write_counts
    if cells is not None:
        counts = [machine.write_counts[c] for c in cells]
    return report_from_counts(counts)


def work_cell_wear(machine: PlimMachine, program: Program) -> EnduranceReport:
    """Wear over the program's *work* cells only (the paper's #R set)."""
    return wear_report(machine, program.work_cells)


def report_from_counts(counts: list[int]) -> EnduranceReport:
    """Build an :class:`EnduranceReport` from raw per-cell write counts."""
    n = len(counts)
    total = sum(counts)
    written = sum(1 for c in counts if c)
    if n == 0 or total == 0:
        return EnduranceReport(n, written, total, 0, 0.0, 0.0, 0.0)
    mean = total / n
    variance = sum((c - mean) ** 2 for c in counts) / n
    return EnduranceReport(
        num_cells=n,
        cells_written=written,
        total_writes=total,
        max_writes=max(counts),
        mean_writes=mean,
        stddev_writes=math.sqrt(variance),
        gini=_gini(counts),
    )


def _gini(counts: list[int]) -> float:
    """Gini coefficient of a non-negative distribution (0 = even)."""
    n = len(counts)
    total = sum(counts)
    if n == 0 or total == 0:
        return 0.0
    ordered = sorted(counts)
    cumulative = 0
    weighted = 0
    for i, value in enumerate(ordered, start=1):
        cumulative += value
        weighted += cumulative
    # Standard formula: G = (n + 1 - 2 * sum(cum_i) / total) / n
    return max(0.0, (n + 1 - 2 * weighted / total) / n)
