"""The PLiM controller as a von Neumann machine over one RRAM array.

:class:`~repro.plim.machine.PlimMachine` executes instruction objects
directly — convenient for verification, but the real PLiM (paper Fig. 2)
stores the *program in the same resistive array as the data* and the
controller FSM fetches, decodes, and executes it:

    "The PLiM controller consists of a wrapper of the RRAM array and works
    as a simple processor core, reading instructions from the memory array
    and performing computing operations (majority) within the memory
    array. [...] When the write operation is completed, a program counter
    is incremented, and a new cycle of operation is triggered."

:class:`FetchingController` models exactly that: the encoded program
(:mod:`repro.plim.encoding`) is written into an instruction region above
the data cells; each step fetches ``bits_per_instruction`` cells, decodes
the RM3, applies it to the data region, and advances the program counter.
Cycle accounting covers fetch reads, operand reads, and the write.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MachineError
from repro.plim.encoding import ProgramImage, decode_instruction, encode_program
from repro.plim.machine import PlimMachine
from repro.plim.program import Program


class FetchingController:
    """Fetch–decode–execute FSM over a single PLiM array."""

    def __init__(self, program: Program):
        self.program = program
        self.data_cells = max(program.num_cells, 1)
        self.image: ProgramImage = encode_program(program)
        #: first cell of the instruction region (directly above the data)
        self.code_base = self.data_cells
        total = self.data_cells + len(self.image.bits)
        self.machine = PlimMachine(total, width=1)
        self.pc = 0
        self.halted = False
        #: cycles spent fetching instruction bits
        self.fetch_cycles = 0
        #: cycles spent reading operands and writing destinations
        self.execute_cycles = 0
        self._load_image()

    def _load_image(self) -> None:
        """RAM-mode write of the encoded program into the array."""
        for offset, bit in enumerate(self.image.bits):
            self.machine.write(self.code_base + offset, bit)

    # ------------------------------------------------------------------

    def load_inputs(self, values: dict[str, int]) -> None:
        """RAM-mode load of the program's input cells."""
        self.machine.load_inputs(self.program, values)

    def fetch(self) -> int:
        """Read the current instruction's bits from the array."""
        width = self.image.bits_per_instruction
        base = self.code_base + self.pc * width
        word = 0
        for i in range(width):
            word |= self.machine.read(base + i) << i
        self.fetch_cycles += width
        return word

    def step(self) -> bool:
        """One fetch–decode–execute cycle; returns False once halted."""
        if self.halted:
            return False
        if self.pc >= self.image.num_instructions:
            self.halted = True
            return False
        word = self.fetch()
        instruction = decode_instruction(word, self.image.addr_bits)
        if instruction.z >= self.data_cells:
            raise MachineError(
                f"instruction at pc={self.pc} writes into the code region "
                f"(cell {instruction.z})"
            )
        self.machine.set_lim(True)
        self.machine.execute(instruction)
        self.machine.set_lim(False)
        self.execute_cycles += 3
        self.pc += 1
        return True

    def run(self, inputs: Optional[dict[str, int]] = None) -> dict[str, int]:
        """Execute the whole stored program; returns the program outputs."""
        if inputs is not None:
            self.load_inputs(inputs)
        while self.step():
            pass
        return self.machine.read_outputs(self.program)

    @property
    def total_cycles(self) -> int:
        """Fetch plus execute cycles so far."""
        return self.fetch_cycles + self.execute_cycles

    def __repr__(self) -> str:
        return (
            f"<FetchingController: pc={self.pc}/{self.image.num_instructions}, "
            f"{self.data_cells} data cells + {len(self.image.bits)} code bits>"
        )
