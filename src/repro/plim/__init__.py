"""PLiM architecture substrate.

Models the Programmable Logic-in-Memory computer of Gaillardon et al.
(DATE'16) that the compiler targets: the single-instruction ISA (``RM3``),
the program container, an executable machine model of the RRAM array with
its controller (paper Fig. 2), functional verification of compiled programs,
and endurance (write-wear) analysis.
"""

from repro.plim.isa import Instruction, Operand
from repro.plim.program import Program
from repro.plim.machine import PlimMachine
from repro.plim.verify import verify_program

__all__ = ["Instruction", "Operand", "Program", "PlimMachine", "verify_program"]
