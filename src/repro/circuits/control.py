"""Control-oriented EPFL benchmarks: dec, priority, int2float, voter,
ctrl, router.

``dec``, ``priority``, ``int2float`` and ``voter`` are exact functional
re-implementations.  ``ctrl`` (a RISC-style control decoder) and ``router``
(an XY route-compute + arbitration unit) rebuild the same *family* of logic
at the paper's exact I/O signatures — the original netlists are not
publicly specified beyond their sizes (DESIGN.md §4).
"""

from __future__ import annotations

from repro.mig.build import LogicBuilder
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.mig.words import (
    Word,
    constant_word,
    equal,
    leading_one_index,
    less_than,
    mux_word,
    negate,
    popcount,
)


def make_dec(bits: int = 8, style: str = "aoig") -> Mig:
    """``bits`` → ``2**bits`` one-hot decoder (EPFL ``dec``: 8 → 256).

    Built the classic way: two half-width pre-decoders feeding an AND
    matrix.
    """
    builder = LogicBuilder(style=style, name=f"dec{bits}")
    a = builder.inputs(bits, "a")
    lo, hi = a[: bits // 2], a[bits // 2 :]

    def predecode(sel: list[Signal]) -> list[Signal]:
        lines = [builder.const(1)]
        for bit in sel:
            lines = [builder.and_(line, ~bit) for line in lines] + [
                builder.and_(line, bit) for line in lines
            ]
        return lines

    low_lines = predecode(lo)
    high_lines = predecode(hi)
    index = 0
    for high in high_lines:
        for low in low_lines:
            builder.output(builder.and_(high, low), f"y{index}")
            index += 1
    return builder.mig


def make_priority(bits: int = 128, style: str = "aoig") -> Mig:
    """Priority encoder (EPFL ``priority``: 128 → 8).

    Outputs the index of the highest set request line plus a valid flag.
    """
    builder = LogicBuilder(style=style, name=f"priority{bits}")
    requests = builder.inputs(bits, "r")
    index, found = leading_one_index(builder, requests)
    builder.outputs(index, "y")
    builder.output(found, "valid")
    return builder.mig


def make_int2float(bits: int = 11, exp_bits: int = 3, mant_bits: int = 3, style: str = "aoig") -> Mig:
    """Two's-complement integer → tiny float (EPFL ``int2float``: 11 → 7).

    Output (little-endian POs): ``mant_bits`` mantissa, ``exp_bits``
    biased-by-zero exponent (saturating), then the sign.  Zero maps to all
    zeros; the mantissa holds the bits right below the leading one
    (truncated, implicit-one normalization).
    """
    builder = LogicBuilder(style=style, name=f"int2float{bits}")
    x = builder.inputs(bits, "x")
    sign = x[-1]
    magnitude = mux_word(builder, sign, negate(builder, x), list(x))[: bits - 1]

    msb, found = leading_one_index(builder, magnitude)
    # Mantissa: the mant_bits bits right below the leading one.  Extract by
    # a priority mux over every possible leading-one position.
    mantissa: Word = [builder.const(0)] * mant_bits
    zero = builder.const(0)
    for k in range(len(magnitude)):
        window = [magnitude[k - 1 - j] if k - 1 - j >= 0 else zero for j in range(mant_bits)]
        # one-hot condition: leading one exactly at position k
        target = constant_word(builder, k, len(msb))
        at_k = builder.and_(found, equal(builder, msb, target))
        mantissa = [
            builder.or_(m, builder.and_(at_k, w)) for m, w in zip(mantissa, window)
        ]
    # Exponent: the leading-one index, saturated to exp_bits.
    max_exp = (1 << exp_bits) - 1
    overflow = builder.or_reduce(msb[exp_bits:]) if len(msb) > exp_bits else builder.const(0)
    padded = list(msb[:exp_bits]) + [builder.const(0)] * max(0, exp_bits - len(msb))
    exponent = [builder.or_(overflow, bit) for bit in padded]
    # Mantissa saturates to all ones on overflow.
    mantissa = [builder.or_(overflow, m) for m in mantissa]
    for i, m in enumerate(mantissa):
        builder.output(m, f"m{i}")
    for i, e in enumerate(exponent):
        builder.output(e, f"e{i}")
    builder.output(sign, "sign")
    return builder.mig


def make_voter(inputs: int = 1001, style: str = "aoig") -> Mig:
    """Majority voter over ``inputs`` lines (EPFL ``voter``: 1001 → 1)."""
    if inputs % 2 == 0:
        raise ValueError("a majority voter needs an odd number of inputs")
    builder = LogicBuilder(style=style, name=f"voter{inputs}")
    votes = builder.inputs(inputs, "v")
    count = popcount(builder, votes)
    threshold = constant_word(builder, inputs // 2 + 1, len(count))
    builder.output(~less_than(builder, count, threshold), "majority")
    return builder.mig


def make_ctrl(style: str = "aoig") -> Mig:
    """RISC-style control decoder (EPFL ``ctrl`` signature: 7 → 26).

    Input: 3-bit opcode plus 4-bit function field.  Outputs: 8 one-hot
    opcode lines, ALU control, register/memory/branch strobes — the shape
    of a classic single-cycle control unit.
    """
    builder = LogicBuilder(style=style, name="ctrl")
    op = builder.inputs(3, "op")
    funct = builder.inputs(4, "f")

    # 8 one-hot opcode lines (outputs 0-7).
    one_hot: list[Signal] = []
    for k in range(8):
        literals = [op[i] if (k >> i) & 1 else ~op[i] for i in range(3)]
        one_hot.append(builder.and_reduce(literals))
    for k, line in enumerate(one_hot):
        builder.output(line, f"dec{k}")

    alu_op, load, store, branch, jump, imm, halt = one_hot[:7]
    reg_write = builder.or_reduce([alu_op, load, imm, jump])
    mem_read = load
    mem_write = store
    alu_src = builder.or_reduce([load, store, imm])
    pc_src = builder.or_(jump, builder.and_(branch, funct[0]))
    # ALU control: function field, forced to "add" for memory ops.
    force_add = builder.or_(load, store)
    alu_ctrl = [builder.and_(f, ~force_add) for f in funct]
    link = builder.and_(jump, funct[3])
    trap = builder.and_(halt, builder.and_reduce(funct))
    overflow_en = builder.and_(alu_op, ~funct[3])
    sign_ext = builder.or_(load, builder.or_(store, branch))
    byte_en = [builder.mux(store, funct[i], builder.const(0)) for i in range(2)]
    stall = builder.and_(mem_read, funct[2])

    extras = [
        reg_write, mem_read, mem_write, alu_src, pc_src,
        alu_ctrl[0], alu_ctrl[1], alu_ctrl[2], alu_ctrl[3],
        link, trap, overflow_en, sign_ext, byte_en[0], byte_en[1],
        stall, builder.xor(branch, jump), builder.or_(trap, halt),
    ]
    for i, signal in enumerate(extras):
        builder.output(signal, f"c{i}")
    return builder.mig


def make_router(style: str = "aoig") -> Mig:
    """XY route-compute and arbitration (EPFL ``router`` signature: 60 → 30).

    Four input ports, each with a valid bit and an (x, y) destination;
    the unit computes a one-hot output direction per port (N/S/E/W/local)
    against the router's own coordinates, and grants one request per
    direction with a rotating priority.
    """
    builder = LogicBuilder(style=style, name="router")
    ports = []
    for p in range(4):
        valid = builder.input(f"p{p}_valid")
        dest_x = builder.inputs(5, f"p{p}_x")
        dest_y = builder.inputs(5, f"p{p}_y")
        ports.append((valid, dest_x, dest_y))
    cur_x = builder.inputs(5, "cur_x")
    cur_y = builder.inputs(5, "cur_y")
    rotate = builder.inputs(2, "rr")
    credit = builder.inputs(4, "credit")

    directions = []  # per port: [E, W, N, S, local]
    for valid, dest_x, dest_y in ports:
        east = builder.and_(valid, less_than(builder, cur_x, dest_x))
        west = builder.and_(valid, less_than(builder, dest_x, cur_x))
        same_x = builder.and_(valid, equal(builder, dest_x, cur_x))
        north = builder.and_(same_x, less_than(builder, cur_y, dest_y))
        south = builder.and_(same_x, less_than(builder, dest_y, cur_y))
        local = builder.and_(same_x, equal(builder, dest_y, cur_y))
        directions.append([east, west, north, south, local])

    master_enable = builder.or_reduce(credit)  # active while credits remain
    for p, dirs in enumerate(directions):
        for name, signal in zip(("e", "w", "n", "s", "l"), dirs):
            builder.output(builder.and_(signal, master_enable), f"p{p}_{name}")

    # Rotating-priority grant: port p wins if it is valid, has credit, and
    # no higher-priority valid port exists (priority rotates with `rr`).
    for p in range(4):
        valid = ports[p][0]
        has_credit = credit[p]
        higher_busy = []
        for q in range(4):
            if q == p:
                continue
            # q outranks p when (q - rr) mod 4 < (p - rr) mod 4; build the
            # comparison as a mux over the 4 rotation values.
            outranks_by_rr = []
            for r in range(4):
                outranks_by_rr.append((q - r) % 4 < (p - r) % 4)
            cond_r = [
                builder.and_(
                    builder.xor(rotate[1], builder.const(1 - (r >> 1))),
                    builder.xor(rotate[0], builder.const(1 - (r & 1))),
                )
                for r in range(4)
            ]
            outranks = builder.or_reduce(
                [cond_r[r] for r in range(4) if outranks_by_rr[r]]
            )
            higher_busy.append(builder.and_(ports[q][0], outranks))
        grant = builder.and_reduce(
            [valid, has_credit, ~builder.or_reduce(higher_busy)]
        )
        builder.output(grant, f"grant{p}")

    any_valid = builder.or_reduce([v for v, _, _ in ports])
    all_blocked = builder.and_reduce(
        [builder.or_(~v, ~c) for (v, _, _), c in zip(ports, credit)]
    )
    builder.output(builder.and_(any_valid, all_blocked), "stall")
    builder.output(builder.and_(any_valid, ~master_enable), "drop")
    builder.output(builder.xor(rotate[0], rotate[1]), "parity")
    builder.output(builder.and_(rotate[0], any_valid), "bypass")
    builder.output(builder.or_(credit[0], credit[2]), "credit_even")
    builder.output(builder.or_(credit[1], credit[3]), "credit_odd")
    return builder.mig
