"""Transcendental EPFL benchmarks: sin and log2 (same-family rebuilds).

The EPFL netlists for ``sin`` and ``log2`` are bit-optimized black boxes;
we rebuild the *functions* with the standard hardware algorithms —

* ``sin``: CORDIC in circular rotation mode (shift-and-add iterations with
  a sign-steered conditional adder per state variable), first quadrant;
* ``log2``: leading-one normalization plus the classic squaring recurrence
  for the fractional bits (``m ← m²; bit = (m ≥ 2)``).

These produce the same structural mix the originals have — wide adders,
muxes, and priority logic — at parameterized precision, which is what the
compiler experiments exercise.  Bit-exactness to the EPFL netlists is
neither possible nor needed (DESIGN.md §4); each generator's function is
tested against Python's ``math`` with precision-derived tolerances.
"""

from __future__ import annotations

import math

from repro.mig.build import LogicBuilder
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.mig.words import (
    Word,
    add,
    barrel_shift_left,
    constant_word,
    leading_one_index,
    multiply,
    mux_word,
    sub,
)

#: CORDIC gain limit K = prod 1/sqrt(1 + 2^-2i)
CORDIC_GAIN = 0.6072529350088812


def _conditional_add_sub(
    builder: LogicBuilder, a: Word, b: Word, subtract: Signal
) -> Word:
    """``a - b`` when ``subtract`` else ``a + b`` via the XOR trick.

    ``a + (b ⊕ subtract) + subtract`` — one adder plus an XOR plane instead
    of two adders and a mux.
    """
    flipped = [builder.xor(bit, subtract) for bit in b]
    total, _ = add(builder, a, flipped, carry_in=subtract)
    return total


def _arith_shift_right(word: Word, amount: int) -> Word:
    """Arithmetic right shift by a constant — pure wiring."""
    if amount <= 0:
        return list(word)
    sign = word[-1]
    return list(word[amount:]) + [sign] * min(amount, len(word))


def make_sin(bits: int = 24, iterations: int | None = None, style: str = "aoig") -> Mig:
    """First-quadrant CORDIC sine (EPFL ``sin``: 24 in / 25 out).

    Input: unsigned ``bits``-wide angle θ meaning ``θ / 2**bits`` quarter
    turns (i.e. radians scaled by π/2).  Output: ``bits + 1`` signed bits of
    ``sin`` in Q1.(bits-1) (the extra bit absorbs rounding overshoot).
    """
    if iterations is None:
        iterations = max(4, bits * 5 // 12)  # sized near the EPFL node count
    width = bits + 2  # two guard bits, two's complement internally
    builder = LogicBuilder(style=style, name=f"sin{bits}")
    theta = builder.inputs(bits, "a")

    def const_w(value: int) -> Word:
        return constant_word(builder, value & ((1 << width) - 1), width)

    # Angle register z in units of (π/2) / 2**bits.
    z: Word = list(theta) + [builder.const(0)] * (width - bits)
    x: Word = const_w(round(CORDIC_GAIN * (1 << (bits - 1))))
    y: Word = const_w(0)
    for i in range(iterations):
        alpha = round(math.atan(2.0 ** -i) / (math.pi / 2) * (1 << bits))
        positive = ~z[-1]  # z >= 0 → rotate by +alpha
        x_shift = _arith_shift_right(y, i)
        y_shift = _arith_shift_right(x, i)
        x = _conditional_add_sub(builder, x, x_shift, positive)
        y = _conditional_add_sub(builder, y, y_shift, ~positive)
        z = _conditional_add_sub(builder, z, const_w(alpha), positive)
    builder.outputs(y[: bits + 1], "s")
    return builder.mig


def make_log2(
    bits: int = 32,
    frac_bits: int | None = None,
    mantissa_bits: int | None = None,
    style: str = "aoig",
) -> Mig:
    """Fixed-point ``log2`` (EPFL ``log2``: 32 in / 32 out).

    Output (little-endian POs): ``frac_bits`` fraction bits of
    ``log2(x)`` followed by the integer part (the leading-one index).  The
    default ``frac_bits`` pads the output to exactly ``bits`` POs like the
    EPFL original.  The fraction uses the squaring recurrence on a
    ``mantissa_bits``-wide normalized mantissa; precision (and size) scale
    with ``mantissa_bits``.  For x = 0 the output is all zeros.
    """
    exp_bits = max(1, (bits - 1).bit_length())
    if frac_bits is None:
        frac_bits = bits - exp_bits
    if mantissa_bits is None:
        mantissa_bits = min(bits, 12)
    builder = LogicBuilder(style=style, name=f"log2_{bits}")
    x = builder.inputs(bits, "x")

    msb_index, found = leading_one_index(builder, x)
    # Normalize so the leading one lands at the top: shift left by
    # (bits - 1 - msb_index), which is the bitwise complement of the index
    # when bits is a power of two.
    if bits & (bits - 1) == 0:
        shift_amount: Word = [~b for b in msb_index]
    else:
        limit = constant_word(builder, bits - 1, exp_bits)
        shift_amount, _ = sub(builder, limit, msb_index)
    normalized = barrel_shift_left(builder, x, shift_amount)
    # Mantissa m in Q1.(mb-1): top mantissa_bits of the normalized word.
    take = min(mantissa_bits, bits)
    mantissa: Word = list(normalized[bits - take :])
    if take < mantissa_bits:
        mantissa = [builder.const(0)] * (mantissa_bits - take) + mantissa

    fraction: list[Signal] = []
    m = mantissa
    mb = mantissa_bits
    for _ in range(frac_bits):
        squared = multiply(builder, m, m)  # 2*mb bits, Q2.(2mb-2)
        bit = squared[2 * mb - 1]  # m² >= 2
        fraction.append(bit)
        renorm_hi = squared[mb : 2 * mb]  # m²/2 in Q1.(mb-1)
        renorm_lo = squared[mb - 1 : 2 * mb - 1]  # m² in Q1.(mb-1)
        m = mux_word(builder, bit, renorm_hi, renorm_lo)

    # Gate everything with `found` so log2(0) reads 0.
    for i, bit in enumerate(reversed(fraction)):
        builder.output(builder.and_(bit, found), f"f{i}")
    for i, bit in enumerate(msb_index):
        builder.output(builder.and_(bit, found), f"e{i}")
    return builder.mig
