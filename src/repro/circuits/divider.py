"""Division-family EPFL benchmarks: div and sqrt.

Exact functional re-implementations of restoring array division and the
restoring digit-recurrence square root.  At ``paper`` scale the signatures
match Table 1: ``div`` takes a 64-bit numerator and 64-bit divisor (128
PIs) and produces quotient and remainder (128 POs); ``sqrt`` takes a
128-bit radicand and produces the 64-bit integer root.
"""

from __future__ import annotations

from repro.mig.build import LogicBuilder
from repro.mig.graph import Mig
from repro.mig.words import divide, isqrt


def make_div(bits: int = 64, style: str = "aoig") -> Mig:
    """Restoring divider: quotient and remainder of ``n / d``."""
    builder = LogicBuilder(style=style, name=f"div{bits}")
    numerator = builder.inputs(bits, "n")
    denominator = builder.inputs(bits, "d")
    quotient, remainder = divide(builder, numerator, denominator)
    builder.outputs(quotient, "q")
    builder.outputs(remainder, "r")
    return builder.mig


def make_sqrt(bits: int = 128, style: str = "aoig") -> Mig:
    """Integer square root of a ``bits``-wide radicand."""
    builder = LogicBuilder(style=style, name=f"sqrt{bits}")
    radicand = builder.inputs(bits, "x")
    builder.outputs(isqrt(builder, radicand), "rt")
    return builder.mig
