"""Benchmark registry: name + scale → MIG.

Three scales are provided because pure-Python compilation of the full-size
suite takes minutes, not milliseconds:

* ``paper`` — the exact I/O signatures of Table 1 (e.g. ``adder`` 256/129);
* ``default`` — reduced widths that keep the whole suite in the seconds
  range while preserving every structural feature;
* ``ci`` — tiny instances for the test suite (exhaustively verifiable
  where possible).

``build(name, scale)`` returns a fresh MIG; ``benchmark_info(name)`` the
static metadata including the paper's Table 1 row for comparison reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.circuits import arithmetic, control, cordic, divider, random_control
from repro.errors import BenchmarkError
from repro.mig.graph import Mig

SCALES = ("ci", "default", "paper")


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 1 (for EXPERIMENTS.md comparisons)."""

    pi: int
    po: int
    naive_n: int
    naive_i: int
    naive_r: int
    rewr_n: int
    rewr_i: int
    rewr_r: int
    full_i: int
    full_r: int


@dataclass(frozen=True)
class Benchmark:
    """A named benchmark with its generator and per-scale parameters."""

    name: str
    builder: Callable[..., Mig]
    params: dict[str, dict]
    status: str  # "exact", "family", or "surrogate"
    paper: PaperRow

    def build(self, scale: str = "default", **overrides) -> Mig:
        if scale not in self.params:
            raise BenchmarkError(
                f"benchmark {self.name!r} has no scale {scale!r}; "
                f"available: {sorted(self.params)}"
            )
        kwargs = dict(self.params[scale])
        kwargs.update(overrides)
        return self.builder(**kwargs)


def _paper(pi, po, nn, ni, nr, rn, ri, rr, fi, fr) -> PaperRow:
    return PaperRow(pi, po, nn, ni, nr, rn, ri, rr, fi, fr)


REGISTRY: dict[str, Benchmark] = {}


def _register(name, builder, status, paper, ci, default, paper_scale):
    REGISTRY[name] = Benchmark(
        name=name,
        builder=builder,
        params={"ci": ci, "default": default, "paper": paper_scale},
        status=status,
        paper=paper,
    )


# Table 1 of the paper: PI, PO, then naive (#N,#I,#R), rewriting (#N,#I,#R),
# rewriting+compilation (#I,#R).
_register(
    "adder", arithmetic.make_adder, "exact",
    _paper(256, 129, 1020, 2844, 512, 1020, 2037, 386, 1911, 259),
    ci={"bits": 4}, default={"bits": 32}, paper_scale={"bits": 128},
)
_register(
    "bar", arithmetic.make_bar, "exact",
    _paper(135, 128, 3336, 8136, 523, 3240, 5895, 371, 6011, 332),
    ci={"bits": 8}, default={"bits": 32}, paper_scale={"bits": 128},
)
_register(
    "div", divider.make_div, "exact",
    _paper(128, 128, 57247, 146617, 687, 50841, 147026, 771, 147608, 590),
    ci={"bits": 4}, default={"bits": 12}, paper_scale={"bits": 64},
)
_register(
    "log2", cordic.make_log2, "family",
    _paper(32, 32, 32060, 78885, 1597, 31419, 60402, 1487, 60184, 1256),
    ci={"bits": 4, "frac_bits": 3, "mantissa_bits": 4},
    default={"bits": 16, "frac_bits": 8, "mantissa_bits": 6},
    paper_scale={"bits": 32, "frac_bits": 27, "mantissa_bits": 12},
)
_register(
    "max", arithmetic.make_max, "exact",
    _paper(512, 130, 2865, 6731, 1021, 2845, 5092, 867, 4996, 579),
    ci={"bits": 4}, default={"bits": 32}, paper_scale={"bits": 128},
)
_register(
    "multiplier", arithmetic.make_multiplier, "exact",
    _paper(128, 128, 27062, 76156, 2798, 26951, 56428, 1672, 56009, 419),
    ci={"bits": 4}, default={"bits": 12}, paper_scale={"bits": 64},
)
_register(
    "sin", cordic.make_sin, "family",
    _paper(24, 25, 5416, 12479, 438, 5344, 10300, 426, 10223, 402),
    ci={"bits": 6, "iterations": 4},
    default={"bits": 12, "iterations": 6},
    paper_scale={"bits": 24, "iterations": 10},
)
_register(
    "sqrt", divider.make_sqrt, "exact",
    _paper(128, 64, 24618, 60691, 375, 22351, 47454, 433, 49782, 323),
    ci={"bits": 8}, default={"bits": 24}, paper_scale={"bits": 128},
)
_register(
    "square", arithmetic.make_square, "exact",
    _paper(64, 128, 18484, 54704, 3272, 18085, 33625, 3247, 33369, 452),
    ci={"bits": 4}, default={"bits": 16}, paper_scale={"bits": 64},
)
_register(
    "cavlc", random_control.make_cavlc, "surrogate",
    _paper(10, 11, 693, 1919, 262, 691, 1146, 236, 1124, 102),
    ci={"num_inputs": 8, "num_outputs": 6, "cubes_per_output": 3},
    default={}, paper_scale={},
)
_register(
    "ctrl", control.make_ctrl, "family",
    _paper(7, 26, 174, 499, 66, 156, 258, 55, 263, 39),
    ci={}, default={}, paper_scale={},
)
_register(
    "dec", control.make_dec, "exact",
    _paper(8, 256, 304, 822, 257, 304, 783, 257, 777, 258),
    ci={"bits": 4}, default={"bits": 6}, paper_scale={"bits": 8},
)
_register(
    "i2c", random_control.make_i2c, "surrogate",
    _paper(147, 142, 1342, 3314, 545, 1311, 2119, 487, 2028, 234),
    ci={"num_inputs": 12, "num_outputs": 10},
    default={}, paper_scale={},
)
_register(
    "int2float", control.make_int2float, "exact",
    _paper(11, 7, 260, 648, 99, 257, 432, 83, 428, 41),
    ci={"bits": 6}, default={}, paper_scale={},
)
_register(
    "mem_ctrl", random_control.make_mem_ctrl, "surrogate",
    _paper(1204, 1231, 46836, 113244, 8127, 46519, 85785, 6708, 84963, 2223),
    ci={"num_inputs": 16, "num_outputs": 12, "cubes_per_output": 3},
    default={"num_inputs": 300, "num_outputs": 308, "cubes_per_output": 4},
    paper_scale={},
)
_register(
    "priority", control.make_priority, "exact",
    _paper(128, 8, 978, 2461, 315, 977, 2126, 241, 2147, 149),
    ci={"bits": 8}, default={"bits": 64}, paper_scale={"bits": 128},
)
_register(
    "router", control.make_router, "family",
    _paper(60, 30, 257, 503, 117, 257, 407, 112, 401, 64),
    ci={}, default={}, paper_scale={},
)
_register(
    "voter", control.make_voter, "exact",
    _paper(1001, 1, 13758, 38002, 1749, 12992, 25009, 1544, 24990, 1063),
    ci={"inputs": 15}, default={"inputs": 101}, paper_scale={"inputs": 1001},
)

#: Table 1 order.
BENCHMARK_NAMES = list(REGISTRY)


def build(name: str, scale: str = "default", **overrides) -> Mig:
    """Construct benchmark ``name`` at ``scale`` (see module docstring)."""
    return benchmark_info(name).build(scale, **overrides)


def benchmark_info(name: str) -> Benchmark:
    """Registry entry for ``name``; raises :class:`BenchmarkError` if unknown."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown benchmark {name!r}; available: {BENCHMARK_NAMES}"
        ) from None
