"""Surrogates for the non-reconstructible control benchmarks.

``cavlc``, ``i2c`` and ``mem_ctrl`` are slices of real IP (an H.264 coder,
an I²C master, a DDR controller); their netlists cannot be rebuilt from
public descriptions.  Per the substitution policy (DESIGN.md §4) we replace
them with *seeded pseudo-random PLA logic*: every output is a sum of
products over randomly chosen literals.  This preserves exactly what the
compiler experiments consume — irregular cube-based control logic with the
paper's I/O signature and a calibrated node count — while being fully
deterministic (fixed seed per benchmark).
"""

from __future__ import annotations

import random

from repro.mig.build import LogicBuilder
from repro.mig.graph import Mig
from repro.mig.signal import Signal


def make_pla_surrogate(
    name: str,
    num_inputs: int,
    num_outputs: int,
    cubes_per_output: int,
    literals_low: int,
    literals_high: int,
    seed: int,
    style: str = "aoig",
) -> Mig:
    """Random sum-of-products logic with a fixed seed.

    Every output ORs ``cubes_per_output`` cubes; each cube ANDs between
    ``literals_low`` and ``literals_high`` literals over distinct inputs
    with random polarities.  Outputs share cubes occasionally through
    structural hashing, like real control logic does.
    """
    if literals_low < 1 or literals_high < literals_low:
        raise ValueError("invalid literal range")
    if cubes_per_output < 1:
        raise ValueError("need at least one cube per output")
    rng = random.Random(seed)
    builder = LogicBuilder(style=style, name=name)
    inputs = builder.inputs(num_inputs, "x")
    for out_index in range(num_outputs):
        cubes: list[Signal] = []
        for _ in range(cubes_per_output):
            k = rng.randint(literals_low, min(literals_high, num_inputs))
            chosen = rng.sample(range(num_inputs), k)
            literals = [
                inputs[i] if rng.random() < 0.5 else ~inputs[i] for i in chosen
            ]
            cubes.append(builder.and_reduce(literals))
        builder.output(builder.or_reduce(cubes), f"y{out_index}")
    return builder.mig


def make_cavlc(
    num_inputs: int = 10,
    num_outputs: int = 11,
    cubes_per_output: int = 8,
    style: str = "aoig",
) -> Mig:
    """Surrogate for EPFL ``cavlc`` (10 → 11, ≈700 gates)."""
    return make_pla_surrogate(
        "cavlc", num_inputs, num_outputs, cubes_per_output,
        literals_low=7, literals_high=9, seed=0xCA71C, style=style,
    )


def make_i2c(
    num_inputs: int = 147,
    num_outputs: int = 142,
    cubes_per_output: int = 3,
    style: str = "aoig",
) -> Mig:
    """Surrogate for EPFL ``i2c`` (147 → 142, ≈1.3k gates)."""
    return make_pla_surrogate(
        "i2c", num_inputs, num_outputs, cubes_per_output,
        literals_low=3, literals_high=4, seed=0x12C, style=style,
    )


def make_mem_ctrl(
    num_inputs: int = 1204,
    num_outputs: int = 1231,
    cubes_per_output: int = 6,
    style: str = "aoig",
) -> Mig:
    """Surrogate for EPFL ``mem_ctrl`` (1204 → 1231, ≈47k gates)."""
    return make_pla_surrogate(
        "mem_ctrl", num_inputs, num_outputs, cubes_per_output,
        literals_low=6, literals_high=8, seed=0x3E3C, style=style,
    )
