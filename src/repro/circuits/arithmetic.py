"""Arithmetic EPFL benchmarks: adder, bar, max, multiplier, square.

All are exact functional re-implementations at parameterized widths; at
``paper`` scale the I/O signatures match Table 1 of the paper exactly
(e.g. ``adder``: 256 PIs / 129 POs).
"""

from __future__ import annotations

from repro.mig.build import LogicBuilder
from repro.mig.graph import Mig
from repro.mig.words import (
    add,
    barrel_rotate_left,
    less_than,
    multiply,
    mux_word,
    square,
)


def make_adder(bits: int = 128, style: str = "aoig") -> Mig:
    """Ripple-carry adder: ``a + b`` with carry out (EPFL ``adder``)."""
    builder = LogicBuilder(style=style, name=f"adder{bits}")
    a = builder.inputs(bits, "a")
    b = builder.inputs(bits, "b")
    total, carry = add(builder, a, b)
    builder.outputs(total, "s")
    builder.output(carry, "cout")
    return builder.mig


def make_bar(bits: int = 128, style: str = "aoig") -> Mig:
    """Logarithmic barrel rotator (EPFL ``bar``: 128 data + 7 amount)."""
    select_bits = max(1, (bits - 1).bit_length())
    builder = LogicBuilder(style=style, name=f"bar{bits}")
    data = builder.inputs(bits, "d")
    amount = builder.inputs(select_bits, "s")
    rotated = barrel_rotate_left(builder, data, amount)
    builder.outputs(rotated, "q")
    return builder.mig


def make_max(bits: int = 128, words: int = 4, style: str = "aoig") -> Mig:
    """Maximum of ``words`` unsigned words plus the winner's index.

    EPFL ``max``: four 128-bit words in (512 PIs), the maximum value and a
    2-bit winner index out (130 POs).
    """
    if words != 4:
        raise ValueError("the EPFL max benchmark compares exactly four words")
    builder = LogicBuilder(style=style, name=f"max{bits}x{words}")
    operands = [builder.inputs(bits, f"w{k}_") for k in range(words)]
    sel01 = less_than(builder, operands[0], operands[1])
    max01 = mux_word(builder, sel01, operands[1], operands[0])
    sel23 = less_than(builder, operands[2], operands[3])
    max23 = mux_word(builder, sel23, operands[3], operands[2])
    sel_final = less_than(builder, max01, max23)
    winner = mux_word(builder, sel_final, max23, max01)
    builder.outputs(winner, "m")
    builder.output(builder.mux(sel_final, sel23, sel01), "idx0")
    builder.output(sel_final, "idx1")
    return builder.mig


def make_multiplier(bits: int = 64, style: str = "aoig") -> Mig:
    """Array multiplier ``a * b`` (EPFL ``multiplier``: 64x64 → 128)."""
    builder = LogicBuilder(style=style, name=f"multiplier{bits}")
    a = builder.inputs(bits, "a")
    b = builder.inputs(bits, "b")
    product = multiply(builder, a, b)
    builder.outputs(product, "p")
    return builder.mig


def make_square(bits: int = 64, style: str = "aoig") -> Mig:
    """Squarer ``a * a`` (EPFL ``square``: 64 → 128)."""
    builder = LogicBuilder(style=style, name=f"square{bits}")
    a = builder.inputs(bits, "a")
    builder.outputs(square(builder, a), "p")
    return builder.mig
