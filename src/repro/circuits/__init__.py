"""Generators for the EPFL combinational benchmark suite.

The paper evaluates on the 18 EPFL benchmarks.  Their Verilog sources are
not redistributable and the environment is offline, so every circuit is
regenerated from first principles as a parameterized generator (see
DESIGN.md §4 for the exact-function / same-family / surrogate status of
each).  All generators build AOIG-style MIGs — AND/OR nodes with constant
children and free inverters — matching the paper's "initial non-optimized
MIGs" obtained by transposing AOIGs.

Use :func:`repro.circuits.registry.build` to construct a benchmark by name
at a given scale (``ci``, ``default``, or ``paper``).
"""

from repro.circuits.registry import BENCHMARK_NAMES, SCALES, benchmark_info, build

__all__ = ["BENCHMARK_NAMES", "SCALES", "benchmark_info", "build"]
