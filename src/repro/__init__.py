"""repro — an MIG-based compiler for programmable logic-in-memory architectures.

This package is a from-scratch reproduction of

    M. Soeken, S. Shirinzadeh, P.-E. Gaillardon, L. G. Amarù, R. Drechsler,
    G. De Micheli: "An MIG-based Compiler for Programmable Logic-in-Memory
    Architectures", DAC 2016.

It contains:

* ``repro.mig`` — Majority-Inverter Graphs: data structure, Ω algebra,
  simulation, analysis, and file I/O.
* ``repro.plim`` — the PLiM architecture substrate: the RM3 instruction set,
  program container, an executable machine model of the RRAM array plus
  controller, functional verification, and endurance analysis.
* ``repro.core`` — the paper's contribution: MIG rewriting for PLiM
  (Algorithm 1) and the optimizing compiler (Algorithm 2) with candidate
  scheduling, per-node translation, and RRAM allocation.
* ``repro.circuits`` — generators for the EPFL benchmark suite used in the
  paper's evaluation.
* ``repro.eval`` — the experiment harness that regenerates every table and
  figure of the paper.

See ``docs/architecture.md`` for the module map and data flow,
``docs/rewriting.md`` for the rewriting engines/objectives, and
``docs/cli.md`` for the ``plimc`` command line.

Quickstart — build a majority function, compile it, inspect the counts
(the example is a doctest; CI executes it):

    >>> from repro import Mig, compile_mig
    >>> mig = Mig()
    >>> a, b, c = (mig.add_pi(n) for n in "abc")
    >>> _ = mig.add_po(mig.add_maj(a, b, c), "maj")
    >>> result = compile_mig(mig)   # Algorithm 1 rewrite + Algorithm 2 compile
    >>> result
    <CompileResult: N=1 I=5 R=2>
    >>> print(result.program.listing())  # doctest: +ELLIPSIS
    01: ...
"""

from repro._version import __version__
from repro.mig.graph import Mig
from repro.mig.context import AnalysisContext
from repro.mig.signal import Signal
from repro.core.batch import BatchResult, compile_many
from repro.core.cache import CacheStats, SynthesisCache
from repro.core.cost import (
    CompiledPlim,
    CostModel,
    Depth,
    NodeCount,
    StaticPlim,
    resolve_cost_model,
)
from repro.core.pareto import ParetoFront, ParetoPoint, pareto_sweep
from repro.core.pipeline import CompileResult, compile_mig
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.resilience import TaskError, TaskFailure, TaskPolicy
from repro.core.rewriting import (
    CostLoopResult,
    RewriteOptions,
    compile_cost_loop,
    rewrite_depth,
    rewrite_for_plim,
)
from repro.plim.program import Program
from repro.plim.machine import PlimMachine

__all__ = [
    "__version__",
    "AnalysisContext",
    "BatchResult",
    "CacheStats",
    "CompiledPlim",
    "CostLoopResult",
    "CostModel",
    "Depth",
    "Mig",
    "NodeCount",
    "StaticPlim",
    "ParetoFront",
    "ParetoPoint",
    "Signal",
    "SynthesisCache",
    "Program",
    "PlimMachine",
    "PlimCompiler",
    "CompilerOptions",
    "CompileResult",
    "RewriteOptions",
    "TaskError",
    "TaskFailure",
    "TaskPolicy",
    "compile_cost_loop",
    "compile_mig",
    "compile_many",
    "pareto_sweep",
    "resolve_cost_model",
    "rewrite_depth",
    "rewrite_for_plim",
]
