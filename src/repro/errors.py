"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch everything library-specific with a
single ``except`` clause while letting programming errors propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class MigError(ReproError):
    """Structural misuse of a Majority-Inverter Graph."""


class ParseError(ReproError):
    """A circuit file could not be parsed."""

    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class CompilationError(ReproError):
    """The compiler reached an inconsistent state."""


class MachineError(ReproError):
    """Illegal operation on the PLiM machine model."""


class AllocationError(ReproError):
    """Misuse of the RRAM allocator (double free, foreign release, ...)."""


class VerificationError(ReproError):
    """A compiled program does not match its specification."""


class BenchmarkError(ReproError):
    """Unknown benchmark name or invalid benchmark parameters."""
