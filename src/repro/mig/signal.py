"""Signals: references to MIG nodes with an optional complement.

A :class:`Signal` is an ``int`` subclass using the AIGER-style encoding
``(node_index << 1) | complement``.  Subclassing ``int`` keeps signals
immutable, hashable, orderable, and cheap — an MIG with tens of thousands of
nodes stores hundreds of thousands of signals, so per-instance overhead
matters — while still allowing a rich, readable API:

>>> s = Signal.make(5, inverted=True)
>>> s.node, s.inverted
(5, True)
>>> (~s).inverted
False
>>> s == Signal.make(5, True)
True

The constant-zero node always has index 0, so ``Signal.CONST0`` is the
constant false and ``Signal.CONST1`` its complement.
"""

from __future__ import annotations


class Signal(int):
    """A (possibly complemented) edge pointing at an MIG node."""

    __slots__ = ()

    @classmethod
    def make(cls, node: int, inverted: bool = False) -> "Signal":
        """Build a signal from a node index and a complement flag."""
        if node < 0:
            raise ValueError(f"node index must be non-negative, got {node}")
        return cls((node << 1) | bool(inverted))

    @property
    def node(self) -> int:
        """Index of the referenced node."""
        return int(self) >> 1

    @property
    def inverted(self) -> bool:
        """True if the edge is complemented."""
        return bool(int(self) & 1)

    def __invert__(self) -> "Signal":
        """Complemented copy of this signal (``~s``)."""
        return Signal(int(self) ^ 1)

    def with_inversion(self, inverted: bool) -> "Signal":
        """This signal with its complement flag set to ``inverted``."""
        return Signal((int(self) & ~1) | bool(inverted))

    def xor_inversion(self, inverted: bool) -> "Signal":
        """This signal, additionally complemented when ``inverted`` is true.

        Useful when composing edges: an inverted edge to an inverted signal
        is the plain signal.
        """
        return Signal(int(self) ^ bool(inverted))

    @property
    def is_const(self) -> bool:
        """True if this signal refers to the constant node (index 0)."""
        return self.node == 0

    @property
    def const_value(self) -> int:
        """0 or 1 for constant signals.

        Raises :class:`ValueError` for non-constant signals.
        """
        if not self.is_const:
            raise ValueError(f"{self!r} is not a constant signal")
        return int(self.inverted)

    def __repr__(self) -> str:
        if self.is_const:
            return f"Signal.CONST{self.const_value}"
        bar = "~" if self.inverted else ""
        return f"{bar}s{self.node}"


#: The constant-false signal (node 0, plain edge).
Signal.CONST0 = Signal.make(0, False)
#: The constant-true signal (node 0, complemented edge).
Signal.CONST1 = Signal.make(0, True)
