"""ASCII AIGER (``.aag``) reader and writer.

AIGs (And-Inverter Graphs) are the lingua franca of logic synthesis tools;
reading them gives this package access to standard benchmark circuits, and
AND nodes transpose directly to majority nodes with a constant-0 child —
the AOIG→MIG embedding of paper Fig. 1(a).

Only the combinational subset is supported (no latches); symbols and
comments are honoured on read and emitted on write.  Writing decomposes
each majority gate into its AND/OR form ``⟨abc⟩ = (a∧b) ∨ (a∧c) ∨ (b∧c)``
(four AIG nodes), since AIGs have no native majority.
"""

from __future__ import annotations

from typing import TextIO

from repro.errors import ParseError
from repro.mig.build import LogicBuilder
from repro.mig.graph import Mig
from repro.mig.signal import Signal


def read_aiger(path_or_file) -> Mig:
    """Parse an ASCII AIGER file into an MIG (ANDs become ⟨a b 0⟩)."""
    if hasattr(path_or_file, "read"):
        return _read(path_or_file)
    with open(path_or_file, "r", encoding="utf-8") as handle:
        return _read(handle)


def _read(handle: TextIO) -> Mig:
    header = handle.readline().split()
    if len(header) != 6 or header[0] != "aag":
        raise ParseError("expected header 'aag M I L O A'", 1)
    try:
        max_var, num_in, num_latch, num_out, num_and = (int(x) for x in header[1:])
    except ValueError:
        raise ParseError("non-numeric AIGER header fields", 1) from None
    if num_latch:
        raise ParseError("sequential AIGER (latches) is not supported", 1)

    builder = LogicBuilder()
    literal_map: dict[int, Signal] = {0: Signal.CONST0, 1: Signal.CONST1}

    input_literals: list[int] = []
    for i in range(num_in):
        literal = int(handle.readline())
        if literal % 2:
            raise ParseError(f"input literal {literal} must be even", 2 + i)
        input_literals.append(literal)

    output_literals: list[int] = []
    for i in range(num_out):
        output_literals.append(int(handle.readline()))

    and_rows: list[tuple[int, int, int]] = []
    for i in range(num_and):
        parts = handle.readline().split()
        if len(parts) != 3:
            raise ParseError("malformed AND row", 2 + num_in + num_out + i)
        and_rows.append(tuple(int(p) for p in parts))

    # Symbol table and comments.
    input_names: dict[int, str] = {}
    output_names: dict[int, str] = {}
    for raw in handle:
        line = raw.rstrip("\n")
        if line.startswith("c"):
            break
        if line.startswith("i"):
            pos, name = line[1:].split(" ", 1)
            input_names[int(pos)] = name
        elif line.startswith("o"):
            pos, name = line[1:].split(" ", 1)
            output_names[int(pos)] = name

    for pos, literal in enumerate(input_literals):
        literal_map[literal] = builder.input(input_names.get(pos, f"i{pos}"))

    def resolve(literal: int) -> Signal:
        base = literal_map.get(literal & ~1)
        if base is None:
            raise ParseError(f"literal {literal} used before definition")
        return ~base if literal & 1 else base

    for lhs, rhs0, rhs1 in and_rows:
        if lhs % 2:
            raise ParseError(f"AND literal {lhs} must be even")
        literal_map[lhs] = builder.and_(resolve(rhs0), resolve(rhs1))

    for pos, literal in enumerate(output_literals):
        builder.output(resolve(literal), output_names.get(pos, f"o{pos}"))
    return builder.mig


def write_aiger(mig: Mig, path_or_file) -> None:
    """Serialize ``mig`` as ASCII AIGER (majority → 4 AND nodes)."""
    if hasattr(path_or_file, "write"):
        _write(mig, path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            _write(mig, handle)


def _write(mig: Mig, out: TextIO) -> None:
    next_var = [0]
    literal_of: dict[int, int] = {}  # MIG signal int -> AIG literal
    and_rows: list[tuple[int, int, int]] = []

    def fresh() -> int:
        next_var[0] += 1
        return 2 * next_var[0]

    def emit_and(a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        if a == 1:
            return b
        if b == 1:
            return a
        lhs = fresh()
        and_rows.append((lhs, max(a, b), min(a, b)))
        return lhs

    def emit_or(a: int, b: int) -> int:
        return emit_and(a ^ 1, b ^ 1) ^ 1

    literal_of[int(Signal.CONST0)] = 0
    literal_of[int(Signal.CONST1)] = 1
    input_literals = []
    for pi in mig.pis():
        literal = fresh()
        literal_of[int(pi)] = literal
        literal_of[int(~pi)] = literal ^ 1
        input_literals.append(literal)

    for v in mig.gates():
        a, b, c = (literal_of[int(s)] for s in mig.children(v))
        # ⟨abc⟩ = (a∧b) ∨ (c∧(a∨b)): four AND nodes instead of five.
        result = emit_or(emit_and(a, b), emit_and(c, emit_or(a, b)))
        literal_of[v << 1] = result
        literal_of[(v << 1) | 1] = result ^ 1

    output_literals = [literal_of[int(po)] for po in mig.pos()]
    out.write(
        f"aag {next_var[0]} {mig.num_pis} 0 {mig.num_pos} {len(and_rows)}\n"
    )
    for literal in input_literals:
        out.write(f"{literal}\n")
    for literal in output_literals:
        out.write(f"{literal}\n")
    for lhs, rhs0, rhs1 in and_rows:
        out.write(f"{lhs} {rhs0} {rhs1}\n")
    for pos, name in enumerate(mig.pi_names()):
        out.write(f"i{pos} {name}\n")
    for pos, name in enumerate(mig.po_names()):
        out.write(f"o{pos} {name}\n")
    out.write(f"c\nwritten by repro {mig.name or ''}\n".rstrip() + "\n")
