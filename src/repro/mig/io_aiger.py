"""AIGER reader and writer — ASCII (``.aag``) and binary (``.aig``).

AIGs (And-Inverter Graphs) are the lingua franca of logic synthesis tools;
reading them gives this package access to standard benchmark circuits, and
AND nodes transpose directly to majority nodes with a constant-0 child —
the AOIG→MIG embedding of paper Fig. 1(a).  Every real benchmark suite
(EPFL, ISCAS, IWLS) ships the compact *binary* format, so both are
supported: :func:`read_aiger` sniffs the header magic and dispatches.

Only the combinational subset is supported (no latches); symbols and
comments are honoured on read and emitted on write.  Writing decomposes
each majority gate into its AND/OR form ``⟨abc⟩ = (a∧b) ∨ (c∧(a∨b))``
(four AIG nodes), since AIGs have no native majority.

Binary format in brief (see the AIGER 1.9 spec): the header reads
``aig M I L O A`` with ``M = I + L + A``; inputs are implicit (literals
``2 .. 2I``), outputs are one ASCII literal per line, and the ``A`` AND
gates follow as byte pairs of LEB128-style deltas — gate ``i`` has the
implicit LHS ``2*(I + L + i + 1)`` and stores ``lhs - rhs0`` and
``rhs0 - rhs1`` in 7-bit groups with a continuation MSB.  The encoding
requires ``rhs0 >= rhs1`` and increasing LHS order, which the literal
assignment here produces naturally (inputs first, gates in topological
order).
"""

from __future__ import annotations

import io
from typing import TextIO, Union

from repro.errors import ParseError
from repro.mig.build import LogicBuilder
from repro.mig.graph import Mig
from repro.mig.signal import Signal


def read_aiger(path_or_file) -> Mig:
    """Parse an AIGER file — ASCII or binary — into an MIG.

    The format is sniffed from the header magic (``aag`` vs ``aig``), so
    callers never need to know which flavour a benchmark ships in.  ANDs
    become ``⟨a b 0⟩``.
    """
    if hasattr(path_or_file, "read"):
        data = path_or_file.read()
    else:
        with open(path_or_file, "rb") as handle:
            data = handle.read()
    if isinstance(data, str):
        raw = data.encode("utf-8")
    else:
        raw = data
    if raw.startswith(b"aig "):
        return _read_binary(raw)
    return _read(io.StringIO(raw.decode("utf-8")))


def _read(handle: TextIO) -> Mig:
    header = handle.readline().split()
    if len(header) != 6 or header[0] != "aag":
        raise ParseError("expected header 'aag M I L O A'", 1)
    try:
        max_var, num_in, num_latch, num_out, num_and = (int(x) for x in header[1:])
    except ValueError:
        raise ParseError("non-numeric AIGER header fields", 1) from None
    if num_latch:
        raise ParseError("sequential AIGER (latches) is not supported", 1)

    input_literals: list[int] = []
    for i in range(num_in):
        literal = int(handle.readline())
        if literal % 2:
            raise ParseError(f"input literal {literal} must be even", 2 + i)
        input_literals.append(literal)

    output_literals: list[int] = []
    for i in range(num_out):
        output_literals.append(int(handle.readline()))

    and_rows: list[tuple[int, int, int]] = []
    for i in range(num_and):
        parts = handle.readline().split()
        if len(parts) != 3:
            raise ParseError("malformed AND row", 2 + num_in + num_out + i)
        and_rows.append(tuple(int(p) for p in parts))

    input_names, output_names = _parse_symbols(handle)
    return _build_mig(
        input_literals, output_literals, and_rows, input_names, output_names
    )


def _read_binary(data: bytes) -> Mig:
    """Parse the compact binary (``aig``) encoding."""
    try:
        nl = data.index(b"\n")
    except ValueError:
        raise ParseError("truncated binary AIGER header", 1) from None
    header = data[:nl].split()
    if len(header) != 6 or header[0] != b"aig":
        raise ParseError("expected header 'aig M I L O A'", 1)
    try:
        max_var, num_in, num_latch, num_out, num_and = (int(x) for x in header[1:])
    except ValueError:
        raise ParseError("non-numeric AIGER header fields", 1) from None
    if num_latch:
        raise ParseError("sequential AIGER (latches) is not supported", 1)
    if max_var != num_in + num_latch + num_and:
        raise ParseError(
            f"binary AIGER requires M = I + L + A, got M={max_var}, "
            f"I={num_in}, L={num_latch}, A={num_and}",
            1,
        )

    pos = nl + 1
    output_literals: list[int] = []
    for i in range(num_out):
        try:
            line_end = data.index(b"\n", pos)
        except ValueError:
            raise ParseError("truncated output section", 2 + i) from None
        try:
            output_literals.append(int(data[pos:line_end]))
        except ValueError:
            raise ParseError(
                f"non-numeric output literal {data[pos:line_end]!r}", 2 + i
            ) from None
        pos = line_end + 1

    size = len(data)
    and_rows: list[tuple[int, int, int]] = []
    for i in range(num_and):
        lhs = 2 * (num_in + num_latch + i + 1)
        deltas = []
        for _ in range(2):
            value = 0
            shift = 0
            while True:
                if pos >= size:
                    raise ParseError(
                        f"truncated delta encoding in AND gate {i}"
                    )
                byte = data[pos]
                pos += 1
                value |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            deltas.append(value)
        rhs0 = lhs - deltas[0]
        rhs1 = rhs0 - deltas[1]
        if rhs1 < 0:
            raise ParseError(
                f"AND gate {i}: deltas {deltas} underflow below literal 0"
            )
        and_rows.append((lhs, rhs0, rhs1))

    input_names, output_names = _parse_symbols(
        io.StringIO(data[pos:].decode("utf-8", errors="replace"))
    )
    input_literals = [2 * (i + 1) for i in range(num_in)]
    return _build_mig(
        input_literals, output_literals, and_rows, input_names, output_names
    )


def _parse_symbols(handle: TextIO) -> tuple[dict[int, str], dict[int, str]]:
    """Symbol table (and ignored comment section) of either format."""
    input_names: dict[int, str] = {}
    output_names: dict[int, str] = {}
    for raw in handle:
        line = raw.rstrip("\n")
        if line.startswith("c"):
            break
        if line.startswith("i"):
            pos, name = line[1:].split(" ", 1)
            input_names[int(pos)] = name
        elif line.startswith("o"):
            pos, name = line[1:].split(" ", 1)
            output_names[int(pos)] = name
    return input_names, output_names


def _build_mig(
    input_literals: list[int],
    output_literals: list[int],
    and_rows: list[tuple[int, int, int]],
    input_names: dict[int, str],
    output_names: dict[int, str],
) -> Mig:
    """Shared back half of both readers: literals → LogicBuilder calls."""
    builder = LogicBuilder()
    literal_map: dict[int, Signal] = {0: Signal.CONST0, 1: Signal.CONST1}

    for pos, literal in enumerate(input_literals):
        literal_map[literal] = builder.input(input_names.get(pos, f"i{pos}"))

    def resolve(literal: int) -> Signal:
        base = literal_map.get(literal & ~1)
        if base is None:
            raise ParseError(f"literal {literal} used before definition")
        return ~base if literal & 1 else base

    for lhs, rhs0, rhs1 in and_rows:
        if lhs % 2:
            raise ParseError(f"AND literal {lhs} must be even")
        literal_map[lhs] = builder.and_(resolve(rhs0), resolve(rhs1))

    for pos, literal in enumerate(output_literals):
        builder.output(resolve(literal), output_names.get(pos, f"o{pos}"))
    return builder.mig


def write_aiger(mig: Mig, path_or_file, *, binary: Union[bool, None] = None) -> None:
    """Serialize ``mig`` as AIGER (majority → 4 AND nodes).

    ``binary=None`` (the default) infers the flavour: paths ending in
    ``.aig`` get the binary encoding, everything else — including open
    text handles — gets ASCII.  Pass ``binary`` explicitly to override.
    """
    if hasattr(path_or_file, "write"):
        if binary:
            _write_binary(mig, path_or_file)
        else:
            _write(mig, path_or_file)
        return
    if binary is None:
        binary = str(path_or_file).endswith(".aig")
    if binary:
        with open(path_or_file, "wb") as handle:
            _write_binary(mig, handle)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            _write(mig, handle)


def _assign_literals(mig: Mig):
    """AIG literal assignment shared by both writers.

    Inputs take literals ``2 .. 2I``; gate decompositions follow in
    topological order with strictly increasing LHS literals and
    ``rhs0 >= rhs1`` per row — exactly the layout the binary delta
    encoding requires, so ASCII and binary emit the same AIG.
    """
    next_var = [0]
    literal_of: dict[int, int] = {}  # MIG signal int -> AIG literal
    and_rows: list[tuple[int, int, int]] = []

    def fresh() -> int:
        next_var[0] += 1
        return 2 * next_var[0]

    def emit_and(a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        if a == 1:
            return b
        if b == 1:
            return a
        lhs = fresh()
        and_rows.append((lhs, max(a, b), min(a, b)))
        return lhs

    def emit_or(a: int, b: int) -> int:
        return emit_and(a ^ 1, b ^ 1) ^ 1

    literal_of[int(Signal.CONST0)] = 0
    literal_of[int(Signal.CONST1)] = 1
    input_literals = []
    for pi in mig.pis():
        literal = fresh()
        literal_of[int(pi)] = literal
        literal_of[int(~pi)] = literal ^ 1
        input_literals.append(literal)

    for v in mig.topo_gates():
        a, b, c = (literal_of[int(s)] for s in mig.children(v))
        # ⟨abc⟩ = (a∧b) ∨ (c∧(a∨b)): four AND nodes instead of five.
        result = emit_or(emit_and(a, b), emit_and(c, emit_or(a, b)))
        literal_of[v << 1] = result
        literal_of[(v << 1) | 1] = result ^ 1

    output_literals = [literal_of[int(po)] for po in mig.pos()]
    return next_var[0], input_literals, output_literals, and_rows


def _write(mig: Mig, out: TextIO) -> None:
    max_var, input_literals, output_literals, and_rows = _assign_literals(mig)
    out.write(
        f"aag {max_var} {mig.num_pis} 0 {mig.num_pos} {len(and_rows)}\n"
    )
    for literal in input_literals:
        out.write(f"{literal}\n")
    for literal in output_literals:
        out.write(f"{literal}\n")
    for lhs, rhs0, rhs1 in and_rows:
        out.write(f"{lhs} {rhs0} {rhs1}\n")
    for pos, name in enumerate(mig.pi_names()):
        out.write(f"i{pos} {name}\n")
    for pos, name in enumerate(mig.po_names()):
        out.write(f"o{pos} {name}\n")
    out.write(f"c\nwritten by repro {mig.name or ''}\n".rstrip() + "\n")


def _write_binary(mig: Mig, out) -> None:
    """Binary (``aig``) writer over the shared literal assignment.

    The assignment yields gate LHS literals ``2(I+1), 2(I+2), ...`` in
    emission order, matching the implicit LHS numbering of the binary
    format, so no re-numbering pass is needed.
    """
    max_var, input_literals, output_literals, and_rows = _assign_literals(mig)
    chunks: list[bytes] = [
        f"aig {max_var} {mig.num_pis} 0 {mig.num_pos} {len(and_rows)}\n".encode()
    ]
    for literal in output_literals:
        chunks.append(f"{literal}\n".encode())
    encoded = bytearray()
    for lhs, rhs0, rhs1 in and_rows:
        for delta in (lhs - rhs0, rhs0 - rhs1):
            while delta >= 0x80:
                encoded.append(0x80 | (delta & 0x7F))
                delta >>= 7
            encoded.append(delta)
    chunks.append(bytes(encoded))
    for pos, name in enumerate(mig.pi_names()):
        chunks.append(f"i{pos} {name}\n".encode())
    for pos, name in enumerate(mig.po_names()):
        chunks.append(f"o{pos} {name}\n".encode())
    comment = f"c\nwritten by repro {mig.name or ''}\n".rstrip() + "\n"
    chunks.append(comment.encode())
    out.write(b"".join(chunks))
