"""Bit-parallel simulation of MIGs.

Every signal value under ``k`` input patterns is packed into one Python
integer (bit ``p`` = value under pattern ``p``), so a single pass over the
gates simulates all patterns at once.  This is the engine behind truth
tables, equivalence checking, and program verification.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import MigError
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.utils.bits import full_mask, pattern_mask


def simulate(
    mig: Mig,
    pi_values: Mapping[str, int] | Sequence[int],
    num_patterns: int = 1,
) -> dict[str, int]:
    """Simulate ``mig`` under bit-packed input values.

    ``pi_values`` maps PI names to packed values (or lists them in PI
    order); each packed value carries ``num_patterns`` patterns.  Returns a
    dict from PO name to packed output value.

    Raises :class:`~repro.errors.MigError` when two outputs share a name —
    a name-keyed dict would silently shadow one of them; use
    :func:`simulate_outputs` (index-keyed) for such graphs.

    >>> from repro.mig.graph import Mig
    >>> m = Mig()
    >>> a, b, c = m.add_pi("a"), m.add_pi("b"), m.add_pi("c")
    >>> _ = m.add_po(m.add_maj(a, b, c), "f")
    >>> simulate(m, {"a": 1, "b": 1, "c": 0})
    {'f': 1}
    """
    names = mig.po_names()
    duplicate = _first_duplicate(names)
    if duplicate is not None:
        raise MigError(
            f"duplicate primary output name {duplicate!r}: a name-keyed "
            "result would shadow one output; use simulate_outputs()"
        )
    values = _signal_values(mig, pi_values, num_patterns)
    mask = full_mask(num_patterns)
    results: dict[str, int] = {}
    for po, name in zip(mig.pos(), names):
        results[name] = _fetch(values, int(po), mask)
    return results


def simulate_outputs(
    mig: Mig,
    pi_values: Mapping[str, int] | Sequence[int],
    num_patterns: int = 1,
) -> list[int]:
    """Like :func:`simulate` but returns outputs by index, not by name.

    Sound for graphs with duplicate output names (where the name-keyed
    dict of :func:`simulate` would collapse entries); the equivalence
    checker compares outputs positionally through this function.
    """
    values = _signal_values(mig, pi_values, num_patterns)
    mask = full_mask(num_patterns)
    return [_fetch(values, int(po), mask) for po in mig.pos()]


def _first_duplicate(names) -> Optional[str]:
    """First name appearing more than once, or ``None``."""
    seen: set = set()
    for name in names:
        if name in seen:
            return name
        seen.add(name)
    return None


def simulate_signals(
    mig: Mig,
    pi_values: Mapping[str, int] | Sequence[int],
    num_patterns: int = 1,
) -> dict[int, int]:
    """Like :func:`simulate` but returns values for *every* node index.

    Tombstoned (dead) nodes map to ``None``.
    """
    values = _signal_values(mig, pi_values, num_patterns)
    return {v: values[v << 1] for v in mig.nodes()}


def _signal_values(
    mig: Mig,
    pi_values: Mapping[str, int] | Sequence[int],
    num_patterns: int,
) -> list[Optional[int]]:
    """Packed value per signal, as a flat list indexed by signal encoding.

    This is the inner loop of equivalence checking and program
    verification, so it avoids dict hashing: slot ``int(signal)`` holds the
    signal's packed value.  Complemented values are computed lazily — a
    slot is filled from its sibling (``encoding ^ 1``) on first use — so a
    gate whose output is never read complemented costs one store instead
    of two XORs and two stores.  Unfilled slots (unused complements, dead
    nodes) remain ``None``.
    """
    if num_patterns < 1:
        raise ValueError("num_patterns must be at least 1")
    mask = full_mask(num_patterns)
    if not isinstance(pi_values, Mapping):
        names = mig.pi_names()
        if len(pi_values) != len(names):
            raise MigError(
                f"expected {len(names)} PI values, got {len(pi_values)}"
            )
        pi_values = dict(zip(names, pi_values))
    values: list[Optional[int]] = [None] * (len(mig) << 1)
    values[int(Signal.CONST0)] = 0
    values[int(Signal.CONST1)] = mask
    for pi in mig.pis():
        name = mig.pi_name(pi.node)
        try:
            value = pi_values[name] & mask
        except KeyError:
            raise MigError(f"no value provided for primary input {name!r}") from None
        values[int(pi)] = value
    for v in mig.topo_gates():
        sa, sb, sc = mig.children(v)
        ia, ib, ic = int(sa), int(sb), int(sc)
        a = values[ia]
        if a is None:
            a = values[ia] = values[ia ^ 1] ^ mask
        b = values[ib]
        if b is None:
            b = values[ib] = values[ib ^ 1] ^ mask
        c = values[ic]
        if c is None:
            c = values[ic] = values[ic ^ 1] ^ mask
        values[v << 1] = (a & b) | (a & c) | (b & c)
    return values


def _fetch(values: list[Optional[int]], encoding: int, mask: int) -> int:
    """Value of one signal encoding, filling its lazy complement slot."""
    value = values[encoding]
    if value is None:
        value = values[encoding] = values[encoding ^ 1] ^ mask
    return value


def truth_tables(mig: Mig) -> dict[str, int]:
    """Full truth table of every output, packed into integers.

    The PIs are enumerated in declaration order; PI ``i`` toggles with
    period ``2**(i+1)`` (the usual truth-table variable columns).  Only
    sensible for modest input counts — the table has ``2**num_pis`` rows.
    Like :func:`simulate`, raises on duplicate output names (see
    :func:`output_tables` for the index-keyed variant).
    """
    return simulate(mig, *_truth_table_assignment(mig))


def output_tables(mig: Mig) -> list[int]:
    """Full truth tables by output *index* — sound under duplicate names."""
    return simulate_outputs(mig, *_truth_table_assignment(mig))


def _truth_table_assignment(mig: Mig) -> tuple[dict[str, int], int]:
    n = mig.num_pis
    if n > 24:
        raise MigError(f"truth table over {n} inputs would have 2^{n} rows; use simulate()")
    patterns = 1 << n
    assignment = {
        name: pattern_mask(i, n) for i, name in enumerate(mig.pi_names())
    }
    return assignment, patterns


def evaluate(mig: Mig, assignment: Mapping[str, int]) -> dict[str, int]:
    """Single-pattern convenience wrapper around :func:`simulate`."""
    return simulate(mig, assignment, 1)
