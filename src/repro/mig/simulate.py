"""Bit-parallel simulation of MIGs.

Every signal value under ``k`` input patterns is packed into one Python
integer (bit ``p`` = value under pattern ``p``), so a single pass over the
gates simulates all patterns at once.  This is the engine behind truth
tables, equivalence checking, and program verification.

Two word-parallel kernels sit under the public functions:

* **Compiled big-int kernel** — the default.  The gate schedule (topo
  order plus child encodings) is compiled once per graph shape and cached
  on the :class:`~repro.mig.graph.Mig` (keyed on ``(len, shape version)``,
  so any structural edit invalidates it); each run is then a tight loop of
  Python-int ``&``/``|``/``^`` over pre-resolved encodings — CPython
  big-ints are already 64-wide-per-word bit-sliced, the compilation
  removes the per-gate ``children()``/``topo_gates()`` interpretation that
  used to dominate.
* **Chunked numpy ``uint64`` kernel** — engaged for very wide batches
  (truth-table widths, ``num_patterns >= 65536`` on graphs with enough
  gates) when numpy is importable.  Gates are grouped by topological
  level; each level is one vectorized gather + majority over a
  ``(gates, words)`` ``uint64`` block.  Patterns are processed in chunks
  sized to keep the node-value matrix cache-resident rather than
  collapsing under memory traffic.  At narrower widths the big-int kernel
  is at parity or faster (its ops are C loops too, without the gather
  copies), so it stays the default.

Both kernels are bit-for-bit identical to the scalar definition (the
property tests in ``tests/property/test_prop_simulate.py`` pin this down);
which one runs is purely a latency choice.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import MigError
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.utils.bits import full_mask, pattern_mask

try:  # numpy is optional: everything falls back to the big-int kernel
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

#: minimum batch width before the numpy kernel can beat big-ints —
#: CPython big-int bitwise ops are C loops over 30-bit digits and stay at
#: parity with the vectorized gather up to tens of thousands of patterns
#: (measured on the EPFL registry circuits), so numpy only engages at
#: truth-table widths where its chunked blocks tie or win
_NUMPY_MIN_PATTERNS = 65536
#: minimum gate count before per-level numpy dispatch overhead amortizes
_NUMPY_MIN_GATES = 32
#: target bytes for one chunk of the node-value matrix (cache residency)
_CHUNK_TARGET_BYTES = 1 << 25


class _SimPlan:
    """Compiled gate schedule for one graph shape.

    ``gates`` is the whole simulation as data: one ``(target encoding,
    child a, child b, child c)`` tuple per live gate, in topological
    order.  ``groups`` (numpy level groups) are compiled lazily on first
    wide-batch use so big-int-only callers never pay for them.
    """

    __slots__ = ("gates", "pi_nodes", "n_slots", "groups", "max_group")

    def __init__(self, gates: list[tuple[int, int, int, int]], pi_nodes: list[int], n_slots: int):
        self.gates = gates
        self.pi_nodes = pi_nodes
        self.n_slots = n_slots
        self.groups = None
        self.max_group = 0

    def numpy_groups(self):
        """Level groups as numpy index/complement-mask vectors (lazy)."""
        if self.groups is not None:
            return self.groups
        np = _np
        levels = [0] * self.n_slots
        by_level: dict[int, list[tuple[int, int, int, int]]] = {}
        for t, ia, ib, ic in self.gates:
            level = 1 + max(levels[ia >> 1], levels[ib >> 1], levels[ic >> 1])
            levels[t >> 1] = level
            by_level.setdefault(level, []).append((t, ia, ib, ic))
        ones = ~np.uint64(0)
        zero = np.uint64(0)
        groups = []
        for level in sorted(by_level):
            rows = by_level[level]
            groups.append(
                (
                    np.array([t >> 1 for t, _, _, _ in rows], dtype=np.intp),
                    np.array([ia >> 1 for _, ia, _, _ in rows], dtype=np.intp),
                    np.array([ones if ia & 1 else zero for _, ia, _, _ in rows], dtype=np.uint64),
                    np.array([ib >> 1 for _, _, ib, _ in rows], dtype=np.intp),
                    np.array([ones if ib & 1 else zero for _, _, ib, _ in rows], dtype=np.uint64),
                    np.array([ic >> 1 for _, _, _, ic in rows], dtype=np.intp),
                    np.array([ones if ic & 1 else zero for _, _, _, ic in rows], dtype=np.uint64),
                )
            )
            self.max_group = max(self.max_group, len(rows))
        self.groups = groups
        return groups


def _plan_for(mig: Mig) -> _SimPlan:
    """The compiled schedule for ``mig``, reusing the cached one when the
    graph shape is unchanged since it was compiled."""
    key = (len(mig), mig._shape_version)
    plan = getattr(mig, "_sim_plan", None)
    if plan is not None and getattr(mig, "_sim_plan_key", None) == key:
        return plan
    ca, cb, cc = mig._ca, mig._cb, mig._cc
    gates = [
        (v << 1, ca[v], cb[v], cc[v]) for v in mig.topo_gates()
    ]
    plan = _SimPlan(gates, [pi.node for pi in mig.pis()], len(mig))
    mig._sim_plan = plan
    mig._sim_plan_key = key
    return plan


def simulate(
    mig: Mig,
    pi_values: Mapping[str, int] | Sequence[int],
    num_patterns: int = 1,
) -> dict[str, int]:
    """Simulate ``mig`` under bit-packed input values.

    ``pi_values`` maps PI names to packed values (or lists them in PI
    order); each packed value carries ``num_patterns`` patterns.  Returns a
    dict from PO name to packed output value.

    Raises :class:`~repro.errors.MigError` when two outputs share a name —
    a name-keyed dict would silently shadow one of them; use
    :func:`simulate_outputs` (index-keyed) for such graphs.

    >>> from repro.mig.graph import Mig
    >>> m = Mig()
    >>> a, b, c = m.add_pi("a"), m.add_pi("b"), m.add_pi("c")
    >>> _ = m.add_po(m.add_maj(a, b, c), "f")
    >>> simulate(m, {"a": 1, "b": 1, "c": 0})
    {'f': 1}
    """
    names = mig.po_names()
    duplicate = _first_duplicate(names)
    if duplicate is not None:
        raise MigError(
            f"duplicate primary output name {duplicate!r}: a name-keyed "
            "result would shadow one output; use simulate_outputs()"
        )
    outputs = _simulate_encodings(
        mig, pi_values, num_patterns, [int(po) for po in mig.pos()]
    )
    return dict(zip(names, outputs))


def simulate_outputs(
    mig: Mig,
    pi_values: Mapping[str, int] | Sequence[int],
    num_patterns: int = 1,
) -> list[int]:
    """Like :func:`simulate` but returns outputs by index, not by name.

    Sound for graphs with duplicate output names (where the name-keyed
    dict of :func:`simulate` would collapse entries); the equivalence
    checker compares outputs positionally through this function.
    """
    return _simulate_encodings(
        mig, pi_values, num_patterns, [int(po) for po in mig.pos()]
    )


def _first_duplicate(names) -> Optional[str]:
    """First name appearing more than once, or ``None``."""
    seen: set = set()
    for name in names:
        if name in seen:
            return name
        seen.add(name)
    return None


def simulate_signals(
    mig: Mig,
    pi_values: Mapping[str, int] | Sequence[int],
    num_patterns: int = 1,
) -> dict[int, int]:
    """Like :func:`simulate` but returns values for *every* node index.

    Tombstoned (dead) nodes map to ``None``.
    """
    values = _signal_values(mig, pi_values, num_patterns)
    return {v: values[v << 1] for v in mig.nodes()}


def _resolve_pi_ints(
    mig: Mig,
    pi_values: Mapping[str, int] | Sequence[int],
    num_patterns: int,
) -> list[int]:
    """Masked packed value per PI in declaration order."""
    if num_patterns < 1:
        raise ValueError("num_patterns must be at least 1")
    mask = full_mask(num_patterns)
    names = mig.pi_names()
    if not isinstance(pi_values, Mapping):
        if len(pi_values) != len(names):
            raise MigError(
                f"expected {len(names)} PI values, got {len(pi_values)}"
            )
        return [value & mask for value in pi_values]
    resolved = []
    for name in names:
        try:
            resolved.append(pi_values[name] & mask)
        except KeyError:
            raise MigError(f"no value provided for primary input {name!r}") from None
    return resolved


def _simulate_encodings(
    mig: Mig,
    pi_values: Mapping[str, int] | Sequence[int],
    num_patterns: int,
    encodings: list[int],
) -> list[int]:
    """Packed value per requested signal encoding — kernel dispatch point."""
    pi_ints = _resolve_pi_ints(mig, pi_values, num_patterns)
    plan = _plan_for(mig)
    if (
        _np is not None
        and num_patterns >= _NUMPY_MIN_PATTERNS
        and len(plan.gates) >= _NUMPY_MIN_GATES
    ):
        return _run_numpy(plan, pi_ints, num_patterns, encodings)
    values = _run_bigint(plan, pi_ints, num_patterns)
    mask = full_mask(num_patterns)
    return [_fetch(values, encoding, mask) for encoding in encodings]


def _signal_values(
    mig: Mig,
    pi_values: Mapping[str, int] | Sequence[int],
    num_patterns: int,
) -> list[Optional[int]]:
    """Packed value per signal, as a flat list indexed by signal encoding.

    This is the inner loop of equivalence checking and program
    verification, so it avoids dict hashing: slot ``int(signal)`` holds the
    signal's packed value.  Complemented values are computed lazily — a
    slot is filled from its sibling (``encoding ^ 1``) on first use — so a
    gate whose output is never read complemented costs one store instead
    of two XORs and two stores.  Unfilled slots (unused complements, dead
    nodes) remain ``None``.
    """
    pi_ints = _resolve_pi_ints(mig, pi_values, num_patterns)
    return _run_bigint(_plan_for(mig), pi_ints, num_patterns)


def _run_bigint(
    plan: _SimPlan, pi_ints: list[int], num_patterns: int
) -> list[Optional[int]]:
    """Compiled big-int kernel: one pass over the pre-resolved schedule."""
    mask = full_mask(num_patterns)
    values: list[Optional[int]] = [None] * (plan.n_slots << 1)
    values[int(Signal.CONST0)] = 0
    values[int(Signal.CONST1)] = mask
    for node, value in zip(plan.pi_nodes, pi_ints):
        values[node << 1] = value
    for t, ia, ib, ic in plan.gates:
        a = values[ia]
        if a is None:
            a = values[ia] = values[ia ^ 1] ^ mask
        b = values[ib]
        if b is None:
            b = values[ib] = values[ib ^ 1] ^ mask
        c = values[ic]
        if c is None:
            c = values[ic] = values[ic ^ 1] ^ mask
        values[t] = (a & b) | (a & c) | (b & c)
    return values


def _run_numpy(
    plan: _SimPlan, pi_ints: list[int], num_patterns: int, encodings: list[int]
) -> list[int]:
    """Chunked level-grouped ``uint64`` kernel for wide batches.

    The node-value matrix is ``(node slots, chunk words)``; patterns are
    processed 64-per-word in chunks sized so the matrix stays around
    cache/working-set scale regardless of graph size.  Per level: gather
    the three child rows, flip complemented edges by XOR with all-ones
    masks, and combine as ``(a&b) | (c & (a|b))`` with in-place ops (three
    temporaries per level, no per-gate Python work).
    """
    np = _np
    words = (num_patterns + 63) >> 6
    n = plan.n_slots
    chunk = max(1, min(words, _CHUNK_TARGET_BYTES // (8 * max(n, 1))))
    groups = plan.numpy_groups()
    pi_bytes = [value.to_bytes(words * 8, "little") for value in pi_ints]
    matrix = np.zeros((n, chunk), dtype=np.uint64)
    out_parts: list[list[bytes]] = [[] for _ in encodings]
    for w0 in range(0, words, chunk):
        w1 = min(words, w0 + chunk)
        view = matrix[:, : w1 - w0]
        view[0] = 0
        for node, raw in zip(plan.pi_nodes, pi_bytes):
            view[node] = np.frombuffer(raw[w0 * 8 : w1 * 8], dtype=np.uint64)
        for tgt, ia, inv_a, ib, inv_b, ic, inv_c in groups:
            a = view[ia]
            a ^= inv_a[:, None]
            b = view[ib]
            b ^= inv_b[:, None]
            c = view[ic]
            c ^= inv_c[:, None]
            ab = a & b
            np.bitwise_or(a, b, out=b)
            np.bitwise_and(b, c, out=b)
            np.bitwise_or(b, ab, out=b)
            view[tgt] = b
        for slot, encoding in enumerate(encodings):
            row = view[encoding >> 1]
            if encoding & 1:
                row = ~row
            out_parts[slot].append(row.tobytes())
    mask = full_mask(num_patterns)
    return [
        int.from_bytes(b"".join(parts), "little") & mask for parts in out_parts
    ]


def _fetch(values: list[Optional[int]], encoding: int, mask: int) -> int:
    """Value of one signal encoding, filling its lazy complement slot."""
    value = values[encoding]
    if value is None:
        value = values[encoding] = values[encoding ^ 1] ^ mask
    return value


def truth_tables(mig: Mig) -> dict[str, int]:
    """Full truth table of every output, packed into integers.

    The PIs are enumerated in declaration order; PI ``i`` toggles with
    period ``2**(i+1)`` (the usual truth-table variable columns).  Only
    sensible for modest input counts — the table has ``2**num_pis`` rows.
    Like :func:`simulate`, raises on duplicate output names (see
    :func:`output_tables` for the index-keyed variant).
    """
    return simulate(mig, *_truth_table_assignment(mig))


def output_tables(mig: Mig) -> list[int]:
    """Full truth tables by output *index* — sound under duplicate names."""
    return simulate_outputs(mig, *_truth_table_assignment(mig))


def _truth_table_assignment(mig: Mig) -> tuple[dict[str, int], int]:
    n = mig.num_pis
    if n > 24:
        raise MigError(f"truth table over {n} inputs would have 2^{n} rows; use simulate()")
    patterns = 1 << n
    assignment = {
        name: pattern_mask(i, n) for i, name in enumerate(mig.pi_names())
    }
    return assignment, patterns


def evaluate(mig: Mig, assignment: Mapping[str, int]) -> dict[str, int]:
    """Single-pattern convenience wrapper around :func:`simulate`."""
    return simulate(mig, assignment, 1)
