"""Functional equivalence checking between MIGs.

Two modes, chosen automatically by input count:

* **exhaustive** — compare full truth tables (sound and complete) for up to
  a configurable number of inputs;
* **randomized** — compare under many random bit-packed input vectors; a
  mismatch is a definite counterexample, agreement is a high-confidence
  probabilistic pass.  This is how the rewriting tests validate large
  benchmark circuits where 2^n simulation is impossible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import MigError
from repro.mig.graph import Mig
from repro.mig.simulate import output_tables, simulate_outputs
from repro.utils.bits import full_mask
from repro.utils.limits import EXHAUSTIVE_EQUIVALENCE_LIMIT


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    mode: str  # "exhaustive" or "random"
    counterexample: Optional[dict[str, int]] = None
    failing_output: Optional[str] = None
    failing_output_index: Optional[int] = None

    def __bool__(self) -> bool:
        return self.equivalent


def _check_interfaces(a: Mig, b: Mig) -> None:
    if a.pi_names() != b.pi_names():
        raise MigError("MIGs have different primary inputs; cannot compare")
    if a.po_names() != b.po_names():
        raise MigError("MIGs have different primary outputs; cannot compare")


def equivalent(
    a: Mig,
    b: Mig,
    *,
    exhaustive_limit: int = EXHAUSTIVE_EQUIVALENCE_LIMIT,
    num_random_rounds: int = 8,
    patterns_per_round: int = 1024,
    seed: int = 0xE9F1,
) -> EquivalenceResult:
    """Check that ``a`` and ``b`` compute the same functions.

    Inputs/outputs are matched by name and must agree; output *values*
    are compared by position, so duplicate-named outputs cannot shadow
    each other (a name-keyed comparison would silently collapse them and
    pass on circuits that differ on the shadowed output).  Exhaustive up
    to ``exhaustive_limit`` inputs (default
    :data:`~repro.utils.limits.EXHAUSTIVE_EQUIVALENCE_LIMIT`; see that
    module for why it is larger than the machine-model verifier's window),
    randomized beyond.
    """
    _check_interfaces(a, b)
    names = a.po_names()
    if a.num_pis <= exhaustive_limit:
        tables_a = output_tables(a)
        tables_b = output_tables(b)
        for index, (table_a, table_b) in enumerate(zip(tables_a, tables_b)):
            if table_a != table_b:
                pattern = _first_diff_bit(table_a, table_b)
                assignment = {
                    pi: (pattern >> i) & 1 for i, pi in enumerate(a.pi_names())
                }
                return EquivalenceResult(
                    equivalent=False,
                    mode="exhaustive",
                    counterexample=assignment,
                    failing_output=names[index],
                    failing_output_index=index,
                )
        return EquivalenceResult(equivalent=True, mode="exhaustive")

    rng = random.Random(seed)
    mask = full_mask(patterns_per_round)
    for _ in range(num_random_rounds):
        assignment = {
            pi: rng.getrandbits(patterns_per_round) & mask for pi in a.pi_names()
        }
        out_a = simulate_outputs(a, assignment, patterns_per_round)
        out_b = simulate_outputs(b, assignment, patterns_per_round)
        for index, (value_a, value_b) in enumerate(zip(out_a, out_b)):
            if value_a != value_b:
                pattern = _first_diff_bit(value_a, value_b)
                cex = {pi: (assignment[pi] >> pattern) & 1 for pi in a.pi_names()}
                return EquivalenceResult(
                    equivalent=False,
                    mode="random",
                    counterexample=cex,
                    failing_output=names[index],
                    failing_output_index=index,
                )
    return EquivalenceResult(equivalent=True, mode="random")


def _first_diff_bit(x: int, y: int) -> int:
    """Index of the lowest differing bit of two integers."""
    diff = x ^ y
    return (diff & -diff).bit_length() - 1
