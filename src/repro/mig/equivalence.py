"""Functional equivalence checking between MIGs.

Two modes, chosen automatically by input count:

* **exhaustive** — compare full truth tables (sound and complete) for up to
  a configurable number of inputs;
* **randomized** — compare under many random bit-packed input vectors; a
  mismatch is a definite counterexample, agreement is a high-confidence
  probabilistic pass.  This is how the rewriting tests validate large
  benchmark circuits where 2^n simulation is impossible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import MigError
from repro.mig.graph import Mig
from repro.mig.simulate import simulate, truth_tables
from repro.utils.bits import full_mask


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    mode: str  # "exhaustive" or "random"
    counterexample: Optional[dict[str, int]] = None
    failing_output: Optional[str] = None

    def __bool__(self) -> bool:
        return self.equivalent


def _check_interfaces(a: Mig, b: Mig) -> None:
    if a.pi_names() != b.pi_names():
        raise MigError("MIGs have different primary inputs; cannot compare")
    if a.po_names() != b.po_names():
        raise MigError("MIGs have different primary outputs; cannot compare")


def equivalent(
    a: Mig,
    b: Mig,
    *,
    exhaustive_limit: int = 14,
    num_random_rounds: int = 8,
    patterns_per_round: int = 1024,
    seed: int = 0xE9F1,
) -> EquivalenceResult:
    """Check that ``a`` and ``b`` compute the same functions.

    Inputs/outputs are matched by name and must agree.  Exhaustive up to
    ``exhaustive_limit`` inputs, randomized beyond.
    """
    _check_interfaces(a, b)
    if a.num_pis <= exhaustive_limit:
        tables_a = truth_tables(a)
        tables_b = truth_tables(b)
        for name in a.po_names():
            if tables_a[name] != tables_b[name]:
                pattern = _first_diff_bit(tables_a[name], tables_b[name])
                assignment = {
                    pi: (pattern >> i) & 1 for i, pi in enumerate(a.pi_names())
                }
                return EquivalenceResult(
                    equivalent=False,
                    mode="exhaustive",
                    counterexample=assignment,
                    failing_output=name,
                )
        return EquivalenceResult(equivalent=True, mode="exhaustive")

    rng = random.Random(seed)
    mask = full_mask(patterns_per_round)
    for _ in range(num_random_rounds):
        assignment = {
            pi: rng.getrandbits(patterns_per_round) & mask for pi in a.pi_names()
        }
        out_a = simulate(a, assignment, patterns_per_round)
        out_b = simulate(b, assignment, patterns_per_round)
        for name in a.po_names():
            if out_a[name] != out_b[name]:
                pattern = _first_diff_bit(out_a[name], out_b[name])
                cex = {pi: (assignment[pi] >> pattern) & 1 for pi in a.pi_names()}
                return EquivalenceResult(
                    equivalent=False,
                    mode="random",
                    counterexample=cex,
                    failing_output=name,
                )
    return EquivalenceResult(equivalent=True, mode="random")


def _first_diff_bit(x: int, y: int) -> int:
    """Index of the lowest differing bit of two integers."""
    diff = x ^ y
    return (diff & -diff).bit_length() - 1
