"""Native ``.mig`` text format: a direct, lossless MIG serialization.

Grammar (one item per line, ``#`` comments)::

    .mig <name>
    .pi a b c ...
    n5 = <a, ~b, 0>      # majority gate: three children, ~ = complement
    .po f = ~n5
    .end

Node identifiers are ``n<k>`` for gates, PI names for inputs, ``0``/``1``
for constants.  Gates must be defined before use; child order is preserved
exactly (it matters to child-order translation).
"""

from __future__ import annotations

from typing import Optional, TextIO

from repro.errors import ParseError
from repro.mig.graph import Mig
from repro.mig.signal import Signal


def write_mig(mig: Mig, path_or_file) -> None:
    """Serialize ``mig`` to a ``.mig`` file (path or open text file)."""
    if hasattr(path_or_file, "write"):
        _write(mig, path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            _write(mig, handle)


def _write(mig: Mig, out: TextIO) -> None:
    out.write(f".mig {mig.name or ''}".rstrip() + "\n")
    if mig.num_pis:
        out.write(".pi " + " ".join(mig.pi_names()) + "\n")
    for v in mig.gates():
        children = ", ".join(_signal_text(mig, s) for s in mig.children(v))
        out.write(f"n{v} = <{children}>\n")
    for po, name in zip(mig.pos(), mig.po_names()):
        out.write(f".po {name} = {_signal_text(mig, po)}\n")
    out.write(".end\n")


def _signal_text(mig: Mig, signal: Signal) -> str:
    if signal.is_const:
        return str(signal.const_value)
    prefix = "~" if signal.inverted else ""
    if mig.is_pi(signal.node):
        return prefix + mig.pi_name(signal.node)
    return f"{prefix}n{signal.node}"


def read_mig(path_or_file) -> Mig:
    """Parse a ``.mig`` file (path or open text file)."""
    if hasattr(path_or_file, "read"):
        return _read(path_or_file)
    with open(path_or_file, "r", encoding="utf-8") as handle:
        return _read(handle)


def _read(handle: TextIO) -> Mig:
    mig: Optional[Mig] = None
    by_name: dict[str, Signal] = {}

    def parse_signal(token: str, lineno: int) -> Signal:
        token = token.strip()
        inverted = token.startswith("~")
        if inverted:
            token = token[1:].strip()
        if token == "0":
            signal = Signal.CONST0
        elif token == "1":
            signal = Signal.CONST1
        else:
            try:
                signal = by_name[token]
            except KeyError:
                raise ParseError(f"unknown signal {token!r}", lineno) from None
        return ~signal if inverted else signal

    for lineno, raw in enumerate(handle, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".mig"):
            mig = Mig(name=line[4:].strip() or None)
            continue
        if mig is None:
            raise ParseError("file must start with a .mig header", lineno)
        if line == ".end":
            break
        if line.startswith(".pi"):
            for name in line.split()[1:]:
                by_name[name] = mig.add_pi(name)
        elif line.startswith(".po"):
            body = line[3:].strip()
            if "=" not in body:
                raise ParseError(f"malformed output line {line!r}", lineno)
            name, expr = (part.strip() for part in body.split("=", 1))
            mig.add_po(parse_signal(expr, lineno), name)
        else:
            if "=" not in line:
                raise ParseError(f"malformed gate line {line!r}", lineno)
            name, expr = (part.strip() for part in line.split("=", 1))
            if not (expr.startswith("<") and expr.endswith(">")):
                raise ParseError(f"gate body must be <a, b, c>, got {expr!r}", lineno)
            parts = expr[1:-1].split(",")
            if len(parts) != 3:
                raise ParseError(f"majority gate needs 3 children, got {len(parts)}", lineno)
            children = [parse_signal(p, lineno) for p in parts]
            # simplify=False: preserve the file's structure verbatim.
            by_name[name] = mig.add_maj(*children, simplify=False)
    if mig is None:
        raise ParseError("no .mig header found")
    return mig
