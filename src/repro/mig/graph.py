"""The Majority-Inverter Graph data structure, on a flat array core.

An :class:`Mig` is a DAG with three kinds of nodes:

* the constant-zero node (always index 0);
* primary inputs (no children);
* majority gates with exactly three child edges, each optionally
  complemented (:class:`~repro.mig.signal.Signal`).

Outputs are a list of signals.  Gates are created strictly after their
children, so node indices are already a topological order — every traversal
in this package relies on that invariant.

**Storage.**  The hot per-node state lives in flat struct-of-arrays
vectors indexed by node id, not in per-node Python objects:

* ``_ca``/``_cb``/``_cc`` — ``array('q')`` of the three child-edge
  *encodings* (``node << 1 | complement``, the same packing
  :class:`~repro.mig.signal.Signal` uses), ``-1`` in every slot of a
  non-gate (constant, PI, tombstone);
* ``_kind`` — one byte per node: constant / PI / gate / tombstone;
* ``_refs`` (reference counts, in-place mode) and ``_levels``
  (topological levels, depth mode) — ``array('q')`` vectors;
* the structural-hash table keys on one packed integer per sorted child
  triple instead of an int 3-tuple.

This drops the constant factor of the previous dict-of-objects core
(~25 bytes of child state per gate instead of ~200) and lets the
simulation kernel (:mod:`repro.mig.simulate`) compile gate schedules
straight out of the arrays — the difference between topping out at a few
tens of thousands of nodes and ingesting the 10⁵–10⁶-node EPFL/ISCAS
benchmark circuits.  The previous core survives verbatim as
:class:`repro.mig.graph_dict.DictMig`, the differential oracle and
benchmark baseline.  Node ids are capped at ``2**23 - 1`` (~8.3M live +
tombstoned slots) by the packed strash key; exceeding the cap raises
:class:`~repro.errors.MigError` instead of silently corrupting the table.

Everything below the storage layer is behavior-identical to the dict
core.  Structural hashing (strash) is performed on the *sorted* child
triple, which makes node sharing insensitive to commutativity (Ω.C),
while the child order given at construction time is preserved for
storage.  The stored order matters: the paper's naïve translator picks
RM3 operands "in order of their children (from left to right)", so
builders control what naïve compilation sees.

Trivial majority simplifications (Ω.M: ``⟨x x z⟩ = x``, ``⟨x x̄ z⟩ = z``) are
applied on construction unless ``simplify=False`` is passed, which tests and
the algebra module use to create reducible nodes on purpose.

Beyond the append-only builder API, a graph can opt into *in-place
rewriting* with :meth:`Mig.enable_inplace`: it then maintains parent sets,
reference counts and a complemented-edge histogram incrementally, and
:meth:`Mig.replace_node` redirects every reader of a gate to another signal
— cascading structural-hash merges and Ω.M collapses upward, and retiring
unreferenced cones as tombstones.  Tombstoned indices stay allocated (so
signals remain stable) until a final :meth:`cleanup` compacts the graph;
because replacements may point a low-index parent at a high-index node, the
index order is no longer topological after the first replacement, and
order-sensitive consumers must iterate :meth:`topo_gates` instead of
:meth:`gates`.

Depth-oriented rewriting additionally opts into incremental level
maintenance (:meth:`Mig.enable_levels`): every structural edit re-levels
only the touched cone, so :meth:`Mig.level_of` / :meth:`Mig.current_depth`
answer in O(1) instead of a full traversal.
"""

from __future__ import annotations

import hashlib
import heapq
from array import array
from typing import Callable, Iterator, Optional

from repro.errors import MigError
from repro.mig.signal import Signal

#: node kinds stored in the per-node ``_kind`` byte vector
_CONST = 0
_PI = 1
_GATE = 2
_DEAD = 3

#: highest admissible node index: a child edge is encoded as
#: ``index << 1 | inverted`` and three such encodings are packed into
#: 24-bit fields of the 72-bit strash key, so indices stop at 2^23 - 1
#: (about 8.4M nodes — PIs, gates, and tombstoned slots all count)
_MAX_NODE = (1 << 23) - 1


class Mig:
    """A majority-inverter graph with named primary inputs and outputs.

    Nodes are the constant (index 0), primary inputs, and 3-input majority
    gates; edges are :class:`~repro.mig.signal.Signal` values carrying an
    optional complement bit.  ``add_maj`` applies the trivial Ω.M rules
    and structural hashing by default, so building is already a cleanup:

        >>> from repro.mig.graph import Mig
        >>> m = Mig(name="demo")
        >>> a, b, c = m.add_pi("a"), m.add_pi("b"), m.add_pi("c")
        >>> g = m.add_maj(a, b, ~c)
        >>> _ = m.add_po(g, "f")
        >>> (m.num_pis, m.num_gates, m.num_pos)
        (3, 1, 1)
        >>> m.add_maj(a, a, b)          # ⟨a a b⟩ = a, no node created
        s1
        >>> m.add_maj(a, b, ~c) == g    # structural hash hit
        True

    Rewriting mutates a private copy in place via :meth:`enable_inplace` /
    :meth:`replace_node` (see :mod:`repro.core.rewriting`); depth-aware
    rewriting additionally opts into :meth:`enable_levels`.
    """

    def __init__(self, name: Optional[str] = None):
        self.name = name
        # struct-of-arrays node store: _ca/_cb/_cc hold the child-edge
        # encodings of gate v (all -1 for the constant, PIs, and dead
        # gates); _kind holds the node class byte.  Slot 0 is the constant.
        self._ca: array = array("q", (-1,))
        self._cb: array = array("q", (-1,))
        self._cc: array = array("q", (-1,))
        self._kind: bytearray = bytearray((_CONST,))
        self._num_dead: int = 0
        self._pi_ids: list[int] = []
        self._pi_names: list[str] = []
        self._name_to_pi: dict[str, int] = {}
        self._pi_pos: dict[int, int] = {}
        self._pos: list[Signal] = []
        self._po_names: list[Optional[str]] = []
        # strash: packed sorted-child-triple key -> node index
        self._strash: dict[int, int] = {}
        # --- in-place rewriting state (None/empty until enable_inplace) ---
        self._refs: Optional[array] = None
        self._parents: Optional[list[set[int]]] = None
        self._po_of: Optional[dict[int, list[int]]] = None
        # complemented-non-constant-child histogram over live gates, plus
        # the count of gates with zero complements and no constant child —
        # together they make the rewriter's fixed-point signature O(1)
        self._hist: Optional[list[int]] = None
        self._c0_noconst: int = 0
        # order keys: where each node "sits" in the creation order a chain
        # of rebuild passes would have produced — replacement nodes inherit
        # the replaced node's key extended by their own index, so nested
        # replacements sort lexicographically into the replaced node's slot
        # and iteration order stays aligned with the rebuild engine
        # (see topo_gates)
        self._order: Optional[list[tuple[int, ...]]] = None
        self._edit_count: int = 0
        # per-node topological levels, maintained incrementally once
        # enable_levels() is called (depth objective); None until then so
        # pure size rewriting pays nothing for level bookkeeping
        self._levels: Optional[array] = None
        self._topo_dirty: bool = False
        # cached topo_gates order for dirty graphs, keyed on a shape
        # version (bumped by node creation, rewiring and tombstoning;
        # stored-order permutations don't affect it)
        self._shape_version: int = 0
        self._topo_cache: Optional[list[int]] = None
        self._topo_cache_version: int = -1
        # compiled simulation schedule (repro.mig.simulate), keyed on
        # (len, shape_version) so structural edits invalidate it
        self._sim_plan = None
        self._sim_plan_key: tuple[int, int] = (-1, -1)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _new_slot(self, kind: int, ea: int, eb: int, ec: int) -> int:
        """Append one node slot; returns its index."""
        index = len(self._kind)
        if index > _MAX_NODE:
            raise MigError(
                f"MIG node limit exceeded: node index {index} does not fit "
                f"the packed strash key's 24-bit child fields (limit 2^23 - 1 "
                f"= {_MAX_NODE} nodes, counting PIs and dead slots). "
                "Compact dead slots with rebuild(), or split the netlist — "
                "see docs/architecture.md."
            )
        self._ca.append(ea)
        self._cb.append(eb)
        self._cc.append(ec)
        self._kind.append(kind)
        return index

    def add_pi(self, name: Optional[str] = None) -> Signal:
        """Append a primary input and return its (plain) signal."""
        if name is None:
            name = f"i{len(self._pi_ids) + 1}"
        if name in self._name_to_pi:
            raise MigError(f"duplicate primary input name {name!r}")
        index = self._new_slot(_PI, -1, -1, -1)
        self._pi_pos[index] = len(self._pi_ids)
        self._pi_ids.append(index)
        self._pi_names.append(name)
        self._name_to_pi[name] = index
        if self._refs is not None:
            self._refs.append(0)
            self._parents.append(set())
            self._order.append((index,))
        if self._levels is not None:
            self._levels.append(0)
        return Signal.make(index)

    def add_maj(self, a: Signal, b: Signal, c: Signal, *, simplify: bool = True) -> Signal:
        """Add (or reuse) a majority gate ``⟨a b c⟩`` and return its signal.

        With ``simplify=True`` (the default) the trivial Ω.M rules are
        applied first, so the result may be one of the inputs rather than a
        fresh gate.  Structural hashing reuses an existing gate with the
        same child set regardless of child order.
        """
        a, b, c = self._check_signal(a), self._check_signal(b), self._check_signal(c)
        if simplify:
            simplified = self._simplify_triple(a, b, c)
            if simplified is not None:
                return simplified
        return Signal(self._add_gate_enc(int(a), int(b), int(c)))

    def add_maj_enc(self, ea: int, eb: int, ec: int, *, simplify: bool = True) -> int:
        """Encoding-level :meth:`add_maj`: child encodings in, encoding out.

        Identical simplify → strash → append behavior, minus the
        :class:`Signal` wrapping and validity checks — the hot entry for
        trusted bulk builders (:meth:`rebuild`, the reorder passes).
        Callers must pass encodings of live nodes of *this* graph.
        """
        if simplify:
            simplified = self._simplify_enc(ea, eb, ec)
            if simplified >= 0:
                return simplified
        return self._add_gate_enc(ea, eb, ec)

    def _add_gate_enc(self, ea: int, eb: int, ec: int) -> int:
        """Strash-or-append of one gate; returns its plain encoding."""
        key = self._pack_key(ea, eb, ec)
        existing = self._strash.get(key)
        if existing is not None:
            return existing << 1
        index = self._new_slot(_GATE, ea, eb, ec)
        self._strash[key] = index
        if self._refs is not None:
            self._refs.append(0)
            self._parents.append(set())
            self._order.append((index,))
            self._shape_version += 1
            for e in (ea, eb, ec):
                self._refs[e >> 1] += 1
                self._parents[e >> 1].add(index)
            self._hist_add_enc(ea, eb, ec)
        if self._levels is not None:
            levels = self._levels
            self._levels.append(
                1 + max(levels[ea >> 1], levels[eb >> 1], levels[ec >> 1])
            )
        return index << 1

    def add_po(self, signal: Signal, name: Optional[str] = None) -> int:
        """Register ``signal`` as a primary output; returns the PO index."""
        signal = self._check_signal(signal)
        if name is None:
            name = f"o{len(self._pos) + 1}"
        self._pos.append(signal)
        self._po_names.append(name)
        if self._refs is not None:
            self._refs[signal.node] += 1
            self._po_of.setdefault(signal.node, []).append(len(self._pos) - 1)
        return len(self._pos) - 1

    def _check_signal(self, signal: Signal) -> Signal:
        if not isinstance(signal, Signal):
            raise MigError(f"expected a Signal, got {signal!r}")
        node = signal.node
        if node >= len(self._kind):
            raise MigError(f"signal {signal!r} refers to a node that does not exist yet")
        if self._kind[node] == _DEAD:
            raise MigError(f"signal {signal!r} refers to a dead (replaced) node")
        return signal

    @staticmethod
    def _simplify_triple(a: Signal, b: Signal, c: Signal) -> Optional[Signal]:
        """Ω.M result of ``⟨a b c⟩`` if it reduces trivially, else ``None``.

        Two equal children decide; a pair of complementary children leaves
        the third.  Same decision order as :meth:`add_maj` always used.
        """
        if a == b or a == c:
            return a
        if b == c:
            return b
        if a == ~b or a == ~c:
            return c if a == ~b else b
        if b == ~c:
            return a
        return None

    @staticmethod
    def _simplify_enc(ea: int, eb: int, ec: int) -> int:
        """Encoding form of :meth:`_simplify_triple`: result or ``-1``.

        Same decision order; pure int arithmetic for the in-place cascade
        hot path (``x == ~y`` over signals is ``ex == ey ^ 1`` over
        encodings).
        """
        if ea == eb or ea == ec:
            return ea
        if eb == ec:
            return eb
        if ea == eb ^ 1:
            return ec
        if ea == ec ^ 1:
            return eb
        if eb == ec ^ 1:
            return ea
        return -1

    @staticmethod
    def _pack_key(ea: int, eb: int, ec: int) -> int:
        """Order-insensitive strash key: three sorted 24-bit encodings
        packed into one int (cheaper to hash and store than a tuple)."""
        if ea > eb:
            ea, eb = eb, ea
        if eb > ec:
            eb, ec = ec, eb
        if ea > eb:
            ea, eb = eb, ea
        return (ea << 48) | (eb << 24) | ec

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def num_pis(self) -> int:
        """Number of primary inputs."""
        return len(self._pi_ids)

    @property
    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self._pos)

    @property
    def num_gates(self) -> int:
        """Number of live majority gates (the paper's #N)."""
        return len(self._kind) - 1 - len(self._pi_ids) - self._num_dead

    def __len__(self) -> int:
        """Total node-slot count including the constant, PIs and tombstones."""
        return len(self._kind)

    def is_const(self, node: int) -> bool:
        """True for the constant-zero node."""
        return node == 0

    def is_pi(self, node: int) -> bool:
        """True for primary-input nodes."""
        return self._kind[node] == _PI

    def is_gate(self, node: int) -> bool:
        """True for majority-gate nodes."""
        return self._kind[node] == _GATE

    def children(self, node: int) -> tuple[Signal, Signal, Signal]:
        """The three child edges of a gate, in stored order."""
        ea = self._ca[node]
        if ea < 0:
            raise MigError(f"node {node} is not a gate")
        return (Signal(ea), Signal(self._cb[node]), Signal(self._cc[node]))

    def is_append_clean(self) -> bool:
        """True when a :meth:`clone` is as good as a :meth:`rebuild`.

        Append-only (no tombstones, index order still topological) and no
        gate trivially reducible under Ω.M — the fast-path test of
        :func:`repro.core.rewriting._private_clean_copy`.
        """
        if self._topo_dirty or self._num_dead:
            return False
        ca, cb, cc = self._ca, self._cb, self._cc
        for v in range(1, len(ca)):
            ea = ca[v]
            if ea < 0:
                continue
            eb, ec = cb[v], cc[v]
            if ea == eb or ea == ec or eb == ec:
                return False
            if ea ^ 1 == eb or ea ^ 1 == ec or eb ^ 1 == ec:
                return False
        return True

    def pis(self) -> list[Signal]:
        """Signals of all primary inputs, in declaration order."""
        return [Signal.make(v) for v in self._pi_ids]

    def pi_names(self) -> list[str]:
        """Names of all primary inputs, in declaration order."""
        return list(self._pi_names)

    def pi_name(self, node: int) -> str:
        """Name of the primary input with node index ``node`` (O(1))."""
        position = self._pi_pos.get(node)
        if position is None:
            raise MigError(f"node {node} is not a primary input")
        return self._pi_names[position]

    def pi_by_name(self, name: str) -> Signal:
        """Signal of the primary input called ``name``."""
        try:
            return Signal.make(self._name_to_pi[name])
        except KeyError:
            raise MigError(f"no primary input named {name!r}") from None

    def pos(self) -> list[Signal]:
        """Primary-output signals, in declaration order."""
        return list(self._pos)

    def po_names(self) -> list[Optional[str]]:
        """Primary-output names, in declaration order."""
        return list(self._po_names)

    def gates(self) -> Iterator[int]:
        """Live gate node indices in index order.

        For an append-only graph this is a topological (creation) order;
        after in-place replacements it may not be — use :meth:`topo_gates`
        when children must be visited before their parents.
        """
        kind = self._kind
        for v in range(1, len(kind)):
            if kind[v] == _GATE:
                yield v

    def topo_gates(self) -> Iterator[int]:
        """Live gate indices in a valid topological order.

        Index order while the graph is append-only (same sequence as
        :meth:`gates`).  After in-place replacements the index order may
        point "backwards", so a stable topological sort is used instead:
        gates come out ordered by their inherited creation-order keys
        (ties by index), subject to children-before-parents — i.e. the
        order a chain of rebuild passes would have created them in.
        """
        if not self._topo_dirty:
            yield from self.gates()
            return
        if self._topo_cache_version != self._shape_version:
            self._topo_cache = self._topo_order()
            self._topo_cache_version = self._shape_version
        yield from self._topo_cache

    def _topo_order(self) -> list[int]:
        """Stable topological sort of the live gates by order key."""
        ca, cb, cc = self._ca, self._cb, self._cc
        order = self._order

        def key(v: int) -> tuple[int, ...]:
            return order[v] if order is not None else (v,)

        result: list[int] = []
        remaining: dict[int, int] = {}
        dependents: dict[int, list[int]] = {}
        heap: list[tuple[tuple[int, ...], int]] = []
        for v in self.gates():
            count = 0
            for e in (ca[v], cb[v], cc[v]):
                child = e >> 1
                if ca[child] >= 0:
                    count += 1
                    dependents.setdefault(child, []).append(v)
            if count == 0:
                heapq.heappush(heap, (key(v), v))
            else:
                remaining[v] = count
        while heap:
            v = heapq.heappop(heap)[1]
            result.append(v)
            for p in dependents.get(v, ()):
                remaining[p] -= 1
                if remaining[p] == 0:
                    del remaining[p]
                    heapq.heappush(heap, (key(p), p))
        return result

    def nodes(self) -> Iterator[int]:
        """All node indices (constant, PIs, gates, tombstones) in creation order."""
        return iter(range(len(self._kind)))

    # ------------------------------------------------------------------
    # in-place rewriting (the engine under the worklist rewriter)
    # ------------------------------------------------------------------

    @property
    def edit_count(self) -> int:
        """Number of in-place structural edits applied so far.

        Grows monotonically; :class:`~repro.mig.context.AnalysisContext`
        snapshots it to detect in-place mutation that does not change the
        node count.
        """
        return self._edit_count

    @property
    def is_inplace(self) -> bool:
        """True once :meth:`enable_inplace` has been called."""
        return self._refs is not None

    def enable_inplace(self) -> None:
        """Switch on incremental parent/reference/histogram maintenance.

        Call once after the graph (including its outputs) is fully built;
        from then on :meth:`add_maj`/:meth:`add_po` keep the structures
        current and :meth:`replace_node` becomes available.  Idempotent.
        """
        if self._refs is not None:
            return
        n = len(self._kind)
        refs = array("q", bytes(8 * n))
        parents: list[set[int]] = [set() for _ in range(n)]
        hist = [0, 0, 0, 0]
        c0_noconst = 0
        ca, cb, cc = self._ca, self._cb, self._cc
        for v in range(1, n):
            ea = ca[v]
            if ea < 0:
                continue
            eb, ec = cb[v], cc[v]
            for e in (ea, eb, ec):
                refs[e >> 1] += 1
                parents[e >> 1].add(v)
            complemented, has_const = self._profile_enc(ea, eb, ec)
            hist[complemented] += 1
            if complemented == 0 and not has_const:
                c0_noconst += 1
        po_of: dict[int, list[int]] = {}
        for index, po in enumerate(self._pos):
            refs[po.node] += 1
            po_of.setdefault(po.node, []).append(index)
        self._refs = refs
        self._parents = parents
        self._po_of = po_of
        self._hist = hist
        self._c0_noconst = c0_noconst
        if self._order is None:
            self._order = [(i,) for i in range(n)]
        else:
            # a clone carried order keys over; keep them (they encode the
            # rebuild-chain positions) and key any newer nodes by index
            self._order.extend((i,) for i in range(len(self._order), n))

    def _require_inplace(self) -> None:
        if self._refs is None:
            raise MigError(
                "this operation needs in-place maintenance; call enable_inplace() first"
            )

    @property
    def has_levels(self) -> bool:
        """True once :meth:`enable_levels` has been called."""
        return self._levels is not None

    def enable_levels(self) -> None:
        """Switch on incremental per-node level maintenance.

        Requires in-place maintenance (:meth:`enable_inplace`).  From then
        on every structural edit updates the topological level of exactly
        the touched cone — :meth:`replace_node` propagates level changes
        only through the ancestors whose level actually moved — so depth
        queries (:meth:`level_of`, :meth:`current_depth`) are O(1) instead
        of a full traversal.  Off by default: pure size rewriting pays
        nothing for the bookkeeping.  Idempotent.
        """
        self._require_inplace()
        if self._levels is not None:
            return
        levels = array("q", bytes(8 * len(self._kind)))
        ca, cb, cc = self._ca, self._cb, self._cc
        for v in self.topo_gates():
            levels[v] = 1 + max(
                levels[ca[v] >> 1], levels[cb[v] >> 1], levels[cc[v] >> 1]
            )
        self._levels = levels

    def level_of(self, node: int) -> int:
        """Topological level of ``node`` (constant and PIs are level 0)."""
        if self._levels is None:
            raise MigError(
                "levels are not maintained; call enable_levels() first"
            )
        return self._levels[node]

    def current_depth(self) -> int:
        """Gate levels on the longest PI→PO path, from maintained levels.

        O(#POs): reads the incrementally maintained level table instead of
        traversing the graph (:func:`repro.mig.analysis.depth` does the
        full traversal for graphs without level maintenance).
        """
        if self._levels is None:
            raise MigError(
                "levels are not maintained; call enable_levels() first"
            )
        if self.num_gates == 0:
            return 0
        levels = self._levels
        if self._pos:
            return max(levels[po.node] for po in self._pos)
        kind = self._kind
        return max(
            levels[v] for v in range(1, len(kind)) if kind[v] == _GATE
        )

    def _propagate_levels(self, start: int) -> None:
        """Recompute levels upward from ``start`` after its children changed.

        Only ancestors whose level actually changes are visited, so the
        cost is bounded by the touched cone, not the graph size.
        """
        levels = self._levels
        if levels is None:
            return
        ca, cb, cc = self._ca, self._cb, self._cc
        stack = [start]
        while stack:
            v = stack.pop()
            ea = ca[v]
            if ea < 0:
                continue
            new_level = 1 + max(
                levels[ea >> 1], levels[cb[v] >> 1], levels[cc[v] >> 1]
            )
            if new_level == levels[v]:
                continue
            levels[v] = new_level
            for p in self._parents[v]:
                if ca[p] >= 0:
                    stack.append(p)

    def fanout_of(self, node: int) -> int:
        """Current reader-edge count (gate children + POs) of ``node``."""
        self._require_inplace()
        return self._refs[node]

    def fanout_snapshot(self) -> list[int]:
        """Copy of all reference counts, indexed by node.

        Worklist phases snapshot fanout once and pattern-match against it —
        the in-place analogue of a rebuild pass computing ``fanout_counts``
        on its input — so speculative helpers and earlier rewrites in the
        same phase do not perturb the single-fanout heuristics.
        """
        self._require_inplace()
        return list(self._refs)

    def parents_of_node(self, node: int) -> tuple[int, ...]:
        """Current live gate parents of ``node`` (each parent once)."""
        self._require_inplace()
        ca = self._ca
        return tuple(p for p in self._parents[node] if ca[p] >= 0)

    def po_edges_of(self, node: int) -> list[Signal]:
        """Primary-output signals currently pointing at ``node``."""
        self._require_inplace()
        return [self._pos[i] for i in self._po_of.get(node, ())]

    def inherit_order(self, node: int, like: int) -> None:
        """Slot ``node`` into ``like``'s position in the creation order.

        Rules call this on the nodes they create so a replacement sits at
        the replaced gate's position in :meth:`topo_gates` — the position a
        rebuild pass would have created it at.  The key is ``like``'s key
        extended by ``node``'s index: nested replacements sort
        lexicographically within the original slot, in creation order.
        """
        self._require_inplace()
        self._order[node] = self._order[like] + (node,)

    def find_maj(self, a: Signal, b: Signal, c: Signal) -> Optional[Signal]:
        """Signal for ``⟨a b c⟩`` if it is free — simplifies trivially or
        structurally hashes to an existing gate — without creating a node."""
        a, b, c = self._check_signal(a), self._check_signal(b), self._check_signal(c)
        simplified = self._simplify_triple(a, b, c)
        if simplified is not None:
            return simplified
        existing = self._strash.get(self._pack_key(int(a), int(b), int(c)))
        if existing is not None:
            return Signal.make(existing)
        return None

    def strash_owner(self, a: Signal, b: Signal, c: Signal) -> Optional[int]:
        """Node currently owning the strash key of ``⟨a b c⟩``, if any."""
        return self._strash.get(self._pack_key(int(a), int(b), int(c)))

    def evict_strash(self, node: int) -> None:
        """Withdraw ``node``'s strash ownership; it stays live.

        The worklist inverter sweep uses this to reproduce a rebuild
        pass's merge order: when a flip's new key collides with a
        not-yet-visited gate, the pass would create the flipped node first
        and merge the other gate into it later — so the stale owner is
        evicted and re-hashed (:meth:`rehash_node`) at its own turn.
        """
        self._require_inplace()
        ea = self._ca[node]
        if ea < 0:
            return
        key = self._pack_key(ea, self._cb[node], self._cc[node])
        if self._strash.get(key) == node:
            del self._strash[key]

    def rehash_node(self, node: int) -> set[int]:
        """Re-insert an evicted gate into the strash, merging if taken.

        Returns the affected set of :meth:`replace_node` when the key is
        now owned by another gate (``node`` is merged into it), else
        re-claims the key and returns an empty set.
        """
        self._require_inplace()
        ea = self._ca[node]
        if ea < 0:
            return set()
        key = self._pack_key(ea, self._cb[node], self._cc[node])
        owner = self._strash.get(key)
        if owner is None:
            self._strash[key] = node
            return set()
        if owner == node:
            return set()
        return self.replace_node(node, Signal.make(owner))

    def inplace_signature(self) -> tuple[int, tuple[int, int, int, int], int]:
        """O(1) structural signature for fixed-point detection.

        ``(live gate count, complemented-child histogram, gates with zero
        complements and no constant child)`` — everything the rewriter's
        instruction estimate needs, maintained incrementally.
        """
        self._require_inplace()
        return (self.num_gates, tuple(self._hist), self._c0_noconst)

    def replace_node(self, old: int, new_signal: Signal) -> set[int]:
        """Redirect every reader of gate ``old`` to ``new_signal``, in place.

        ``new_signal`` must compute the same function as ``old`` (the caller
        asserts this; nothing is checked).  Every parent edge and PO edge of
        ``old`` is rewired (composing polarities), and the consequences
        cascade: a parent whose new child triple trivially simplifies (Ω.M)
        or structurally hashes to an existing gate is itself replaced, and
        cones left without readers are tombstoned.  ``new_signal``'s cone
        must not contain any reader of ``old`` (rules built from ``old``'s
        own fan-in satisfy this by construction).

        Returns the set of nodes whose children changed (the rewired
        parents) — the worklist re-examination candidates.  Replacing a
        node by itself (plain) is a no-op returning the empty set.
        """
        self._require_inplace()
        if not self.is_gate(old):
            raise MigError(f"node {old} is not a live gate")
        new_signal = self._check_signal(new_signal)
        if new_signal.node == old:
            if new_signal.inverted:
                raise MigError(f"cannot replace node {old} by its own complement")
            return set()
        ca, cb, cc = self._ca, self._cb, self._cc
        refs = self._refs
        affected: set[int] = set()
        # queue entries are (old node, replacement encoding)
        queue: list[tuple[int, int]] = [(old, int(new_signal))]
        # Every queued replacement target is pinned with an artificial
        # reference: a sibling cascade branch may otherwise retire it
        # before its entry is processed, and readers would be redirected
        # to a tombstone.
        refs[new_signal.node] += 1
        while queue:
            o, ns = queue.pop()
            ns_node = ns >> 1
            refs[ns_node] -= 1  # release the pin
            if ca[o] < 0 or ns_node == o:
                # the replaced node was already retired by an earlier
                # cascade step; if the pin was the replacement's last
                # reference, nothing can reach it anymore either
                if refs[ns_node] == 0 and ca[ns_node] >= 0:
                    self._kill(ns_node)
                continue
            for po_index in self._po_of.pop(o, ()):
                po = int(self._pos[po_index])
                self._pos[po_index] = Signal(ns ^ (po & 1))
                refs[o] -= 1
                refs[ns_node] += 1
                self._po_of.setdefault(ns_node, []).append(po_index)
            for p in list(self._parents[o]):
                ea = ca[p]
                if ea < 0:  # retired earlier in the cascade
                    continue
                eb, ec = cb[p], cc[p]
                na = ns ^ (ea & 1) if ea >> 1 == o else ea
                nb = ns ^ (eb & 1) if eb >> 1 == o else eb
                nc = ns ^ (ec & 1) if ec >> 1 == o else ec
                collapse = self._rewire_enc(p, na, nb, nc)
                affected.add(p)
                if collapse >= 0:
                    queue.append((p, collapse))
                    refs[collapse >> 1] += 1  # pin until processed
            self._topo_dirty = True
            self._edit_count += 1
            if refs[o] == 0:
                self._kill(o)
        return affected

    def reorder_children(self, node: int, triple: tuple[Signal, Signal, Signal]) -> None:
        """Store gate ``node``'s children in a new order, in place.

        ``triple`` must be a permutation of the current children (the strash
        key is order-insensitive, so nothing else changes); the stored order
        is what child-order translators consume (Ω.C).
        """
        self._require_inplace()
        ea = self._ca[node]
        if ea < 0:
            raise MigError(f"node {node} is not a live gate")
        current = (ea, self._cb[node], self._cc[node])
        na, nb, nc = int(triple[0]), int(triple[1]), int(triple[2])
        if (na, nb, nc) == current:
            return
        if sorted((na, nb, nc)) != sorted(current):
            raise MigError("reorder_children requires a permutation of the children")
        self._ca[node] = na
        self._cb[node] = nb
        self._cc[node] = nc
        self._edit_count += 1

    def release_if_dead(self, node: int) -> None:
        """Tombstone ``node`` (and its now-unused cone) if nothing reads it.

        Rules use this to sweep a helper gate they created speculatively
        when the enclosing rewrite simplified past it.
        """
        self._require_inplace()
        if self._kind[node] == _GATE and self._refs[node] == 0:
            self._kill(node)

    def collect_unused(self) -> int:
        """Tombstone every live gate that nothing reads; returns the count.

        Speculative gates a rule created but did not commit (they stay in
        the strash so later pattern checks can share them, exactly like the
        abandoned gates of a rebuild pass) are swept here at phase
        boundaries — the in-place analogue of a pass's trailing rebuild.
        """
        self._require_inplace()
        before = self._num_dead
        kind = self._kind
        refs = self._refs
        for v in range(1, len(kind)):
            if kind[v] == _GATE and refs[v] == 0:
                self._kill(v)
        return self._num_dead - before

    def _rewire_enc(self, p: int, na: int, nb: int, nc: int) -> int:
        """Physically set ``p``'s children to the encoded triple.

        Maintains strash, refs, parents and the histogram.  Returns the
        encoding ``p`` collapses to when the new triple simplifies
        trivially or hashes to another gate (the caller must then replace
        ``p``), or ``-1`` when ``p`` stays.
        """
        ca, cb, cc = self._ca, self._cb, self._cc
        ea, eb, ec = ca[p], cb[p], cc[p]
        if (na, nb, nc) == (ea, eb, ec):
            return -1
        strash = self._strash
        old_key = self._pack_key(ea, eb, ec)
        if strash.get(old_key) == p:
            del strash[old_key]
        refs = self._refs
        parents = self._parents
        old_nodes = (ea >> 1, eb >> 1, ec >> 1)
        new_nodes = (na >> 1, nb >> 1, nc >> 1)
        for u in old_nodes:
            refs[u] -= 1
        for u in new_nodes:
            refs[u] += 1
        old_set, new_set = set(old_nodes), set(new_nodes)
        for u in old_set - new_set:
            parents[u].discard(p)
        for u in new_set - old_set:
            parents[u].add(p)
        self._hist_remove_enc(ea, eb, ec)
        self._hist_add_enc(na, nb, nc)
        ca[p] = na
        cb[p] = nb
        cc[p] = nc
        self._edit_count += 1
        self._shape_version += 1
        if self._levels is not None:
            self._propagate_levels(p)
        collapse = self._simplify_enc(na, nb, nc)
        if collapse >= 0:
            return collapse
        key = self._pack_key(na, nb, nc)
        existing = strash.get(key)
        if existing is not None and existing != p:
            return existing << 1
        strash[key] = p
        return -1

    def _kill(self, node: int) -> None:
        """Tombstone ``node`` and, recursively, children left without readers."""
        ca, cb, cc = self._ca, self._cb, self._cc
        kind = self._kind
        refs = self._refs
        parents = self._parents
        strash = self._strash
        stack = [node]
        while stack:
            u = stack.pop()
            ea = ca[u]
            if ea < 0 or refs[u] != 0:
                continue
            eb, ec = cb[u], cc[u]
            key = self._pack_key(ea, eb, ec)
            if strash.get(key) == u:
                del strash[key]
            self._hist_remove_enc(ea, eb, ec)
            ca[u] = cb[u] = cc[u] = -1
            kind[u] = _DEAD
            self._num_dead += 1
            parents[u].clear()
            self._edit_count += 1
            self._shape_version += 1
            for e in (ea, eb, ec):
                n = e >> 1
                refs[n] -= 1
                parents[n].discard(u)
                if refs[n] == 0 and ca[n] >= 0:
                    stack.append(n)

    @staticmethod
    def _triple_profile(
        triple: tuple[Signal, Signal, Signal],
    ) -> tuple[int, bool]:
        """``(complemented non-constant children, has a constant child)``."""
        complemented = 0
        has_const = False
        for s in triple:
            if s.node == 0:
                has_const = True
            elif int(s) & 1:
                complemented += 1
        return complemented, has_const

    @staticmethod
    def _profile_enc(ea: int, eb: int, ec: int) -> tuple[int, bool]:
        """Encoding form of :meth:`_triple_profile` (constant = node 0,
        i.e. encoding below 2)."""
        complemented = 0
        has_const = False
        for e in (ea, eb, ec):
            if e < 2:
                has_const = True
            elif e & 1:
                complemented += 1
        return complemented, has_const

    def _hist_add_enc(self, ea: int, eb: int, ec: int) -> None:
        if self._hist is None:
            return
        complemented, has_const = self._profile_enc(ea, eb, ec)
        self._hist[complemented] += 1
        if complemented == 0 and not has_const:
            self._c0_noconst += 1

    def _hist_remove_enc(self, ea: int, eb: int, ec: int) -> None:
        if self._hist is None:
            return
        complemented, has_const = self._profile_enc(ea, eb, ec)
        self._hist[complemented] -= 1
        if complemented == 0 and not has_const:
            self._c0_noconst -= 1

    # ------------------------------------------------------------------
    # rebuilding (the engine under cleanup and all rewriting passes)
    # ------------------------------------------------------------------

    def rebuild(
        self,
        gate_fn: Optional[Callable[["Mig", int, tuple[Signal, Signal, Signal]], Signal]] = None,
        keep_dead: bool = False,
    ) -> tuple["Mig", dict[int, Signal]]:
        """Copy this MIG into a fresh one, applying ``gate_fn`` per gate.

        ``gate_fn(new_mig, old_node, mapped_children)`` must return the
        signal in ``new_mig`` that represents ``old_node``'s function — it
        may create nodes, reuse existing ones, or return a complemented
        signal (phase changes are how inverter propagation is expressed).
        The default rebuilds each gate with ``add_maj`` (which resimplifies
        and re-hashes, so a plain rebuild is already a cleanup pass).

        Only gates in the transitive fan-in of the outputs are visited
        unless ``keep_dead`` is true.  Returns the new MIG and a map from
        old node index to new signal.  After in-place rewriting the gates
        are visited in :meth:`topo_gates` order (``keep_dead`` is
        unsupported then, since unreachable gates have no defined order).
        """
        if keep_dead and self._topo_dirty:
            raise MigError("keep_dead is unsupported after in-place rewriting")
        new = Mig(name=self.name)
        mapping: dict[int, Signal] = {0: Signal.CONST0}
        for node, name in zip(self._pi_ids, self._pi_names):
            mapping[node] = new.add_pi(name)
        live = self._live_set() if not keep_dead else None
        ca, cb, cc = self._ca, self._cb, self._cc
        if gate_fn is None:
            # Hot path (cleanup): carry the map as raw encodings and append
            # through add_maj_enc — same simplify/strash decisions, no
            # Signal churn per gate.
            enc_map: dict[int, int] = {n: int(s) for n, s in mapping.items()}
            add_enc = new.add_maj_enc
            for v in self.topo_gates():
                if live is not None and v not in live:
                    continue
                ea, eb, ec = ca[v], cb[v], cc[v]
                enc_map[v] = add_enc(
                    enc_map[ea >> 1] ^ (ea & 1),
                    enc_map[eb >> 1] ^ (eb & 1),
                    enc_map[ec >> 1] ^ (ec & 1),
                )
            for po, name in zip(self._pos, self._po_names):
                new.add_po(Signal(enc_map[po.node] ^ po.inverted), name)
            return new, {n: Signal(e) for n, e in enc_map.items()}
        for v in self.topo_gates():
            if live is not None and v not in live:
                continue
            ea, eb, ec = ca[v], cb[v], cc[v]
            mapped = (
                Signal(int(mapping[ea >> 1]) ^ (ea & 1)),
                Signal(int(mapping[eb >> 1]) ^ (eb & 1)),
                Signal(int(mapping[ec >> 1]) ^ (ec & 1)),
            )
            mapping[v] = gate_fn(new, v, mapped)
        for po, name in zip(self._pos, self._po_names):
            new.add_po(mapping[po.node].xor_inversion(po.inverted), name)
        return new, mapping

    def _live_set(self) -> set[int]:
        """Gates reachable from the primary outputs."""
        ca, cb, cc = self._ca, self._cb, self._cc
        live: set[int] = set()
        stack = [po.node for po in self._pos if ca[po.node] >= 0]
        while stack:
            v = stack.pop()
            if v in live:
                continue
            live.add(v)
            for e in (ca[v], cb[v], cc[v]):
                child = e >> 1
                if ca[child] >= 0 and child not in live:
                    stack.append(child)
        return live

    def cleanup(self) -> tuple["Mig", dict[int, Signal]]:
        """Remove dead gates and re-hash; returns (new MIG, node map)."""
        return self.rebuild()

    def clone(self) -> "Mig":
        """Deep copy preserving node indices (including dead gates).

        The clone starts without in-place maintenance (call
        :meth:`enable_inplace` on it again if needed); tombstones, the
        edit counter and the index-order flag carry over.
        """
        new = Mig(name=self.name)
        new._ca = self._ca[:]
        new._cb = self._cb[:]
        new._cc = self._cc[:]
        new._kind = bytearray(self._kind)
        new._num_dead = self._num_dead
        new._pi_ids = list(self._pi_ids)
        new._pi_names = list(self._pi_names)
        new._name_to_pi = dict(self._name_to_pi)
        new._pi_pos = dict(self._pi_pos)
        new._pos = list(self._pos)
        new._po_names = list(self._po_names)
        new._strash = dict(self._strash)
        new._edit_count = self._edit_count
        new._topo_dirty = self._topo_dirty
        # order keys travel with the clone so its topo_gates sequence
        # matches the original's even though in-place maintenance resets
        new._order = list(self._order) if self._order is not None else None
        return new

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Canonical structural content hash of the graph and its interface.

        A SHA-256 hex digest over the PI names (in declaration order), the
        PO names, and a Merkle-style structural key per primary output
        (:func:`~repro.mig.algebra.structural_keys` — a gate's key hashes
        the *sorted* ``(child key, polarity)`` pairs, so each PO key pins
        down its whole reachable cone), plus the reachable live-gate count.
        The digest is therefore invariant under gate-creation order, stored
        child order, tombstones and unreachable cones — two strash-equivalent
        builds of the same circuit fingerprint identically — while any
        change to the computed functions, the PI/PO interface, or an output
        polarity changes it.

        This is the content address :class:`~repro.core.cache.SynthesisCache`
        keys rewriting results on.  Per-node keys use Python's integer
        hashing (stable across processes; a Python upgrade merely turns
        disk-cache hits into misses).

        Example — rebuilding the same circuit fingerprints identically,
        flipping an output polarity does not:

            >>> from repro.mig.graph import Mig
            >>> def build(flip):
            ...     m = Mig()
            ...     a, b, c = m.add_pi("a"), m.add_pi("b"), m.add_pi("c")
            ...     g = m.add_maj(a, b, c)
            ...     _ = m.add_po(~g if flip else g, "f")
            ...     return m
            >>> build(False).fingerprint() == build(False).fingerprint()
            True
            >>> build(False).fingerprint() == build(True).fingerprint()
            False
        """
        # Local import: algebra imports this module at load time.
        from repro.mig.algebra import structural_keys

        keys = structural_keys(self)
        payload = (
            tuple(self._pi_names),
            tuple(self._po_names),
            tuple((keys[po.node], int(po) & 1) for po in self._pos),
            len(self._live_set()),
        )
        return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()

    def signal_name(self, signal: Signal) -> str:
        """Readable name for a signal (used by listings and dot output)."""
        prefix = "~" if signal.inverted else ""
        if signal.is_const:
            return str(signal.const_value)
        if self.is_pi(signal.node):
            return prefix + self.pi_name(signal.node)
        return f"{prefix}n{signal.node}"

    def to_dot(self) -> str:
        """Graphviz dot rendering (complemented edges drawn dashed)."""
        lines = ["digraph mig {", "  rankdir=BT;"]
        lines.append('  n0 [label="0", shape=box];')
        for node, name in zip(self._pi_ids, self._pi_names):
            lines.append(f'  n{node} [label="{name}", shape=triangle];')
        for v in self.gates():
            lines.append(f'  n{v} [label="MAJ {v}", shape=ellipse];')
            for child in self.children(v):
                style = ", style=dashed" if child.inverted else ""
                lines.append(f"  n{child.node} -> n{v} [arrowhead=none{style}];")
        for index, (po, name) in enumerate(zip(self._pos, self._po_names)):
            label = name or f"po{index}"
            lines.append(f'  po{index} [label="{label}", shape=invtriangle];')
            style = ", style=dashed" if po.inverted else ""
            lines.append(f"  n{po.node} -> po{index} [arrowhead=none{style}];")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"<Mig{name}: {self.num_pis} PIs, {self.num_pos} POs, "
            f"{self.num_gates} gates>"
        )
