"""The Majority-Inverter Graph data structure.

An :class:`Mig` is a DAG with three kinds of nodes:

* the constant-zero node (always index 0);
* primary inputs (no children);
* majority gates with exactly three child edges, each optionally
  complemented (:class:`~repro.mig.signal.Signal`).

Outputs are a list of signals.  Gates are created strictly after their
children, so node indices are already a topological order — every traversal
in this package relies on that invariant.

Structural hashing (strash) is performed on the *sorted* child triple, which
makes node sharing insensitive to commutativity (Ω.C), while the child order
given at construction time is preserved for storage.  The stored order
matters: the paper's naïve translator picks RM3 operands "in order of their
children (from left to right)", so builders control what naïve compilation
sees.

Trivial majority simplifications (Ω.M: ``⟨x x z⟩ = x``, ``⟨x x̄ z⟩ = z``) are
applied on construction unless ``simplify=False`` is passed, which tests and
the algebra module use to create reducible nodes on purpose.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.errors import MigError
from repro.mig.signal import Signal


class Mig:
    """A majority-inverter graph with named primary inputs and outputs."""

    def __init__(self, name: Optional[str] = None):
        self.name = name
        # _children[v] is None for the constant and for PIs, otherwise a
        # 3-tuple of Signals in the order the builder supplied them.
        self._children: list[Optional[tuple[Signal, Signal, Signal]]] = [None]
        self._pi_ids: list[int] = []
        self._pi_names: list[str] = []
        self._name_to_pi: dict[str, int] = {}
        self._pos: list[Signal] = []
        self._po_names: list[Optional[str]] = []
        self._strash: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_pi(self, name: Optional[str] = None) -> Signal:
        """Append a primary input and return its (plain) signal."""
        index = len(self._children)
        if name is None:
            name = f"i{len(self._pi_ids) + 1}"
        if name in self._name_to_pi:
            raise MigError(f"duplicate primary input name {name!r}")
        self._children.append(None)
        self._pi_ids.append(index)
        self._pi_names.append(name)
        self._name_to_pi[name] = index
        return Signal.make(index)

    def add_maj(self, a: Signal, b: Signal, c: Signal, *, simplify: bool = True) -> Signal:
        """Add (or reuse) a majority gate ``⟨a b c⟩`` and return its signal.

        With ``simplify=True`` (the default) the trivial Ω.M rules are
        applied first, so the result may be one of the inputs rather than a
        fresh gate.  Structural hashing reuses an existing gate with the
        same child set regardless of child order.
        """
        a, b, c = self._check_signal(a), self._check_signal(b), self._check_signal(c)
        if simplify:
            # Ω.M: two equal children decide; a pair of complementary
            # children leaves the third.
            if a == b or a == c:
                return a
            if b == c:
                return b
            if a == ~b or a == ~c:
                return c if a == ~b else b
            if b == ~c:
                return a
        key = self._strash_key(a, b, c)
        existing = self._strash.get(key)
        if existing is not None:
            return Signal.make(existing)
        index = len(self._children)
        self._children.append((a, b, c))
        self._strash[key] = index
        return Signal.make(index)

    def add_po(self, signal: Signal, name: Optional[str] = None) -> int:
        """Register ``signal`` as a primary output; returns the PO index."""
        signal = self._check_signal(signal)
        if name is None:
            name = f"o{len(self._pos) + 1}"
        self._pos.append(signal)
        self._po_names.append(name)
        return len(self._pos) - 1

    def _check_signal(self, signal: Signal) -> Signal:
        if not isinstance(signal, Signal):
            raise MigError(f"expected a Signal, got {signal!r}")
        if signal.node >= len(self._children):
            raise MigError(f"signal {signal!r} refers to a node that does not exist yet")
        return signal

    @staticmethod
    def _strash_key(a: Signal, b: Signal, c: Signal) -> tuple[int, int, int]:
        x, y, z = sorted((int(a), int(b), int(c)))
        return (x, y, z)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def num_pis(self) -> int:
        """Number of primary inputs."""
        return len(self._pi_ids)

    @property
    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self._pos)

    @property
    def num_gates(self) -> int:
        """Number of majority gates (the paper's #N)."""
        return len(self._children) - 1 - len(self._pi_ids)

    def __len__(self) -> int:
        """Total node count including the constant and the PIs."""
        return len(self._children)

    def is_const(self, node: int) -> bool:
        """True for the constant-zero node."""
        return node == 0

    def is_pi(self, node: int) -> bool:
        """True for primary-input nodes."""
        return node != 0 and self._children[node] is None

    def is_gate(self, node: int) -> bool:
        """True for majority-gate nodes."""
        return self._children[node] is not None

    def children(self, node: int) -> tuple[Signal, Signal, Signal]:
        """The three child edges of a gate, in stored order."""
        triple = self._children[node]
        if triple is None:
            raise MigError(f"node {node} is not a gate")
        return triple

    def pis(self) -> list[Signal]:
        """Signals of all primary inputs, in declaration order."""
        return [Signal.make(v) for v in self._pi_ids]

    def pi_names(self) -> list[str]:
        """Names of all primary inputs, in declaration order."""
        return list(self._pi_names)

    def pi_name(self, node: int) -> str:
        """Name of the primary input with node index ``node``."""
        if not self.is_pi(node):
            raise MigError(f"node {node} is not a primary input")
        return self._pi_names[self._pi_ids.index(node)]

    def pi_by_name(self, name: str) -> Signal:
        """Signal of the primary input called ``name``."""
        try:
            return Signal.make(self._name_to_pi[name])
        except KeyError:
            raise MigError(f"no primary input named {name!r}") from None

    def pos(self) -> list[Signal]:
        """Primary-output signals, in declaration order."""
        return list(self._pos)

    def po_names(self) -> list[Optional[str]]:
        """Primary-output names, in declaration order."""
        return list(self._po_names)

    def gates(self) -> Iterator[int]:
        """Gate node indices in topological (creation) order."""
        for v in range(1, len(self._children)):
            if self._children[v] is not None:
                yield v

    def nodes(self) -> Iterator[int]:
        """All node indices (constant, PIs, gates) in creation order."""
        return iter(range(len(self._children)))

    # ------------------------------------------------------------------
    # rebuilding (the engine under cleanup and all rewriting passes)
    # ------------------------------------------------------------------

    def rebuild(
        self,
        gate_fn: Optional[Callable[["Mig", int, tuple[Signal, Signal, Signal]], Signal]] = None,
        keep_dead: bool = False,
    ) -> tuple["Mig", dict[int, Signal]]:
        """Copy this MIG into a fresh one, applying ``gate_fn`` per gate.

        ``gate_fn(new_mig, old_node, mapped_children)`` must return the
        signal in ``new_mig`` that represents ``old_node``'s function — it
        may create nodes, reuse existing ones, or return a complemented
        signal (phase changes are how inverter propagation is expressed).
        The default rebuilds each gate with ``add_maj`` (which resimplifies
        and re-hashes, so a plain rebuild is already a cleanup pass).

        Only gates in the transitive fan-in of the outputs are visited
        unless ``keep_dead`` is true.  Returns the new MIG and a map from
        old node index to new signal.
        """
        new = Mig(name=self.name)
        mapping: dict[int, Signal] = {0: Signal.CONST0}
        for node, name in zip(self._pi_ids, self._pi_names):
            mapping[node] = new.add_pi(name)
        live = self._live_set() if not keep_dead else None
        for v in self.gates():
            if live is not None and v not in live:
                continue
            a, b, c = self._children[v]
            mapped = (
                mapping[a.node].xor_inversion(a.inverted),
                mapping[b.node].xor_inversion(b.inverted),
                mapping[c.node].xor_inversion(c.inverted),
            )
            if gate_fn is None:
                mapping[v] = new.add_maj(*mapped)
            else:
                mapping[v] = gate_fn(new, v, mapped)
        for po, name in zip(self._pos, self._po_names):
            new.add_po(mapping[po.node].xor_inversion(po.inverted), name)
        return new, mapping

    def _live_set(self) -> set[int]:
        """Gates reachable from the primary outputs."""
        live: set[int] = set()
        stack = [po.node for po in self._pos if self.is_gate(po.node)]
        while stack:
            v = stack.pop()
            if v in live:
                continue
            live.add(v)
            for child in self._children[v]:
                if self.is_gate(child.node) and child.node not in live:
                    stack.append(child.node)
        return live

    def cleanup(self) -> tuple["Mig", dict[int, Signal]]:
        """Remove dead gates and re-hash; returns (new MIG, node map)."""
        return self.rebuild()

    def clone(self) -> "Mig":
        """Deep copy preserving node indices (including dead gates)."""
        new = Mig(name=self.name)
        new._children = list(self._children)
        new._pi_ids = list(self._pi_ids)
        new._pi_names = list(self._pi_names)
        new._name_to_pi = dict(self._name_to_pi)
        new._pos = list(self._pos)
        new._po_names = list(self._po_names)
        new._strash = dict(self._strash)
        return new

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def signal_name(self, signal: Signal) -> str:
        """Readable name for a signal (used by listings and dot output)."""
        prefix = "~" if signal.inverted else ""
        if signal.is_const:
            return str(signal.const_value)
        if self.is_pi(signal.node):
            return prefix + self.pi_name(signal.node)
        return f"{prefix}n{signal.node}"

    def to_dot(self) -> str:
        """Graphviz dot rendering (complemented edges drawn dashed)."""
        lines = ["digraph mig {", "  rankdir=BT;"]
        lines.append('  n0 [label="0", shape=box];')
        for node, name in zip(self._pi_ids, self._pi_names):
            lines.append(f'  n{node} [label="{name}", shape=triangle];')
        for v in self.gates():
            lines.append(f'  n{v} [label="MAJ {v}", shape=ellipse];')
            for child in self.children(v):
                style = ", style=dashed" if child.inverted else ""
                lines.append(f"  n{child.node} -> n{v} [arrowhead=none{style}];")
        for index, (po, name) in enumerate(zip(self._pos, self._po_names)):
            label = name or f"po{index}"
            lines.append(f'  po{index} [label="{label}", shape=invtriangle];')
            style = ", style=dashed" if po.inverted else ""
            lines.append(f"  n{po.node} -> po{index} [arrowhead=none{style}];")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"<Mig{name}: {self.num_pis} PIs, {self.num_pos} POs, "
            f"{self.num_gates} gates>"
        )
