"""BLIF (Berkeley Logic Interchange Format) subset reader/writer.

The reader accepts combinational BLIF: ``.model``, ``.inputs``,
``.outputs``, ``.names`` (single-output cover tables with ``0/1/-`` input
plane and on-set/off-set output), and ``.end``.  Covers are converted to
sum-of-products over MIG AND/OR nodes (the AOIG-style transposition the
paper starts from).  Latches and hierarchy are not supported — the EPFL
suite and this package are purely combinational.

The writer emits one ``.names`` per majority gate using the majority
function's 6-row cover, which any BLIF consumer (ABC, SIS) accepts.
"""

from __future__ import annotations

from typing import Optional, TextIO

from repro.errors import ParseError
from repro.mig.build import LogicBuilder
from repro.mig.graph import Mig
from repro.mig.signal import Signal


def read_blif(path_or_file) -> Mig:
    """Parse a combinational BLIF file into an MIG."""
    if hasattr(path_or_file, "read"):
        return _read(path_or_file)
    with open(path_or_file, "r", encoding="utf-8") as handle:
        return _read(handle)


def _logical_lines(handle: TextIO):
    """BLIF line continuation (trailing backslash) and comment stripping."""
    buffer = ""
    for lineno, raw in enumerate(handle, start=1):
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            buffer += line[:-1] + " "
            continue
        if buffer:
            line = buffer + line
            buffer = ""
        if line.strip():
            yield lineno, line.strip()


def _read(handle: TextIO) -> Mig:
    builder: Optional[LogicBuilder] = None
    signals: dict[str, Signal] = {}
    outputs: list[str] = []
    pending: list[tuple[int, str, list[str], list[tuple[str, str]]]] = []
    current: Optional[tuple[int, str, list[str], list[tuple[str, str]]]] = None

    for lineno, line in _logical_lines(handle):
        if line.startswith(".model"):
            builder = LogicBuilder(name=line[6:].strip() or None)
        elif line.startswith(".inputs"):
            if builder is None:
                raise ParseError(".inputs before .model", lineno)
            for name in line.split()[1:]:
                signals[name] = builder.input(name)
        elif line.startswith(".outputs"):
            outputs.extend(line.split()[1:])
        elif line.startswith(".names"):
            names = line.split()[1:]
            if not names:
                raise ParseError(".names needs at least an output", lineno)
            current = (lineno, names[-1], names[:-1], [])
            pending.append(current)
        elif line.startswith(".latch"):
            raise ParseError("sequential BLIF (.latch) is not supported", lineno)
        elif line.startswith(".end"):
            break
        elif line.startswith("."):
            raise ParseError(f"unsupported BLIF construct {line.split()[0]!r}", lineno)
        else:
            if current is None:
                raise ParseError(f"cover row outside .names: {line!r}", lineno)
            parts = line.split()
            if len(parts) == 1 and not current[2]:
                parts = ["", parts[0]]
            if len(parts) != 2:
                raise ParseError(f"malformed cover row {line!r}", lineno)
            current[3].append((parts[0], parts[1]))

    if builder is None:
        raise ParseError("no .model found")

    # Resolve .names tables in dependency order (they may be out of order).
    remaining = list(pending)
    progress = True
    while remaining and progress:
        progress = False
        still = []
        for item in remaining:
            lineno, out_name, in_names, rows = item
            if all(n in signals for n in in_names):
                signals[out_name] = _cover_to_mig(builder, [signals[n] for n in in_names], rows, lineno)
                progress = True
            else:
                still.append(item)
        remaining = still
    if remaining:
        missing = sorted({n for _, _, ins, _ in remaining for n in ins if n not in signals})
        raise ParseError(f"undefined signals {missing[:5]} (cyclic or incomplete netlist)")

    for name in outputs:
        if name not in signals:
            raise ParseError(f"output {name!r} has no driver")
        builder.output(signals[name], name)
    return builder.mig


def _cover_to_mig(builder, inputs, rows, lineno) -> Signal:
    """Sum-of-products (or complemented SOP for off-set covers)."""
    if not rows:
        return builder.const(0)
    polarities = {value for _, value in rows}
    if len(polarities) != 1:
        raise ParseError("mixed on-set/off-set cover", lineno)
    polarity = polarities.pop()
    if polarity not in ("0", "1"):
        raise ParseError(f"invalid cover output {polarity!r}", lineno)
    cubes = []
    for plane, _ in rows:
        if len(plane) != len(inputs):
            raise ParseError(
                f"cover row width {len(plane)} does not match {len(inputs)} inputs", lineno
            )
        literals = []
        for char, signal in zip(plane, inputs):
            if char == "1":
                literals.append(signal)
            elif char == "0":
                literals.append(~signal)
            elif char != "-":
                raise ParseError(f"invalid cover character {char!r}", lineno)
        cubes.append(builder.and_reduce(literals))
    result = builder.or_reduce(cubes)
    return result if polarity == "1" else ~result


def write_blif(mig: Mig, path_or_file) -> None:
    """Serialize ``mig`` as BLIF (one majority cover per gate)."""
    if hasattr(path_or_file, "write"):
        _write(mig, path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            _write(mig, handle)


_MAJ_ON_SET = ("11-", "1-1", "-11")


def _write(mig: Mig, out: TextIO) -> None:
    out.write(f".model {mig.name or 'mig'}\n")
    if mig.num_pis:
        out.write(".inputs " + " ".join(mig.pi_names()) + "\n")
    out.write(".outputs " + " ".join(n or f"po{i}" for i, n in enumerate(mig.po_names())) + "\n")
    out.write(".names const0\n")  # constant-zero driver: empty cover = 0

    def wire(signal: Signal) -> str:
        """Wire name delivering `signal` (negations become inverter tables)."""
        if signal.is_const:
            if signal.const_value == 0:
                return "const0"
            inverters.add(("const0", "const1"))
            return "const1"
        base = mig.pi_name(signal.node) if mig.is_pi(signal.node) else f"n{signal.node}"
        if not signal.inverted:
            return base
        inverters.add((base, base + "_bar"))
        return base + "_bar"

    inverters: set[tuple[str, str]] = set()
    body: list[str] = []
    for v in mig.gates():
        names = [wire(s) for s in mig.children(v)]
        body.append(f".names {names[0]} {names[1]} {names[2]} n{v}")
        body.extend(f"{row} 1" for row in _MAJ_ON_SET)
    for po, name in zip(mig.pos(), mig.po_names()):
        driver = wire(po)
        body.append(f".names {driver} {name}")
        body.append("1 1")
    for source, target in sorted(inverters):
        body.append(f".names {source} {target}")
        body.append("0 1")
    out.write("\n".join(body) + "\n.end\n")
