"""Cached structural analyses of one MIG snapshot.

Every compilation needs the same per-graph measurements — gate parents,
topological levels, fanout, initial use counts — and several compiler
configurations additionally need the *cleaned* (dead gates dropped) and
*DFS-reordered* images of the graph.  Before this module existed, each
``PlimCompiler.compile`` call recomputed all of them from scratch, so
sweeping one MIG through N option sets (Table 1, the ablations, any
iterative synthesis loop) paid N× for analyses that never change.

:class:`AnalysisContext` is the fix: a lazy, memoizing view over one MIG.
Each analysis is computed at most once per context, and derived graphs
(cleanup, DFS reorder) come back *as contexts* with their own caches, so
one source MIG compiled under any number of option sets pays for each
analysis once per distinct node order.

The cache is keyed to an immutable snapshot: the context records the node
and output counts *and the in-place edit counter* at creation time and
refuses to serve a graph that has grown or been rewritten in place since
(:class:`~repro.errors.MigError`) — :meth:`~repro.mig.graph.Mig.replace_node`
edits that merge nodes without changing the node count are still caught.
Treat a context-held MIG as frozen — build and rewrite first, analyse
after.

Cached dict/tuple results are shared, not copied; callers must not mutate
them.  The one per-compilation *mutable* table, the remaining-use counts,
is handed out as a fresh copy by :meth:`AnalysisContext.fresh_uses`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MigError
from repro.mig import analysis
from repro.mig.graph import Mig
from repro.mig.reorder import reorder_dfs


class AnalysisContext:
    """Lazily computed, cached structural analyses of one MIG.

    ::

        ctx = AnalysisContext(mig)
        ctx.parents      # == analysis.parents_of(mig), computed once
        ctx.levels       # == analysis.levels(mig), computed once
        ctx.cleaned()    # AnalysisContext over mig.cleanup()[0], cached
        ctx.reordered_dfs()  # AnalysisContext over reorder_dfs(mig), cached

    Pass the same context to repeated ``PlimCompiler.compile(mig, context=ctx)``
    calls (or let :func:`repro.core.batch.compile_many` do it) to amortize
    the analyses across option sets.
    """

    def __init__(self, mig: Mig):
        self._mig = mig
        self._num_nodes = len(mig)
        self._num_pos = mig.num_pos
        self._edit_count = mig.edit_count
        self._parents: Optional[dict[int, list[int]]] = None
        self._levels: Optional[dict[int, int]] = None
        self._fanout: Optional[dict[int, int]] = None
        self._uses: Optional[dict[int, int]] = None
        self._gate_order: Optional[tuple[int, ...]] = None
        self._cleaned: Optional["AnalysisContext"] = None
        self._dfs: Optional["AnalysisContext"] = None

    @classmethod
    def of(cls, mig: Mig, context: Optional["AnalysisContext"] = None) -> "AnalysisContext":
        """``context`` if it wraps ``mig``, else a fresh context for it."""
        if context is not None and context.mig is mig:
            return context
        return cls(mig)

    @property
    def mig(self) -> Mig:
        """The analysed graph (do not grow it while the context is live)."""
        return self._mig

    def _check_current(self) -> None:
        if (
            len(self._mig) != self._num_nodes
            or self._mig.num_pos != self._num_pos
            or self._mig.edit_count != self._edit_count
        ):
            raise MigError(
                "AnalysisContext is stale: the MIG grew or was rewritten in "
                "place after the context was created; build and rewrite the "
                "graph first, then analyse it"
            )

    # ------------------------------------------------------------------
    # per-order analyses (each computed at most once)
    # ------------------------------------------------------------------

    @property
    def parents(self) -> dict[int, list[int]]:
        """Gate parents of every node (``analysis.parents_of``)."""
        self._check_current()
        if self._parents is None:
            self._parents = analysis.parents_of(self._mig)
        return self._parents

    @property
    def levels(self) -> dict[int, int]:
        """Topological level of every node (``analysis.levels``)."""
        self._check_current()
        if self._levels is None:
            self._levels = analysis.levels(self._mig)
        return self._levels

    @property
    def fanout(self) -> dict[int, int]:
        """Reader edges per node (``analysis.fanout_counts``)."""
        self._check_current()
        if self._fanout is None:
            self._fanout = analysis.fanout_counts(self._mig)
        return self._fanout

    @property
    def use_counts(self) -> dict[int, int]:
        """Initial reference counts (``analysis.use_counts``); shared, read-only."""
        self._check_current()
        if self._uses is None:
            self._uses = analysis.use_counts(self._mig)
        return self._uses

    def fresh_uses(self) -> dict[int, int]:
        """A mutable copy of :attr:`use_counts` for one compilation run."""
        return dict(self.use_counts)

    @property
    def gate_order(self) -> tuple[int, ...]:
        """Gate indices in topological (creation) order."""
        self._check_current()
        if self._gate_order is None:
            self._gate_order = tuple(self._mig.gates())
        return self._gate_order

    @property
    def depth(self) -> int:
        """Gate levels on the longest PI→PO path (from cached levels)."""
        if self._mig.num_gates == 0:
            return 0
        lv = self.levels
        if self._num_pos:
            return max((lv[po.node] for po in self._mig.pos()), default=0)
        return max(lv.values())

    # ------------------------------------------------------------------
    # derived graphs (cached as contexts of their own)
    # ------------------------------------------------------------------

    def cleaned(self) -> "AnalysisContext":
        """Context over the cleanup image (dead gates dropped, re-hashed)."""
        self._check_current()
        if self._cleaned is None:
            self._cleaned = AnalysisContext(self._mig.cleanup()[0])
        return self._cleaned

    def reordered_dfs(self) -> "AnalysisContext":
        """Context over the PO-driven DFS postorder re-indexing."""
        self._check_current()
        if self._dfs is None:
            self._dfs = AnalysisContext(reorder_dfs(self._mig))
        return self._dfs

    def __repr__(self) -> str:
        cached = [
            name
            for name, value in [
                ("parents", self._parents),
                ("levels", self._levels),
                ("fanout", self._fanout),
                ("uses", self._uses),
                ("cleaned", self._cleaned),
                ("dfs", self._dfs),
            ]
            if value is not None
        ]
        return f"<AnalysisContext of {self._mig!r}; cached: {', '.join(cached) or 'nothing'}>"
