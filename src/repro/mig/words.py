"""Word-level construction helpers: ripple adders, multipliers, shifters.

A *word* is a little-endian list of signals (``word[0]`` is the LSB).  All
functions take a :class:`~repro.mig.build.LogicBuilder` and return words or
signals in the same MIG; they are the building blocks of the EPFL-style
benchmark generators in :mod:`repro.circuits`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import MigError
from repro.mig.build import LogicBuilder
from repro.mig.signal import Signal

Word = list


def constant_word(builder: LogicBuilder, value: int, width: int) -> Word:
    """Word holding the two's-complement constant ``value``."""
    return [builder.const((value >> i) & 1) for i in range(width)]


def zero_extend(word: Sequence[Signal], width: int, builder: LogicBuilder) -> Word:
    """Pad ``word`` with constant zeros up to ``width`` bits."""
    if len(word) > width:
        raise MigError(f"cannot zero-extend a {len(word)}-bit word to {width} bits")
    return list(word) + [builder.const(0)] * (width - len(word))


def add(
    builder: LogicBuilder,
    a: Sequence[Signal],
    b: Sequence[Signal],
    carry_in: Optional[Signal] = None,
) -> tuple[Word, Signal]:
    """Ripple-carry addition; returns ``(sum_word, carry_out)``."""
    if len(a) != len(b):
        raise MigError(f"word widths differ: {len(a)} vs {len(b)}")
    carry = carry_in if carry_in is not None else builder.const(0)
    total: Word = []
    for x, y in zip(a, b):
        s, carry = builder.full_adder(x, y, carry)
        total.append(s)
    return total, carry


def sub(
    builder: LogicBuilder,
    a: Sequence[Signal],
    b: Sequence[Signal],
) -> tuple[Word, Signal]:
    """Two's-complement subtraction ``a - b``.

    Returns ``(difference, no_borrow)``: the second element is 1 when
    ``a >= b`` (i.e. the carry out of ``a + ~b + 1``).
    """
    inverted = [~bit for bit in b]
    return add(builder, a, inverted, carry_in=builder.const(1))


def negate(builder: LogicBuilder, a: Sequence[Signal]) -> Word:
    """Two's-complement negation."""
    zero = constant_word(builder, 0, len(a))
    difference, _ = sub(builder, zero, a)
    return difference


def less_than(builder: LogicBuilder, a: Sequence[Signal], b: Sequence[Signal]) -> Signal:
    """Unsigned ``a < b`` (the borrow of ``a - b``)."""
    _, no_borrow = sub(builder, a, b)
    return ~no_borrow


def equal(builder: LogicBuilder, a: Sequence[Signal], b: Sequence[Signal]) -> Signal:
    """Bitwise equality of two words."""
    if len(a) != len(b):
        raise MigError(f"word widths differ: {len(a)} vs {len(b)}")
    return builder.and_reduce([builder.xnor(x, y) for x, y in zip(a, b)])


def mux_word(
    builder: LogicBuilder,
    select: Signal,
    if_true: Sequence[Signal],
    if_false: Sequence[Signal],
) -> Word:
    """Word-level 2:1 multiplexer."""
    if len(if_true) != len(if_false):
        raise MigError(f"word widths differ: {len(if_true)} vs {len(if_false)}")
    return [builder.mux(select, t, e) for t, e in zip(if_true, if_false)]


def max_word(builder: LogicBuilder, a: Sequence[Signal], b: Sequence[Signal]) -> Word:
    """Unsigned maximum of two words."""
    return mux_word(builder, less_than(builder, a, b), b, a)


def multiply(
    builder: LogicBuilder,
    a: Sequence[Signal],
    b: Sequence[Signal],
    result_width: Optional[int] = None,
) -> Word:
    """Unsigned array multiplication, truncated to ``result_width`` bits.

    The classic shift-and-add array: partial products are AND planes, each
    row added with a ripple adder.  ``result_width`` defaults to
    ``len(a) + len(b)`` (the full product).
    """
    if result_width is None:
        result_width = len(a) + len(b)
    accumulator = constant_word(builder, 0, result_width)
    for j, bj in enumerate(b):
        if j >= result_width:
            break
        row_width = min(len(a), result_width - j)
        partial = [builder.and_(a_i, bj) for a_i in a[:row_width]]
        upper = accumulator[j : j + row_width]
        summed, carry = add(builder, upper, partial)
        accumulator[j : j + row_width] = summed
        carry_pos = j + row_width
        # Propagate the carry through the remaining accumulator bits.
        while carry_pos < result_width:
            s, carry = builder.half_adder(accumulator[carry_pos], carry)
            accumulator[carry_pos] = s
            carry_pos += 1
    return accumulator


def square(builder: LogicBuilder, a: Sequence[Signal]) -> Word:
    """Unsigned square of a word (``2 * len(a)`` result bits)."""
    return multiply(builder, a, a)


def barrel_rotate_left(
    builder: LogicBuilder,
    data: Sequence[Signal],
    amount: Sequence[Signal],
) -> Word:
    """Logarithmic barrel rotator: rotate ``data`` left by ``amount``.

    One mux stage per shift-amount bit — the structure of the EPFL ``bar``
    benchmark.
    """
    word = list(data)
    n = len(word)
    for stage, bit in enumerate(amount):
        distance = (1 << stage) % n
        rotated = word[-distance:] + word[:-distance] if distance else list(word)
        word = mux_word(builder, bit, rotated, word)
    return word


def barrel_shift_left(
    builder: LogicBuilder,
    data: Sequence[Signal],
    amount: Sequence[Signal],
) -> Word:
    """Logarithmic logical left shifter (zero fill)."""
    word = list(data)
    zero = builder.const(0)
    for stage, bit in enumerate(amount):
        distance = 1 << stage
        if distance >= len(word):
            shifted: Word = [zero] * len(word)
        else:
            shifted = [zero] * distance + word[:-distance]
        word = mux_word(builder, bit, shifted, word)
    return word


def leading_one_index(
    builder: LogicBuilder, signals: Sequence[Signal]
) -> tuple[Word, Signal]:
    """Priority encoder: index of the highest set bit, plus a found flag.

    Scans from the MSB (highest index wins).  The index word has
    ``ceil(log2(len))`` bits; it is all zeros when no bit is set.
    """
    width = max(1, (len(signals) - 1).bit_length())
    index: Word = [builder.const(0)] * width
    found = builder.const(0)
    for k in reversed(range(len(signals))):
        is_first = builder.and_(signals[k], ~found)
        found = builder.or_(found, signals[k])
        for b in range(width):
            if (k >> b) & 1:
                index[b] = builder.or_(index[b], is_first)
    return index, found


def divide(
    builder: LogicBuilder,
    dividend: Sequence[Signal],
    divisor: Sequence[Signal],
) -> tuple[Word, Word]:
    """Restoring long division; returns ``(quotient, remainder)``.

    Division by zero yields quotient bits all 1 and remainder equal to the
    dividend, matching the usual restoring-array hardware behaviour.
    """
    n = len(dividend)
    if len(divisor) != n:
        raise MigError(f"word widths differ: {n} vs {len(divisor)}")
    remainder = constant_word(builder, 0, n)
    quotient: Word = [builder.const(0)] * n
    for i in reversed(range(n)):
        # Shift the next dividend bit into the partial remainder.
        remainder = [dividend[i]] + remainder[:-1]
        trial, no_borrow = sub(builder, remainder, divisor)
        quotient[i] = no_borrow
        remainder = mux_word(builder, no_borrow, trial, remainder)
    return quotient, remainder


def isqrt(builder: LogicBuilder, operand: Sequence[Signal]) -> Word:
    """Integer square root by the restoring digit-recurrence method.

    For a ``2k``-bit (or odd-width, internally padded) operand the result
    has ``ceil(len/2)`` bits, matching the EPFL ``sqrt`` benchmark signature
    (128-bit input, 64-bit root).
    """
    operand = list(operand)
    if len(operand) % 2:
        operand.append(builder.const(0))
    k = len(operand) // 2
    remainder: Word = constant_word(builder, 0, k + 2)
    root_le: Word = []  # little-endian; bits are produced MSB-first
    for i in reversed(range(k)):
        # Bring down the next two operand bits: rem = (rem << 2) | pair.
        remainder = [operand[2 * i], operand[2 * i + 1]] + remainder[:-2]
        # Trial subtrahend is (root << 2) | 01.
        trial = zero_extend(
            [builder.const(1), builder.const(0)] + root_le, len(remainder), builder
        )
        difference, no_borrow = sub(builder, remainder, trial)
        remainder = mux_word(builder, no_borrow, difference, remainder)
        root_le.insert(0, no_borrow)  # newest root bit is the current LSB
    return root_le


def popcount(builder: LogicBuilder, signals: Sequence[Signal]) -> Word:
    """Population count via a balanced adder tree.

    Every input bit starts as a one-bit word; words are summed pairwise
    until one remains, growing one bit per tree level — the classic
    reduction used by voter-style circuits.
    """
    words: list[Word] = [[s] for s in signals]
    if not words:
        return [builder.const(0)]
    while len(words) > 1:
        merged: list[Word] = []
        for i in range(0, len(words) - 1, 2):
            a, b = words[i], words[i + 1]
            width = max(len(a), len(b))
            a = zero_extend(a, width, builder)
            b = zero_extend(b, width, builder)
            total, carry = add(builder, a, b)
            merged.append(total + [carry])
        if len(words) % 2:
            merged.append(words[-1])
        words = merged
    return words[0]


def word_value(bits: Sequence[int]) -> int:
    """Assemble an integer from little-endian simulated bit values."""
    value = 0
    for i, bit in enumerate(bits):
        value |= (bit & 1) << i
    return value
