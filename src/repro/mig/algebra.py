"""The Ω Boolean algebra of MIGs as executable graph transformations.

The paper's axiomatic system Ω (§2.1):

* Ω.C  commutativity       ``⟨x y z⟩ = ⟨y x z⟩ = ⟨z y x⟩``
* Ω.M  majority            ``⟨x x z⟩ = x``,  ``⟨x x̄ z⟩ = z``
* Ω.A  associativity       ``⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩``
* Ω.D  distributivity      ``⟨x y ⟨u v z⟩⟩ = ⟨⟨x y u⟩ ⟨x y v⟩ z⟩``
* Ω.I  inverter propagation ``¬⟨x y z⟩ = ⟨x̄ ȳ z̄⟩``

Each axiom is provided in two executable forms:

* a whole-graph *pass* built on :meth:`~repro.mig.graph.Mig.rebuild`:
  passes return a fresh, dead-node-free MIG and never change the computed
  functions (property-tested) — the original engine, kept as the
  differential-testing oracle;
* a *local rule* ``try_<axiom>(mig, v)`` that rewrites the single gate
  ``v`` of an :meth:`~repro.mig.graph.Mig.enable_inplace` graph through
  :meth:`~repro.mig.graph.Mig.replace_node` and returns the set of nodes
  the rewrite touched (empty when the rule does not apply) — the building
  blocks of the worklist engine.

The PLiM-specific composition of either form — Algorithm 1 of the paper —
lives in :mod:`repro.core.rewriting`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MigError
from repro.mig.analysis import fanout_counts
from repro.mig.graph import Mig
from repro.mig.signal import Signal


def complement_profile(signals) -> tuple[int, int, bool]:
    """``(num_nonconst, num_complemented_nonconst, has_const)`` of a child triple.

    The polarity profile every inverter-cost decision is made on: RM3's
    operand-B slot absorbs one complemented (non-constant) child for free,
    constants ride along as built-in operands.  Shared by the Ω.I passes
    here, the cost-aware sweeps in :mod:`repro.core.rewriting`, and the
    §4.2.2 estimators in :mod:`repro.core.cost`.
    """
    nonconst = 0
    complemented = 0
    has_const = False
    for s in signals:
        if s.is_const:
            has_const = True
        else:
            nonconst += 1
            if s.inverted:
                complemented += 1
    return nonconst, complemented, has_const


def effective_children(mig: Mig, edge: Signal) -> Optional[tuple[Signal, Signal, Signal]]:
    """Children of the gate behind ``edge`` with Ω.I applied.

    A complemented edge to ``⟨x y z⟩`` is the same as a plain edge to
    ``⟨x̄ ȳ z̄⟩``; returning the polarity-adjusted triple lets pattern
    matchers ignore edge polarity.  Returns ``None`` if ``edge`` does not
    point at a gate.
    """
    if not mig.is_gate(edge.node):
        return None
    a, b, c = mig.children(edge.node)
    if edge.inverted:
        return (~a, ~b, ~c)
    return (a, b, c)


def pass_majority(mig: Mig) -> Mig:
    """Ω.M pass: resimplify and re-hash every gate, drop dead nodes.

    A plain rebuild already applies ``⟨x x z⟩ = x`` and ``⟨x x̄ z⟩ = z``
    (they are built into ``add_maj``) and merges structurally identical
    gates, which is exactly the node elimination the paper attributes to
    Ω.M in Algorithm 1.
    """
    new, _ = mig.rebuild()
    return new


_CHILD_PERMUTATIONS = (
    (0, 1, 2), (0, 2, 1), (1, 0, 2), (1, 2, 0), (2, 0, 1), (2, 1, 0),
)

#: Ω.C (A, B, Z) slot-overhead estimates by child class — the single
#: source both the pass and the worklist engine's in-place sweep score
#: with (see :func:`pass_commutativity` for the rationale per slot).
SLOT_SCORES_CONST = (0, 0, 1)
SLOT_SCORES_INVERTED = (2, 0, 2)
SLOT_SCORES_PLAIN_SINGLE_GATE = (0, 2, 0)
SLOT_SCORES_PLAIN = (0, 2, 2)


def structural_keys(mig: Mig) -> list[int]:
    """A stored-order-independent structural fingerprint per node.

    Two isomorphic graphs (same PIs, same gate structure) assign the same
    key to corresponding nodes regardless of node indices or stored child
    order: a gate's key hashes the *sorted* ``(child key, polarity)``
    pairs.  :func:`pass_commutativity` uses the keys to break slot-score
    ties canonically, so both rewriting engines settle on the same stored
    child order even when their internal merge order differed.  Keys are
    ordinary ``hash`` values of int tuples — deterministic across
    processes (no strings involved).
    """
    keys = [0] * len(mig)
    keys[0] = hash((1, 0))
    for i, pi in enumerate(mig.pis()):
        keys[pi.node] = hash((2, i))
    for v in mig.topo_gates():
        a, b, c = mig.children(v)
        pairs = sorted(
            (keys[s.node], int(s) & 1) for s in (a, b, c)
        )
        keys[v] = hash((3,) + pairs[0] + pairs[1] + pairs[2])
    return keys


def _best_permutation(
    scores: list[tuple[int, int, int]],
    triple,
    child_keys: list[int],
) -> tuple[int, int, int]:
    """Slot permutation with minimal score, ties broken canonically.

    ``child_keys`` holds the per-slot structural keys of the (pre-rewrite)
    children.  The tie-break ranks the permuted arrangement by each
    child's key and stored polarity, so the chosen order does not depend
    on the incoming stored order.
    """
    best = None
    for perm in _CHILD_PERMUTATIONS:
        a, b, z = perm
        cost = scores[a][0] + scores[b][1] + scores[z][2]
        rank = (
            cost,
            (child_keys[a], int(triple[a]) & 1),
            (child_keys[b], int(triple[b]) & 1),
        )
        if best is None or rank < best[0]:
            best = (rank, perm)
    return best[1]


def pass_commutativity(mig: Mig) -> Mig:
    """Ω.C pass: store every gate's children in translation-friendly order.

    Functionally a no-op, but the stored order is what a child-order
    translator consumes (operand A ← child 1, B ← child 2, destination Z ←
    child 3, per the paper's §3 naïve scheme).  The pass permutes each
    gate's children to minimize the expected RM3 overhead of that scheme:

    * slot B wants a complemented child or a constant (the built-in
      inversion is free there), never a plain child (2 instructions);
    * slot Z wants a single-fanout plain gate child (overwritable in
      place), then a constant (1 instruction);
    * slot A wants a constant or a plain child (free).

    This is the piece of Algorithm 1 that lets plain *rewriting* (Table 1,
    third column) already shrink programs without smart per-node selection.

    Score ties are broken by :func:`structural_keys`, so the stored order
    chosen is a canonical function of the graph's structure — both
    rewriting engines converge to the same order regardless of how their
    intermediate merges happened to order the children.
    """
    fanouts = fanout_counts(mig)
    keys = structural_keys(mig)

    def slot_scores(child: Signal, single_gate: bool) -> tuple[int, int, int]:
        """(A, B, Z) overhead estimates for placing ``child`` in each slot."""
        if child.is_const:
            return SLOT_SCORES_CONST
        if child.inverted:
            return SLOT_SCORES_INVERTED
        return SLOT_SCORES_PLAIN_SINGLE_GATE if single_gate else SLOT_SCORES_PLAIN

    def gate_fn(new: Mig, old: int, mapped):
        old_children = mig.children(old)
        scores = []
        for i, child in enumerate(mapped):
            single_gate = (
                mig.is_gate(old_children[i].node) and fanouts[old_children[i].node] == 1
            )
            scores.append(slot_scores(child, single_gate))
        old_keys = [keys[s.node] for s in old_children]
        a, b, z = _best_permutation(scores, mapped, old_keys)
        return new.add_maj(mapped[a], mapped[b], mapped[z])

    new, _ = mig.rebuild(gate_fn)
    return new


def pass_distributivity_rl(mig: Mig) -> Mig:
    """Ω.D right-to-left pass: ``⟨⟨x y u⟩ ⟨x y v⟩ z⟩ → ⟨x y ⟨u v z⟩⟩``.

    Applied only when both inner gates have a single fanout in the original
    graph, so the rewrite removes one node (the paper: "Distributivity from
    right to left also reduces the number of nodes by one").  Edge polarity
    is handled through Ω.I (:func:`effective_children`).
    """
    fanouts = fanout_counts(mig)

    def gate_fn(new: Mig, old: int, mapped):
        old_children = mig.children(old)
        # Try each unordered pair of children as the two inner gates.
        for i, j in ((0, 1), (0, 2), (1, 2)):
            gi, gj = mapped[i], mapped[j]
            oi, oj = old_children[i], old_children[j]
            if gi.node == gj.node:
                continue
            if not (mig.is_gate(oi.node) and mig.is_gate(oj.node)):
                continue
            if fanouts[oi.node] != 1 or fanouts[oj.node] != 1:
                continue
            inner_i = effective_children(new, gi)
            inner_j = effective_children(new, gj)
            if inner_i is None or inner_j is None:
                continue
            common = _common_pair(inner_i, inner_j)
            if common is None:
                continue
            (x, y), p, q = common
            k = 3 - i - j  # index of the third child
            z = mapped[k]
            inner = new.add_maj(p, q, z)
            return new.add_maj(x, y, inner)
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    # Pattern replacements can orphan freshly built inner gates; sweep them.
    new, _ = new.rebuild()
    return new


def _common_pair(
    a: tuple[Signal, Signal, Signal], b: tuple[Signal, Signal, Signal]
) -> Optional[tuple[tuple[Signal, Signal], Signal, Signal]]:
    """Find two signals shared by triples ``a`` and ``b`` (as multisets).

    Returns ``((x, y), p, q)`` where ``x, y`` are the shared signals and
    ``p`` / ``q`` the leftovers of ``a`` / ``b``, or ``None`` if fewer than
    two signals are shared.
    """
    rest_b = list(b)
    shared: list[Signal] = []
    rest_a: list[Signal] = []
    for s in a:
        if s in rest_b:
            rest_b.remove(s)
            shared.append(s)
        else:
            rest_a.append(s)
    if len(shared) < 2:
        return None
    if len(shared) == 3:
        # Identical gates would have been merged by strashing; treat the
        # third shared signal as the leftover on both sides (the *same*
        # signal on both — handing side b a different leftover changes
        # the computed function).
        third = shared.pop()
        rest_a.append(third)
        rest_b.append(third)
    return (shared[0], shared[1]), rest_a[0], rest_b[0]


def pass_distributivity_lr(mig: Mig) -> Mig:
    """Ω.D left-to-right pass: ``⟨x y ⟨u v z⟩⟩ → ⟨⟨x y u⟩ ⟨x y v⟩ z⟩``.

    The expanding direction; only applied when at least one of the two new
    inner gates already exists (strash hit), so the pass never grows the
    graph.  Provided for completeness of Ω and for the test suite.
    """
    fanouts = fanout_counts(mig)

    def gate_fn(new: Mig, old: int, mapped):
        old_children = mig.children(old)
        for k in range(3):
            g = mapped[k]
            og = old_children[k]
            if not mig.is_gate(og.node) or fanouts[og.node] != 1:
                continue
            inner = effective_children(new, g)
            if inner is None:
                continue
            u, v, z = inner
            others = [mapped[i] for i in range(3) if i != k]
            x, y = others
            before = len(new)
            left = new.add_maj(x, y, u)
            right = new.add_maj(x, y, v)
            if len(new) <= before + 1:  # at most one fresh gate: net size kept
                return new.add_maj(left, right, z)
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    # Pattern replacements can orphan freshly built inner gates; sweep them.
    new, _ = new.rebuild()
    return new


def pass_associativity(mig: Mig) -> Mig:
    """Ω.A pass: ``⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩`` where it helps.

    The swap is accepted only when the replacement inner gate simplifies or
    structurally hashes to an existing node, i.e. when it opens a sharing or
    Ω.M opportunity (the paper's "reshaping ... which may provide further
    size reduction opportunities").
    """
    fanouts = fanout_counts(mig)

    def gate_fn(new: Mig, old: int, mapped):
        old_children = mig.children(old)
        for k in range(3):  # position of the inner gate child
            g = mapped[k]
            og = old_children[k]
            if not mig.is_gate(og.node) or fanouts[og.node] != 1:
                continue
            inner = effective_children(new, g)
            if inner is None:
                continue
            others = [mapped[i] for i in range(3) if i != k]
            for u_pos in range(2):  # which outer child is the shared u
                u = others[u_pos]
                x = others[1 - u_pos]
                if u not in inner:
                    continue
                rest = list(inner)
                rest.remove(u)
                y, z = rest
                # ⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩ — accept if ⟨y u x⟩ is free.
                before = len(new)
                swapped = new.add_maj(y, u, x)
                if len(new) == before:
                    return new.add_maj(z, u, swapped)
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    # Pattern replacements can orphan freshly built inner gates; sweep them.
    new, _ = new.rebuild()
    return new


def pass_complementary_associativity(mig: Mig) -> Mig:
    """Ψ.A (complementary associativity): ``⟨x u ⟨y ū z⟩⟩ = ⟨x u ⟨y x z⟩⟩``.

    Part of the derived rule set Ψ that the MIG papers add on top of Ω: an
    inner occurrence of ``ū`` is irrelevant when ``u`` is decided at the
    outer gate, so it may be replaced by the *other* outer child — which
    frequently lets Ω.M fire (e.g. the inner gate collapses when ``y`` or
    ``z`` equals ``x``) or re-shares an existing gate.  Applied only when
    the replacement gate is free (simplifies or strash-hits), so the pass
    never grows the graph.
    """
    fanouts = fanout_counts(mig)

    def gate_fn(new: Mig, old: int, mapped):
        old_children = mig.children(old)
        for k in range(3):  # position of the inner gate child
            og = old_children[k]
            if not mig.is_gate(og.node) or fanouts[og.node] != 1:
                continue
            inner = effective_children(new, mapped[k])
            if inner is None:
                continue
            others = [mapped[i] for i in range(3) if i != k]
            for u_pos in range(2):
                u = others[u_pos]
                x = others[1 - u_pos]
                if ~u not in inner:
                    continue
                replaced = tuple(x if s == ~u else s for s in inner)
                before = len(new)
                new_inner = new.add_maj(*replaced)
                if len(new) == before:  # free: simplified or shared
                    return new.add_maj(x, u, new_inner)
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    # Pattern replacements can orphan freshly built inner gates; sweep them.
    new, _ = new.rebuild()
    return new


def pass_associativity_depth(mig: Mig) -> Mig:
    """Ω.A pass targeting *depth*: move late signals out of deep gates.

    In ``⟨x u ⟨y u z⟩⟩`` the inner gate adds a level on top of ``z``; when
    ``z`` arrives later than ``x`` (higher topological level), the swap
    ``⟨z u ⟨y u x⟩⟩`` takes ``z`` off the inner critical path.  This is the
    depth-rewriting move of the MIG papers (Amarù et al.) restricted to
    strictly improving applications, used by
    :func:`repro.core.rewriting.rewrite_depth`.
    """
    fanouts = fanout_counts(mig)
    new_levels: dict[int, int] = {}

    def gate_fn(new: Mig, old: int, mapped):
        def level_of(signal: Signal) -> int:
            v = signal.node
            if v not in new_levels:
                if not new.is_gate(v):
                    new_levels[v] = 0
                else:
                    new_levels[v] = 1 + max(
                        level_of(c) for c in new.children(v)
                    )
            return new_levels[v]

        old_children = mig.children(old)
        for k in range(3):  # position of the inner gate child
            og = old_children[k]
            if not mig.is_gate(og.node) or fanouts[og.node] != 1:
                continue
            inner = effective_children(new, mapped[k])
            if inner is None:
                continue
            others = [mapped[i] for i in range(3) if i != k]
            for u_pos in range(2):
                u = others[u_pos]
                x = others[1 - u_pos]
                if u not in inner:
                    continue
                rest = list(inner)
                rest.remove(u)
                # shallower inner child is y, deeper is z
                y, z = sorted(rest, key=level_of)
                before = 1 + max(level_of(x), level_of(u), 1 + max(
                    level_of(y), level_of(u), level_of(z)))
                after = 1 + max(level_of(z), level_of(u), 1 + max(
                    level_of(y), level_of(u), level_of(x)))
                if after >= before:
                    continue  # no strict depth win
                swapped = new.add_maj(y, u, x)
                return new.add_maj(z, u, swapped)
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    new, _ = new.rebuild()  # sweep any orphaned inner gates
    return new


def pass_push_inverters(mig: Mig, threshold: int = 2) -> Mig:
    """Unconditional Ω.I right-to-left pass.

    Every gate with at least ``threshold`` complemented non-constant
    children is replaced by its complement with all child polarities
    flipped (``⟨x̄ ȳ z̄⟩ → ¬⟨x y z⟩`` and ``⟨x̄ ȳ z⟩ → ¬⟨x y z̄⟩``), pushing
    the inversion onto the fanout edges.  This is the mechanical core of
    the paper's Ω.I(R→L); the cost-aware variant that decides *whether* a
    push pays off lives in :mod:`repro.core.rewriting`.  Algorithm 1's
    final sweep uses ``threshold=3`` — it only removes the most costly
    case, leaving cost-rejected two-complement gates alone.
    """

    def gate_fn(new: Mig, _old: int, mapped):
        _, inverted_nonconst, _ = complement_profile(mapped)
        if inverted_nonconst >= threshold:
            flipped = tuple(~s for s in mapped)
            return ~new.add_maj(*flipped)
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    return new


# ----------------------------------------------------------------------
# local rules (the worklist engine's building blocks)
#
# Each takes an enable_inplace() graph and one live gate ``v``, applies the
# axiom at ``v`` through Mig.replace_node, and returns the set of nodes the
# rewrite touched — empty when the rule does not apply.  Single-fanout
# heuristics read the optional ``fanouts`` snapshot
# (:meth:`~repro.mig.graph.Mig.fanout_snapshot`, falling back to the live
# counts for nodes created after it) so one phase's decisions match a
# rebuild pass's snapshot semantics; pass ``None`` to use live counts.
# The conditions are heuristics for node-count reduction, not correctness
# requirements, so a stale snapshot is always safe.
#
# Rules that can raise a node's level (Ω.D restructuring, Ω.A/Ψ.A
# reshaping) additionally accept ``depth_budget``: on a graph with level
# maintenance (:meth:`~repro.mig.graph.Mig.enable_levels`) a candidate is
# rejected when committing it could push any primary-output level past the
# budget.  The test is conservative but sound: replacing ``v`` by a
# replacement whose level exceeds ``level(v)`` by ``delta`` raises every
# ancestor level — and therefore every PO level — by at most ``delta``
# (cascaded Ω.M collapses and strash merges only lower levels), so a
# candidate is safe whenever ``delta <= budget - current_depth()``.
# Collapse-only rules (Ω.M) and polarity flips (Ω.I) never raise a level
# and ignore the budget.
# ----------------------------------------------------------------------


def _fanout(mig: Mig, fanouts: Optional[list[int]], node: int) -> int:
    if fanouts is not None and node < len(fanouts):
        return fanouts[node]
    return mig.fanout_of(node)


def _require_levels_for_budget(mig: Mig, depth_budget: Optional[int]) -> None:
    """Entry check of every budget-gated rule: a budget needs levels."""
    if depth_budget is not None and mig._levels is None:
        raise MigError(
            "depth-budget gating needs level maintenance; "
            "call enable_levels() first"
        )


def _predicted_level(levels: list[int], signals, floor: int = 0) -> int:
    """Upper bound on the level of a gate over ``signals``.

    ``floor`` folds in an already-predicted level of a not-yet-created
    inner gate.  An upper bound because ``add_maj`` can only simplify or
    share to something equal or shallower.
    """
    level = floor
    for s in signals:
        child_level = levels[int(s) >> 1]
        if child_level > level:
            level = child_level
    return 1 + level


def _exceeds_depth_budget(
    mig: Mig, v: int, replacement_level: int, depth_budget: int
) -> bool:
    """True when replacing ``v`` by a node at ``replacement_level`` could
    push a primary-output level past ``depth_budget``.

    ``replacement_level`` must be an upper bound on the committed
    replacement's level, computed from live child levels *before* any node
    is created (:func:`_predicted_level`).  Callers guarantee level
    maintenance via :func:`_require_levels_for_budget`.
    """
    delta = replacement_level - mig._levels[v]
    if delta <= 0:
        return False
    return delta > depth_budget - mig.current_depth()


def try_majority(
    mig: Mig,
    v: int,
    fanouts: Optional[list[int]] = None,
    depth_budget: Optional[int] = None,
) -> set[int]:
    """Ω.M at ``v``: collapse a trivially decided gate, merge duplicates.

    ``replace_node`` already cascades Ω.M and strash merges through
    parents, so on a graph built with simplification enabled this fires
    only for gates created with ``simplify=False``.  ``depth_budget`` is
    accepted for worklist-phase uniformity and ignored: a collapse replaces
    ``v`` by one of its own children (or a constant), which can only lower
    levels.
    """
    replacement = Mig._simplify_enc(mig._ca[v], mig._cb[v], mig._cc[v])
    if replacement < 0:
        return set()
    return mig.replace_node(v, Signal(replacement))


def try_distributivity_rl(
    mig: Mig,
    v: int,
    fanouts: Optional[list[int]] = None,
    depth_budget: Optional[int] = None,
) -> set[int]:
    """Ω.D(R→L) at ``v``: ``⟨⟨x y u⟩ ⟨x y v⟩ z⟩ → ⟨x y ⟨u v z⟩⟩``.

    Applied when both inner gates have a single fanout, so the rewrite
    removes one node.  Edge polarity is handled through Ω.I
    (:func:`effective_children`).  The restructured cone can be *deeper*
    than the original (``z`` gains a level); under ``depth_budget`` a
    candidate whose predicted level increase could push a PO past the
    budget is rejected before any node is created.
    """
    _require_levels_for_budget(mig, depth_budget)
    # bound once, matched on raw encodings: this loop is the hot path and
    # mostly rejects, so Signals are only built for surviving candidates
    ca, cb, cc = mig._ca, mig._cb, mig._cc
    enc = (ca[v], cb[v], cc[v])
    levels = mig._levels
    for i, j in ((0, 1), (0, 2), (1, 2)):
        ei, ej = enc[i], enc[j]
        ni, nj = ei >> 1, ej >> 1
        if ni == nj:
            continue
        if ca[ni] < 0 or ca[nj] < 0:  # child slot a empty => not a gate
            continue
        if _fanout(mig, fanouts, ni) != 1 or _fanout(mig, fanouts, nj) != 1:
            continue
        common = _common_pair(
            effective_children(mig, Signal(ei)), effective_children(mig, Signal(ej))
        )
        if common is None:
            continue
        (x, y), p, q = common
        z = Signal(enc[3 - i - j])
        if depth_budget is not None:
            inner_level = _predicted_level(levels, (p, q, z))
            outer_level = _predicted_level(levels, (x, y), floor=inner_level)
            if _exceeds_depth_budget(mig, v, outer_level, depth_budget):
                continue
        first_new = len(mig)
        inner = mig.add_maj(p, q, z)
        outer = mig.add_maj(x, y, inner)
        for node in range(first_new, len(mig)):
            mig.inherit_order(node, v)
        if outer.node == v:  # degenerate: the pattern reproduced v itself
            mig.release_if_dead(inner.node)
            continue
        affected = mig.replace_node(v, outer)
        # ``outer`` may have simplified or hashed past a freshly created
        # ``inner``; sweep the speculative gate if nothing reads it.
        mig.release_if_dead(inner.node)
        affected.update(
            u for u in (inner.node, outer.node) if mig.is_gate(u)
        )
        return affected
    return set()


def try_associativity(
    mig: Mig,
    v: int,
    fanouts: Optional[list[int]] = None,
    depth_budget: Optional[int] = None,
) -> set[int]:
    """Ω.A at ``v``: ``⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩`` where it is free.

    Accepted only when the replacement inner gate ``⟨y u x⟩`` is free —
    it simplifies or structurally hashes to an existing node — i.e. when
    the swap opens a sharing or Ω.M opportunity without growing the graph.
    A rejected candidate is *kept* as a speculative zero-fanout gate (it
    seeds sharing for later checks, exactly like the abandoned gates of
    the rebuild pass); callers sweep those with
    :meth:`~repro.mig.graph.Mig.collect_unused` at phase boundaries.

    The swap can *deepen* the graph (``x`` moves under the inner gate);
    under ``depth_budget`` a candidate whose predicted level increase
    could push a PO past the budget is rejected after the freeness check
    (the speculative sharing semantics are unchanged — only the commit is
    gated).
    """
    _require_levels_for_budget(mig, depth_budget)
    # raw-encoding prefilter: most gates reject on the fanout test, so
    # Signal construction is deferred until a candidate child survives
    ca = mig._ca
    enc = (ca[v], mig._cb[v], mig._cc[v])
    for k in range(3):
        n = enc[k] >> 1
        if ca[n] < 0 or _fanout(mig, fanouts, n) != 1:
            continue
        g = Signal(enc[k])
        inner = effective_children(mig, g)
        others = [Signal(enc[i]) for i in range(3) if i != k]
        for u_pos in range(2):
            u = others[u_pos]
            x = others[1 - u_pos]
            if u not in inner:
                continue
            rest = list(inner)
            rest.remove(u)
            y, z = rest
            before = len(mig)
            swapped = mig.add_maj(y, u, x)
            if len(mig) > before:  # not free: keep the speculative gate
                mig.inherit_order(swapped.node, v)
                continue
            if depth_budget is not None:
                replacement_level = _predicted_level(
                    mig._levels, (z, u, swapped)
                )
                if _exceeds_depth_budget(mig, v, replacement_level, depth_budget):
                    continue
            first_new = len(mig)
            replacement = mig.add_maj(z, u, swapped)
            for node in range(first_new, len(mig)):
                mig.inherit_order(node, v)
            if replacement.node == v:  # the swap reproduced v itself
                continue
            affected = mig.replace_node(v, replacement)
            if mig.is_gate(replacement.node):
                affected.add(replacement.node)
            return affected
    return set()


def try_associativity_depth(
    mig: Mig,
    v: int,
    fanouts: Optional[list[int]] = None,
    depth_budget: Optional[int] = None,
) -> set[int]:
    """Ω.A at ``v`` targeting *depth* — the local form of
    :func:`pass_associativity_depth`.  ``depth_budget`` is accepted for
    worklist-phase uniformity and ignored: every committed move strictly
    lowers ``v``'s level and can raise no other node's.

    In ``⟨x u ⟨y u z⟩⟩`` the inner gate adds a level on top of ``z``; when
    the swap ``⟨z u ⟨y u x⟩⟩`` strictly lowers ``v``'s level, it takes the
    late-arriving ``z`` off the inner critical path.  Requires incremental
    level maintenance (:meth:`~repro.mig.graph.Mig.enable_levels`): the
    accept test reads exact current levels, and because the swap strictly
    lowers ``v``'s level while no other node's level can rise, global
    depth is monotonically non-increasing under this rule.  Size-neutral
    beyond Ω.A itself: the single-fanout inner gate is freed whenever the
    replacement commits.
    """
    if mig._levels is None:
        raise MigError(
            "try_associativity_depth needs level maintenance; "
            "call enable_levels() first"
        )
    triple = mig.children(v)
    ca = mig._ca  # bound once: this match loop is the hot path
    levels = mig._levels
    lv = levels[v]
    for k in range(3):
        g = triple[k]
        n = int(g) >> 1
        # A swap can only lower v's level when the inner gate is the
        # critical child — cheap reject before any pattern matching.
        if levels[n] + 1 != lv:
            continue
        if ca[n] < 0 or _fanout(mig, fanouts, n) != 1:
            continue
        inner = effective_children(mig, g)
        others = [triple[i] for i in range(3) if i != k]
        for u_pos in range(2):
            u = others[u_pos]
            x = others[1 - u_pos]
            if u not in inner:
                continue
            rest = list(inner)
            rest.remove(u)
            # shallower inner child is y, deeper is z
            y, z = sorted(rest, key=lambda s: levels[int(s) >> 1])
            lu, lx = levels[int(u) >> 1], levels[int(x) >> 1]
            ly, lz = levels[int(y) >> 1], levels[int(z) >> 1]
            before = 1 + max(lx, lu, 1 + max(ly, lu, lz))
            after = 1 + max(lz, lu, 1 + max(ly, lu, lx))
            if after >= before:
                continue  # no strict depth win
            first_new = len(mig)
            swapped = mig.add_maj(y, u, x)
            replacement = mig.add_maj(z, u, swapped)
            for node in range(first_new, len(mig)):
                mig.inherit_order(node, v)
            if replacement.node == v:  # the swap reproduced v itself
                mig.release_if_dead(swapped.node)
                continue
            affected = mig.replace_node(v, replacement)
            # ``replacement`` may have simplified or hashed past the
            # freshly created ``swapped``; sweep it if nothing reads it.
            mig.release_if_dead(swapped.node)
            affected.update(
                n for n in (swapped.node, replacement.node) if mig.is_gate(n)
            )
            return affected
    return set()


def try_complementary_associativity(
    mig: Mig,
    v: int,
    fanouts: Optional[list[int]] = None,
    depth_budget: Optional[int] = None,
) -> set[int]:
    """Ψ.A at ``v``: ``⟨x u ⟨y ū z⟩⟩ = ⟨x u ⟨y x z⟩⟩`` where it is free.

    The derived-rule counterpart of :func:`pass_complementary_associativity`;
    applied only when the replacement inner gate is free.  Like
    :func:`try_associativity`, a rejected candidate stays as a speculative
    zero-fanout gate until :meth:`~repro.mig.graph.Mig.collect_unused`, and
    like it the commit is gated under ``depth_budget`` (substituting ``x``
    for ``ū`` inside the inner gate can deepen the cone when ``x`` is the
    deeper signal).
    """
    _require_levels_for_budget(mig, depth_budget)
    triple = mig.children(v)
    for k in range(3):
        g = triple[k]
        if not mig.is_gate(g.node) or _fanout(mig, fanouts, g.node) != 1:
            continue
        inner = effective_children(mig, g)
        others = [triple[i] for i in range(3) if i != k]
        for u_pos in range(2):
            u = others[u_pos]
            x = others[1 - u_pos]
            if ~u not in inner:
                continue
            replaced = tuple(x if s == ~u else s for s in inner)
            before = len(mig)
            new_inner = mig.add_maj(*replaced)
            if len(mig) > before:  # not free: keep the speculative gate
                mig.inherit_order(new_inner.node, v)
                continue
            if depth_budget is not None:
                replacement_level = _predicted_level(
                    mig._levels, (x, u, new_inner)
                )
                if _exceeds_depth_budget(mig, v, replacement_level, depth_budget):
                    continue
            first_new = len(mig)
            replacement = mig.add_maj(x, u, new_inner)
            for node in range(first_new, len(mig)):
                mig.inherit_order(node, v)
            if replacement.node == v:  # the rewrite reproduced v itself
                continue
            affected = mig.replace_node(v, replacement)
            if mig.is_gate(replacement.node):
                affected.add(replacement.node)
            return affected
    return set()


def flip_complement(mig: Mig, v: int) -> set[int]:
    """Ω.I(R→L) at ``v``: replace the gate by its complement.

    ``⟨a b c⟩`` becomes ``¬⟨ā b̄ c̄⟩``, pushing one inversion onto every
    fanout edge.  The flipped gate may hash to an existing node, in which
    case the flip also merges.  Unconditional — cost policies live in the
    callers (:func:`try_push_inverters`, the worklist engine's cost-aware
    sweep).
    """
    a, b, c = mig.children(v)
    first_new = len(mig)
    flipped = mig.add_maj(~a, ~b, ~c)
    for node in range(first_new, len(mig)):
        mig.inherit_order(node, v)
    affected = mig.replace_node(v, ~flipped)
    if mig.is_gate(flipped.node):
        affected.add(flipped.node)
    return affected


def try_push_inverters(mig: Mig, v: int, threshold: int = 2) -> set[int]:
    """Unconditional Ω.I(R→L) at ``v`` — the local form of
    :func:`pass_push_inverters`.

    Flips the gate when at least ``threshold`` non-constant children are
    complemented.  Algorithm 1's final sweep uses ``threshold=3``.
    """
    inverted_nonconst = sum(
        1 for s in mig.children(v) if s.inverted and not s.is_const
    )
    if inverted_nonconst < threshold:
        return set()
    return flip_complement(mig, v)
