"""The Ω Boolean algebra of MIGs as executable graph transformations.

The paper's axiomatic system Ω (§2.1):

* Ω.C  commutativity       ``⟨x y z⟩ = ⟨y x z⟩ = ⟨z y x⟩``
* Ω.M  majority            ``⟨x x z⟩ = x``,  ``⟨x x̄ z⟩ = z``
* Ω.A  associativity       ``⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩``
* Ω.D  distributivity      ``⟨x y ⟨u v z⟩⟩ = ⟨⟨x y u⟩ ⟨x y v⟩ z⟩``
* Ω.I  inverter propagation ``¬⟨x y z⟩ = ⟨x̄ ȳ z̄⟩``

Each axiom is provided as a whole-graph *pass* built on
:meth:`~repro.mig.graph.Mig.rebuild`: passes return a fresh, dead-node-free
MIG and never change the computed functions (property-tested).  The
PLiM-specific composition of these passes — Algorithm 1 of the paper — lives
in :mod:`repro.core.rewriting`.
"""

from __future__ import annotations

from typing import Optional

from repro.mig.analysis import fanout_counts
from repro.mig.graph import Mig
from repro.mig.signal import Signal


def effective_children(mig: Mig, edge: Signal) -> Optional[tuple[Signal, Signal, Signal]]:
    """Children of the gate behind ``edge`` with Ω.I applied.

    A complemented edge to ``⟨x y z⟩`` is the same as a plain edge to
    ``⟨x̄ ȳ z̄⟩``; returning the polarity-adjusted triple lets pattern
    matchers ignore edge polarity.  Returns ``None`` if ``edge`` does not
    point at a gate.
    """
    if not mig.is_gate(edge.node):
        return None
    a, b, c = mig.children(edge.node)
    if edge.inverted:
        return (~a, ~b, ~c)
    return (a, b, c)


def pass_majority(mig: Mig) -> Mig:
    """Ω.M pass: resimplify and re-hash every gate, drop dead nodes.

    A plain rebuild already applies ``⟨x x z⟩ = x`` and ``⟨x x̄ z⟩ = z``
    (they are built into ``add_maj``) and merges structurally identical
    gates, which is exactly the node elimination the paper attributes to
    Ω.M in Algorithm 1.
    """
    new, _ = mig.rebuild()
    return new


_CHILD_PERMUTATIONS = (
    (0, 1, 2), (0, 2, 1), (1, 0, 2), (1, 2, 0), (2, 0, 1), (2, 1, 0),
)


def pass_commutativity(mig: Mig) -> Mig:
    """Ω.C pass: store every gate's children in translation-friendly order.

    Functionally a no-op, but the stored order is what a child-order
    translator consumes (operand A ← child 1, B ← child 2, destination Z ←
    child 3, per the paper's §3 naïve scheme).  The pass permutes each
    gate's children to minimize the expected RM3 overhead of that scheme:

    * slot B wants a complemented child or a constant (the built-in
      inversion is free there), never a plain child (2 instructions);
    * slot Z wants a single-fanout plain gate child (overwritable in
      place), then a constant (1 instruction);
    * slot A wants a constant or a plain child (free).

    This is the piece of Algorithm 1 that lets plain *rewriting* (Table 1,
    third column) already shrink programs without smart per-node selection.
    """
    fanouts = fanout_counts(mig)

    def slot_scores(child: Signal, single_gate: bool) -> tuple[int, int, int]:
        """(A, B, Z) overhead estimates for placing ``child`` in each slot."""
        if child.is_const:
            return (0, 0, 1)
        if child.inverted:
            return (2, 0, 2)
        return (0, 2, 0 if single_gate else 2)

    def gate_fn(new: Mig, old: int, mapped):
        old_children = mig.children(old)
        scores = []
        for i, child in enumerate(mapped):
            single_gate = (
                mig.is_gate(old_children[i].node) and fanouts[old_children[i].node] == 1
            )
            scores.append(slot_scores(child, single_gate))
        best = None
        for perm in _CHILD_PERMUTATIONS:
            a, b, z = perm
            cost = scores[a][0] + scores[b][1] + scores[z][2]
            if best is None or cost < best[0]:
                best = (cost, perm)
        _, (a, b, z) = best
        return new.add_maj(mapped[a], mapped[b], mapped[z])

    new, _ = mig.rebuild(gate_fn)
    return new


def pass_distributivity_rl(mig: Mig) -> Mig:
    """Ω.D right-to-left pass: ``⟨⟨x y u⟩ ⟨x y v⟩ z⟩ → ⟨x y ⟨u v z⟩⟩``.

    Applied only when both inner gates have a single fanout in the original
    graph, so the rewrite removes one node (the paper: "Distributivity from
    right to left also reduces the number of nodes by one").  Edge polarity
    is handled through Ω.I (:func:`effective_children`).
    """
    fanouts = fanout_counts(mig)

    def gate_fn(new: Mig, old: int, mapped):
        old_children = mig.children(old)
        # Try each unordered pair of children as the two inner gates.
        for i, j in ((0, 1), (0, 2), (1, 2)):
            gi, gj = mapped[i], mapped[j]
            oi, oj = old_children[i], old_children[j]
            if gi.node == gj.node:
                continue
            if not (mig.is_gate(oi.node) and mig.is_gate(oj.node)):
                continue
            if fanouts[oi.node] != 1 or fanouts[oj.node] != 1:
                continue
            inner_i = effective_children(new, gi)
            inner_j = effective_children(new, gj)
            if inner_i is None or inner_j is None:
                continue
            common = _common_pair(inner_i, inner_j)
            if common is None:
                continue
            (x, y), p, q = common
            k = 3 - i - j  # index of the third child
            z = mapped[k]
            inner = new.add_maj(p, q, z)
            return new.add_maj(x, y, inner)
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    # Pattern replacements can orphan freshly built inner gates; sweep them.
    new, _ = new.rebuild()
    return new


def _common_pair(
    a: tuple[Signal, Signal, Signal], b: tuple[Signal, Signal, Signal]
) -> Optional[tuple[tuple[Signal, Signal], Signal, Signal]]:
    """Find two signals shared by triples ``a`` and ``b`` (as multisets).

    Returns ``((x, y), p, q)`` where ``x, y`` are the shared signals and
    ``p`` / ``q`` the leftovers of ``a`` / ``b``, or ``None`` if fewer than
    two signals are shared.
    """
    rest_b = list(b)
    shared: list[Signal] = []
    rest_a: list[Signal] = []
    for s in a:
        if s in rest_b:
            rest_b.remove(s)
            shared.append(s)
        else:
            rest_a.append(s)
    if len(shared) < 2:
        return None
    if len(shared) == 3:
        # Identical gates would have been merged by strashing; treat the
        # third shared signal as the leftover on both sides.
        rest_a.append(shared.pop())
        rest_b.append(shared[-1])
    return (shared[0], shared[1]), rest_a[0], rest_b[0]


def pass_distributivity_lr(mig: Mig) -> Mig:
    """Ω.D left-to-right pass: ``⟨x y ⟨u v z⟩⟩ → ⟨⟨x y u⟩ ⟨x y v⟩ z⟩``.

    The expanding direction; only applied when at least one of the two new
    inner gates already exists (strash hit), so the pass never grows the
    graph.  Provided for completeness of Ω and for the test suite.
    """
    fanouts = fanout_counts(mig)

    def gate_fn(new: Mig, old: int, mapped):
        old_children = mig.children(old)
        for k in range(3):
            g = mapped[k]
            og = old_children[k]
            if not mig.is_gate(og.node) or fanouts[og.node] != 1:
                continue
            inner = effective_children(new, g)
            if inner is None:
                continue
            u, v, z = inner
            others = [mapped[i] for i in range(3) if i != k]
            x, y = others
            before = len(new)
            left = new.add_maj(x, y, u)
            right = new.add_maj(x, y, v)
            if len(new) <= before + 1:  # at most one fresh gate: net size kept
                return new.add_maj(left, right, z)
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    # Pattern replacements can orphan freshly built inner gates; sweep them.
    new, _ = new.rebuild()
    return new


def pass_associativity(mig: Mig) -> Mig:
    """Ω.A pass: ``⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩`` where it helps.

    The swap is accepted only when the replacement inner gate simplifies or
    structurally hashes to an existing node, i.e. when it opens a sharing or
    Ω.M opportunity (the paper's "reshaping ... which may provide further
    size reduction opportunities").
    """
    fanouts = fanout_counts(mig)

    def gate_fn(new: Mig, old: int, mapped):
        old_children = mig.children(old)
        for k in range(3):  # position of the inner gate child
            g = mapped[k]
            og = old_children[k]
            if not mig.is_gate(og.node) or fanouts[og.node] != 1:
                continue
            inner = effective_children(new, g)
            if inner is None:
                continue
            others = [mapped[i] for i in range(3) if i != k]
            for u_pos in range(2):  # which outer child is the shared u
                u = others[u_pos]
                x = others[1 - u_pos]
                if u not in inner:
                    continue
                rest = list(inner)
                rest.remove(u)
                y, z = rest
                # ⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩ — accept if ⟨y u x⟩ is free.
                before = len(new)
                swapped = new.add_maj(y, u, x)
                if len(new) == before:
                    return new.add_maj(z, u, swapped)
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    # Pattern replacements can orphan freshly built inner gates; sweep them.
    new, _ = new.rebuild()
    return new


def pass_complementary_associativity(mig: Mig) -> Mig:
    """Ψ.A (complementary associativity): ``⟨x u ⟨y ū z⟩⟩ = ⟨x u ⟨y x z⟩⟩``.

    Part of the derived rule set Ψ that the MIG papers add on top of Ω: an
    inner occurrence of ``ū`` is irrelevant when ``u`` is decided at the
    outer gate, so it may be replaced by the *other* outer child — which
    frequently lets Ω.M fire (e.g. the inner gate collapses when ``y`` or
    ``z`` equals ``x``) or re-shares an existing gate.  Applied only when
    the replacement gate is free (simplifies or strash-hits), so the pass
    never grows the graph.
    """
    fanouts = fanout_counts(mig)

    def gate_fn(new: Mig, old: int, mapped):
        old_children = mig.children(old)
        for k in range(3):  # position of the inner gate child
            og = old_children[k]
            if not mig.is_gate(og.node) or fanouts[og.node] != 1:
                continue
            inner = effective_children(new, mapped[k])
            if inner is None:
                continue
            others = [mapped[i] for i in range(3) if i != k]
            for u_pos in range(2):
                u = others[u_pos]
                x = others[1 - u_pos]
                if ~u not in inner:
                    continue
                replaced = tuple(x if s == ~u else s for s in inner)
                before = len(new)
                new_inner = new.add_maj(*replaced)
                if len(new) == before:  # free: simplified or shared
                    return new.add_maj(x, u, new_inner)
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    # Pattern replacements can orphan freshly built inner gates; sweep them.
    new, _ = new.rebuild()
    return new


def pass_associativity_depth(mig: Mig) -> Mig:
    """Ω.A pass targeting *depth*: move late signals out of deep gates.

    In ``⟨x u ⟨y u z⟩⟩`` the inner gate adds a level on top of ``z``; when
    ``z`` arrives later than ``x`` (higher topological level), the swap
    ``⟨z u ⟨y u x⟩⟩`` takes ``z`` off the inner critical path.  This is the
    depth-rewriting move of the MIG papers (Amarù et al.) restricted to
    strictly improving applications, used by
    :func:`repro.core.rewriting.rewrite_depth`.
    """
    fanouts = fanout_counts(mig)
    new_levels: dict[int, int] = {}

    def gate_fn(new: Mig, old: int, mapped):
        def level_of(signal: Signal) -> int:
            v = signal.node
            if v not in new_levels:
                if not new.is_gate(v):
                    new_levels[v] = 0
                else:
                    new_levels[v] = 1 + max(
                        level_of(c) for c in new.children(v)
                    )
            return new_levels[v]

        old_children = mig.children(old)
        for k in range(3):  # position of the inner gate child
            og = old_children[k]
            if not mig.is_gate(og.node) or fanouts[og.node] != 1:
                continue
            inner = effective_children(new, mapped[k])
            if inner is None:
                continue
            others = [mapped[i] for i in range(3) if i != k]
            for u_pos in range(2):
                u = others[u_pos]
                x = others[1 - u_pos]
                if u not in inner:
                    continue
                rest = list(inner)
                rest.remove(u)
                # shallower inner child is y, deeper is z
                y, z = sorted(rest, key=level_of)
                before = 1 + max(level_of(x), level_of(u), 1 + max(
                    level_of(y), level_of(u), level_of(z)))
                after = 1 + max(level_of(z), level_of(u), 1 + max(
                    level_of(y), level_of(u), level_of(x)))
                if after >= before:
                    continue  # no strict depth win
                swapped = new.add_maj(y, u, x)
                return new.add_maj(z, u, swapped)
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    new, _ = new.rebuild()  # sweep any orphaned inner gates
    return new


def pass_push_inverters(mig: Mig, threshold: int = 2) -> Mig:
    """Unconditional Ω.I right-to-left pass.

    Every gate with at least ``threshold`` complemented non-constant
    children is replaced by its complement with all child polarities
    flipped (``⟨x̄ ȳ z̄⟩ → ¬⟨x y z⟩`` and ``⟨x̄ ȳ z⟩ → ¬⟨x y z̄⟩``), pushing
    the inversion onto the fanout edges.  This is the mechanical core of
    the paper's Ω.I(R→L); the cost-aware variant that decides *whether* a
    push pays off lives in :mod:`repro.core.rewriting`.  Algorithm 1's
    final sweep uses ``threshold=3`` — it only removes the most costly
    case, leaving cost-rejected two-complement gates alone.
    """

    def gate_fn(new: Mig, _old: int, mapped):
        inverted_nonconst = sum(1 for s in mapped if s.inverted and not s.is_const)
        if inverted_nonconst >= threshold:
            flipped = tuple(~s for s in mapped)
            return ~new.add_maj(*flipped)
        return new.add_maj(*mapped)

    new, _ = mig.rebuild(gate_fn)
    return new
