"""Majority-Inverter Graph substrate.

The MIG (Amarù et al., DAC'14) is a logic network whose only gate is the
three-input majority with optionally complemented edges.  This subpackage
provides the data structure itself plus everything the compiler needs around
it: the Ω Boolean algebra as local transforms, bit-parallel simulation,
structural analysis, equivalence checking, and file I/O.
"""

from repro.mig.signal import Signal
from repro.mig.graph import Mig
from repro.mig.build import LogicBuilder
from repro.mig.context import AnalysisContext
from repro.mig.simulate import (
    output_tables,
    simulate,
    simulate_outputs,
    truth_tables,
)

__all__ = [
    "Signal",
    "Mig",
    "LogicBuilder",
    "AnalysisContext",
    "output_tables",
    "simulate",
    "simulate_outputs",
    "truth_tables",
]
