"""Gate-level construction helpers on top of :class:`~repro.mig.graph.Mig`.

Two construction styles are supported:

* ``"aoig"`` (default) — AND/OR gates become majority nodes with a constant
  child, inverters become complemented edges.  This mirrors how the paper
  obtains its *initial non-optimized MIGs* ("AND/OR operators are replaced
  node-wise by MAJ operators with a constant input"), so circuits built this
  way are faithful starting points for the rewriting experiments.
* ``"maj"`` — exploits the majority operator with non-constant inputs where
  profitable (e.g. a 3-node full adder instead of a 9-node one).  Used to
  demonstrate what optimized MIGs look like (paper Fig. 1(b)).

The builder works in terms of :class:`~repro.mig.signal.Signal`; inversion
is free (``~s``), as in the MIG model.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import MigError
from repro.mig.graph import Mig
from repro.mig.signal import Signal


class LogicBuilder:
    """Convenience wrapper for building MIGs from conventional gates."""

    STYLES = ("aoig", "maj")

    def __init__(self, mig: Optional[Mig] = None, style: str = "aoig", name: Optional[str] = None):
        if style not in self.STYLES:
            raise MigError(f"unknown builder style {style!r}; expected one of {self.STYLES}")
        self.mig = mig if mig is not None else Mig(name=name)
        self.style = style

    # -- leaf creation ---------------------------------------------------

    def const(self, value: int) -> Signal:
        """The constant signal 0 or 1."""
        if value not in (0, 1):
            raise MigError(f"constant must be 0 or 1, got {value!r}")
        return Signal.CONST1 if value else Signal.CONST0

    def input(self, name: Optional[str] = None) -> Signal:
        """Add one primary input."""
        return self.mig.add_pi(name)

    def inputs(self, count: int, prefix: str) -> list[Signal]:
        """Add ``count`` primary inputs named ``prefix0 .. prefix{count-1}``."""
        return [self.mig.add_pi(f"{prefix}{i}") for i in range(count)]

    def output(self, signal: Signal, name: Optional[str] = None) -> int:
        """Register a primary output."""
        return self.mig.add_po(signal, name)

    def outputs(self, signals: Sequence[Signal], prefix: str) -> None:
        """Register outputs named ``prefix0 .. prefixN``."""
        for i, signal in enumerate(signals):
            self.mig.add_po(signal, f"{prefix}{i}")

    # -- primitive gates -------------------------------------------------

    def not_(self, a: Signal) -> Signal:
        """Inversion — free in an MIG (complemented edge)."""
        return ~a

    def and_(self, a: Signal, b: Signal) -> Signal:
        """``a ∧ b = ⟨a b 0⟩``."""
        return self.mig.add_maj(a, b, Signal.CONST0)

    def or_(self, a: Signal, b: Signal) -> Signal:
        """``a ∨ b = ⟨a b 1⟩``."""
        return self.mig.add_maj(a, b, Signal.CONST1)

    def nand(self, a: Signal, b: Signal) -> Signal:
        """``¬(a ∧ b)``."""
        return ~self.and_(a, b)

    def nor(self, a: Signal, b: Signal) -> Signal:
        """``¬(a ∨ b)``."""
        return ~self.or_(a, b)

    def maj(self, a: Signal, b: Signal, c: Signal) -> Signal:
        """The native majority gate ``⟨a b c⟩``."""
        return self.mig.add_maj(a, b, c)

    def xor(self, a: Signal, b: Signal) -> Signal:
        """``a ⊕ b`` — three majority nodes: ``(a ∨ b) ∧ ¬(a ∧ b)``.

        Constant operands fold for free (AND/OR fold inside ``add_maj``
        already; XOR needs the explicit short-circuit).
        """
        if a.is_const:
            return ~b if a.const_value else b
        if b.is_const:
            return ~a if b.const_value else a
        return self.and_(self.or_(a, b), self.nand(a, b))

    def xnor(self, a: Signal, b: Signal) -> Signal:
        """``¬(a ⊕ b)``."""
        return ~self.xor(a, b)

    def implies(self, a: Signal, b: Signal) -> Signal:
        """``a → b = ¬a ∨ b``."""
        return self.or_(~a, b)

    def mux(self, select: Signal, if_true: Signal, if_false: Signal) -> Signal:
        """2:1 multiplexer ``select ? if_true : if_false``."""
        return self.or_(self.and_(select, if_true), self.and_(~select, if_false))

    # -- wide gates ------------------------------------------------------

    def and_reduce(self, signals: Iterable[Signal]) -> Signal:
        """Balanced AND of arbitrarily many signals (1 for empty input)."""
        return self._reduce(list(signals), self.and_, self.const(1))

    def or_reduce(self, signals: Iterable[Signal]) -> Signal:
        """Balanced OR of arbitrarily many signals (0 for empty input)."""
        return self._reduce(list(signals), self.or_, self.const(0))

    def xor_reduce(self, signals: Iterable[Signal]) -> Signal:
        """Balanced XOR of arbitrarily many signals (0 for empty input)."""
        return self._reduce(list(signals), self.xor, self.const(0))

    @staticmethod
    def _reduce(items: list[Signal], op, empty: Signal) -> Signal:
        if not items:
            return empty
        while len(items) > 1:
            items = [
                op(items[i], items[i + 1]) if i + 1 < len(items) else items[i]
                for i in range(0, len(items), 2)
            ]
        return items[0]

    # -- arithmetic cells ------------------------------------------------

    def half_adder(self, a: Signal, b: Signal) -> tuple[Signal, Signal]:
        """Return ``(sum, carry)`` of a half adder."""
        return self.xor(a, b), self.and_(a, b)

    def full_adder(self, a: Signal, b: Signal, c: Signal) -> tuple[Signal, Signal]:
        """Return ``(sum, carry)`` of a full adder.

        In ``maj`` style this is the 3-node construction
        ``carry = ⟨a b c⟩``, ``sum = ⟨c ¬carry ⟨a b ¬c⟩⟩``; in ``aoig``
        style the conventional XOR/AND/OR decomposition (9 nodes), which is
        what a straightforward AOIG-to-MIG transposition produces.
        """
        if self.style == "maj":
            carry = self.maj(a, b, c)
            inner = self.maj(a, b, ~c)
            total = self.maj(c, ~carry, inner)
            return total, carry
        axb = self.xor(a, b)
        total = self.xor(axb, c)
        carry = self.or_(self.and_(a, b), self.and_(axb, c))
        return total, carry
