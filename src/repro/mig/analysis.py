"""Structural analysis of MIGs: levels, fanout, complement statistics.

These are the measurements the compiler's heuristics consume — the
candidate priority queue compares parent levels and releasing children, and
the rewriting cost model counts complemented edges per node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mig.graph import Mig


def levels(mig: Mig) -> dict[int, int]:
    """Topological level of every node (constant and PIs are level 0).

    Gates are visited in :meth:`~repro.mig.graph.Mig.topo_gates` order so
    the result is correct even after in-place rewriting, when index order
    is no longer topological.
    """
    result = {0: 0}
    for pi in mig.pis():
        result[pi.node] = 0
    ca, cb, cc = mig._ca, mig._cb, mig._cc
    for v in mig.topo_gates():
        result[v] = 1 + max(
            result[ca[v] >> 1], result[cb[v] >> 1], result[cc[v] >> 1]
        )
    return result


def depth(mig: Mig) -> int:
    """Number of gate levels on the longest PI→PO path.

    Graphs with incremental level maintenance enabled
    (:meth:`~repro.mig.graph.Mig.enable_levels`) answer from the
    maintained table in O(#POs); everything else pays one traversal.
    """
    if mig.num_gates == 0:
        return 0
    if mig.has_levels:
        return mig.current_depth()
    lv = levels(mig)
    if mig.num_pos:
        return max((lv[po.node] for po in mig.pos()), default=0)
    return max(lv.values())


def fanout_counts(mig: Mig) -> dict[int, int]:
    """Number of reader edges per node (gate children + primary outputs)."""
    counts = {v: 0 for v in mig.nodes()}
    ca, cb, cc = mig._ca, mig._cb, mig._cc
    for v in mig.gates():
        counts[ca[v] >> 1] += 1
        counts[cb[v] >> 1] += 1
        counts[cc[v] >> 1] += 1
    for po in mig.pos():
        counts[po.node] += 1
    return counts


def parents_of(mig: Mig) -> dict[int, list[int]]:
    """Gate parents of every node (a parent appears once per child edge)."""
    parents: dict[int, list[int]] = {v: [] for v in mig.nodes()}
    ca, cb, cc = mig._ca, mig._cb, mig._cc
    for v in mig.gates():
        parents[ca[v] >> 1].append(v)
        parents[cb[v] >> 1].append(v)
        parents[cc[v] >> 1].append(v)
    return parents


def use_counts(mig: Mig) -> dict[int, int]:
    """Non-constant readers per node (gate child edges plus PO edges).

    This is the compiler's initial reference count: when it reaches zero
    the node's cells are returned to the allocator (§4.2.3).  Unlike
    :func:`fanout_counts`, edges to the constant node are not charged —
    constants never occupy a work cell.
    """
    uses = {v: 0 for v in mig.nodes()}
    ca, cb, cc = mig._ca, mig._cb, mig._cc
    for v in mig.gates():
        for e in (ca[v], cb[v], cc[v]):
            if e >= 2:
                uses[e >> 1] += 1
    for po in mig.pos():
        if not po.is_const:
            uses[po.node] += 1
    return uses


def complemented_child_count(mig: Mig, node: int, count_constants: bool = False) -> int:
    """Complemented child edges of a gate.

    Constant children are excluded by default: a complemented edge to the
    constant node is just the constant 1 and costs nothing to compute, so
    the compiler's cost analysis must not count it as an inversion.
    """
    return sum(
        1
        for child in mig.children(node)
        if child.inverted and (count_constants or not child.is_const)
    )


@dataclass(frozen=True)
class ComplementStats:
    """Distribution of (non-constant) complemented edges over gates."""

    num_gates: int
    by_count: tuple[int, int, int, int]  # gates with 0, 1, 2, 3 complements

    @property
    def multi_complement_gates(self) -> int:
        """Gates with two or more complemented children — the costly ones."""
        return self.by_count[2] + self.by_count[3]


def complement_stats(mig: Mig) -> ComplementStats:
    """Histogram of complemented-child counts over all gates."""
    histogram = [0, 0, 0, 0]
    for v in mig.gates():
        histogram[complemented_child_count(mig, v)] += 1
    return ComplementStats(num_gates=mig.num_gates, by_count=tuple(histogram))


@dataclass(frozen=True)
class MigStats:
    """Summary used by reports and the CLI."""

    num_pis: int
    num_pos: int
    num_gates: int
    depth: int
    complements: ComplementStats

    def __str__(self) -> str:
        c = self.complements.by_count
        return (
            f"PIs={self.num_pis} POs={self.num_pos} gates={self.num_gates} "
            f"depth={self.depth} complements(0/1/2/3)={c[0]}/{c[1]}/{c[2]}/{c[3]}"
        )


def stats(mig: Mig) -> MigStats:
    """Collect :class:`MigStats` for ``mig``."""
    return MigStats(
        num_pis=mig.num_pis,
        num_pos=mig.num_pos,
        num_gates=mig.num_gates,
        depth=depth(mig),
        complements=complement_stats(mig),
    )
