"""Topological reordering of MIGs.

The paper's naïve baseline translates gates "in order of their node
indexes", i.e. in whatever order the benchmark file listed them — an order
unrelated to dataflow locality.  Our generators create gates in a
depth-first, locality-friendly order, which *already* keeps few values
live; to study how much the compiler's candidate selection matters on
hostile input orders (the situation the paper's baseline numbers reflect),
:func:`shuffle_topological` re-creates an equivalent MIG whose gate indices
follow a seeded random topological order.
"""

from __future__ import annotations

import random

from repro.mig.graph import _GATE, Mig
from repro.mig.signal import Signal


def reorder_dfs(mig: Mig) -> Mig:
    """Equivalent MIG with gates re-indexed in PO-driven DFS postorder.

    Re-creates every gate in the order a depth-first walk from the primary
    outputs finishes them (children in stored order, outputs in declaration
    order).  The resulting index order has strong dataflow locality: a
    consumer's index is close to its producers'.  An index-ordered
    scheduler on a DFS-reordered MIG keeps very few values live, which is
    why the compiler applies this as a pre-pass — it makes liveness
    independent of how the input file happened to order its gates.
    """
    new = Mig(name=mig.name)
    enc_map: dict[int, int] = {0: 0}
    for pi in mig.pis():
        enc_map[pi.node] = int(new.add_pi(mig.pi_name(pi.node)))

    ca, cb, cc = mig._ca, mig._cb, mig._cc
    kind = getattr(mig, "_kind", None)
    if kind is None:
        # Duck-typed graphs (e.g. DictMig) lack the flat kind column;
        # synthesize one from the is_gate predicate.
        kind = bytearray(len(ca))
        for v in range(len(ca)):
            if mig.is_gate(v):
                kind[v] = _GATE
    add_enc = new.add_maj_enc
    visited: set[int] = set()
    for po in mig.pos():
        if not mig.is_gate(po.node) or po.node in visited:
            continue
        # Iterative postorder: (node, child_cursor) stack.
        stack: list[tuple[int, int]] = [(po.node, 0)]
        on_stack: set[int] = {po.node}
        while stack:
            node, cursor = stack.pop()
            children = (ca[node], cb[node], cc[node])
            while cursor < 3:
                child = children[cursor] >> 1
                cursor += 1
                if kind[child] == _GATE and child not in visited and child not in on_stack:
                    stack.append((node, cursor))
                    stack.append((child, 0))
                    on_stack.add(child)
                    break
            else:
                visited.add(node)
                ea, eb, ec = children
                enc_map[node] = add_enc(
                    enc_map[ea >> 1] ^ (ea & 1),
                    enc_map[eb >> 1] ^ (eb & 1),
                    enc_map[ec >> 1] ^ (ec & 1),
                )

    for po, name in zip(mig.pos(), mig.po_names()):
        new.add_po(Signal(enc_map[po.node] ^ po.inverted), name)
    return new


def shuffle_topological(mig: Mig, seed: int = 0) -> Mig:
    """Equivalent MIG with gates re-created in a random topological order.

    Functionally identical (same PIs, same POs, same gate structure); only
    the node indices — and therefore everything an index-ordered scheduler
    sees — change.  Deterministic for a given seed.
    """
    rng = random.Random(seed)
    new = Mig(name=mig.name)
    mapping: dict[int, Signal] = {0: Signal.CONST0}
    for pi in mig.pis():
        mapping[pi.node] = new.add_pi(mig.pi_name(pi.node))

    pending: dict[int, int] = {}
    dependents: dict[int, list[int]] = {}
    ready: list[int] = []
    for v in mig.gates():
        missing = 0
        for child in mig.children(v):
            if mig.is_gate(child.node) and child.node not in mapping:
                missing += 1
                dependents.setdefault(child.node, []).append(v)
        pending[v] = missing
        if missing == 0:
            ready.append(v)

    while ready:
        index = rng.randrange(len(ready))
        ready[index], ready[-1] = ready[-1], ready[index]
        v = ready.pop()
        a, b, c = mig.children(v)
        mapping[v] = new.add_maj(
            mapping[a.node].xor_inversion(a.inverted),
            mapping[b.node].xor_inversion(b.inverted),
            mapping[c.node].xor_inversion(c.inverted),
        )
        for parent in dependents.get(v, ()):
            pending[parent] -= 1
            if pending[parent] == 0:
                ready.append(parent)

    for po, name in zip(mig.pos(), mig.po_names()):
        new.add_po(mapping[po.node].xor_inversion(po.inverted), name)
    return new
