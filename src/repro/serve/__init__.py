"""Synthesis-as-a-service: the ``plimc serve`` compilation server.

The serving layer turns the library's pipeline into a long-lived
process: circuits go in as ``.mig``/BLIF/AIGER text over HTTP+JSON,
PLiM programs come out, and everything in between — the shared
:class:`~repro.core.cache.SynthesisCache`, the supervised worker pool,
in-flight request dedup, bounded admission, graceful drain — is the
machinery the rest of this codebase already grew, composed behind two
small seams (:func:`repro.core.batch.parallel_map_async` and the
read-only-cache + absorb protocol).

Layering::

    http.py      bytes ⇄ Request/Response        (socket transport)
    app.py       routing, admission, dedup, jobs (the application)
    worker.py    the picklable compile task      (pool/thread side)
    protocol.py  JSON shapes, errors, parsing    (shared vocabulary)
    jobs.py      background job registry         (pareto / cost-loop)
    dedup.py     in-flight request collapsing

Tier-1 tests drive ``app.handle()`` in-process (no sockets); the
byte-level framing is covered by the ``socket``-marked smoke tests.
See ``docs/serving.md`` for the endpoint reference.
"""

from repro.serve.app import PlimServer, ServerConfig
from repro.serve.protocol import Request, Response

__all__ = ["PlimServer", "Request", "Response", "ServerConfig"]
