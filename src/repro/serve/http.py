"""The socket transport of ``plimc serve``: a stdlib asyncio HTTP/1.1 front.

Deliberately minimal — no external HTTP framework exists in this
environment, and the protocol surface is small enough that a hand-rolled
request reader is the *simpler* dependency.  Scope: one JSON request per
connection (``Connection: close`` on every response), request line +
headers + ``Content-Length`` body, hard caps on line/body sizes, and a
read deadline (``ServerConfig.read_timeout_s`` → 408) so a stalled or
silent client can't pin a connection task open indefinitely.  All
actual behavior lives in :class:`~repro.serve.app.PlimServer`; this
module only moves bytes, which is why the tier-1 harness skips it
entirely and the real-socket smoke test (marked ``socket``) covers the
byte-level framing.

Lifecycle: :func:`run_server` installs SIGTERM/SIGINT handlers that stop
the listener, flip the app into draining (new work → 503 while the
listener is still up mid-drain), await :meth:`~repro.serve.app
.PlimServer.drained`, and return — the graceful-drain contract the
deployment story depends on.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Optional

from repro.serve.app import PlimServer
from repro.serve.protocol import (
    STATUS_REASONS,
    Request,
    error_response,
)

#: request line / single header line cap (anything longer is hostile)
_MAX_LINE = 16 * 1024
_MAX_HEADERS = 64


async def handle_connection(
    app: PlimServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Read one HTTP request, run it through the app, write the response."""
    try:
        # the read deadline is the slow-loris guard: admission control
        # only applies after a full request is parsed, so without it a
        # client that connects and trickles (or sends nothing) would
        # pin this task open forever
        try:
            request, framing_error = await asyncio.wait_for(
                _read_request(app, reader),
                timeout=app.config.read_timeout_s,
            )
        except asyncio.TimeoutError:
            request, framing_error = None, error_response(
                408,
                "request-timeout",
                f"request not received within "
                f"{app.config.read_timeout_s:g}s",
            )
        if framing_error is not None:
            response = framing_error
        else:
            response = await app.handle(request)
        await _write_response(writer, response)
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # client went away; nothing to answer
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _read_request(app, reader):
    """Parse the wire into a :class:`Request`; framing errors become a
    ready-made error response (second tuple slot) instead of an exception,
    so the connection always gets a structured answer."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.LimitOverrunError:
        return None, error_response(400, "bad-request", "request line too long")
    if len(line) > _MAX_LINE:
        return None, error_response(400, "bad-request", "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        return None, error_response(400, "bad-request", "malformed request line")
    method, path = parts[0], parts[1]
    headers: dict = {}
    for _ in range(_MAX_HEADERS + 1):
        try:
            line = await reader.readuntil(b"\r\n")
        except asyncio.LimitOverrunError:
            return None, error_response(400, "bad-request", "headers too large")
        if line in (b"\r\n", b"\n"):
            break
        if len(line) > _MAX_LINE or len(headers) >= _MAX_HEADERS:
            return None, error_response(400, "bad-request", "headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            return None, error_response(400, "bad-request", "malformed header")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
        if length < 0:
            raise ValueError
    except ValueError:
        return None, error_response(
            400, "bad-request", f"bad Content-Length: {length_text!r}"
        )
    if length > app.config.max_body_bytes:
        return None, error_response(
            413,
            "payload-too-large",
            f"request body exceeds {app.config.max_body_bytes} bytes",
        )
    body = await reader.readexactly(length) if length else b""
    return Request(method=method, path=path, body=body, headers=headers), None


async def _write_response(writer: asyncio.StreamWriter, response) -> None:
    reason = STATUS_REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    head.append("Content-Type: application/json")
    head.append(f"Content-Length: {len(response.body)}")
    for name, value in response.headers:
        head.append(f"{name}: {value}")
    head.append("Connection: close")
    writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + response.body)
    await writer.drain()


async def serve(
    app: PlimServer, host: str = "127.0.0.1", port: int = 8080
) -> asyncio.Server:
    """Bind and return the listening server (caller owns the lifecycle)."""

    async def _on_connection(reader, writer):
        await handle_connection(app, reader, writer)

    return await asyncio.start_server(
        _on_connection, host, port, limit=_MAX_LINE
    )


async def run_server(
    app: PlimServer,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    ready: Optional[asyncio.Event] = None,
) -> None:
    """Serve until SIGTERM/SIGINT, then drain gracefully and return.

    ``ready`` (when given) is set once the socket is listening — the
    smoke tests' startup synchronization.
    """
    server = await serve(app, host, port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or exotic platform: rely on KeyboardInterrupt
    addr = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in (server.sockets or [])
    )
    print(f"plimc serve: listening on {addr}", file=sys.stderr, flush=True)
    if ready is not None:
        ready.set()
    async with server:
        await stop.wait()
        print("plimc serve: draining...", file=sys.stderr, flush=True)
        server.close()
        await server.wait_closed()
        await app.drained()
    print("plimc serve: drained, bye", file=sys.stderr, flush=True)
