"""Job bookkeeping for the long-running ``plimc serve`` endpoints.

``pareto`` sweeps and ``cost-loop`` runs take seconds to minutes — far
past any sane request deadline — so ``POST /jobs`` answers ``202`` with
a job id immediately and ``GET /jobs/<id>`` polls state and *streaming
progress* (every completed :class:`~repro.core.pareto.ParetoPoint` /
:class:`~repro.core.rewriting.CostLoopStep` appears as it lands, fed by
the ``progress=`` callbacks those drivers grew for exactly this).

The registry is plain thread-safe state: job functions run on executor
threads and append progress rows from there, while the event loop reads
snapshots.  Everything under one lock; snapshots are deep-enough copies
that readers never see a row mid-append.

In-flight dedup mirrors the compile path: a second submission of the
same ``(kind, fingerprint, params)`` while the first is still running
returns the *same* job id instead of spawning a duplicate sweep.

Finished records don't accumulate forever: the registry retains the
most recent ``max_finished`` done/failed jobs and evicts older ones
(their ids answer 404 afterwards) — a server that runs until SIGTERM
must not grow memory per job served.  Queued/running jobs are never
evicted regardless of the cap.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

#: a job's lifecycle: queued → running → done | failed
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One background job's mutable record (guard: the registry lock)."""

    id: str
    kind: str
    key: str
    state: str = "queued"
    progress: list = field(default_factory=list)
    result: Optional[dict] = None
    error: Optional[dict] = None
    created: float = 0.0
    seconds: Optional[float] = None


class JobRegistry:
    """Thread-safe job table with in-flight dedup by job key."""

    def __init__(self, max_finished: int = 256):
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, str] = {}
        self._next = 0
        self._max_finished = max_finished

    def submit(self, kind: str, key: str) -> tuple[Job, bool]:
        """Create a job, or join the in-flight one with the same key.

        Returns ``(job, created)``; ``created=False`` means the caller
        deduplicated onto an already-running job.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                return self._jobs[existing], False
            self._next += 1
            job = Job(
                id=f"job-{self._next}",
                kind=kind,
                key=key,
                created=time.time(),
            )
            self._jobs[job.id] = job
            self._inflight[key] = job.id
            return job, True

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def start(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            if job.state == "queued":
                job.state = "running"

    def add_progress(self, job_id: str, item: dict) -> None:
        """Append one progress row (called from the job's thread).

        Rows arriving after the job already finished (a timed-out job's
        thread keeps running — CPython cannot cancel it) are dropped, so
        a failed job's report never mutates afterwards.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and job.state == "running":
                job.progress.append(dict(item))

    def finish(self, job_id: str, result: dict) -> None:
        with self._lock:
            job = self._jobs[job_id]
            if job.state not in ("queued", "running"):
                return
            job.state = "done"
            job.result = dict(result)
            job.seconds = time.time() - job.created
            self._inflight.pop(job.key, None)
            self._evict_finished_locked()

    def fail(self, job_id: str, error: dict) -> None:
        with self._lock:
            job = self._jobs[job_id]
            if job.state not in ("queued", "running"):
                return
            job.state = "failed"
            job.error = dict(error)
            job.seconds = time.time() - job.created
            self._inflight.pop(job.key, None)
            self._evict_finished_locked()

    def _evict_finished_locked(self) -> None:
        """Drop the oldest done/failed records past ``max_finished``.

        Insertion order of ``_jobs`` is submission order and ids are
        never reused, so "oldest" is simply the front of the dict;
        queued/running jobs are skipped (pinned) no matter their age.
        """
        finished = [
            job.id
            for job in self._jobs.values()
            if job.state in ("done", "failed")
        ]
        for job_id in finished[: max(0, len(finished) - self._max_finished)]:
            del self._jobs[job_id]

    def active_count(self) -> int:
        """Jobs still queued or running (the drain gate counts these)."""
        with self._lock:
            return sum(
                1 for j in self._jobs.values() if j.state in ("queued", "running")
            )

    def snapshot(self, job_id: str) -> Optional[dict]:
        """A consistent JSON-ready view of one job, or ``None``."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            return {
                "id": job.id,
                "kind": job.kind,
                "state": job.state,
                "progress": [dict(p) for p in job.progress],
                "result": dict(job.result) if job.result is not None else None,
                "error": dict(job.error) if job.error is not None else None,
                "seconds": round(job.seconds, 6) if job.seconds is not None else None,
            }

    def summaries(self) -> list[dict]:
        """One line per job (``GET /jobs``), oldest first."""
        with self._lock:
            return [
                {
                    "id": job.id,
                    "kind": job.kind,
                    "state": job.state,
                    "progress_rows": len(job.progress),
                }
                for job in self._jobs.values()
            ]
