"""The compile task ``plimc serve`` ships to its supervised workers.

One request = one task on the :mod:`repro.core.resilience` engine.  The
task is a module-level function over a plain-dict payload, so it pickles
into a real pool worker (``ServerConfig.pooled=True`` — per-request
deadlines and crash isolation) and runs unchanged inline (the default —
no process round-trip at interactive latencies).

The payload carries the parsed :class:`~repro.mig.graph.Mig`, its
content fingerprint, the normalized options dict and a *cache ref*
(:func:`~repro.core.cache.payload_cache_ref` pool-style, never the live
instance: the task may run on a worker process or an executor thread,
and the server's cache is only ever touched from the event loop).  The
task checks the shared cache's compilation kind first, compiles on a
miss, stores the full answer, and ships the fresh entries back for the
event loop to :meth:`~repro.core.cache.SynthesisCache.absorb` — the same
read-only + merge protocol every pooled driver in this codebase uses.
"""

from __future__ import annotations

import io
from typing import Optional

from repro.core.cache import worker_cache
from repro.core.compiler import CompilerOptions
from repro.core.pipeline import compile_mig
from repro.core.rewriting import RewriteOptions
from repro.mig.graph import Mig
from repro.mig.io_mig import write_mig


def request_option_sets(options: dict):
    """The exact ``(rewrite_options, compiler_options)`` pair of a request.

    Mirrors :func:`repro.core.pipeline.compile_mig`'s internal option
    construction so the *cache key* computed on the event loop (fast
    path) and in the worker (slow path) is identical to the options the
    compile actually runs under.  ``rewrite_options`` is ``None`` when
    the request disabled rewriting — exactly what ``compile_mig`` would
    record.
    """
    copts = CompilerOptions()
    if not options["rewrite"]:
        return None, copts
    ropts = RewriteOptions(
        effort=options["effort"],
        po_negation_cost=2 if copts.fix_output_polarity else 0,
        engine=options["engine"],
        objective=options["objective"],
    )
    return ropts, copts


def build_record(name: Optional[str], result) -> dict:
    """The JSON-ready compilation record stored in the cache and served.

    Carries everything a client needs (counts, the rewritten graph as
    ``.mig`` text, the program as ``.plim`` text), so a cache hit
    answers a request without touching the compiler at all.  The
    ``*_seconds`` fields are the per-stage wall-clock of the compile
    that *produced* the record — a cache hit serves them unchanged (the
    response's ``"cached"`` flag tells the two apart).
    """
    buf = io.StringIO()
    write_mig(result.compiled_mig, buf)
    return {
        "name": name or result.compiled_mig.name or "",
        "num_gates": result.num_gates,
        "num_instructions": result.num_instructions,
        "num_rrams": result.num_rrams,
        "mig": buf.getvalue(),
        "program": result.program.to_text(),
        "rewrite_seconds": result.rewrite_seconds,
        "schedule_seconds": result.schedule_seconds,
        "translate_seconds": result.translate_seconds,
        "verify_seconds": result.verify_seconds,
    }


def serve_compile_task(payload: dict):
    """Answer one compile request; returns ``(record, cached, fresh)``.

    ``cached`` reports whether the answer came out of the shared cache
    (the response's ``"cached"`` field); ``fresh`` is the worker cache's
    :meth:`~repro.core.cache.SynthesisCache.export_fresh` batch for the
    event loop to merge.
    """
    mig: Mig = payload["mig"]
    fingerprint: str = payload["fingerprint"]
    options: dict = payload["options"]
    cache = worker_cache(payload.get("cache_ref"))
    ropts, copts = request_option_sets(options)
    if cache is not None:
        hit = cache.get_compilation(fingerprint, ropts, copts)
        if hit is not None:
            return hit, True, cache.export_fresh()
    result = compile_mig(
        mig,
        rewrite=options["rewrite"],
        rewrite_options=ropts,
        compiler_options=copts,
        cache=cache,
    )
    record = build_record(payload.get("name"), result)
    fresh: list = []
    if cache is not None:
        cache.put_compilation(fingerprint, ropts, copts, record)
        fresh = cache.export_fresh()
    return record, False, fresh
