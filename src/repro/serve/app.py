"""The ``plimc serve`` application: routing, admission, dedup, jobs.

:class:`PlimServer` is the transport-independent core — the http layer
and the tier-1 in-process test harness both drive the same
``await app.handle(Request) -> Response`` entry point, so every
protocol behavior (including the fault, shed and drain paths) is testable
without a socket.

Execution model
---------------
The event loop owns all shared state: the :class:`~repro.core.cache
.SynthesisCache`, the dedup table, the admission counter.  Compiles run
off-loop — on an executor thread (default) or a supervised worker
process (``pooled=True``, which buys per-request deadlines and crash
isolation) — and *never* see the live cache: they get a pool-style cache
ref, compute against a read-only view, and ship fresh entries back for
the event loop to absorb.  One request = one task on the
:mod:`repro.core.resilience` engine with a per-class
:class:`~repro.core.resilience.TaskPolicy` (``interactive``: no retries,
fail fast; ``batch``: one retry), so a crashed or hung worker becomes a
structured 502/504 — never a wedged connection.

Admission is a bounded counter, not a queue: past ``queue_limit``
concurrent requests the server sheds with ``429`` + ``Retry-After``
immediately (clients retry; the cache+dedup make retries cheap).  A
draining server (SIGTERM) answers new work with ``503`` while in-flight
requests and jobs run to completion — :meth:`PlimServer.drained` is the
await-point the http layer holds the process open on.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional

from repro.core.batch import parallel_map_async
from repro.core.cache import SynthesisCache, payload_cache_ref, worker_cache
from repro.core.resilience import FaultPlan, TaskFailure, TaskPolicy
from repro.errors import ReproError
from repro.mig.graph import Mig
from repro.serve import protocol
from repro.serve.dedup import DedupTable
from repro.serve.jobs import JobRegistry
from repro.serve.protocol import (
    ProtocolError,
    Request,
    Response,
    canonical_json,
    error_response,
)
from repro.serve.worker import request_option_sets, serve_compile_task

#: exception families a task may legitimately raise for bad *input*
#: (answered 422); anything else is a server-side 500
_CLIENT_ERROR_TYPES = frozenset(
    {
        "ReproError",
        "MigError",
        "ParseError",
        "CompilationError",
        "MachineError",
        "AllocationError",
        "VerificationError",
        "BenchmarkError",
    }
)

#: job kinds → allowed params (validated before a job is created)
_JOB_PARAMS = {
    "pareto": {"effort", "max_points", "verify"},
    "cost-loop": {"objective", "effort", "max_iterations"},
}


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of one :class:`PlimServer` instance.

    ``workers`` bounds *concurrent* compiles (an asyncio semaphore);
    ``queue_limit`` bounds requests in the system at once — admitted
    requests beyond ``workers`` wait for a slot, requests beyond
    ``queue_limit`` are shed with 429.  ``pooled`` routes every compile
    through a supervised worker process (the only way ``timeout_s``
    deadlines can actually kill a runaway compile — inline threads are
    uncancellable in CPython).  ``read_timeout_s`` is the socket
    transport's deadline for receiving one full request (stalled
    clients get 408 instead of holding a connection task forever);
    ``max_finished_jobs`` caps how many done/failed job records the
    registry retains.  ``fault_plan`` injects deterministic faults into
    the ``"compile"`` phase (task index 0 of each request) — the test
    harness's crash/timeout lever.
    """

    workers: int = 2
    pooled: bool = False
    queue_limit: int = 8
    request_timeout_s: Optional[float] = None
    job_timeout_s: Optional[float] = None
    read_timeout_s: Optional[float] = 10.0
    retry_after_s: float = 1.0
    retry_backoff_s: float = 0.05
    batch_retries: int = 1
    max_body_bytes: int = 4 * 1024 * 1024
    max_finished_jobs: int = 256
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {self.workers!r}")
        if self.queue_limit < 1:
            raise ReproError(
                f"queue_limit must be >= 1, got {self.queue_limit!r}"
            )
        if self.max_finished_jobs < 0:
            raise ReproError(
                f"max_finished_jobs must be >= 0, got {self.max_finished_jobs!r}"
            )


class PlimServer:
    """The application object behind ``plimc serve`` (and the tests)."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        *,
        cache: Optional[SynthesisCache] = None,
    ):
        self.config = config or ServerConfig()
        if cache is not None:
            self.cache = cache
        else:
            self.cache = SynthesisCache(
                self.config.cache_dir, max_bytes=self.config.cache_max_bytes
            )
        self.jobs = JobRegistry(max_finished=self.config.max_finished_jobs)
        self.dedup = DedupTable()
        self.counters = {
            "requests": 0,
            "compiles": 0,
            "cache_answers": 0,
            "collapsed": 0,
            "shed": 0,
            "failures": 0,
            "jobs": 0,
        }
        self._admitted = 0
        self._draining = False
        self._job_tasks: set = set()
        # the compile-slot semaphore is loop-bound; created lazily per
        # running loop so one app instance survives repeated asyncio.run
        # calls (the golden tests do exactly that)
        self._slots: Optional[asyncio.Semaphore] = None
        self._slots_loop = None

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        """Answer one request; never raises (errors become responses)."""
        self.counters["requests"] += 1
        try:
            return await self._route(request)
        except ProtocolError as error:
            return error.response()
        except Exception as error:  # the router's last line of defense
            return error_response(
                500,
                "internal-error",
                f"{type(error).__name__}: {error}",
            )

    async def _route(self, request: Request) -> Response:
        if len(request.body) > self.config.max_body_bytes:
            raise ProtocolError(
                413,
                "payload-too-large",
                f"request body exceeds {self.config.max_body_bytes} bytes",
            )
        path, method = request.path.split("?", 1)[0], request.method.upper()
        if path == "/healthz":
            self._expect(method, "GET", path)
            return Response.ok({"status": "ok", "draining": self._draining})
        if path == "/compile":
            self._expect(method, "POST", path)
            return await self._compile(request)
        if path == "/jobs":
            if method == "POST":
                return await self._submit_job(request)
            self._expect(method, "GET", path)
            return Response.ok({"jobs": self.jobs.summaries()})
        if path.startswith("/jobs/"):
            self._expect(method, "GET", path)
            return self._job_status(path[len("/jobs/"):])
        if path == "/cache/stats":
            self._expect(method, "GET", path)
            return Response.ok(self.cache.stats_snapshot())
        if path == "/stats":
            self._expect(method, "GET", path)
            return Response.ok(self._server_stats())
        raise ProtocolError(404, "not-found", f"no such endpoint: {path}")

    @staticmethod
    def _expect(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise ProtocolError(
                405,
                "method-not-allowed",
                f"{path} supports {expected}, not {method}",
            )

    def _server_stats(self) -> dict:
        return {
            "counters": dict(self.counters),
            "admitted": self._admitted,
            "queue_limit": self.config.queue_limit,
            "workers": self.config.workers,
            "pooled": self.config.pooled,
            "draining": self._draining,
            "dedup": {
                "inflight": self.dedup.inflight(),
                "leaders": self.dedup.leaders,
                "collapsed": self.dedup.collapsed,
            },
            "jobs_active": self.jobs.active_count(),
        }

    # ------------------------------------------------------------------
    # POST /compile
    # ------------------------------------------------------------------

    async def _compile(self, request: Request) -> Response:
        payload = request.json()
        klass = protocol.request_class(payload)
        options = protocol.compile_options(payload)
        # the join MUST happen synchronously (no await between reading
        # the payload and joining): an executor hop here lets a fast
        # leader resolve and vacate the key before later identical
        # requests join, splitting one burst into several compiles —
        # hence the raw-payload key; only the leader parses/fingerprints
        key = protocol.dedup_key(payload, options)
        leader, future = self.dedup.join(key)
        if not leader:
            self.counters["collapsed"] += 1
            status, headers, body = await asyncio.shield(future)
            return Response(status, body, headers)
        # resolve unconditionally — a leader that leaves followers hanging
        # is worse than any error, so even a cancelled/crashed leader
        # publishes *something* to its dedup group (parse errors fan out
        # to followers exactly like compile errors)
        triple = None
        try:
            mig = await asyncio.to_thread(protocol.parse_circuit, payload)
            fingerprint = await asyncio.to_thread(mig.fingerprint)
            triple = await self._compile_leader(mig, fingerprint, options, klass)
        except ProtocolError as error:
            response = error.response()
            triple = (response.status, response.headers, response.body)
        except Exception as error:
            response = error_response(
                500, "internal-error", f"{type(error).__name__}: {error}"
            )
            triple = (response.status, response.headers, response.body)
        finally:
            if triple is None:
                response = error_response(
                    500, "internal-error", "compile leader aborted"
                )
                triple = (response.status, response.headers, response.body)
            self.dedup.resolve(key, triple)
        status, headers, body = triple
        return Response(status, body, headers)

    async def _compile_leader(
        self, mig: Mig, fingerprint: str, options: dict, klass: str
    ) -> tuple:
        """Run the one real compile of a dedup group; returns a triple."""
        self._admit()
        try:
            ropts, copts = request_option_sets(options)
            hit = self.cache.get_compilation(fingerprint, ropts, copts)
            if hit is not None:
                self.counters["cache_answers"] += 1
                return self._success_triple(hit, cached=True)
            async with self._compile_slot():
                task_payload = {
                    "mig": mig,
                    "name": mig.name,
                    "fingerprint": fingerprint,
                    "options": options,
                    "cache_ref": payload_cache_ref(self.cache, inline=False),
                }
                outcome = (
                    await parallel_map_async(
                        serve_compile_task,
                        [task_payload],
                        workers=1,
                        policy=self._policy(klass),
                        fault_plan=(self.config.fault_plan or FaultPlan()).scoped(
                            "compile"
                        ),
                        force_pool=self.config.pooled,
                    )
                )[0]
            if isinstance(outcome, TaskFailure):
                self.counters["failures"] += 1
                return self._failure_triple(outcome)
            record, cached, fresh = outcome
            self.cache.absorb(fresh)
            self.counters["compiles" if not cached else "cache_answers"] += 1
            return self._success_triple(record, cached=cached)
        finally:
            self._release()

    def _policy(self, klass: str) -> TaskPolicy:
        """The request class's task policy (``on_error="skip"`` always:
        failures must come back as structured records, never pool
        exceptions)."""
        retries = self.config.batch_retries if klass == "batch" else 0
        return TaskPolicy(
            timeout_s=self.config.request_timeout_s,
            retries=retries,
            backoff=self.config.retry_backoff_s,
            on_error="skip",
        )

    @staticmethod
    def _success_triple(record: dict, *, cached: bool) -> tuple:
        body = canonical_json({**record, "cached": cached})
        return (200, (), body)

    @staticmethod
    def _failure_triple(failure: TaskFailure) -> tuple:
        """A :class:`TaskFailure` as the protocol's structured error."""
        detail = {"attempts": failure.attempts}
        if failure.kind == "timeout":
            response = error_response(
                504, "timeout", failure.message, **detail
            )
        elif failure.kind == "crash":
            response = error_response(
                502, "worker-crash", failure.message, **detail
            )
        elif failure.error_type in _CLIENT_ERROR_TYPES:
            response = error_response(
                422,
                "task-error",
                failure.message,
                error_type=failure.error_type,
                **detail,
            )
        else:
            response = error_response(
                500,
                "internal-error",
                failure.message,
                error_type=failure.error_type,
                **detail,
            )
        return (response.status, response.headers, response.body)

    # ------------------------------------------------------------------
    # admission / drain
    # ------------------------------------------------------------------

    def _admit(self) -> None:
        if self._draining:
            raise ProtocolError(
                503, "draining", "server is draining; no new work accepted"
            )
        if self._admitted >= self.config.queue_limit:
            self.counters["shed"] += 1
            raise ProtocolError(
                429,
                "queue-full",
                f"admission queue is full ({self.config.queue_limit} in flight)",
                headers=(("Retry-After", f"{self.config.retry_after_s:g}"),),
                retry_after=self.config.retry_after_s,
            )
        self._admitted += 1

    def _release(self) -> None:
        self._admitted -= 1

    def _compile_slot(self) -> asyncio.Semaphore:
        loop = asyncio.get_running_loop()
        if self._slots_loop is not loop:
            self._slots = asyncio.Semaphore(self.config.workers)
            self._slots_loop = loop
        return self._slots

    def begin_drain(self) -> None:
        """Stop admitting work; in-flight requests and jobs finish."""
        self._draining = True

    async def drained(self) -> None:
        """Await full quiescence (the SIGTERM handler holds on this)."""
        self.begin_drain()
        while self._admitted > 0 or self.jobs.active_count() > 0:
            await asyncio.sleep(0.01)

    # ------------------------------------------------------------------
    # jobs: POST /jobs, GET /jobs/<id>
    # ------------------------------------------------------------------

    async def _submit_job(self, request: Request) -> Response:
        payload = request.json()
        kind = payload.get("kind")
        if kind not in _JOB_PARAMS:
            raise ProtocolError(
                400,
                "bad-request",
                f"unknown job kind {kind!r}; expected one of "
                f"{sorted(_JOB_PARAMS)}",
            )
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError(400, "bad-request", "'params' must be an object")
        unknown = set(params) - _JOB_PARAMS[kind]
        if unknown:
            raise ProtocolError(
                400,
                "bad-request",
                f"unknown params for {kind!r} jobs: {sorted(unknown)}",
            )
        if self._draining:
            raise ProtocolError(
                503, "draining", "server is draining; no new work accepted"
            )
        mig = await asyncio.to_thread(protocol.parse_circuit, payload)
        fingerprint = await asyncio.to_thread(mig.fingerprint)
        key = f"{kind}|{fingerprint}|{protocol.options_token(params)}"
        job, created = self.jobs.submit(kind, key)
        if created:
            self.counters["jobs"] += 1
            task = asyncio.get_running_loop().create_task(
                self._run_job(job.id, kind, mig, params)
            )
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)
        else:
            self.counters["collapsed"] += 1
        return Response.ok(
            {"job_id": job.id, "state": self.jobs.get(job.id).state,
             "deduplicated": not created},
            status=202,
        )

    def _job_status(self, job_id: str) -> Response:
        snapshot = self.jobs.snapshot(job_id)
        if snapshot is None:
            raise ProtocolError(404, "not-found", f"no such job: {job_id}")
        return Response.ok(snapshot)

    async def _run_job(self, job_id: str, kind: str, mig: Mig, params: dict):
        self.jobs.start(job_id)
        try:
            result, fresh = await asyncio.wait_for(
                asyncio.to_thread(self._job_body, job_id, kind, mig, params),
                timeout=self.config.job_timeout_s,
            )
            self.cache.absorb(fresh)
            self.jobs.finish(job_id, result)
        except asyncio.TimeoutError:
            self.jobs.fail(
                job_id,
                {
                    "code": "timeout",
                    "message": f"job exceeded {self.config.job_timeout_s}s",
                },
            )
        except ReproError as error:
            self.jobs.fail(
                job_id,
                {
                    "code": "task-error",
                    "message": str(error),
                    "error_type": type(error).__name__,
                },
            )
        except Exception as error:
            self.jobs.fail(
                job_id,
                {
                    "code": "internal-error",
                    "message": f"{type(error).__name__}: {error}",
                },
            )

    def _job_body(self, job_id: str, kind: str, mig: Mig, params: dict):
        """The blocking job work (runs on an executor thread).

        Shares the cache through the same read-only view + absorb
        protocol as compiles — the thread never touches the live cache.
        """
        view = worker_cache(payload_cache_ref(self.cache, inline=False))
        if kind == "pareto":
            from repro.core.pareto import pareto_sweep

            front = pareto_sweep(
                mig,
                workers=1,
                effort=params.get("effort", 4),
                max_points=params.get("max_points", 2),
                verify=params.get("verify", False),
                cache=view,
                progress=lambda point: self.jobs.add_progress(
                    job_id, point.to_dict()
                ),
            )
            result = front.to_dict()
        else:  # cost-loop
            from repro.core.rewriting import compile_cost_loop

            loop_result = compile_cost_loop(
                mig,
                objective=params.get("objective", "plim"),
                effort=params.get("effort", 2),
                max_iterations=params.get("max_iterations", 2),
                cache=view,
                progress=lambda step: self.jobs.add_progress(
                    job_id,
                    {
                        "iteration": step.iteration,
                        "variant": step.variant,
                        "accepted": step.accepted,
                        "metrics": dict(step.metrics),
                    },
                ),
            )
            result = {
                "model": loop_result.model,
                "iterations": loop_result.iterations,
                "converged": loop_result.converged,
                "baseline": dict(loop_result.baseline),
                "final": dict(loop_result.final),
                "num_gates": loop_result.mig.num_gates,
                "num_instructions": loop_result.num_instructions,
                "num_rrams": loop_result.num_rrams,
            }
        fresh = view.export_fresh() if view is not None else []
        return result, fresh
