"""In-flight request collapsing for ``plimc serve``.

When N identical compile requests arrive concurrently, exactly one
(the *leader*) runs the compile; the other N-1 (*followers*) await the
leader's finished ``(status, headers, body)`` triple and return it
verbatim — byte-identical responses, one compile.  Identity is a hash
of the raw circuit payload plus the normalized options token
(:func:`~repro.serve.protocol.dedup_key`) — computable *synchronously*
on the event loop, which is what makes burst collapse deterministic:
every request of a gathered burst joins the table before the leader's
first suspension point, so a fast leader can never resolve and vacate
the key ahead of its own followers.  Two *different* circuits (or the
same circuit under different options) can never cross-talk; the same
circuit in two different encodings forms two groups, and the
fingerprint-keyed cache unifies those across requests instead.

This is distinct from the cache: the cache answers *repeat* requests
after the first finishes; dedup collapses *concurrent* ones while the
first is still running.  Both together make the retry storm of a popular
circuit cost one compile total.

Futures here are plain :mod:`asyncio` futures, so the table must only be
touched from the event loop — which is exactly how the app uses it
(dedup wraps the dispatch, never the worker).
"""

from __future__ import annotations

import asyncio
from typing import Optional


class DedupTable:
    """fingerprint+options → the in-flight leader's response future."""

    def __init__(self):
        self._inflight: dict[str, asyncio.Future] = {}
        #: requests answered by joining a leader instead of computing
        self.collapsed = 0
        #: leader groups ever created (collapse ratio = collapsed/leaders)
        self.leaders = 0

    def join(self, key: str) -> tuple[bool, asyncio.Future]:
        """Become the leader for ``key``, or follow the existing one.

        Returns ``(is_leader, future)``.  The leader *must* eventually
        :meth:`resolve` the key — including on every error path —
        or followers hang; the app guarantees this with a ``finally``.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.collapsed += 1
            return False, existing
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.leaders += 1
        return True, future

    def resolve(self, key: str, triple) -> None:
        """Publish the leader's ``(status, headers, body)`` to followers.

        Errors fan out exactly like successes: a follower of a failed
        leader sees the same structured error bytes, not a retry.
        """
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(triple)

    def inflight(self) -> int:
        return len(self._inflight)
