"""Wire protocol of ``plimc serve``: request/response types and JSON shapes.

The server speaks JSON over HTTP, but every shape is defined here against
plain :class:`Request`/:class:`Response` values so the whole protocol is
testable in-process — the tier-1 harness in ``tests/serve/`` never opens a
socket.  Three invariants the tests pin down:

* **Canonical bodies.**  Every JSON body is serialized with
  :func:`canonical_json` (sorted keys, no whitespace), so two requests
  that deduplicate onto one in-flight compile receive *byte-identical*
  responses — the dedup layer fans out the leader's exact bytes.
* **Structured errors.**  Every failure path returns
  ``{"error": {"code", "message", ...}}`` with a stable ``code`` from
  the table below; clients switch on the code, never on the message.
* **Circuit ingestion mirrors the CLI.**  :func:`parse_circuit` accepts
  exactly the formats ``plimc compile`` does (it dispatches through the
  CLI's ``READERS`` table): ``mig``/``blif``/``aag`` as inline text,
  ``aig`` (binary AIGER) base64-encoded in ``circuit_b64``.

Error codes → HTTP status:

================== ======
``bad-request``    400
``unsupported-format`` 400
``payload-too-large``  413
``parse-error``    422
``task-error``     422
``queue-full``     429 (+ ``Retry-After`` header)
``request-timeout``    408
``internal-error`` 500
``worker-crash``   502
``draining``       503
``timeout``        504
``not-found``      404
``method-not-allowed`` 405
================== ======
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import io
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ParseError, ReproError
from repro.mig.graph import Mig

#: HTTP reason phrases for the status codes the server emits (the http
#: layer refuses to send a status missing from this table, which keeps
#: handlers honest about the protocol surface).
STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: circuit formats accepted by :func:`parse_circuit`, mapped to the CLI
#: reader extension they dispatch to (``plimc``'s ``READERS`` table)
FORMATS = {
    "mig": ".mig",
    "blif": ".blif",
    "aag": ".aag",
    "aig": ".aig",
}

#: formats whose payload is inherently binary and must arrive base64
#: encoded in ``circuit_b64`` (ASCII formats may use either field)
BINARY_FORMATS = frozenset({"aig"})


def canonical_json(obj) -> bytes:
    """The one true byte serialization of a response body.

    Sorted keys and minimal separators make the encoding a pure function
    of the value, which is what lets the dedup layer promise
    byte-identical fan-out and the golden tests pin exact bodies.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class Request:
    """One protocol-level request (transport-independent).

    The http layer builds these from sockets; the in-process test client
    builds them directly.  ``headers`` keys are lower-case.
    """

    method: str
    path: str
    body: bytes = b""
    headers: dict = field(default_factory=dict)

    def json(self) -> dict:
        """The body parsed as a JSON object, or :class:`ProtocolError`."""
        if not self.body:
            raise ProtocolError(400, "bad-request", "request body must be JSON")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(
                400, "bad-request", f"invalid JSON body: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise ProtocolError(
                400, "bad-request", "JSON body must be an object"
            )
        return payload


@dataclass(frozen=True)
class Response:
    """One protocol-level response: status, canonical body, extra headers.

    ``headers`` carries only the *extra* headers beyond the transport
    defaults (``Retry-After`` on 429 is the one that matters); the http
    layer adds ``Content-Type``/``Content-Length``.
    """

    status: int
    body: bytes
    headers: tuple = ()

    @staticmethod
    def ok(obj, status: int = 200) -> "Response":
        return Response(status, canonical_json(obj))

    def json(self) -> dict:
        """Parse the body back (test convenience)."""
        return json.loads(self.body.decode("utf-8"))


class ProtocolError(ReproError):
    """A request the server answers with a structured error body.

    Handlers raise these anywhere; the router converts them with
    :meth:`response`.  ``extra`` lands inside the ``"error"`` object
    (e.g. ``retry_after``), ``headers`` on the HTTP response.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        headers: tuple = (),
        **extra,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.extra = extra
        self.headers = headers

    def response(self) -> Response:
        return error_response(
            self.status, self.code, str(self), headers=self.headers, **self.extra
        )


def error_response(
    status: int, code: str, message: str, *, headers: tuple = (), **extra
) -> Response:
    """The structured error shape every failure path shares."""
    body = {"error": {"code": code, "message": message, **extra}}
    return Response(status, canonical_json(body), tuple(headers))


def parse_circuit(payload: dict) -> Mig:
    """Materialize the request's circuit through the CLI reader table.

    ``payload["format"]`` picks the reader; the circuit text rides in
    ``payload["circuit"]`` (inline text) or ``payload["circuit_b64"]``
    (base64, mandatory for binary ``aig``).  Raises
    :class:`ProtocolError` for protocol-level mistakes and maps reader
    :class:`~repro.errors.ParseError` to a 422.
    """
    from repro.cli import READERS  # the single source of format truth

    fmt = payload.get("format", "mig")
    if fmt not in FORMATS:
        raise ProtocolError(
            400,
            "unsupported-format",
            f"unknown circuit format {fmt!r}; expected one of "
            f"{sorted(FORMATS)}",
        )
    text = payload.get("circuit")
    b64 = payload.get("circuit_b64")
    if (text is None) == (b64 is None):
        raise ProtocolError(
            400,
            "bad-request",
            "exactly one of 'circuit' and 'circuit_b64' is required",
        )
    if fmt in BINARY_FORMATS and b64 is None:
        raise ProtocolError(
            400,
            "bad-request",
            f"binary format {fmt!r} requires base64 in 'circuit_b64'",
        )
    if b64 is not None:
        if not isinstance(b64, str):
            raise ProtocolError(400, "bad-request", "'circuit_b64' must be a string")
        try:
            raw = base64.b64decode(b64.encode("ascii"), validate=True)
        except (binascii.Error, UnicodeEncodeError) as error:
            raise ProtocolError(
                400, "bad-request", f"invalid base64 circuit: {error}"
            ) from None
        source = io.BytesIO(raw) if fmt in BINARY_FORMATS else _text_io(raw)
    else:
        if not isinstance(text, str):
            raise ProtocolError(400, "bad-request", "'circuit' must be a string")
        source = io.StringIO(text)
    reader = READERS[FORMATS[fmt]]
    try:
        return reader(source)
    except ParseError as error:
        raise ProtocolError(422, "parse-error", str(error)) from None


def _text_io(raw: bytes) -> io.StringIO:
    try:
        return io.StringIO(raw.decode("utf-8"))
    except UnicodeDecodeError as error:
        raise ProtocolError(
            400, "bad-request", f"circuit is not valid UTF-8: {error}"
        ) from None


def request_class(payload: dict) -> str:
    """The request's admission class (``interactive`` or ``batch``)."""
    klass = payload.get("class", "interactive")
    if klass not in ("interactive", "batch"):
        raise ProtocolError(
            400,
            "bad-request",
            f"unknown request class {klass!r}; expected 'interactive' or 'batch'",
        )
    return klass


def compile_options(payload: dict) -> dict:
    """Validate and normalize a compile request's ``options`` object.

    Returns the *complete* options dict (defaults filled in), which is
    also the dedup/cache identity of the request — two requests with the
    same fingerprint and the same normalized options are the same job.
    """
    from repro.core.rewriting import ENGINES, MODEL_OBJECTIVES, OBJECTIVES

    options = payload.get("options", {})
    if not isinstance(options, dict):
        raise ProtocolError(400, "bad-request", "'options' must be an object")
    unknown = set(options) - {"rewrite", "effort", "engine", "objective"}
    if unknown:
        raise ProtocolError(
            400, "bad-request", f"unknown options: {sorted(unknown)}"
        )
    normalized = {
        "rewrite": options.get("rewrite", True),
        "effort": options.get("effort", 4),
        "engine": options.get("engine", "worklist"),
        "objective": options.get("objective", "size"),
    }
    if not isinstance(normalized["rewrite"], bool):
        raise ProtocolError(400, "bad-request", "'rewrite' must be a boolean")
    if (
        not isinstance(normalized["effort"], int)
        or isinstance(normalized["effort"], bool)  # bool passes isinstance(int)
        or normalized["effort"] < 1
    ):
        raise ProtocolError(400, "bad-request", "'effort' must be an integer >= 1")
    if normalized["engine"] not in ENGINES:
        raise ProtocolError(
            400,
            "bad-request",
            f"unknown engine {normalized['engine']!r}; expected one of "
            f"{sorted(ENGINES)}",
        )
    objectives = tuple(OBJECTIVES) + tuple(MODEL_OBJECTIVES)
    if normalized["objective"] not in objectives:
        raise ProtocolError(
            400,
            "bad-request",
            f"unknown objective {normalized['objective']!r}; expected one of "
            f"{sorted(objectives)}",
        )
    return normalized


def options_token(options: dict) -> str:
    """The canonical string identity of a normalized options dict."""
    return canonical_json(options).decode("ascii")


def dedup_key(payload: dict, options: dict) -> str:
    """The in-flight dedup identity of a compile request.

    Derived purely from the raw payload (format + exact circuit text or
    base64) plus the normalized options token — no parsing, no hashing
    of graph structure — so the app can join the dedup table
    *synchronously* on the event loop.  That synchrony is load-bearing:
    any await between reading the payload and joining would let a fast
    leader resolve and vacate the key before later identical requests
    join, silently splitting one burst into several compiles.

    The trade against the old fingerprint key: textually-different
    encodings of the same circuit (``aag`` vs ``aig``, whitespace
    variants) form separate dedup groups — but the fingerprint-keyed
    *cache* still unifies those across requests, so only truly
    concurrent mixed-encoding bursts pay a duplicate compile.
    """
    material = canonical_json(
        {
            "format": payload.get("format", "mig"),
            "circuit": payload.get("circuit"),
            "circuit_b64": payload.get("circuit_b64"),
        }
    )
    return f"{hashlib.sha256(material).hexdigest()}|{options_token(options)}"
