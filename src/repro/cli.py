"""``plimc`` — command-line interface to the PLiM compiler.

Subcommands::

    plimc compile <circuit> [-o out.plim] [--naive] [--no-rewrite]
                  [--objective size|depth|balanced|static-plim|plim]
                  [--engine worklist|rebuild] [--cache-dir DIR] ...
    plimc stats <circuit>
    plimc run <program.plim> --set a=1 --set b=0 ...
    plimc bench <name> [--scale ci|default|paper]
    plimc batch <circuit|name>... [--configs full,naive] [--workers N] [--json]
    plimc pareto <circuit|name> [--scale ...] [--workers N] [--max-points K]
                 [--axes A,B] [--cache-dir DIR] [--cold] [--json]
    plimc table1 [--scale ...] [--shuffled] [--csv] [--workers N] [--cache-dir DIR]
    plimc fig3
    plimc ablate <name> [--scale ...] [--workers N]
    plimc cache stats|clear|trim <dir>

``--workers N`` flags default to one worker per CPU; ``--cache-dir DIR``
flags persist a content-addressed synthesis cache across runs
(``plimc cache`` inspects, empties, or shrinks one; ``--cache-max-bytes``
sets a standing LRU eviction cap).  The pooled subcommands (``batch``,
``pareto``, ``table1``) take a fault policy — ``--timeout`` kills hung
tasks, ``--retries`` re-runs failed ones, and ``--on-error skip``
degrades failures into per-task records (partial results) instead of
aborting the run.

Exit codes: 0 success, 1 verification failure, 2 usage/input error
(:class:`~repro.errors.ReproError`), 3 a task failed permanently under
``--on-error raise``, 130 interrupted (Ctrl-C).

Circuit files are detected by extension: ``.mig`` (native), ``.blif``,
``.aag``/``.aig`` (ASCII/binary AIGER — ``read_aiger`` sniffs the header,
so either extension accepts either flavour).  ``plimc <subcommand> --help`` documents every
flag; the full walkthrough with example output lives in ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro._version import __version__
from repro.circuits.registry import BENCHMARK_NAMES, SCALES, benchmark_info
from repro.core.compiler import CompilerOptions
from repro.core.pipeline import compile_mig
from repro.core.rewriting import ENGINES as REWRITE_ENGINES
from repro.core.rewriting import MODEL_OBJECTIVES
from repro.core.rewriting import OBJECTIVES as REWRITE_OBJECTIVES
from repro.core.resilience import ON_ERROR_MODES, TaskError, TaskFailure, TaskPolicy
from repro.errors import ReproError
from repro.eval import ablations
from repro.eval.fig3 import run_fig3
from repro.eval.table1 import format_table1, run_table1, table1_csv
from repro.mig.analysis import stats as mig_stats
from repro.mig.graph import Mig
from repro.mig.io_aiger import read_aiger
from repro.mig.io_blif import read_blif
from repro.mig.io_mig import read_mig
from repro.mig.io_verilog import write_verilog
from repro.plim.machine import PlimMachine
from repro.plim.program import Program
from repro.plim.verify import verify_program

READERS = {
    ".mig": read_mig,
    ".blif": read_blif,
    ".aag": read_aiger,
    ".aig": read_aiger,
}


def load_circuit(path: str) -> Mig:
    """Read a circuit file, dispatching on its extension."""
    suffix = Path(path).suffix.lower()
    try:
        reader = READERS[suffix]
    except KeyError:
        raise ReproError(
            f"unknown circuit format {suffix!r}; expected one of {sorted(READERS)}"
        ) from None
    return reader(path)


def _resolve_cli_circuit(item: str, scale: str):
    """A registry benchmark name or circuit file → ``(spec, display name)``.

    The spec is what the batch/pareto drivers accept: a ``(name, scale)``
    pair for registry benchmarks (resolved inside the workers) or a loaded
    :class:`Mig` for circuit files.
    """
    if item in BENCHMARK_NAMES:
        return (item, scale), item
    if Path(item).suffix.lower() in READERS:
        mig = load_circuit(item)
        return mig, (mig.name or item)
    raise ReproError(
        f"{item!r} is neither a registry benchmark nor a known "
        f"circuit file; benchmarks: {BENCHMARK_NAMES}"
    )


def _make_cache(args):
    """The ``--cache-dir`` synthesis cache, or ``None`` when not given."""
    if getattr(args, "cache_dir", None) is None:
        if getattr(args, "cache_max_bytes", None) is not None:
            raise ReproError("--cache-max-bytes requires --cache-dir")
        return None
    from repro.core.cache import SynthesisCache

    return SynthesisCache(
        args.cache_dir, max_bytes=getattr(args, "cache_max_bytes", None)
    )


def _make_policy(args) -> TaskPolicy | None:
    """The task policy of the ``--timeout/--retries/--on-error`` flags.

    ``None`` when every flag is at its default (the engine then uses its
    own default policy); invalid values (negative timeout/retries) are
    rejected by :class:`~repro.core.resilience.TaskPolicy` itself with a
    :class:`~repro.errors.ReproError` → exit code 2.
    """
    timeout = getattr(args, "timeout", None)
    retries = getattr(args, "retries", 0)
    on_error = getattr(args, "on_error", "raise")
    if timeout is None and not retries and on_error == "raise":
        return None
    return TaskPolicy(timeout_s=timeout, retries=retries, on_error=on_error)


def _report_task_failures(context: str, failures) -> None:
    """One stderr line per permanently failed task of a skip-mode run."""
    for label, failure in failures:
        print(
            f"plimc: {context}: {label} failed after {failure.attempts} "
            f"attempt(s) [{failure.kind}]: {failure.message}",
            file=sys.stderr,
        )


def _cmd_compile(args) -> int:
    mig = load_circuit(args.circuit)
    if args.naive:
        options = CompilerOptions.naive(fix_output_polarity=not args.paper_outputs)
    else:
        options = CompilerOptions(
            fix_output_polarity=not args.paper_outputs,
            max_work_cells=args.max_rrams,
        )
    objective = args.objective
    if args.depth_rewrite:
        # Deprecation shim: the old flag ran rewrite_depth *before* area
        # rewriting (whose reshaping could undo the depth gains) and
        # ignored --engine.  It now maps onto the multi-objective loop,
        # which interleaves both and ends on a depth phase.
        print(
            "plimc: warning: --depth-rewrite is deprecated; "
            "use --objective balanced (or --objective depth)",
            file=sys.stderr,
        )
        if args.no_rewrite:
            # The old flag depth-rewrote even without Algorithm 1; keep
            # that (now honoring --engine and --effort).
            from repro.core.rewriting import rewrite_depth

            mig = rewrite_depth(mig, effort=args.effort, engine=args.engine)
        elif objective == "size":
            objective = "balanced"
    result = compile_mig(
        mig,
        rewrite=not args.no_rewrite,
        effort=args.effort,
        engine=args.engine,
        objective=objective,
        compiler_options=options,
        cache=_make_cache(args),
    )
    program = result.program
    print(
        f"{mig.name or args.circuit}: {result.num_gates} gates -> "
        f"{program.num_instructions} instructions, {program.num_rrams} work RRAMs",
        file=sys.stderr,
    )
    verify_failed = False
    if args.verify:
        start = time.perf_counter()
        check = verify_program(result.compiled_mig, program)
        result.verify_seconds = time.perf_counter() - start
        print(f"verification ({check.mode}): {'OK' if check.ok else 'FAILED'}", file=sys.stderr)
        verify_failed = not check.ok
    if args.json:
        record = {
            "circuit": mig.name or args.circuit,
            "num_gates": result.num_gates,
            "num_instructions": program.num_instructions,
            "num_rrams": program.num_rrams,
            "rewrite_seconds": result.rewrite_seconds,
            "schedule_seconds": result.schedule_seconds,
            "translate_seconds": result.translate_seconds,
            "verify_seconds": result.verify_seconds,
        }
        if args.verify:
            record["verified"] = not verify_failed
        print(json.dumps(record, indent=2))
    if verify_failed:
        return 1
    if args.listing:
        print(program.listing())
    if args.emit_verilog:
        write_verilog(result.compiled_mig, args.emit_verilog)
        print(f"wrote {args.emit_verilog}", file=sys.stderr)
    if args.output:
        Path(args.output).write_text(program.to_text(), encoding="utf-8")
        print(f"wrote {args.output}", file=sys.stderr)
    elif not args.listing and not args.json:
        print(program.to_text(), end="")
    return 0


def _cmd_stats(args) -> int:
    mig = load_circuit(args.circuit)
    print(f"{mig.name or args.circuit}: {mig_stats(mig)}")
    return 0


def _cmd_run(args) -> int:
    program = Program.from_text(Path(args.program).read_text(encoding="utf-8"))
    inputs = {}
    for assignment in args.set or []:
        name, _, value = assignment.partition("=")
        if value not in ("0", "1"):
            raise ReproError(f"input values must be 0 or 1, got {assignment!r}")
        inputs[name] = int(value)
    missing = sorted(set(program.input_cells) - set(inputs))
    if missing:
        raise ReproError(f"missing inputs: {', '.join(missing)} (use --set name=0)")
    machine = PlimMachine.for_program(program)
    outputs = machine.run_program(program, inputs)
    for name in sorted(outputs):
        print(f"{name} = {outputs[name]}")
    print(
        f"# {machine.instruction_count} instructions, {machine.cycle_count} cycles",
        file=sys.stderr,
    )
    return 0


def _cmd_controller(args) -> int:
    """Run a .plim program on the von Neumann fetching controller."""
    from repro.plim.controller import FetchingController

    program = Program.from_text(Path(args.program).read_text(encoding="utf-8"))
    inputs = {}
    for assignment in args.set or []:
        name, _, value = assignment.partition("=")
        if value not in ("0", "1"):
            raise ReproError(f"input values must be 0 or 1, got {assignment!r}")
        inputs[name] = int(value)
    missing = sorted(set(program.input_cells) - set(inputs))
    if missing:
        raise ReproError(f"missing inputs: {', '.join(missing)} (use --set name=0)")
    controller = FetchingController(program)
    outputs = controller.run(inputs)
    for name in sorted(outputs):
        print(f"{name} = {outputs[name]}")
    print(
        f"# stored program: {len(controller.image.bits)} code bits above "
        f"{controller.data_cells} data cells; "
        f"{controller.fetch_cycles} fetch + {controller.execute_cycles} "
        f"execute cycles",
        file=sys.stderr,
    )
    return 0


def _cmd_bench(args) -> int:
    from repro.eval.table1 import run_benchmark

    row = run_benchmark(args.name, args.scale, paper_accounting=not args.honest)
    info = benchmark_info(args.name)
    print(
        f"{args.name} ({args.scale}, {info.status}): PI/PO {row.pi}/{row.po}\n"
        f"  naive:                 N={row.naive_n}  I={row.naive_i}  R={row.naive_r}\n"
        f"  rewriting:             N={row.rewr_n}  I={row.rewr_i} ({row.rewr_i_impr:+.2f}%)"
        f"  R={row.rewr_r} ({row.rewr_r_impr:+.2f}%)\n"
        f"  rewriting+compilation: I={row.full_i} ({row.full_i_impr:+.2f}%)"
        f"  R={row.full_r} ({row.full_r_impr:+.2f}%)\n"
        f"  [{row.seconds:.2f}s]"
    )
    return 0


#: named option sets for ``plimc batch`` (kept minimal and composable)
BATCH_CONFIGS = {
    "full": lambda: CompilerOptions(),
    "naive": lambda: CompilerOptions.naive(),
    "no-selection": lambda: CompilerOptions.no_selection(),
    "paper-rules": lambda: CompilerOptions.paper_selection(),
}


def _cmd_batch(args) -> int:
    """Compile many circuits under many option sets via the batch driver."""
    from repro.core.batch import compile_many
    from repro.eval.reporting import format_table

    option_sets = {}
    for label in (args.configs or "full").split(","):
        label = label.strip()
        if label not in BATCH_CONFIGS:
            raise ReproError(
                f"unknown batch config {label!r}; available: {sorted(BATCH_CONFIGS)}"
            )
        option_sets[label] = BATCH_CONFIGS[label]()

    resolved = [_resolve_cli_circuit(item, args.scale) for item in args.circuits]
    specs = [spec for spec, _ in resolved]
    names = [name for _, name in resolved]
    results = compile_many(
        specs,
        option_sets,
        workers=args.workers,
        rewrite=args.rewrite,
        effort=args.effort,
        policy=_make_policy(args),
    )
    failures = [r for r in results if isinstance(r, TaskFailure)]
    compiled = [r for r in results if not isinstance(r, TaskFailure)]
    _report_task_failures(
        "batch", [(names[f.index], f) for f in failures]
    )
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2))
    else:
        rows = [
            [r.circuit, r.option_label, r.num_gates, r.num_instructions,
             r.num_rrams, f"{r.seconds:.2f}s"]
            for r in compiled
        ]
        print(format_table(["circuit", "config", "#N", "#I", "#R", "time"], rows))
    return 0


def _cmd_table1(args) -> int:
    def progress(name, row):
        print(
            f"  {name:11s} I {row.naive_i:>8d} -> {row.full_i:>8d}   "
            f"R {row.naive_r:>6d} -> {row.full_r:>6d}   ({row.seconds:.1f}s)",
            file=sys.stderr,
        )

    result = run_table1(
        names=args.names or None,
        scale=args.scale,
        effort=args.effort,
        shuffled=args.shuffled,
        paper_accounting=not args.honest,
        progress=progress,
        workers=args.workers,
        engine=args.engine,
        cache=_make_cache(args),
        policy=_make_policy(args),
    )
    _report_task_failures("table1", result.failures)
    print(table1_csv(result) if args.csv else format_table1(result))
    return 0


def _cmd_fig3(args) -> int:
    report = run_fig3()
    print(report.summary())
    if args.listings:
        for label, program in [
            ("Fig. 3(a) before, naive", report.fig3a_before_naive),
            ("Fig. 3(a) after, smart", report.fig3a_after_smart),
            ("Fig. 3(b) naive", report.fig3b_naive),
            ("Fig. 3(b) smart", report.fig3b_smart),
        ]:
            print(f"\n{label}:\n{program.listing()}")
    return 0


def _cmd_ablate(args) -> int:
    print(ablations.run_benchmark_ablations(args.name, args.scale, workers=args.workers))
    return 0


def _cmd_pareto(args) -> int:
    """Sweep the (#N, #D) Pareto frontier of one circuit."""
    from repro.core.pareto import pareto_sweep
    from repro.eval.ablations import format_pareto_front

    spec, name = _resolve_cli_circuit(args.circuit, args.scale)
    axes_kwargs = {}
    if args.axes:
        axes_kwargs["axes"] = tuple(a.strip() for a in args.axes.split(","))
    front = pareto_sweep(
        spec,
        effort=args.effort,
        workers=args.workers,
        max_points=args.max_points,
        verify=not args.no_verify,
        paper_accounting=not args.honest,
        warm_start=not args.cold,
        cache=_make_cache(args),
        policy=_make_policy(args),
        **axes_kwargs,
    )
    if front.incomplete:
        _report_task_failures(
            "pareto", [(f"task {f.index}", f) for f in front.failures]
        )
        print(
            f"plimc: pareto: partial frontier — "
            f"{len(front.failed_budgets)} budget point(s) failed: "
            f"{', '.join(front.failed_budgets)}",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(front.to_dict(), indent=2))
    else:
        print(format_pareto_front(name, front))
        print(
            f"# {len(front.points)} non-dominated point(s), "
            f"{len(front.dominated)} dominated candidate(s), "
            f"{front.seconds:.2f}s",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args) -> int:
    """Run the synthesis server (``plimc serve``) until SIGTERM/SIGINT."""
    import asyncio

    from repro.serve.app import PlimServer, ServerConfig
    from repro.serve.http import run_server

    config = ServerConfig(
        workers=args.workers,
        pooled=args.pooled,
        queue_limit=args.queue_limit,
        request_timeout_s=args.timeout,
        job_timeout_s=args.job_timeout,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
    )
    asyncio.run(run_server(PlimServer(config), args.host, args.port))
    return 0


def _cmd_cache(args) -> int:
    """Inspect (``stats``), empty (``clear``), or shrink (``trim``) a
    synthesis cache dir."""
    from repro.core.cache import SynthesisCache

    cache = SynthesisCache(args.dir)
    if args.cache_command == "stats" and getattr(args, "json", False):
        # the same snapshot GET /cache/stats serves, so the CLI and the
        # server can never disagree about what the numbers mean
        print(json.dumps(cache.stats_snapshot(), indent=2, sort_keys=True))
        return 0
    if args.cache_command == "stats":
        usage = cache.disk_usage()
        total_entries = sum(u["entries"] for u in usage.values())
        total_bytes = sum(u["bytes"] for u in usage.values())
        width = max(len(kind) for kind in (*usage, "total"))
        print(f"synthesis cache at {args.dir}")
        for kind, u in usage.items():
            print(
                f"  {kind:{width}s} {u['entries']:6d} entries,"
                f" {u['bytes']:10d} bytes"
            )
        print(
            f"  {'total':{width}s} {total_entries:6d} entries,"
            f" {total_bytes:10d} bytes"
        )
        return 0
    if args.cache_command == "trim":
        evicted = cache.trim(args.max_bytes)
        usage = cache.disk_usage()
        remaining = sum(u["bytes"] for u in usage.values())
        print(
            f"evicted {evicted} entries from {args.dir} "
            f"({remaining} bytes remain, cap {args.max_bytes})"
        )
        return 0
    removed = cache.clear()
    print(f"cleared {removed} entries from {args.dir}")
    return 0


def _add_policy_flags(p: argparse.ArgumentParser) -> None:
    """``--timeout/--retries/--on-error`` for the pooled subcommands."""
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task deadline; a task still running after this long is "
        "killed and counts as failed (default: no deadline)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-run a failed or timed-out task up to N more times with "
        "exponential backoff (default: 0)",
    )
    p.add_argument(
        "--on-error",
        choices=list(ON_ERROR_MODES),
        default="raise",
        help="what to do when a task fails permanently: raise aborts the run "
        "(default, exit code 3), skip records the failure and keeps the "
        "surviving results, degrade makes one last in-process attempt first",
    )


def _add_cache_max_bytes_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="LRU eviction cap for the --cache-dir store (memory and disk "
        "enforced independently; default: unbounded)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="plimc",
        description="MIG-based compiler for the PLiM logic-in-memory architecture "
        "(reproduction of Soeken et al., DAC 2016)",
    )
    parser.add_argument("--version", action="version", version=f"plimc {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "compile",
        help="compile a circuit file to a PLiM program",
        epilog="examples: plimc compile adder.blif --objective balanced;  "
        "plimc compile c.mig --objective depth --engine rebuild (the oracle);  "
        "use 'plimc pareto' to sweep the whole (#N, #D) trade-off",
    )
    p.add_argument("circuit", help="input circuit (.mig, .blif, .aag, .aig)")
    p.add_argument("-o", "--output", help="write the .plim program here")
    p.add_argument("--no-rewrite", action="store_true", help="skip Algorithm 1")
    p.add_argument("--effort", type=int, default=4, help="rewriting effort (default 4)")
    p.add_argument(
        "--engine",
        choices=list(REWRITE_ENGINES),
        default="worklist",
        help="Algorithm 1 engine: in-place worklist (default) or the legacy "
        "whole-graph rebuild pipeline",
    )
    p.add_argument("--naive", action="store_true", help="use the naive baseline translator")
    p.add_argument("--listing", action="store_true", help="print the paper-style listing")
    p.add_argument("--verify", action="store_true", help="verify against the MIG on the machine model")
    p.add_argument(
        "--json",
        action="store_true",
        help="print a JSON record (counts + per-stage seconds: rewrite/"
        "schedule/translate/verify) to stdout instead of the program text",
    )
    p.add_argument(
        "--paper-outputs",
        action="store_true",
        help="leave complemented outputs in place (paper accounting)",
    )
    p.add_argument(
        "--max-rrams",
        type=int,
        default=None,
        metavar="N",
        help="compile within a work-RRAM budget (evicts complement caches)",
    )
    p.add_argument(
        "--objective",
        choices=list(REWRITE_OBJECTIVES) + list(MODEL_OBJECTIVES),
        default="size",
        help="rewriting objective: node count (size, the paper's Algorithm 1), "
        "critical path (depth), the interleaved multi-objective loop "
        "(balanced), or a cost model — the §4.2.2 instruction estimate "
        "(static-plim) or real measured Algorithm 2 cost (plim, the "
        "synthesize/schedule/re-synthesize loop)",
    )
    p.add_argument(
        "--depth-rewrite",
        action="store_true",
        help="deprecated: use --objective balanced (kept as a shim)",
    )
    p.add_argument(
        "--emit-verilog",
        metavar="FILE",
        help="also write the compiled MIG as structural Verilog",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist the synthesis cache here (rewrites memoized by "
        "content fingerprint across runs)",
    )
    _add_cache_max_bytes_flag(p)
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("stats", help="print MIG statistics of a circuit file")
    p.add_argument("circuit")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("run", help="execute a .plim program on the machine model")
    p.add_argument("program")
    p.add_argument("--set", action="append", metavar="NAME=BIT", help="input assignment")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "controller", help="execute a .plim program on the von Neumann controller"
    )
    p.add_argument("program")
    p.add_argument("--set", action="append", metavar="NAME=BIT", help="input assignment")
    p.set_defaults(func=_cmd_controller)

    p = sub.add_parser("bench", help="measure one EPFL benchmark")
    p.add_argument("name", choices=BENCHMARK_NAMES)
    p.add_argument("--scale", choices=SCALES, default="default")
    p.add_argument("--honest", action="store_true", help="charge output polarity fix-ups")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "batch", help="compile many circuits under many option sets (process pool)"
    )
    p.add_argument(
        "circuits",
        nargs="+",
        metavar="CIRCUIT",
        help="registry benchmark names and/or circuit files (.mig, .blif, .aag, .aig)",
    )
    p.add_argument("--scale", choices=SCALES, default="default")
    p.add_argument(
        "--configs",
        default="full",
        metavar="A,B,...",
        help=f"comma-separated option sets (default: full; available: {','.join(BATCH_CONFIGS)})",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size (default: one per CPU)",
    )
    p.add_argument("--rewrite", action="store_true", help="run Algorithm 1 first")
    p.add_argument("--effort", type=int, default=4, help="rewriting effort (default 4)")
    p.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    _add_policy_flags(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "pareto",
        help="sweep a Pareto frontier of depth-budgeted rewriting",
        epilog="sweeps depth budgets from the depth-optimal point up to the "
        "unconstrained size-optimal point, compiles every point through "
        "Algorithm 2, equivalence-checks it, and keeps the non-dominated "
        "set over the chosen axes ((#N, #D) by default); examples: "
        "plimc pareto i2c --scale ci --workers 4; "
        "plimc pareto ctrl --axes num_instructions,num_rrams",
    )
    p.add_argument(
        "circuit",
        help="registry benchmark name or circuit file (.mig, .blif, .aag)",
    )
    p.add_argument("--scale", choices=SCALES, default="default")
    p.add_argument("--effort", type=int, default=4, help="rewriting effort (default 4)")
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for the sweep points (default: one per CPU)",
    )
    p.add_argument(
        "--max-points",
        type=int,
        default=None,
        metavar="K",
        help="cap on intermediate depth budgets (evenly subsampled; "
        "0 = the two extremes only)",
    )
    p.add_argument(
        "--axes",
        metavar="A,B",
        default=None,
        help="comma-separated frontier axes (default num_gates,depth); "
        "choose among num_gates, depth, num_instructions, num_rrams, "
        "cycles, wear — 'cycles' and 'wear' execute each point on the "
        "machine model to measure them",
    )
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the per-point equivalence check against the input",
    )
    p.add_argument("--honest", action="store_true", help="charge output polarity fix-ups")
    p.add_argument(
        "--cold",
        action="store_true",
        help="disable warm-started budget chains (restart every budget "
        "from the raw input, the pre-incremental behavior)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist the synthesis cache here (whole fronts and per-point "
        "rewrites memoized by content fingerprint across runs)",
    )
    _add_cache_max_bytes_flag(p)
    p.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    _add_policy_flags(p)
    p.set_defaults(func=_cmd_pareto)

    p = sub.add_parser("table1", help="reproduce the paper's Table 1")
    p.add_argument("--names", nargs="*", choices=BENCHMARK_NAMES, help="subset of benchmarks")
    p.add_argument("--scale", choices=SCALES, default="default")
    p.add_argument("--effort", type=int, default=4)
    p.add_argument(
        "--engine",
        choices=list(REWRITE_ENGINES),
        default="worklist",
        help="Algorithm 1 engine (default: worklist)",
    )
    p.add_argument("--shuffled", action="store_true", help="shuffle gate order first (file-like order)")
    p.add_argument("--honest", action="store_true", help="charge output polarity fix-ups")
    p.add_argument("--csv", action="store_true", help="emit CSV instead of the ASCII table")
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size (default: one per CPU)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist the synthesis cache here (per-row rewrites memoized "
        "by content fingerprint across runs)",
    )
    _add_cache_max_bytes_flag(p)
    _add_policy_flags(p)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("fig3", help="regenerate the paper's motivating examples")
    p.add_argument("--listings", action="store_true", help="print the four program listings")
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("ablate", help="run the DESIGN.md ablations on one benchmark")
    p.add_argument("name", choices=BENCHMARK_NAMES)
    p.add_argument("--scale", choices=SCALES, default="default")
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for the ablation studies "
        "(default: one per CPU)",
    )
    p.set_defaults(func=_cmd_ablate)

    p = sub.add_parser(
        "cache",
        help="inspect, clear, or trim a --cache-dir synthesis cache",
        epilog="examples: plimc cache stats .plim-cache;  "
        "plimc cache clear .plim-cache;  "
        "plimc cache trim .plim-cache --max-bytes 10000000",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    for command, blurb in (
        ("stats", "entry counts and sizes of a cache directory"),
        ("clear", "delete every entry in a cache directory"),
        ("trim", "evict least-recently-used entries down to a byte budget"),
    ):
        pc = cache_sub.add_parser(command, help=blurb)
        pc.add_argument("dir", help="the synthesis cache directory")
        if command == "stats":
            pc.add_argument(
                "--json",
                action="store_true",
                help="machine-readable snapshot (same shape as the serve "
                "endpoint GET /cache/stats)",
            )
        if command == "trim":
            pc.add_argument(
                "--max-bytes",
                type=int,
                required=True,
                metavar="BYTES",
                help="the byte budget to trim down to (0 empties the cache)",
            )
        pc.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "serve",
        help="run the HTTP synthesis server over a shared cache",
        epilog="example: plimc serve --port 8080 --cache-dir .plim-cache; "
        "then POST /compile with "
        '{"circuit": "<.mig text>", "format": "mig"} '
        "(see docs/serving.md for the endpoint reference)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8080, help="bind port")
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent compile slots (default: 2)",
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        metavar="N",
        help="max requests in the system before shedding with 429 "
        "(default: 8)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request compile deadline (enforced only with --pooled; "
        "default: none)",
    )
    p.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="deadline for background jobs (pareto/cost-loop; default: none)",
    )
    p.add_argument(
        "--pooled",
        action="store_true",
        help="run every compile on a supervised worker process "
        "(crash isolation + enforceable --timeout, at process-hop cost)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent synthesis cache shared by all requests "
        "(default: in-memory only)",
    )
    _add_cache_max_bytes_flag(p)
    p.set_defaults(func=_cmd_serve)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TaskError as error:
        # a task failed permanently under --on-error raise (TaskError is a
        # ReproError subclass, so this must precede the generic handler)
        print(f"plimc: task failed: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"plimc: error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        # missing/unreadable circuit files, unwritable outputs — user
        # input problems, not crashes: one line, no traceback
        print(f"plimc: error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("plimc: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
