#!/usr/bin/env python3
"""Intra-repo link checker for README.md and docs/*.md.

Scans Markdown files for inline links/images (``[text](target)``) and
reference definitions (``[label]: target``), and fails when a relative
target does not resolve to a file or directory in the repository.
External links (``http://``, ``https://``, ``mailto:``) are skipped —
this is a docs-rot gate for *intra-repo* references, not a crawler.
Anchors are stripped (``docs/cli.md#pareto`` checks ``docs/cli.md``);
pure in-page anchors (``#section``) are accepted.

Used three ways, all sharing :func:`check_links`:

* ``python tools/check_links.py`` — CI gate (exit 1 on broken links);
* ``tests/test_docs.py`` — the tier-1 suite imports and runs it;
* ad hoc after editing docs.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline links/images: [text](target) / ![alt](target); stops at the
#: first ')' or whitespace (titles like [t](x "y") keep only x)
_INLINE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?[^)]*\)")
#: reference-style definitions at line start: [label]: target
_REFDEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+<?(\S+?)>?(?:\s|$)", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _strip_code(text: str) -> str:
    """Drop fenced code blocks and inline code spans (links there are
    examples, not navigation)."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def iter_links(text: str):
    """Yield every link target in ``text`` (code blocks excluded)."""
    stripped = _strip_code(text)
    for pattern in (_INLINE, _REFDEF):
        for match in pattern.finditer(stripped):
            yield match.group(1)


def check_file(path: Path, root: Path) -> list[str]:
    """Broken-link messages for one Markdown file (empty = healthy)."""
    errors = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(_EXTERNAL):
            continue
        base = target.split("#", 1)[0]
        if not base:  # pure in-page anchor
            continue
        resolved = (root if base.startswith("/") else path.parent) / base.lstrip("/")
        if not resolved.exists():
            errors.append(f"{path.relative_to(root)}: broken link -> {target}")
    return errors


def check_links(root: Path) -> list[str]:
    """Check README.md and every docs/*.md under ``root``; return errors."""
    files = sorted(root.glob("docs/*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.insert(0, readme)
    errors = []
    for path in files:
        errors.extend(check_file(path, root))
    return errors


def main(argv=None) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parents[1]
    errors = check_links(root)
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(sorted(root.glob("docs/*.md"))) + int((root / "README.md").exists())
    if errors:
        print(f"{len(errors)} broken link(s) in {checked} file(s)", file=sys.stderr)
        return 1
    print(f"links OK ({checked} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
