#!/usr/bin/env python3
"""Download and SHA-256-verify real benchmark circuits into ``benchmarks/circuits/``.

The EPFL combinational suite (the circuits of the paper's Table 1, in
binary AIGER) is listed in the built-in manifest; ISCAS/IWLS sets have no
single canonical URL, so they come in through the same mechanism via
``--manifest`` pointing at a JSON file of ``{name: {url, suite}}`` entries
(see ``_BUILTIN_MANIFEST`` for the shape).  ``tools/benchmarks.iscas.json``
is a committed ISCAS-85 manifest: mirror URLs for the c432–c7552 netlists
plus a repo-local ``c17`` (``tools/testdata/c17_smoke.aig``, our own
AIGER encoding of the classic six-NAND netlist) that fetches over
``file://`` and therefore round-trips without network.

A manifest entry names its source either by ``url`` or by ``path`` (a
file relative to the manifest, resolved to a ``file://`` URL), and may
carry an inline ``"sha256"`` pin that is enforced on every fetch and
seeded into the lockfile.

Integrity is pinned in ``tools/benchmarks.sha256.json``: the first
successful download of a circuit records its SHA-256 (trust on first use)
and every later fetch — on any machine — verifies against the recorded
digest and refuses mismatches.  Commit the lockfile after first fetch to
freeze the pins for everyone else.  Only digests of actually-fetched
bytes are ever pinned; remote entries without an inline pin stay
trust-on-first-use until someone fetches and commits them.

The destination directory is gitignored; nothing in the test suite
requires network access.  Tests (and air-gapped mirrors) exercise the
full download/verify/pin path through ``file://`` URLs, and the CLI exits
cleanly with a warning (``--offline-ok``) when the network is down.

Usage::

    python tools/fetch_benchmarks.py                 # whole EPFL suite
    python tools/fetch_benchmarks.py adder div       # just these circuits
    python tools/fetch_benchmarks.py --list          # show the manifest
    python tools/fetch_benchmarks.py --offline-ok    # no-fail on dead network
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_DEST = _REPO_ROOT / "benchmarks" / "circuits"
DEFAULT_LOCKFILE = _REPO_ROOT / "tools" / "benchmarks.sha256.json"

#: socket timeout per download attempt and attempt count (a transient
#: HTTP failure retries with exponential backoff before giving up)
DEFAULT_TIMEOUT = 30.0
DEFAULT_RETRIES = 3
_BACKOFF_BASE = 0.5

_EPFL_BASE = "https://raw.githubusercontent.com/lsils/benchmarks/master"
_EPFL_ARITHMETIC = (
    "adder", "bar", "div", "hyp", "log2", "max", "multiplier", "sin",
    "sqrt", "square",
)
_EPFL_CONTROL = (
    "arbiter", "cavlc", "ctrl", "dec", "i2c", "int2float", "mem_ctrl",
    "priority", "router", "voter",
)

_BUILTIN_MANIFEST: dict[str, dict[str, str]] = {}
for _name in _EPFL_ARITHMETIC:
    _BUILTIN_MANIFEST[_name] = {
        "url": f"{_EPFL_BASE}/arithmetic/{_name}.aig",
        "suite": "epfl-arithmetic",
    }
for _name in _EPFL_CONTROL:
    _BUILTIN_MANIFEST[_name] = {
        "url": f"{_EPFL_BASE}/random_control/{_name}.aig",
        "suite": "epfl-control",
    }


class FetchError(Exception):
    """A download failed or a digest did not match its pin."""


def load_manifest(path: Path | None = None) -> dict[str, dict[str, str]]:
    """The circuit manifest: built-in EPFL suite or a user-supplied JSON.

    User entries name their source by ``url`` or by ``path`` — a file
    relative to the manifest's own directory, resolved here to a
    ``file://`` URL so every downstream step (download, pin, verify) is
    identical for local and remote circuits.
    """
    if path is None:
        return dict(_BUILTIN_MANIFEST)
    base = Path(path).resolve().parent
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    for name, entry in manifest.items():
        if "url" in entry:
            continue
        if "path" in entry:
            local = Path(entry["path"])
            if not local.is_absolute():
                local = base / local
            entry["url"] = local.resolve().as_uri()
            entry.setdefault("filename", local.name)
        else:
            raise FetchError(f"manifest entry {name!r} has no 'url' or 'path'")
    return manifest


def load_pins(lockfile: Path) -> dict[str, str]:
    if lockfile.exists():
        with open(lockfile, "r", encoding="utf-8") as handle:
            return json.load(handle)
    return {}


def save_pins(lockfile: Path, pins: dict[str, str]) -> None:
    lockfile.parent.mkdir(parents=True, exist_ok=True)
    with open(lockfile, "w", encoding="utf-8") as handle:
        json.dump(dict(sorted(pins.items())), handle, indent=2)
        handle.write("\n")


def sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _download(url: str, *, timeout: float, retries: int) -> bytes:
    """GET ``url`` with a socket timeout, retrying transient failures.

    ``retries`` extra attempts follow the first, sleeping
    ``_BACKOFF_BASE * 2**(attempt-1)`` seconds between tries, so one
    flaky connection doesn't abort a whole manifest fetch.
    """
    last_exc: Exception | None = None
    for attempt in range(1 + max(0, retries)):
        if attempt:
            time.sleep(_BACKOFF_BASE * 2 ** (attempt - 1))
        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                return response.read()
        except (urllib.error.URLError, OSError) as exc:
            last_exc = exc
    raise FetchError(
        f"download failed from {url} after {1 + max(0, retries)} "
        f"attempt(s): {last_exc}"
    ) from last_exc


def fetch(
    name: str,
    entry: dict[str, str],
    dest_dir: Path,
    pins: dict[str, str],
    *,
    force: bool = False,
    timeout: float = DEFAULT_TIMEOUT,
    retries: int = DEFAULT_RETRIES,
) -> tuple[Path, bool]:
    """Download one circuit, verify/record its pin; returns (path, updated).

    ``updated`` reports whether the pin set changed (first fetch of an
    unpinned circuit).  A circuit already on disk with a matching digest
    is not re-downloaded unless ``force``.  ``timeout`` caps each
    attempt's socket wait; ``retries`` transient failures are retried
    with exponential backoff before :class:`FetchError` is raised.

    An inline ``entry["sha256"]`` is an authoritative manifest pin: it is
    enforced like a lockfile pin, must agree with any existing lockfile
    entry, and is seeded into ``pins`` on first verification.
    """
    dest_dir.mkdir(parents=True, exist_ok=True)
    filename = entry.get("filename") or entry["url"].rsplit("/", 1)[-1]
    target = dest_dir / filename
    pinned = pins.get(name)
    inline = entry.get("sha256")
    if inline is not None:
        if pinned is not None and pinned != inline:
            raise FetchError(
                f"{name}: manifest pins {inline[:16]}… but the lockfile "
                f"pins {pinned[:16]}… — resolve the conflict before fetching"
            )
        pinned = inline

    if target.exists() and not force:
        digest = sha256_of(target)
        if pinned is None:
            pins[name] = digest
            return target, True
        if digest == pinned:
            updated = pins.get(name) != digest
            if updated:
                pins[name] = digest
            return target, updated
        raise FetchError(
            f"{name}: on-disk file {target} has digest {digest[:16]}… "
            f"but the lockfile pins {pinned[:16]}… — delete it (or re-pin) "
            "to proceed"
        )

    try:
        payload = _download(entry["url"], timeout=timeout, retries=retries)
    except FetchError as exc:
        raise FetchError(f"{name}: {exc}") from exc

    digest = hashlib.sha256(payload).hexdigest()
    if pinned is not None and digest != pinned:
        raise FetchError(
            f"{name}: downloaded digest {digest[:16]}… does not match the "
            f"pinned {pinned[:16]}… — refusing to write {target}"
        )
    target.write_bytes(payload)
    updated = pins.get(name) != digest
    if updated:
        pins[name] = digest
    return target, updated


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("names", nargs="*", help="circuit names (default: whole manifest)")
    parser.add_argument("--dest", type=Path, default=DEFAULT_DEST)
    parser.add_argument("--manifest", type=Path, default=None,
                        help="JSON manifest to use instead of the built-in EPFL suite")
    parser.add_argument("--lockfile", type=Path, default=DEFAULT_LOCKFILE)
    parser.add_argument("--force", action="store_true", help="re-download even if present")
    parser.add_argument("--list", action="store_true", help="print the manifest and exit")
    parser.add_argument(
        "--offline-ok", action="store_true",
        help="exit 0 (with a warning) when downloads fail — for air-gapped runs",
    )
    parser.add_argument(
        "--timeout", type=float, default=DEFAULT_TIMEOUT, metavar="SECONDS",
        help=f"socket timeout per download attempt (default: {DEFAULT_TIMEOUT:g})",
    )
    parser.add_argument(
        "--retries", type=int, default=DEFAULT_RETRIES, metavar="N",
        help="extra attempts per download, with exponential backoff "
        f"(default: {DEFAULT_RETRIES})",
    )
    args = parser.parse_args(argv)
    if args.timeout <= 0:
        parser.error(f"--timeout must be positive, got {args.timeout:g}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")

    manifest = load_manifest(args.manifest)
    if args.list:
        for name, entry in sorted(manifest.items()):
            print(f"{name:12s} {entry.get('suite', '-'):16s} {entry['url']}")
        return 0

    names = args.names or sorted(manifest)
    unknown = [n for n in names if n not in manifest]
    if unknown:
        parser.error(f"not in the manifest: {', '.join(unknown)}")

    pins = load_pins(args.lockfile)
    newly_pinned = 0
    failures = 0
    for name in names:
        try:
            target, updated = fetch(
                name, manifest[name], args.dest, pins, force=args.force,
                timeout=args.timeout, retries=args.retries,
            )
        except FetchError as exc:
            failures += 1
            print(f"FAIL {exc}", file=sys.stderr)
            continue
        if updated:
            newly_pinned += 1
            print(f"ok   {name}: {target} (newly pinned)")
        else:
            print(f"ok   {name}: {target} (verified)")
    if newly_pinned:
        save_pins(args.lockfile, pins)
        print(
            f"pinned {newly_pinned} new digest(s) in {args.lockfile} — "
            "commit the lockfile to freeze them"
        )
    if failures:
        if args.offline_ok:
            print(
                f"warning: {failures} download(s) failed; continuing "
                "(--offline-ok)", file=sys.stderr,
            )
            return 0
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
