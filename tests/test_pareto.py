"""Depth-budgeted size rewriting and the (#N, #D) Pareto sweep.

The tentpole contracts:

* size rewriting under ``depth_budget=d`` never produces depth > d — in
  particular, a budget equal to the input's depth must not regress depth
  at all — asserted on every registry circuit;
* infeasible budgets (below the input's depth) raise a clear
  :class:`MigError`; invalid budget/engine/objective combinations raise
  :class:`ReproError`;
* ``pareto_sweep`` returns a non-dominated (#N, #D) frontier whose
  extreme points are at least as good as the unconstrained
  ``objective="size"`` / ``objective="depth"`` results, with every point
  equivalence-checked and every budgeted point within its budget;
* sweep results are deterministic for any worker count.
"""

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build
from repro.core.pareto import ParetoPoint, _non_dominated, _subsample, pareto_sweep
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.errors import MigError, ReproError
from repro.mig.analysis import depth
from repro.mig.equivalence import equivalent

from conftest import random_mig


class TestDepthBudgetValidation:
    def test_negative_budget_rejected(self):
        with pytest.raises(ReproError, match="non-negative"):
            rewrite_for_plim(build("ctrl", "ci"), RewriteOptions(depth_budget=-1))

    def test_rebuild_engine_rejected(self):
        with pytest.raises(ReproError, match="worklist"):
            rewrite_for_plim(
                build("ctrl", "ci"),
                RewriteOptions(depth_budget=10, engine="rebuild"),
            )

    def test_depth_objective_rejected(self):
        with pytest.raises(ReproError, match="objective"):
            rewrite_for_plim(
                build("ctrl", "ci"),
                RewriteOptions(depth_budget=10, objective="depth"),
            )

    def test_infeasible_budget_raises_mig_error(self):
        mig = build("adder", "ci")
        assert depth(mig.cleanup()[0]) > 1
        with pytest.raises(MigError, match="infeasible"):
            rewrite_for_plim(mig, RewriteOptions(depth_budget=1))

    def test_infeasible_budget_raises_for_balanced(self):
        mig = build("adder", "ci")
        with pytest.raises(MigError, match="infeasible"):
            rewrite_for_plim(
                mig, RewriteOptions(depth_budget=1, objective="balanced")
            )


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestDepthBudgetOnRegistry:
    def test_budget_equal_to_depth_never_regresses(self, name):
        """The tightest feasible budget: depth must not grow by a single
        level, and the result must stay equivalent and never larger than
        the cleaned input."""
        mig = build(name, "ci")
        clean = mig.cleanup()[0]
        ceiling = depth(clean)
        rewritten = rewrite_for_plim(mig, RewriteOptions(depth_budget=ceiling))
        assert depth(rewritten) <= ceiling
        assert rewritten.num_gates <= clean.num_gates
        assert equivalent(rewritten, mig)

    def test_intermediate_budgets_respected(self, name):
        """Every budget between depth-optimal and unconstrained is a hard
        ceiling on the result's depth."""
        mig = build(name, "ci")
        d_min = depth(
            rewrite_for_plim(mig, RewriteOptions(objective="depth"))
        )
        d_max = depth(rewrite_for_plim(mig))
        budgets = sorted({d_min, (d_min + d_max) // 2, max(d_min, d_max)})
        for budget in budgets:
            source = mig
            if depth(mig.cleanup()[0]) > budget:
                source = rewrite_for_plim(
                    mig, RewriteOptions(objective="depth")
                )
            rewritten = rewrite_for_plim(
                source, RewriteOptions(depth_budget=budget)
            )
            assert depth(rewritten) <= budget, (name, budget, depth(rewritten))
            assert equivalent(rewritten, mig)

    def test_loose_budget_matches_unconstrained(self, name):
        """A budget far above the reachable depth gates nothing: the
        result is exactly the unconstrained size rewrite."""
        mig = build(name, "ci")
        unconstrained = rewrite_for_plim(mig)
        loose = rewrite_for_plim(
            mig, RewriteOptions(depth_budget=depth(mig.cleanup()[0]) + 1000)
        )
        assert loose.num_gates == unconstrained.num_gates
        assert depth(loose) == depth(unconstrained)


class TestDepthBudgetBalanced:
    def test_balanced_respects_budget(self):
        for name in ("i2c", "router", "int2float"):
            mig = build(name, "ci")
            ceiling = depth(mig.cleanup()[0])
            rewritten = rewrite_for_plim(
                mig,
                RewriteOptions(depth_budget=ceiling, objective="balanced"),
            )
            assert depth(rewritten) <= ceiling
            assert equivalent(rewritten, mig)

    def test_budget_does_not_mutate_input(self):
        mig = build("i2c", "ci")
        nodes, gates, edits = len(mig), mig.num_gates, mig.edit_count
        rewrite_for_plim(
            mig, RewriteOptions(depth_budget=depth(mig.cleanup()[0]))
        )
        assert (len(mig), mig.num_gates, mig.edit_count) == (nodes, gates, edits)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_pareto_frontier_on_registry(name):
    """The acceptance bar, on every Table 1 registry circuit at ci scale:
    non-dominated frontier, extremes no worse than the single-objective
    results, every point equivalence-checked and within its budget."""
    mig = build(name, "ci")
    front = pareto_sweep((name, "ci"), workers=1)
    assert front.points
    # non-dominated, unique coordinates, ascending depth
    for p in front.points:
        for q in front.points:
            assert not p.dominates(q), (p, q)
    coords = [p.counts for p in front.points]
    assert len(set(coords)) == len(coords)
    assert [p.depth for p in front.points] == sorted(p.depth for p in front.points)
    # extremes match (or beat) the unconstrained single-objective results
    size_ref = rewrite_for_plim(mig)
    depth_ref = rewrite_for_plim(mig, RewriteOptions(objective="depth"))
    assert front.size_point.num_gates <= size_ref.num_gates
    assert front.depth_point.depth <= depth(depth_ref)
    # every candidate (frontier and dominated) was verified and budgeted
    for p in (*front.points, *front.dominated):
        assert p.equivalence in ("exhaustive", "random")
        if p.budget is not None:
            assert p.depth <= p.budget


class TestParetoSweepMechanics:
    def test_deterministic_across_worker_counts(self):
        serial = pareto_sweep(("router", "ci"), workers=1)
        pooled = pareto_sweep(("router", "ci"), workers=2)
        strip = lambda p: {**p.to_dict(), "seconds": None}
        assert [strip(p) for p in serial.points] == [strip(p) for p in pooled.points]
        assert [strip(p) for p in serial.dominated] == [
            strip(p) for p in pooled.dominated
        ]

    def test_accepts_mig_instances(self, small_random_mig):
        front = pareto_sweep(small_random_mig, workers=1)
        assert front.points
        assert all(p.equivalence == "exhaustive" for p in front.points)

    def test_verify_false_skips_checks(self):
        front = pareto_sweep(("ctrl", "ci"), workers=1, verify=False)
        assert all(p.equivalence is None for p in front.points)

    def test_max_points_caps_budget_candidates(self):
        full = pareto_sweep(("int2float", "ci"), workers=1)
        capped = pareto_sweep(("int2float", "ci"), workers=1, max_points=1)
        assert len(capped.points) + len(capped.dominated) <= 3
        # the capped frontier still spans the same extremes
        assert capped.size_point.num_gates == full.size_point.num_gates
        assert capped.depth_point.depth == full.depth_point.depth

    def test_subsample_keeps_ends(self):
        assert _subsample(list(range(10)), 3) == [0, 4, 9]
        assert _subsample(list(range(10)), None) == list(range(10))
        assert _subsample([1, 2], 5) == [1, 2]
        assert _subsample(list(range(10)), 1) == [0]
        assert _subsample(list(range(10)), 0) == []

    def test_max_points_zero_sweeps_extremes_only(self):
        front = pareto_sweep(("int2float", "ci"), workers=1, max_points=0)
        assert len(front.points) + len(front.dominated) == 2
        assert {p.label for p in (*front.points, *front.dominated)} == {
            "size", "depth",
        }

    def test_non_dominated_staircase(self):
        def pt(label, n, d):
            return ParetoPoint(
                label=label, budget=None, num_gates=n, depth=d,
                num_instructions=0, num_rrams=0, equivalence=None, seconds=0.0,
            )

        front, dominated = _non_dominated(
            [pt("a", 10, 5), pt("b", 8, 6), pt("c", 12, 4), pt("d", 8, 6),
             pt("e", 9, 7)]
        )
        assert [(p.num_gates, p.depth) for p in front] == [(12, 4), (10, 5), (8, 6)]
        assert {p.label for p in dominated} == {"d", "e"}

    def test_random_migs_frontier(self):
        for seed in range(4):
            mig = random_mig(seed=seed, num_pis=4, num_gates=15)
            front = pareto_sweep(mig, workers=1)
            for p in front.points:
                for q in front.points:
                    assert not p.dominates(q)
                assert p.equivalence == "exhaustive"
