"""Depth-budgeted size rewriting and the (#N, #D) Pareto sweep.

The tentpole contracts:

* size rewriting under ``depth_budget=d`` never produces depth > d — in
  particular, a budget equal to the input's depth must not regress depth
  at all — asserted on every registry circuit;
* infeasible budgets (below the input's depth) raise a clear
  :class:`MigError`; invalid budget/engine/objective combinations raise
  :class:`ReproError`;
* ``pareto_sweep`` returns a non-dominated (#N, #D) frontier whose
  extreme points are at least as good as the unconstrained
  ``objective="size"`` / ``objective="depth"`` results, with every point
  equivalence-checked and every budgeted point within its budget;
* sweep results are deterministic for any worker count, with and without
  a populated synthesis cache (a cache hit changes time, never output);
* the warm-started incremental sweep equals-or-dominates the cold
  per-budget sweep point-for-point, on every registry circuit.
"""

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build
from repro.core.cache import SynthesisCache
from repro.core.pareto import (
    CHAIN_LENGTH,
    ParetoFront,
    ParetoPoint,
    _chunked,
    _non_dominated,
    _subsample,
    pareto_sweep,
)
from repro.core.resilience import Fault, FaultPlan, TaskPolicy
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.errors import MigError, ReproError
from repro.mig.analysis import depth
from repro.mig.equivalence import equivalent

from conftest import random_mig


class TestDepthBudgetValidation:
    def test_negative_budget_rejected(self):
        with pytest.raises(ReproError, match="non-negative"):
            rewrite_for_plim(build("ctrl", "ci"), RewriteOptions(depth_budget=-1))

    def test_rebuild_engine_rejected(self):
        with pytest.raises(ReproError, match="worklist"):
            rewrite_for_plim(
                build("ctrl", "ci"),
                RewriteOptions(depth_budget=10, engine="rebuild"),
            )

    def test_depth_objective_rejected(self):
        with pytest.raises(ReproError, match="objective"):
            rewrite_for_plim(
                build("ctrl", "ci"),
                RewriteOptions(depth_budget=10, objective="depth"),
            )

    def test_infeasible_budget_raises_mig_error(self):
        mig = build("adder", "ci")
        assert depth(mig.cleanup()[0]) > 1
        with pytest.raises(MigError, match="infeasible"):
            rewrite_for_plim(mig, RewriteOptions(depth_budget=1))

    def test_infeasible_budget_raises_for_balanced(self):
        mig = build("adder", "ci")
        with pytest.raises(MigError, match="infeasible"):
            rewrite_for_plim(
                mig, RewriteOptions(depth_budget=1, objective="balanced")
            )


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestDepthBudgetOnRegistry:
    def test_budget_equal_to_depth_never_regresses(self, name):
        """The tightest feasible budget: depth must not grow by a single
        level, and the result must stay equivalent and never larger than
        the cleaned input."""
        mig = build(name, "ci")
        clean = mig.cleanup()[0]
        ceiling = depth(clean)
        rewritten = rewrite_for_plim(mig, RewriteOptions(depth_budget=ceiling))
        assert depth(rewritten) <= ceiling
        assert rewritten.num_gates <= clean.num_gates
        assert equivalent(rewritten, mig)

    def test_intermediate_budgets_respected(self, name):
        """Every budget between depth-optimal and unconstrained is a hard
        ceiling on the result's depth."""
        mig = build(name, "ci")
        d_min = depth(
            rewrite_for_plim(mig, RewriteOptions(objective="depth"))
        )
        d_max = depth(rewrite_for_plim(mig))
        budgets = sorted({d_min, (d_min + d_max) // 2, max(d_min, d_max)})
        for budget in budgets:
            source = mig
            if depth(mig.cleanup()[0]) > budget:
                source = rewrite_for_plim(
                    mig, RewriteOptions(objective="depth")
                )
            rewritten = rewrite_for_plim(
                source, RewriteOptions(depth_budget=budget)
            )
            assert depth(rewritten) <= budget, (name, budget, depth(rewritten))
            assert equivalent(rewritten, mig)

    def test_loose_budget_matches_unconstrained(self, name):
        """A budget far above the reachable depth gates nothing: the
        result is exactly the unconstrained size rewrite."""
        mig = build(name, "ci")
        unconstrained = rewrite_for_plim(mig)
        loose = rewrite_for_plim(
            mig, RewriteOptions(depth_budget=depth(mig.cleanup()[0]) + 1000)
        )
        assert loose.num_gates == unconstrained.num_gates
        assert depth(loose) == depth(unconstrained)


class TestDepthBudgetBalanced:
    def test_balanced_respects_budget(self):
        for name in ("i2c", "router", "int2float"):
            mig = build(name, "ci")
            ceiling = depth(mig.cleanup()[0])
            rewritten = rewrite_for_plim(
                mig,
                RewriteOptions(depth_budget=ceiling, objective="balanced"),
            )
            assert depth(rewritten) <= ceiling
            assert equivalent(rewritten, mig)

    def test_budget_does_not_mutate_input(self):
        mig = build("i2c", "ci")
        nodes, gates, edits = len(mig), mig.num_gates, mig.edit_count
        rewrite_for_plim(
            mig, RewriteOptions(depth_budget=depth(mig.cleanup()[0]))
        )
        assert (len(mig), mig.num_gates, mig.edit_count) == (nodes, gates, edits)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_pareto_frontier_on_registry(name):
    """The acceptance bar, on every Table 1 registry circuit at ci scale:
    non-dominated frontier, extremes no worse than the single-objective
    results, every point equivalence-checked and within its budget."""
    mig = build(name, "ci")
    front = pareto_sweep((name, "ci"), workers=1)
    assert front.points
    # non-dominated, unique coordinates, ascending depth
    for p in front.points:
        for q in front.points:
            assert not p.dominates(q), (p, q)
    coords = [p.counts for p in front.points]
    assert len(set(coords)) == len(coords)
    assert [p.depth for p in front.points] == sorted(p.depth for p in front.points)
    # extremes match (or beat) the unconstrained single-objective results
    size_ref = rewrite_for_plim(mig)
    depth_ref = rewrite_for_plim(mig, RewriteOptions(objective="depth"))
    assert front.size_point.num_gates <= size_ref.num_gates
    assert front.depth_point.depth <= depth(depth_ref)
    # every candidate (frontier and dominated) was verified and budgeted
    for p in (*front.points, *front.dominated):
        assert p.equivalence in ("exhaustive", "random")
        if p.budget is not None:
            assert p.depth <= p.budget


def _strip(point):
    return {**point.to_dict(), "seconds": None}


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_warm_sweep_equals_or_dominates_cold(name):
    """The incremental-sweep acceptance bar, on every registry circuit at
    ci scale: for every point on the cold (per-budget restart) frontier,
    the warm-started frontier holds a point at least as good in both
    coordinates — warm chaining may improve the frontier, never lose
    ground — with every warm point still equivalence-checked in-worker."""
    cold = pareto_sweep((name, "ci"), workers=1, warm_start=False)
    warm = pareto_sweep((name, "ci"), workers=1, warm_start=True)
    for c in cold.points:
        assert any(
            w.num_gates <= c.num_gates and w.depth <= c.depth for w in warm.points
        ), (name, c)
    for p in (*warm.points, *warm.dominated):
        assert p.equivalence in ("exhaustive", "random")
        assert p.source in ("cold", "warm", "cold-fallback")
    # the cold sweep never warm-starts
    assert all(p.source == "cold" for p in (*cold.points, *cold.dominated))


class TestParetoSweepMechanics:
    def test_deterministic_across_worker_counts(self):
        serial = pareto_sweep(("router", "ci"), workers=1)
        pooled = pareto_sweep(("router", "ci"), workers=2)
        assert [_strip(p) for p in serial.points] == [_strip(p) for p in pooled.points]
        assert [_strip(p) for p in serial.dominated] == [
            _strip(p) for p in pooled.dominated
        ]

    def test_deterministic_with_and_without_cache(self, tmp_path):
        """A cache hit changes the sweep's wall time, never its output —
        uncached, cold-cache (populating) and warm-cache (front hit) runs
        all return identical points, for any worker count."""
        plain = pareto_sweep(("router", "ci"), workers=1)
        populating = pareto_sweep(("router", "ci"), workers=1, cache_dir=tmp_path)
        hit_serial = pareto_sweep(("router", "ci"), workers=1, cache_dir=tmp_path)
        hit_pooled = pareto_sweep(("router", "ci"), workers=2, cache_dir=tmp_path)
        reference = [_strip(p) for p in plain.points]
        for front in (populating, hit_serial, hit_pooled):
            assert [_strip(p) for p in front.points] == reference
        # the hit runs really were front-cache lookups
        probe = SynthesisCache(tmp_path)
        pareto_sweep(("router", "ci"), workers=1, cache=probe)
        assert probe.stats.hits == 1 and probe.stats.stores == 0

    def test_pooled_cache_population_matches_serial(self, tmp_path):
        """Pool workers run the cache read-only and ship entries back; the
        merged disk store must serve the same front a serial run stores."""
        pooled_dir = tmp_path / "pooled"
        serial_dir = tmp_path / "serial"
        pooled = pareto_sweep(("router", "ci"), workers=2, cache_dir=pooled_dir)
        serial = pareto_sweep(("router", "ci"), workers=1, cache_dir=serial_dir)
        hit = pareto_sweep(("router", "ci"), workers=1, cache_dir=pooled_dir)
        assert [_strip(p) for p in hit.points] == [_strip(p) for p in pooled.points]
        assert [_strip(p) for p in hit.points] == [_strip(p) for p in serial.points]

    def test_warm_start_false_restores_per_budget_chains(self):
        front = pareto_sweep(("int2float", "ci"), workers=1, warm_start=False)
        assert all(p.source == "cold" for p in (*front.points, *front.dominated))

    def test_chunked_chain_boundaries_fixed(self):
        assert _chunked(list(range(10)), 4) == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9],
        ]
        assert _chunked([], 4) == []
        assert _chunked([3], 1) == [[3]]
        assert CHAIN_LENGTH >= 2  # warm starts exist at all

    def test_accepts_mig_instances(self, small_random_mig):
        front = pareto_sweep(small_random_mig, workers=1)
        assert front.points
        assert all(p.equivalence == "exhaustive" for p in front.points)

    def test_verify_false_skips_checks(self):
        front = pareto_sweep(("ctrl", "ci"), workers=1, verify=False)
        assert all(p.equivalence is None for p in front.points)

    def test_max_points_caps_budget_candidates(self):
        full = pareto_sweep(("int2float", "ci"), workers=1)
        capped = pareto_sweep(("int2float", "ci"), workers=1, max_points=1)
        assert len(capped.points) + len(capped.dominated) <= 3
        # Both sweeps contain the two unconstrained anchors, so the capped
        # frontier's extremes are never *better* than the full sweep's —
        # but they need not be equal: a warm-started budget chain is
        # iterated rewriting and can escape local optima the one-shot
        # anchors (and a capped sweep's shorter chains) get stuck in.
        assert capped.size_point.num_gates >= full.size_point.num_gates
        assert capped.depth_point.depth >= full.depth_point.depth

    def test_subsample_keeps_ends(self):
        assert _subsample(list(range(10)), 3) == [0, 4, 9]
        assert _subsample(list(range(10)), None) == list(range(10))
        assert _subsample([1, 2], 5) == [1, 2]
        assert _subsample(list(range(10)), 1) == [0]
        assert _subsample(list(range(10)), 0) == []

    def test_max_points_zero_sweeps_extremes_only(self):
        front = pareto_sweep(("int2float", "ci"), workers=1, max_points=0)
        assert len(front.points) + len(front.dominated) == 2
        assert {p.label for p in (*front.points, *front.dominated)} == {
            "size", "depth",
        }

    def test_non_dominated_staircase(self):
        def pt(label, n, d):
            return ParetoPoint(
                label=label, budget=None, num_gates=n, depth=d,
                num_instructions=0, num_rrams=0, equivalence=None, seconds=0.0,
            )

        front, dominated = _non_dominated(
            [pt("a", 10, 5), pt("b", 8, 6), pt("c", 12, 4), pt("d", 8, 6),
             pt("e", 9, 7)]
        )
        assert [(p.num_gates, p.depth) for p in front] == [(12, 4), (10, 5), (8, 6)]
        assert {p.label for p in dominated} == {"d", "e"}

    def test_random_migs_frontier(self):
        for seed in range(4):
            mig = random_mig(seed=seed, num_pis=4, num_gates=15)
            front = pareto_sweep(mig, workers=1)
            for p in front.points:
                for q in front.points:
                    assert not p.dominates(q)
                assert p.equivalence == "exhaustive"


class TestPartialFrontiers:
    """ISSUE 7 acceptance: a failed budget point yields a *partial*
    frontier flagged ``incomplete`` — still staircase-valid, every
    surviving point verified — instead of aborting the sweep."""

    @staticmethod
    def _staircase_valid(front):
        pts = sorted(front.points, key=lambda p: p.depth)
        return all(
            a.depth < b.depth and a.num_gates > b.num_gates
            for a, b in zip(pts, pts[1:])
        )

    def test_chain_crash_yields_partial_staircase(self):
        # router/ci has a 2-point front, so the budget chain has real work
        clean = pareto_sweep(("router", "ci"), workers=1)
        assert not clean.incomplete and clean.failed_budgets == ()
        plan = FaultPlan(phases={"chain": {0: Fault("exit")}})
        partial = pareto_sweep(
            ("router", "ci"), workers=2,
            policy=TaskPolicy(on_error="skip"), fault_plan=plan,
        )
        assert partial.incomplete
        assert partial.failed_budgets and all(
            label.startswith("budget=") for label in partial.failed_budgets
        )
        assert len(partial.failures) == 1
        assert partial.failures[0].kind == "crash"
        assert partial.points  # the surviving anchors still form a front
        assert self._staircase_valid(partial)
        for p in partial.points:
            # every surviving point is still equivalence-checked
            assert p.equivalence in ("exhaustive", "random")

    def test_anchor_crash_flags_the_objective(self):
        plan = FaultPlan(phases={"anchor": {1: Fault("exit")}})
        partial = pareto_sweep(
            ("ctrl", "ci"), workers=2,
            policy=TaskPolicy(on_error="skip"), fault_plan=plan,
        )
        assert partial.incomplete and "depth" in partial.failed_budgets
        assert partial.points and self._staircase_valid(partial)

    def test_raise_mode_still_aborts(self):
        from repro.core.resilience import TaskError

        plan = FaultPlan(phases={"anchor": {0: Fault("exit")}})
        with pytest.raises(TaskError):
            pareto_sweep(("ctrl", "ci"), workers=2, fault_plan=plan)

    def test_incomplete_fronts_are_never_cached(self, tmp_path):
        plan = FaultPlan(phases={"anchor": {1: Fault("exit")}})
        cache = SynthesisCache(tmp_path / "c")
        partial = pareto_sweep(
            ("ctrl", "ci"), workers=2, cache=cache,
            policy=TaskPolicy(on_error="skip"), fault_plan=plan,
        )
        assert partial.incomplete
        # a later healthy sweep through the same cache dir must recompute
        # the front (no front entry was stored), then cache the full one
        healthy_cache = SynthesisCache(tmp_path / "c")
        healthy = pareto_sweep(("ctrl", "ci"), workers=1, cache=healthy_cache)
        assert not healthy.incomplete
        clean = pareto_sweep(("ctrl", "ci"), workers=1)
        assert [(p.num_gates, p.depth) for p in healthy.points] == [
            (p.num_gates, p.depth) for p in clean.points
        ]

    def test_failure_fields_roundtrip_to_dict(self):
        plan = FaultPlan(phases={"anchor": {1: Fault("exit")}})
        partial = pareto_sweep(
            ("ctrl", "ci"), workers=2,
            policy=TaskPolicy(on_error="skip"), fault_plan=plan,
        )
        clone = ParetoFront.from_dict(partial.to_dict())
        assert clone.incomplete == partial.incomplete
        assert clone.failed_budgets == partial.failed_budgets
        assert [f.index for f in clone.failures] == [
            f.index for f in partial.failures
        ]

    def test_old_cached_fronts_still_deserialize(self):
        # pre-resilience cache entries have no incomplete/failed fields
        healthy = pareto_sweep(("ctrl", "ci"), workers=1)
        data = healthy.to_dict()
        for key in ("incomplete", "failed_budgets", "failures"):
            data.pop(key, None)
        old = ParetoFront.from_dict(data)
        assert old.incomplete is False
        assert old.failed_budgets == () and old.failures == ()


class TestAxes:
    """ISSUE 8: user-selectable frontier axes — the same depth-budgeted
    candidate generator, deduplicated on any metric pair from
    ``PARETO_AXES``, with executed axes ("cycles"/"wear") running every
    candidate on the machine model."""

    def test_too_few_axes_rejected(self):
        with pytest.raises(MigError, match="at least two"):
            pareto_sweep(("ctrl", "ci"), workers=1, axes=("depth",))

    def test_duplicate_axes_rejected(self):
        with pytest.raises(MigError, match="distinct"):
            pareto_sweep(("ctrl", "ci"), workers=1, axes=("depth", "depth"))

    def test_unknown_axis_rejected(self):
        with pytest.raises(MigError, match="unknown pareto axes"):
            pareto_sweep(("ctrl", "ci"), workers=1, axes=("depth", "area"))

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_instruction_rram_frontier_on_registry(self, name):
        """The ISSUE 8 acceptance bar: ``axes=("num_instructions",
        "num_rrams")`` returns a verified non-dominated frontier over the
        compiled-program coordinates, on every registry circuit."""
        axes = ("num_instructions", "num_rrams")
        front = pareto_sweep((name, "ci"), workers=1, axes=axes)
        assert front.axes == axes
        assert front.points
        coords = [p.coordinate(axes) for p in front.points]
        assert len(set(coords)) == len(coords)  # no duplicate coordinates
        for p in front.points:
            for q in front.points:
                assert not p.dominates(q, axes), (name, p, q)
            assert p.equivalence in ("exhaustive", "random")
            # free axes: no machine execution happened
            assert p.cycles is None and p.max_writes is None
        # nothing dominated sneaks onto the front
        for d in front.dominated:
            coord = d.coordinate(axes)
            assert coord in set(coords) or any(
                p.dominates(d, axes) for p in front.points
            ), (name, d)

    def test_deterministic_across_worker_counts(self):
        axes = ("num_instructions", "num_rrams")
        serial = pareto_sweep(("router", "ci"), workers=1, axes=axes)
        pooled = pareto_sweep(("router", "ci"), workers=2, axes=axes)
        assert [_strip(p) for p in serial.points] == [_strip(p) for p in pooled.points]
        assert [_strip(p) for p in serial.dominated] == [
            _strip(p) for p in pooled.dominated
        ]

    def test_cache_hit_never_changes_axed_output(self, tmp_path):
        axes = ("num_instructions", "num_rrams")
        plain = pareto_sweep(("ctrl", "ci"), workers=1, axes=axes)
        populating = pareto_sweep(
            ("ctrl", "ci"), workers=1, axes=axes, cache_dir=tmp_path
        )
        hit = pareto_sweep(("ctrl", "ci"), workers=1, axes=axes, cache_dir=tmp_path)
        reference = [_strip(p) for p in plain.points]
        assert [_strip(p) for p in populating.points] == reference
        assert [_strip(p) for p in hit.points] == reference
        assert hit.axes == axes
        probe = SynthesisCache(tmp_path)
        pareto_sweep(("ctrl", "ci"), workers=1, axes=axes, cache=probe)
        assert probe.stats.hits == 1 and probe.stats.stores == 0

    def test_axes_are_part_of_the_cache_key(self, tmp_path):
        """Differently-axed fronts of the same circuit never collide in
        the cache: the second sweep is a miss-and-store, not a hit."""
        default = pareto_sweep(("ctrl", "ci"), workers=1, cache_dir=tmp_path)
        probe = SynthesisCache(tmp_path)
        axed = pareto_sweep(
            ("ctrl", "ci"), workers=1, cache=probe,
            axes=("num_instructions", "num_rrams"),
        )
        assert probe.stats.stores >= 1  # the axed front was newly cached
        assert axed.axes != default.axes

    def test_executed_axes_measure_the_machine(self):
        front = pareto_sweep(("ctrl", "ci"), workers=1, axes=("depth", "wear"))
        assert front.axes == ("depth", "wear")
        assert front.points
        for p in (*front.points, *front.dominated):
            assert p.cycles is not None and p.cycles > 0
            assert p.max_writes is not None and p.max_writes >= 1
            assert p.metric("wear") == p.max_writes
            assert p.metric("cycles") == p.cycles
        for p in front.points:
            for q in front.points:
                assert not p.dominates(q, ("depth", "wear"))

    def test_default_axes_skip_execution(self):
        front = pareto_sweep(("ctrl", "ci"), workers=1)
        for p in (*front.points, *front.dominated):
            assert p.cycles is None and p.max_writes is None
            with pytest.raises(MigError, match="carries no 'wear' metric"):
                p.metric("wear")

    def test_point_round_trips_executed_metrics(self):
        point = ParetoPoint(
            label="budget=3", budget=3, num_gates=7, depth=3,
            num_instructions=19, num_rrams=4, equivalence="exhaustive",
            seconds=0.5, source="warm", cycles=57, max_writes=6,
        )
        again = ParetoPoint.from_dict(point.to_dict())
        assert again == point
        assert again.metric("wear") == 6 and again.metric("cycles") == 57

    def test_front_round_trips_axes(self):
        axes = ("num_instructions", "num_rrams")
        front = pareto_sweep(("ctrl", "ci"), workers=1, axes=axes)
        again = ParetoFront.from_dict(front.to_dict())
        assert again.axes == axes
        assert [_strip(p) for p in again.points] == [_strip(p) for p in front.points]
        # pre-axes cached fronts (no "axes" key) default to (#N, #D)
        data = front.to_dict()
        del data["axes"]
        assert ParetoFront.from_dict(data).axes == ("num_gates", "depth")

    def test_non_dominated_generalizes_beyond_default_axes(self):
        def pt(label, i, r):
            return ParetoPoint(
                label=label, budget=None, num_gates=0, depth=0,
                num_instructions=i, num_rrams=r, equivalence=None, seconds=0.0,
            )

        axes = ("num_instructions", "num_rrams")
        front, dominated = _non_dominated(
            [pt("a", 100, 10), pt("b", 90, 12), pt("c", 110, 9), pt("d", 95, 13)],
            axes,
        )
        # ranked like the default staircase: ascending second axis (#R),
        # so descending first axis (#I) along the frontier
        assert [(p.num_instructions, p.num_rrams) for p in front] == [
            (110, 9), (100, 10), (90, 12),
        ]
        assert {p.label for p in dominated} == {"d"}
