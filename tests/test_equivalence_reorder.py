"""Unit tests for repro.mig.equivalence and repro.mig.reorder."""

import pytest

from repro.errors import MigError
from repro.mig.equivalence import equivalent
from repro.mig.graph import Mig
from repro.mig.reorder import reorder_dfs, shuffle_topological
from repro.mig.signal import Signal
from repro.mig.simulate import truth_tables

from conftest import random_mig


def xor_mig(flip: bool = False) -> Mig:
    mig = Mig()
    a, b = mig.add_pi("a"), mig.add_pi("b")
    o = mig.add_maj(a, b, Signal.CONST1)
    n = mig.add_maj(a, b, Signal.CONST0)
    x = mig.add_maj(o, ~n, Signal.CONST0)
    mig.add_po(~x if flip else x, "f")
    return mig


def duplicate_po_mig(second_output_differs: bool) -> Mig:
    """Two outputs both named ``f``; the second one optionally differs."""
    mig = Mig()
    a, b = mig.add_pi("a"), mig.add_pi("b")
    g = mig.add_maj(a, b, Signal.CONST0)
    mig.add_po(g, "f")
    mig.add_po(~g if second_output_differs else g, "f")
    return mig


class TestEquivalence:
    def test_identical(self):
        assert equivalent(xor_mig(), xor_mig())

    def test_duplicate_po_names_compared_by_index(self):
        """Regression: duplicate-named outputs used to collapse into one
        dict entry, so two circuits differing only on the shadowed first
        output passed the check.  Comparison is positional now."""
        same = duplicate_po_mig(second_output_differs=False)
        differs = duplicate_po_mig(second_output_differs=True)
        result = equivalent(same, differs)
        assert not result
        assert result.failing_output == "f"
        assert result.failing_output_index == 1

    def test_duplicate_po_names_equivalent_when_equal(self):
        assert equivalent(
            duplicate_po_mig(second_output_differs=True),
            duplicate_po_mig(second_output_differs=True),
        )

    def test_shadowed_first_output_detected(self):
        """The *first* of two same-named outputs differs — exactly the
        entry a name-keyed dict would shadow."""
        base = duplicate_po_mig(second_output_differs=False)
        shadowed = Mig()
        a, b = shadowed.add_pi("a"), shadowed.add_pi("b")
        g = shadowed.add_maj(a, b, Signal.CONST0)
        shadowed.add_po(~g, "f")
        shadowed.add_po(g, "f")
        result = equivalent(base, shadowed)
        assert not result
        assert result.failing_output_index == 0

    def test_structural_variants(self):
        a_mig = xor_mig()
        # different structure, same function: (a ∧ ~b) ∨ (~a ∧ b)
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        left = mig.add_maj(a, ~b, Signal.CONST0)
        right = mig.add_maj(~a, b, Signal.CONST0)
        mig.add_po(mig.add_maj(left, right, Signal.CONST1), "f")
        result = equivalent(a_mig, mig)
        assert result
        assert result.mode == "exhaustive"

    def test_detects_difference(self):
        result = equivalent(xor_mig(), xor_mig(flip=True))
        assert not result
        assert result.failing_output == "f"
        assert result.counterexample is not None

    def test_counterexample_is_real(self):
        a_mig, b_mig = xor_mig(), xor_mig(flip=True)
        result = equivalent(a_mig, b_mig)
        cex = result.counterexample
        from repro.mig.simulate import evaluate

        assert evaluate(a_mig, cex)["f"] != evaluate(b_mig, cex)["f"]

    def test_random_mode_for_wide_inputs(self):
        mig = Mig()
        pis = [mig.add_pi(f"x{i}") for i in range(20)]
        f = pis[0]
        for p in pis[1:]:
            f = mig.add_maj(f, p, Signal.CONST0)
        mig.add_po(f, "f")
        result = equivalent(mig, mig.clone(), exhaustive_limit=10)
        assert result
        assert result.mode == "random"

    def test_random_mode_detects_difference(self):
        mig = Mig()
        pis = [mig.add_pi(f"x{i}") for i in range(20)]
        f = pis[0]
        for p in pis[1:]:
            f = mig.add_maj(f, p, Signal.CONST1)
        mig.add_po(f, "f")
        other, _ = mig.rebuild()
        other._pos[0] = ~other._pos[0]
        result = equivalent(mig, other, exhaustive_limit=10)
        assert not result

    def test_interface_mismatch_rejected(self):
        mig = Mig()
        mig.add_pi("a")
        other = Mig()
        other.add_pi("b")
        with pytest.raises(MigError):
            equivalent(mig, other)


class TestReorderDfs:
    @pytest.mark.parametrize("seed", range(5))
    def test_preserves_function(self, seed):
        mig = random_mig(seed, num_pis=5, num_gates=30)
        assert truth_tables(reorder_dfs(mig)) == truth_tables(mig)

    @pytest.mark.parametrize("seed", range(5))
    def test_same_gate_count(self, seed):
        mig = random_mig(seed, num_pis=5, num_gates=30)
        assert reorder_dfs(mig).num_gates == mig.cleanup()[0].num_gates

    def test_consumers_close_to_producers(self):
        """DFS order: at least one child of each gate is recent."""
        mig = random_mig(9, num_pis=6, num_gates=40)
        ordered = reorder_dfs(mig)
        distances = []
        for v in ordered.gates():
            gate_children = [c.node for c in ordered.children(v) if ordered.is_gate(c.node)]
            if gate_children:
                distances.append(v - max(gate_children))
        assert distances and sorted(distances)[len(distances) // 2] <= 3

    def test_idempotent(self):
        mig = random_mig(4, num_pis=5, num_gates=25)
        once = reorder_dfs(mig)
        twice = reorder_dfs(once)
        assert [once.children(v) for v in once.gates()] == [
            twice.children(v) for v in twice.gates()
        ]


class TestShuffle:
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_preserves_function(self, seed):
        mig = random_mig(2, num_pis=5, num_gates=30)
        assert truth_tables(shuffle_topological(mig, seed)) == truth_tables(mig)

    def test_deterministic(self):
        mig = random_mig(2, num_pis=5, num_gates=30)
        a = shuffle_topological(mig, 5)
        b = shuffle_topological(mig, 5)
        assert [a.children(v) for v in a.gates()] == [b.children(v) for v in b.gates()]

    def test_seed_changes_order(self):
        mig = random_mig(2, num_pis=6, num_gates=40)
        a = shuffle_topological(mig, 1)
        b = shuffle_topological(mig, 2)
        assert [a.children(v) for v in a.gates()] != [b.children(v) for v in b.gates()]

    def test_still_topological(self):
        mig = random_mig(3, num_pis=5, num_gates=30)
        shuffled = shuffle_topological(mig, 99)
        for v in shuffled.gates():
            for child in shuffled.children(v):
                assert child.node < v
