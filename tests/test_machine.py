"""Unit tests for repro.plim.machine (the PLiM architecture model)."""

import pytest

from repro.errors import MachineError
from repro.plim.isa import Instruction, ONE, Operand, ZERO
from repro.plim.machine import PlimMachine
from repro.plim.program import Program


@pytest.fixture
def machine():
    return PlimMachine(num_cells=8)


class TestRamMode:
    def test_read_write(self, machine):
        machine.write(3, 1)
        assert machine.read(3) == 1

    def test_write_requires_ram_mode(self, machine):
        machine.set_lim(True)
        with pytest.raises(MachineError):
            machine.write(0, 1)

    def test_address_bounds(self, machine):
        with pytest.raises(MachineError):
            machine.read(8)
        with pytest.raises(MachineError):
            machine.write(-1, 0)

    def test_construction_validation(self):
        with pytest.raises(MachineError):
            PlimMachine(-1)
        with pytest.raises(MachineError):
            PlimMachine(4, width=0)


class TestLimMode:
    def test_execute_requires_lim(self, machine):
        with pytest.raises(MachineError):
            machine.execute(Instruction(ZERO, ONE, 0))

    def test_rm3_updates_destination(self, machine):
        machine.write(0, 1)  # A cell
        machine.write(2, 1)  # Z cell
        machine.set_lim(True)
        # Z <- <A=cells[0], ¬B=¬0=1, Z=1> = 1
        result = machine.execute(Instruction(Operand.cell(0), ZERO, 2))
        assert result == 1
        assert machine.read(2) == 1

    def test_reset_and_set_idioms(self, machine):
        machine.set_lim(True)
        machine.execute(Instruction(ONE, ZERO, 5))
        assert machine.cells[5] == 1
        machine.execute(Instruction(ZERO, ONE, 5))
        assert machine.cells[5] == 0

    def test_load_idiom(self, machine):
        machine.write(1, 1)
        machine.set_lim(True)
        machine.execute(Instruction(ZERO, ONE, 4))  # clear
        machine.execute(Instruction(Operand.cell(1), ZERO, 4))  # load
        assert machine.cells[4] == 1

    def test_inverted_load_idiom(self, machine):
        machine.write(1, 1)
        machine.set_lim(True)
        machine.execute(Instruction(ZERO, ONE, 4))
        machine.execute(Instruction(ONE, Operand.cell(1), 4))
        assert machine.cells[4] == 0

    def test_destination_supplies_old_value(self, machine):
        """Z participates in the majority with its pre-write value."""
        machine.write(0, 0)
        machine.write(1, 1)
        machine.write(2, 1)  # old Z = 1
        machine.set_lim(True)
        # <A=0, ¬B=0, Z=1> = 0 — result depends on old Z
        machine.execute(Instruction(Operand.cell(0), Operand.cell(1), 2))
        assert machine.read(2) == 0

    def test_counters(self, machine):
        machine.set_lim(True)
        machine.execute(Instruction(ONE, ZERO, 0))
        machine.execute(Instruction(ONE, ZERO, 0))
        assert machine.instruction_count == 2
        assert machine.cycle_count == 6


class TestEnduranceCounters:
    def test_write_counts_every_pulse(self, machine):
        machine.set_lim(True)
        machine.execute(Instruction(ONE, ZERO, 3))
        machine.execute(Instruction(ONE, ZERO, 3))  # same value again
        assert machine.write_counts[3] == 2

    def test_flip_counts_only_changes(self, machine):
        machine.set_lim(True)
        machine.execute(Instruction(ONE, ZERO, 3))  # 0 -> 1: flip
        machine.execute(Instruction(ONE, ZERO, 3))  # 1 -> 1: no flip
        machine.execute(Instruction(ZERO, ONE, 3))  # 1 -> 0: flip
        assert machine.flip_counts[3] == 2

    def test_ram_writes_counted(self, machine):
        machine.write(1, 1)
        assert machine.write_counts[1] == 1


class TestBitParallel:
    def test_packed_execution(self):
        machine = PlimMachine(4, width=4)
        machine.write(0, 0b1100)
        machine.write(1, 0b1010)
        machine.set_lim(True)
        machine.execute(Instruction(ZERO, ONE, 2))
        machine.execute(Instruction(Operand.cell(0), ZERO, 2))
        # cell2 = cell0
        assert machine.read(2) == 0b1100
        machine.execute(Instruction(Operand.cell(1), ZERO, 3))  # z=0 -> and-ish
        assert machine.read(3) == 0b1010 & machine.mask

    def test_const_operands_widened(self):
        machine = PlimMachine(2, width=8)
        machine.set_lim(True)
        machine.execute(Instruction(ONE, ZERO, 0))
        assert machine.read(0) == 0xFF


class TestProgramExecution:
    def make_program(self):
        program = Program(input_cells={"a": 0, "b": 1}, name="and")
        program.register_work_cell(2)
        program.append(Instruction(ZERO, ONE, 2))  # X <- 0
        # X <- <a, ¬0=1, 0> = a ... then <b,...> to AND:
        program.append(Instruction(Operand.cell(0), ZERO, 2))  # X <- a
        program.append(Instruction(Operand.cell(1), ONE, 2))  # X <- <b, 0, a> = b AND a
        program.set_output("f", 2)
        return program

    def test_run_program(self):
        program = self.make_program()
        for a in (0, 1):
            for b in (0, 1):
                machine = PlimMachine.for_program(program)
                out = machine.run_program(program, {"a": a, "b": b})
                assert out["f"] == (a & b)

    def test_inverted_output_location(self):
        program = self.make_program()
        program.set_output("g", 2, inverted=True)
        machine = PlimMachine.for_program(program)
        out = machine.run_program(program, {"a": 1, "b": 1})
        assert out["f"] == 1 and out["g"] == 0

    def test_missing_input_rejected(self):
        program = self.make_program()
        machine = PlimMachine.for_program(program)
        with pytest.raises(MachineError):
            machine.load_inputs(program, {"a": 1})

    def test_for_program_sizes_machine(self):
        program = self.make_program()
        assert len(PlimMachine.for_program(program).cells) == 3

    def test_run_restores_lim_mode(self):
        program = self.make_program()
        machine = PlimMachine.for_program(program)
        machine.load_inputs(program, {"a": 0, "b": 1})
        machine.run(program)
        assert not machine.lim_enabled
