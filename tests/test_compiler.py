"""Unit and integration tests for repro.core.compiler (Algorithm 2)."""

import pytest

from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.errors import CompilationError
from repro.mig.graph import Mig
from repro.mig.reorder import shuffle_topological
from repro.mig.signal import Signal
from repro.plim.verify import verify_program

from conftest import random_mig


class TestOptions:
    def test_defaults(self):
        opts = CompilerOptions()
        assert opts.scheduling == "priority"
        assert opts.operand_selection == "cases"
        assert opts.complement_caching
        assert opts.fix_output_polarity

    def test_naive_preset(self):
        opts = CompilerOptions.naive()
        assert opts.scheduling == "index"
        assert opts.operand_selection == "child_order"
        assert not opts.complement_caching
        assert opts.reorder == "none"

    def test_no_selection_preset(self):
        opts = CompilerOptions.no_selection()
        assert opts.scheduling == "index"
        assert opts.operand_selection == "cases"

    def test_paper_selection_preset(self):
        assert CompilerOptions.paper_selection().level_rule

    def test_overrides(self):
        opts = CompilerOptions.naive(allocator_policy="fresh")
        assert opts.allocator_policy == "fresh"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scheduling": "bogus"},
            {"operand_selection": "bogus"},
            {"allocator_policy": "bogus"},
            {"reorder": "bogus"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(CompilationError):
            CompilerOptions(**kwargs)


ALL_CONFIGS = [
    CompilerOptions(),
    CompilerOptions.naive(),
    CompilerOptions.no_selection(),
    CompilerOptions.paper_selection(),
    CompilerOptions(unblocking_rule=True),
    CompilerOptions(allocator_policy="lifo"),
    CompilerOptions(allocator_policy="fresh"),
    CompilerOptions(fix_output_polarity=False),
    CompilerOptions(complement_caching=False),
    CompilerOptions(reorder="none"),
]


@pytest.mark.parametrize("config_index", range(len(ALL_CONFIGS)))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_every_configuration_compiles_correctly(config_index, seed):
    """The gold invariant: any option combination yields a correct program."""
    mig = random_mig(seed, num_pis=5, num_gates=30, num_pos=3)
    program = PlimCompiler(ALL_CONFIGS[config_index]).compile(mig)
    assert verify_program(mig, program, raise_on_mismatch=True).ok


class TestStructuralProperties:
    def test_every_gate_translated(self):
        mig = random_mig(10, num_pis=5, num_gates=25)
        program = PlimCompiler(CompilerOptions(fix_output_polarity=False)).compile(mig)
        clean, _ = mig.cleanup()
        # Copies repeat a gate's label; distinct labels == live gates.
        labels = {
            i.comment.split("<- ")[-1]
            for i in program
            if "<- n" in i.comment
        }
        assert len(labels) == clean.num_gates

    def test_instructions_lower_bound(self):
        mig = random_mig(11, num_pis=5, num_gates=25)
        program = PlimCompiler(CompilerOptions()).compile(mig)
        assert program.num_instructions >= mig.cleanup()[0].num_gates

    def test_dead_gates_skipped_when_clean(self):
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        live = mig.add_maj(a, b, c)
        mig.add_maj(a, b, ~c)  # dead
        mig.add_po(live, "f")
        program = PlimCompiler(CompilerOptions()).compile(mig)
        labels = {
            i.comment.split("<- ")[-1] for i in program if "<- n" in i.comment
        }
        assert len(labels) == 1  # only the live gate was translated

    def test_input_cells_never_written(self):
        mig = random_mig(12, num_pis=6, num_gates=40)
        program = PlimCompiler(CompilerOptions()).compile(mig)
        input_cells = set(program.input_cells.values())
        for instr in program:
            assert instr.z not in input_cells

    def test_output_contract_complete(self):
        mig = random_mig(13, num_pis=4, num_gates=20, num_pos=4)
        program = PlimCompiler(CompilerOptions()).compile(mig)
        assert set(program.output_cells) == set(mig.po_names())

    def test_honest_mode_outputs_never_inverted(self):
        mig = random_mig(14, num_pis=4, num_gates=20, num_pos=4)
        program = PlimCompiler(CompilerOptions(fix_output_polarity=True)).compile(mig)
        assert not any(loc.inverted for loc in program.output_cells.values())

    def test_paper_mode_can_leave_inverted(self):
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        mig.add_po(~mig.add_maj(a, b, c), "f")
        program = PlimCompiler(CompilerOptions(fix_output_polarity=False)).compile(mig)
        assert program.output_cells["f"].inverted

    def test_pi_as_output(self):
        mig = Mig()
        a = mig.add_pi("a")
        mig.add_po(a, "f")
        program = PlimCompiler(CompilerOptions()).compile(mig)
        assert program.output_cells["f"].cell == program.input_cells["a"]
        assert verify_program(mig, program).ok

    def test_inverted_pi_as_output_honest(self):
        mig = Mig()
        a = mig.add_pi("a")
        mig.add_po(~a, "f")
        program = PlimCompiler(CompilerOptions(fix_output_polarity=True)).compile(mig)
        assert not program.output_cells["f"].inverted
        assert program.num_instructions == 2
        assert verify_program(mig, program).ok

    def test_const_output(self):
        mig = Mig()
        mig.add_pi("a")
        mig.add_po(Signal.CONST1, "one")
        mig.add_po(Signal.CONST0, "zero")
        program = PlimCompiler(CompilerOptions()).compile(mig)
        assert verify_program(mig, program).ok

    def test_shared_output_node(self):
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        g = mig.add_maj(a, b, c)
        mig.add_po(g, "f")
        mig.add_po(g, "g")
        mig.add_po(~g, "h")
        program = PlimCompiler(CompilerOptions()).compile(mig)
        assert verify_program(mig, program).ok
        assert program.output_cells["f"].cell == program.output_cells["g"].cell


class TestDeterminism:
    def test_same_input_same_program(self):
        mig = random_mig(15, num_pis=5, num_gates=30)
        p1 = PlimCompiler(CompilerOptions()).compile(mig)
        p2 = PlimCompiler(CompilerOptions()).compile(mig)
        assert [str(i) for i in p1] == [str(i) for i in p2]

    def test_dfs_reorder_makes_result_order_independent(self):
        mig = random_mig(16, num_pis=6, num_gates=50)
        shuffled = shuffle_topological(mig, seed=3)
        opts = CompilerOptions(reorder="dfs")
        p1 = PlimCompiler(opts).compile(mig)
        p2 = PlimCompiler(opts).compile(shuffled)
        assert p1.num_instructions == p2.num_instructions
        assert p1.num_rrams == p2.num_rrams

    def test_best_reorder_never_loses_to_either_order(self):
        mig = random_mig(17, num_pis=6, num_gates=50)
        results = {}
        for mode in ("none", "dfs", "best"):
            program = PlimCompiler(CompilerOptions(reorder=mode)).compile(mig)
            results[mode] = (program.num_rrams, program.num_instructions)
        assert results["best"] == min(results.values())


class TestBaselineComparison:
    @pytest.mark.parametrize("seed", range(4))
    def test_smart_never_worse_on_instructions(self, seed):
        mig = random_mig(seed + 40, num_pis=6, num_gates=50)
        naive = PlimCompiler(CompilerOptions.naive(fix_output_polarity=False)).compile(mig)
        smart = PlimCompiler(CompilerOptions(fix_output_polarity=False)).compile(mig)
        assert smart.num_instructions <= naive.num_instructions
