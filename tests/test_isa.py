"""Unit tests for repro.plim.isa (operands, instructions, RM3 semantics)."""

import pytest

from repro.errors import MachineError
from repro.plim.isa import Instruction, ONE, Operand, ZERO, rm3


class TestOperand:
    def test_const(self):
        op = Operand.const(1)
        assert op.is_const and op.value == 1

    def test_const_validation(self):
        with pytest.raises(MachineError):
            Operand.const(2)

    def test_cell(self):
        op = Operand.cell(7)
        assert not op.is_const and op.value == 7

    def test_cell_validation(self):
        with pytest.raises(MachineError):
            Operand.cell(-1)

    def test_shared_constants(self):
        assert ZERO == Operand.const(0)
        assert ONE == Operand.const(1)

    def test_render(self):
        assert str(Operand.const(0)) == "0"
        assert str(Operand.cell(3)) == "@3"
        assert Operand.cell(3).render(lambda a: f"cell{a}") == "cell3"

    def test_hashable(self):
        assert len({Operand.const(0), Operand.const(0), Operand.cell(0)}) == 2


class TestInstruction:
    def test_fields(self):
        instr = Instruction(ONE, ZERO, 4, "X <- 1")
        assert instr.a == ONE and instr.b == ZERO and instr.z == 4

    def test_negative_destination_rejected(self):
        with pytest.raises(MachineError):
            Instruction(ONE, ZERO, -1)

    def test_render(self):
        instr = Instruction(Operand.cell(0), ONE, 2)
        assert str(instr) == "@0, 1, @2"


class TestRm3Semantics:
    """Z ← ⟨A, ¬B, Z⟩ — exhaustively and idiom by idiom."""

    def test_exhaustive_majority(self):
        for a in (0, 1):
            for not_b in (0, 1):
                for z in (0, 1):
                    assert rm3(a, not_b, z) == int(a + not_b + z >= 2)

    def test_bitwise_packing(self):
        assert rm3(0b1100, 0b1010, 0b1111) == 0b1110

    def test_reset_idiom(self):
        """RM3(0, 1, @X): X <- 0 from any state (A=0, ¬B=0)."""
        for z in (0, 1):
            assert rm3(0, 0, z) == 0

    def test_set_idiom(self):
        """RM3(1, 0, @X): X <- 1 from any state (A=1, ¬B=1)."""
        for z in (0, 1):
            assert rm3(1, 1, z) == 1

    def test_load_idiom(self):
        """RM3(v, 0, @X) with X=0: X <- v."""
        for v in (0, 1):
            assert rm3(v, 1, 0) == v

    def test_inverted_load_idiom(self):
        """RM3(1, v, @X) with X=0: X <- ¬v."""
        for v in (0, 1):
            assert rm3(1, v ^ 1, 0) == v ^ 1
