"""Whole-suite integration tests: every benchmark, end to end.

These are the "does the entire stack hold together" checks: build each
EPFL generator at CI scale, run the full pipeline in the paper's three
configurations, execute on the machine model (including the von Neumann
fetching controller), and verify functional equivalence everywhere.
"""

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.pipeline import compile_mig
from repro.eval.fig3 import fig3b
from repro.plim.controller import FetchingController
from repro.plim.machine import PlimMachine
from repro.plim.verify import verify_program


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_full_pipeline_verifies(name):
    mig = build(name, "ci")
    result = compile_mig(mig)
    assert verify_program(mig, result.program, raise_on_mismatch=True).ok


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_naive_baseline_verifies(name):
    mig = build(name, "ci")
    program = PlimCompiler(CompilerOptions.naive()).compile(mig)
    assert verify_program(mig, program, raise_on_mismatch=True).ok


@pytest.mark.parametrize("name", ["adder", "cavlc", "priority", "router"])
def test_smart_beats_naive_on_instructions(name):
    mig = build(name, "ci")
    naive = PlimCompiler(CompilerOptions.naive(fix_output_polarity=False)).compile(mig)
    smart = compile_mig(
        mig, compiler_options=CompilerOptions(fix_output_polarity=False)
    ).program
    assert smart.num_instructions < naive.num_instructions


@pytest.mark.parametrize("name", ["int2float", "dec", "ctrl"])
def test_von_neumann_controller_agrees_with_machine(name):
    """Stored-program execution equals direct execution on real circuits."""
    mig = build(name, "ci")
    program = compile_mig(mig).program
    inputs = {pi: (i * 7 + 3) % 2 for i, pi in enumerate(mig.pi_names())}
    direct = PlimMachine.for_program(program).run_program(program, inputs)
    fetched = FetchingController(program).run(inputs)
    assert fetched == direct


@pytest.mark.parametrize("name", ["int2float", "cavlc"])
def test_budgeted_compilation_on_benchmarks(name):
    from repro.errors import CompilationError

    mig = build(name, "ci")
    free = compile_mig(
        mig, compiler_options=CompilerOptions(fix_output_polarity=False)
    ).program
    budget = max(1, free.num_rrams - 1)
    options = CompilerOptions(fix_output_polarity=False, max_work_cells=budget)
    try:
        program = compile_mig(mig, compiler_options=options).program
    except CompilationError:
        return  # infeasible without caches — legitimate
    assert program.num_rrams <= budget
    assert verify_program(mig, program, raise_on_mismatch=True).ok


class TestGoldenListing:
    """Exact instruction-level regression for the Fig. 3(b) smart program.

    Pins down the full §4.2.2 decision cascade: any change to case
    priorities, caching, scheduling, or allocation shows up here first.
    """

    EXPECTED = [
        "0, 1, @X1",  # X1 <- 0
        "i1, 0, @X1",  # X1 <- i1
        "i2, 1, @X1",  # X1 <- N1 = <0 i1 i2>
        "1, 0, @X2",  # X2 <- 1
        "i3, i2, @X2",  # X2 <- N2 = <1 ~i2 i3>
        "0, 1, @X3",  # X3 <- 0
        "1, i3, @X3",  # X3 <- ~i3 (fabricated complement, cached)
        "0, 1, @X4",  # X4 <- 0
        "i1, 0, @X4",  # X4 <- i1
        "i2, @X3, @X4",  # X4 <- N3 = <i1 i2 i3>
        "@X1, @X2, @X4",  # X4 <- N5 = <N1 ~N2 N3>, in place over N3
        "0, 1, @X2",  # X2 (N2's cell, released) <- 0
        "@X1, 0, @X2",  # X2 <- N1
        "i3, 0, @X2",  # X2 <- N4 = <~0 N1 i3>
        "@X1, @X4, @X2",  # X2 <- N6 = <N4 ~N5 N1>, in place over N4
    ]

    def test_exact_program_text(self):
        from repro.eval.fig3 import smart_compiler

        program = smart_compiler().compile(fig3b())
        namer = program.cell_namer()
        rendered = [instr.render(namer) for instr in program]
        assert rendered == self.EXPECTED
