"""Per-case tests for §4.2.2 node translation (paper Figs. 5 and 6).

Each test constructs a gate whose children isolate exactly one selection
case, drives :func:`translate_node` directly, and asserts on the emitted
instructions and allocations.  Together they cover operand-B cases (a)–(h),
destination-Z cases (a)–(e), and operand-A cases (a)–(d).
"""

import pytest

from repro.core.allocator import RramAllocator
from repro.core.translate import CONSUMED, TranslationState, translate_node
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.plim.program import Program


class Harness:
    """A MIG plus a ready-to-use translation state."""

    def __init__(self, caching: bool = True):
        self.mig = Mig()
        self.pis = {}
        self._caching = caching
        self.state = None

    def pi(self, name):
        signal = self.mig.add_pi(name)
        self.pis[name] = signal
        return signal

    def finish(self, outputs=()):
        """Create the translation state (call after building the MIG)."""
        for i, signal in enumerate(outputs):
            self.mig.add_po(signal, f"f{i}")
        program = Program(
            input_cells={n: i for i, n in enumerate(self.mig.pi_names())}
        )
        allocator = RramAllocator(first_address=self.mig.num_pis)
        uses = {v: 0 for v in self.mig.nodes()}
        for v in self.mig.gates():
            for child in self.mig.children(v):
                if not child.is_const:
                    uses[child.node] += 1
        for po in self.mig.pos():
            if not po.is_const:
                uses[po.node] += 1
        self.state = TranslationState(
            self.mig, program, allocator, uses, complement_caching=self._caching
        )
        return self.state

    def translate_gates(self, *gates, naive=False):
        for g in gates:
            translate_node(self.state, g.node, naive=naive)

    def cell(self, signal):
        return self.state.value_cell[signal.node]

    @property
    def program(self):
        return self.state.program

    def final(self):
        """The last emitted instruction (the gate's RM3)."""
        return self.program.instructions[-1]


# ----------------------------------------------------------------------
# Operand B (Fig. 5)
# ----------------------------------------------------------------------


class TestOperandB:
    def test_case_a_single_complement(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(a, ~b, c)
        h.finish([g])
        h.translate_gates(g)
        final = h.final()
        assert not final.b.is_const and final.b.value == h.cell(b)

    def test_case_b_complements_plus_constant(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(Signal.CONST0, ~a, ~b)
        extra = h.mig.add_maj(b, c, Signal.CONST0)  # b gains a second reader
        h.finish([g, extra])
        h.translate_gates(g)
        # B absorbs the multi-fanout complemented child (b).
        assert h.final().b.value == h.cell(b)

    def test_case_c_constant_inverse(self):
        h = Harness()
        a, b = h.pi("a"), h.pi("b")
        g0 = h.mig.add_maj(Signal.CONST0, a, b)  # AND
        h.finish([g0])
        h.translate_gates(g0)
        final = h.final()
        assert final.b.is_const and final.b.value == 1  # ¬B = 0

    def test_case_c_complemented_constant(self):
        h = Harness()
        a, b = h.pi("a"), h.pi("b")
        g1 = h.mig.add_maj(Signal.CONST1, a, b)  # OR
        h.finish([g1])
        h.translate_gates(g1)
        final = h.final()
        assert final.b.is_const and final.b.value == 0  # ¬B = 1

    def test_case_d_multifanout_complement_excluded_from_destination(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(~a, ~b, c)
        extra = h.mig.add_maj(b, c, Signal.CONST1)  # b multi-fanout
        h.finish([g, extra])
        h.translate_gates(g)
        assert h.final().b.value == h.cell(b)

    def test_case_e_first_complement(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(~a, ~b, c)
        h.finish([g])
        h.translate_gates(g)
        assert h.final().b.value == h.cell(a)

    def test_case_f_cached_complement_reused(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(a, b, c)
        h.finish([g])
        # Pre-seed: a complement of b already lives in a cell.
        cached = h.state.alloc()
        h.state.compl_cell[b.node] = cached
        before = len(h.program)
        h.translate_gates(g)
        assert h.final().b.value == cached
        # No complement materialization happened: Z copy (2) + RM3 only.
        assert len(h.program) - before == 3

    def test_case_g_multifanout_complement_materialized_and_cached(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(a, b, c)
        extra = h.mig.add_maj(b, c, Signal.CONST0)  # b multi-fanout
        h.finish([g, extra])
        h.translate_gates(g)
        assert b.node in h.state.compl_cell
        assert h.final().b.value == h.state.compl_cell[b.node]

    def test_case_h_first_child_materialized(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(a, b, c)
        h.finish([g])
        h.translate_gates(g)
        # first child a fabricated: X <- 0; X <- ~a; + Z copy (2) + RM3
        assert len(h.program) == 5
        fab_clear, fab_load = h.program.instructions[:2]
        assert fab_load.b.value == h.cell(a)  # ~a loaded from a's cell
        assert h.final().b.value == fab_clear.z  # B reads the fabricated cell
        # a had no further readers, so the cache was already released again.
        assert a.node not in h.state.compl_cell

    def test_naive_mode_does_not_cache(self):
        h = Harness(caching=False)
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(a, b, c)
        h.finish([g])
        h.translate_gates(g)
        assert not h.state.compl_cell


# ----------------------------------------------------------------------
# Destination Z (Fig. 6)
# ----------------------------------------------------------------------


class TestDestinationZ:
    def test_case_a_cached_complement_overwritten(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g1 = h.mig.add_maj(a, b, Signal.CONST0)
        g2 = h.mig.add_maj(b, c, Signal.CONST1)
        top = h.mig.add_maj(~g1, ~g2, a)
        extra = h.mig.add_maj(g1, c, Signal.CONST0)  # g1 multi-fanout → B
        h.finish([top, extra])
        h.translate_gates(g1, g2)
        cached = h.state.alloc()
        h.state.compl_cell[g2.node] = cached
        before = len(h.program)
        h.translate_gates(top)
        final = h.final()
        assert final.z == cached  # overwrote the cached complement cell
        assert len(h.program) - before == 1  # single instruction: ideal
        assert g2.node not in h.state.compl_cell

    def test_case_b_in_place_single_fanout_gate(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(a, b, Signal.CONST0)
        top = h.mig.add_maj(~a, g, c)
        h.finish([top])
        h.translate_gates(g)
        g_cell = h.cell(g)
        h.translate_gates(top)
        assert h.final().z == g_cell
        assert h.state.value_cell[g.node] == CONSUMED

    def test_case_b_not_applied_to_multifanout(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(a, b, Signal.CONST0)
        top = h.mig.add_maj(~a, g, c)
        extra = h.mig.add_maj(g, c, Signal.CONST1)
        h.finish([top, extra])
        h.translate_gates(g)
        g_cell = h.cell(g)
        h.translate_gates(top)
        assert h.final().z != g_cell  # g still needed by `extra`
        assert h.state.value_cell[g.node] == g_cell

    def test_case_b_not_applied_to_pi(self):
        """Input cells are never destinations."""
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(~a, b, c)
        h.finish([g])
        h.translate_gates(g)
        input_cells = set(h.program.input_cells.values())
        assert h.final().z not in input_cells

    def test_case_c_constant_initialized(self):
        h = Harness()
        a, b = h.pi("a"), h.pi("b")
        g = h.mig.add_maj(~a, Signal.CONST0, b)
        h.finish([g])
        h.translate_gates(g)
        # X <- 0 (1 instruction), then RM3
        assert len(h.program) == 2
        first = h.program.instructions[0]
        assert first.a.is_const and first.a.value == 0

    def test_case_c_complemented_constant_initialized(self):
        h = Harness()
        a, b = h.pi("a"), h.pi("b")
        g = h.mig.add_maj(~a, Signal.CONST1, b)
        h.finish([g])
        h.translate_gates(g)
        first = h.program.instructions[0]
        assert first.a.is_const and first.a.value == 1

    def test_case_d_complemented_child_loaded(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g1 = h.mig.add_maj(a, b, Signal.CONST0)
        g2 = h.mig.add_maj(b, c, Signal.CONST1)
        top = h.mig.add_maj(~g1, ~g2, a)
        extra = h.mig.add_maj(g1, c, Signal.CONST0)
        h.finish([top, extra])
        h.translate_gates(g1, g2)
        before = len(h.program)
        h.translate_gates(top)
        # B = g1 (multi-fanout, case d); Z = ~g2 without cache → 2 loads + RM3
        assert len(h.program) - before == 3

    def test_case_e_copy_of_pi(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(~a, b, c)
        h.finish([g])
        before_cells = h.program.num_rrams
        h.translate_gates(g)
        # B = a; Z copies PI b into a fresh cell (2 instructions) + RM3
        assert len(h.program) == 3
        assert h.program.num_rrams == before_cells + 1


# ----------------------------------------------------------------------
# Operand A
# ----------------------------------------------------------------------


class TestOperandA:
    def test_case_a_constant(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        inner = h.mig.add_maj(b, c, Signal.CONST0)
        g = h.mig.add_maj(Signal.CONST1, ~a, inner)
        h.finish([g])
        h.translate_gates(inner)
        h.translate_gates(g)
        final = h.final()
        # B = ~a; Z = in-place `inner` (case b); A = the constant
        assert final.a.is_const and final.a.value == 1

    def test_case_b_plain_cell(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(a, ~b, c)
        h.finish([g])
        h.translate_gates(g)
        # B = ~b; Z copies the first plain candidate (a); A reads c's cell.
        assert h.final().a.value == h.cell(c)

    def test_case_c_cached_complement(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g1 = h.mig.add_maj(a, b, Signal.CONST0)
        g2 = h.mig.add_maj(b, c, Signal.CONST1)
        g3 = h.mig.add_maj(a, c, Signal.CONST0)
        top = h.mig.add_maj(~g1, ~g2, g3)
        extra = h.mig.add_maj(g1, a, Signal.CONST0)  # g1 multi-fanout → B
        h.finish([top, extra])
        h.translate_gates(g1, g2, g3)
        cached = h.state.alloc()
        h.state.compl_cell[g2.node] = cached
        # g2's complement is cached but g2 has another pending use? no — make
        # uses so Z picks g3 (plain single-fanout) and A = ~g2 via the cache.
        h.state.remaining_uses[g2.node] += 1  # keep Z case (a) from firing
        before = len(h.program)
        h.translate_gates(top)
        assert h.final().a.value == cached
        assert len(h.program) - before == 1

    def test_case_d_materialize_and_cache(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g1 = h.mig.add_maj(a, b, Signal.CONST0)
        g2 = h.mig.add_maj(b, c, Signal.CONST1)
        g3 = h.mig.add_maj(a, c, Signal.CONST0)
        top = h.mig.add_maj(~g1, ~g2, g3)
        extra = h.mig.add_maj(g1, a, Signal.CONST0)
        h.finish([top, extra])
        h.translate_gates(g1, g2, g3)
        h.state.remaining_uses[g2.node] += 1  # force A (not Z) to take ~g2
        before = len(h.program)
        h.translate_gates(top)
        # A fabricated ~g2: 2 instructions, cached; +1 RM3
        assert len(h.program) - before == 3
        assert h.final().a.value == h.state.compl_cell[g2.node]


# ----------------------------------------------------------------------
# Releasing (§4.2.3 semantics inside translation)
# ----------------------------------------------------------------------


class TestReleasing:
    def test_child_cell_released_after_last_use(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(a, b, Signal.CONST0)
        top = h.mig.add_maj(~g, a, c)  # g's only reader, complemented edge
        h.finish([top])
        h.translate_gates(g)
        g_cell = h.cell(g)
        h.translate_gates(top)
        # g's value cell must be back on the free list (not in use).
        assert not h.state.allocator.is_allocated(g_cell)

    def test_po_reference_prevents_release(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(a, b, Signal.CONST0)
        top = h.mig.add_maj(~g, a, c)
        h.finish([top, g])  # g is also a primary output
        h.translate_gates(g)
        g_cell = h.cell(g)
        h.translate_gates(top)
        assert h.state.allocator.is_allocated(g_cell)

    def test_pi_complement_cache_released_with_pi(self):
        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(a, b, c)  # forces fabrication of ~a (case h)
        h.finish([g])
        h.translate_gates(g)
        # a has no further readers: its cached complement is released.
        assert a.node not in h.state.compl_cell

    def test_use_count_underflow_detected(self):
        from repro.errors import CompilationError

        h = Harness()
        a, b, c = h.pi("a"), h.pi("b"), h.pi("c")
        g = h.mig.add_maj(a, ~b, c)
        h.finish([g])
        h.state.remaining_uses[a.node] = 0
        with pytest.raises(CompilationError):
            h.translate_gates(g)
