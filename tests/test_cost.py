"""Unit tests for repro.core.cost (the static cost model)."""

import pytest

from repro.core.cost import (
    classify_children,
    estimate,
    estimate_instructions,
    estimate_extra_rrams,
    negations_needed,
    node_instruction_cost,
)
from repro.mig.graph import Mig
from repro.mig.signal import Signal


@pytest.fixture
def mig():
    m = Mig()
    return m, m.add_pi("a"), m.add_pi("b"), m.add_pi("c")


class TestNegationsNeeded:
    def test_single_complement_is_free(self):
        assert negations_needed(1, False) == 0
        assert negations_needed(1, True) == 0

    def test_extra_complements_cost(self):
        assert negations_needed(2, False) == 1
        assert negations_needed(3, False) == 2

    def test_no_complement_needs_fabrication(self):
        assert negations_needed(0, False) == 1

    def test_constant_rescues_no_complement(self):
        assert negations_needed(0, True) == 0


class TestClassify:
    def test_mixed(self, mig):
        m, a, b, _ = mig
        g = m.add_maj(~a, b, Signal.CONST1)
        assert classify_children(m, g.node) == (2, 1, True)

    def test_all_plain(self, mig):
        m, a, b, c = mig
        g = m.add_maj(a, b, c)
        assert classify_children(m, g.node) == (3, 0, False)


class TestNodeCost:
    def test_ideal_node(self, mig):
        m, a, b, c = mig
        g = m.add_maj(~a, b, c)
        assert node_instruction_cost(m, g.node) == 1

    def test_and_node(self, mig):
        m, a, b, _ = mig
        g = m.add_maj(a, b, Signal.CONST0)
        assert node_instruction_cost(m, g.node) == 1

    def test_double_complement(self, mig):
        m, a, b, c = mig
        g = m.add_maj(~a, ~b, c)
        assert node_instruction_cost(m, g.node) == 3

    def test_triple_complement(self, mig):
        m, a, b, c = mig
        g = m.add_maj(~a, ~b, ~c)
        assert node_instruction_cost(m, g.node) == 5

    def test_no_complement_no_const(self, mig):
        m, a, b, c = mig
        g = m.add_maj(a, b, c)
        assert node_instruction_cost(m, g.node) == 3


class TestEstimates:
    def test_totals(self, mig):
        m, a, b, c = mig
        m.add_maj(~a, b, c)  # 1
        m.add_maj(~a, ~b, c)  # 3, one extra RRAM
        m.add_po(Signal.make(len(m) - 1), "f")
        assert estimate_instructions(m) == 4
        assert estimate_extra_rrams(m) == 1

    def test_po_negation_cost(self, mig):
        m, a, b, c = mig
        g = m.add_maj(~a, b, c)
        m.add_po(~g, "f")
        assert estimate_instructions(m, po_negation_cost=0) == 1
        assert estimate_instructions(m, po_negation_cost=2) == 3

    def test_estimate_bundle(self, mig):
        m, a, b, c = mig
        m.add_maj(a, b, c)
        e = estimate(m)
        assert e.num_gates == 1
        assert e.instructions == 3
        assert e.extra_rrams == 1

    def test_rewriting_reduces_estimate(self):
        """The estimator must reward what Algorithm 1 does."""
        from repro.core.rewriting import rewrite_for_plim

        m = Mig()
        a, b, c, d = (m.add_pi(x) for x in "abcd")
        g1 = m.add_maj(~a, ~b, ~c)
        g2 = m.add_maj(~g1, ~a, d)
        m.add_po(g2, "f")
        rewritten = rewrite_for_plim(m)
        assert estimate_instructions(rewritten) < estimate_instructions(m)
