"""Tests for ``tools/fetch_benchmarks.py`` — download, pin, verify.

No network: every transfer goes through ``file://`` URLs into a temp
directory, which exercises the identical ``urllib`` code path the real
EPFL downloads use.  Tier-1 therefore never needs connectivity, and the
``--offline-ok`` escape hatch is covered with a URL that cannot resolve.
"""

import json
import sys
from pathlib import Path

import pytest

TOOLS_DIR = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS_DIR))

import fetch_benchmarks as fb  # noqa: E402


@pytest.fixture
def source(tmp_path):
    """A fake upstream: one circuit file served over ``file://``."""
    upstream = tmp_path / "upstream"
    upstream.mkdir()
    payload = b"aig 0 0 0 0 0\n"
    (upstream / "tiny.aig").write_bytes(payload)
    return {
        "entry": {"url": (upstream / "tiny.aig").as_uri(), "suite": "test"},
        "payload": payload,
        "upstream": upstream,
    }


class TestFetch:
    def test_first_fetch_pins(self, source, tmp_path):
        dest = tmp_path / "circuits"
        pins = {}
        path, updated = fb.fetch("tiny", source["entry"], dest, pins)
        assert updated
        assert path.read_bytes() == source["payload"]
        assert pins["tiny"] == fb.sha256_of(path)

    def test_verified_refetch_is_a_noop(self, source, tmp_path):
        dest = tmp_path / "circuits"
        pins = {}
        fb.fetch("tiny", source["entry"], dest, pins)
        path, updated = fb.fetch("tiny", source["entry"], dest, pins)
        assert not updated

    def test_on_disk_tamper_detected(self, source, tmp_path):
        dest = tmp_path / "circuits"
        pins = {}
        path, _ = fb.fetch("tiny", source["entry"], dest, pins)
        path.write_bytes(b"tampered")
        with pytest.raises(fb.FetchError, match="digest"):
            fb.fetch("tiny", source["entry"], dest, pins)

    def test_pinned_mismatch_refuses_write(self, source, tmp_path):
        dest = tmp_path / "circuits"
        pins = {"tiny": "0" * 64}
        with pytest.raises(fb.FetchError, match="does not match the"):
            fb.fetch("tiny", source["entry"], dest, pins)
        assert not (dest / "tiny.aig").exists()

    def test_force_redownload_verifies_pin(self, source, tmp_path):
        dest = tmp_path / "circuits"
        pins = {}
        fb.fetch("tiny", source["entry"], dest, pins)
        # upstream changes after pinning — a forced refetch must refuse
        (source["upstream"] / "tiny.aig").write_bytes(b"aig 1 1 0 0 0\n")
        with pytest.raises(fb.FetchError, match="does not match the"):
            fb.fetch("tiny", source["entry"], dest, pins, force=True)

    def test_dead_url_raises(self, tmp_path):
        entry = {"url": (tmp_path / "missing.aig").as_uri()}
        with pytest.raises(fb.FetchError, match="download failed"):
            fb.fetch("gone", entry, tmp_path / "circuits", {})


class TestManifestAndPins:
    def test_builtin_manifest_covers_epfl(self):
        manifest = fb.load_manifest()
        assert len(manifest) == 20
        assert manifest["adder"]["suite"] == "epfl-arithmetic"
        assert manifest["voter"]["url"].endswith("/random_control/voter.aig")

    def test_user_manifest_requires_url(self, tmp_path):
        bad = tmp_path / "manifest.json"
        bad.write_text(json.dumps({"x": {"suite": "s"}}))
        with pytest.raises(fb.FetchError, match="no 'url'"):
            fb.load_manifest(bad)

    def test_path_entry_resolves_relative_to_manifest(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "local.aig").write_bytes(b"aig 0 0 0 0 0\n")
        manifest_file = tmp_path / "manifest.json"
        manifest_file.write_text(json.dumps({"local": {"path": "sub/local.aig"}}))
        manifest = fb.load_manifest(manifest_file)
        assert manifest["local"]["url"] == (tmp_path / "sub" / "local.aig").as_uri()
        assert manifest["local"]["filename"] == "local.aig"

    def test_pins_roundtrip_sorted(self, tmp_path):
        lockfile = tmp_path / "locks" / "pins.json"
        fb.save_pins(lockfile, {"b": "2" * 64, "a": "1" * 64})
        assert list(fb.load_pins(lockfile)) == ["a", "b"]
        assert fb.load_pins(tmp_path / "absent.json") == {}


class TestCli:
    def _manifest_file(self, source, tmp_path):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps({"tiny": source["entry"]}))
        return manifest

    def test_fetch_and_pin_via_cli(self, source, tmp_path, capsys):
        manifest = self._manifest_file(source, tmp_path)
        lockfile = tmp_path / "pins.json"
        dest = tmp_path / "circuits"
        argv = ["--manifest", str(manifest), "--lockfile", str(lockfile),
                "--dest", str(dest)]
        assert fb.main(argv) == 0
        assert "newly pinned" in capsys.readouterr().out
        assert (dest / "tiny.aig").exists()
        assert "tiny" in fb.load_pins(lockfile)
        # second run verifies against the committed pin, changes nothing
        assert fb.main(argv) == 0
        assert "verified" in capsys.readouterr().out

    def test_unknown_name_rejected(self, source, tmp_path):
        manifest = self._manifest_file(source, tmp_path)
        with pytest.raises(SystemExit):
            fb.main(["nonesuch", "--manifest", str(manifest)])

    def test_offline_ok_downgrades_failure(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps(
            {"gone": {"url": (tmp_path / "missing.aig").as_uri()}}
        ))
        argv = ["--manifest", str(manifest), "--lockfile",
                str(tmp_path / "pins.json"), "--dest", str(tmp_path / "c")]
        assert fb.main(argv) == 1
        assert fb.main(argv + ["--offline-ok"]) == 0
        assert "continuing" in capsys.readouterr().err

    def test_list_prints_manifest(self, source, tmp_path, capsys):
        manifest = self._manifest_file(source, tmp_path)
        assert fb.main(["--list", "--manifest", str(manifest)]) == 0
        assert "tiny" in capsys.readouterr().out


class TestCommittedIscasManifest:
    """The committed ISCAS manifest + lockfile round-trip over ``file://``.

    The ``c17`` entry points at a repo-local AIGER file with an inline
    SHA-256 pin, so the whole download → verify → pin path runs against
    committed bytes without any network.
    """

    MANIFEST = TOOLS_DIR / "benchmarks.iscas.json"
    LOCKFILE = TOOLS_DIR / "benchmarks.sha256.json"

    def test_manifest_loads_and_c17_is_local(self):
        manifest = fb.load_manifest(self.MANIFEST)
        assert manifest["c17"]["url"].startswith("file://")
        assert all(e["suite"] == "iscas85" for e in manifest.values())
        # remote entries stay trust-on-first-use: no fabricated pins
        remote = [n for n, e in manifest.items() if e["url"].startswith("https://")]
        pins = fb.load_pins(self.LOCKFILE)
        assert remote and not any(n in pins for n in remote)

    def test_c17_round_trip_matches_committed_lockfile(self, tmp_path):
        manifest = fb.load_manifest(self.MANIFEST)
        pins = {}
        path, updated = fb.fetch("c17", manifest["c17"], tmp_path / "c", pins)
        assert updated  # inline manifest pin seeds a fresh lockfile
        assert pins["c17"] == fb.load_pins(self.LOCKFILE)["c17"]
        # and the committed bytes really are the classic six-NAND c17
        from repro.mig.io_aiger import read_aiger

        mig = read_aiger(path)
        assert (mig.num_pis, mig.num_pos) == (5, 2)

    def test_against_committed_lockfile_verifies_silently(self, tmp_path):
        manifest = fb.load_manifest(self.MANIFEST)
        pins = dict(fb.load_pins(self.LOCKFILE))
        path, updated = fb.fetch("c17", manifest["c17"], tmp_path / "c", pins)
        assert not updated  # pin already frozen, nothing to re-record

    def test_inline_pin_mismatch_refuses(self, tmp_path):
        manifest = fb.load_manifest(self.MANIFEST)
        entry = dict(manifest["c17"], sha256="0" * 64)
        with pytest.raises(fb.FetchError, match="does not match the"):
            fb.fetch("c17", entry, tmp_path / "c", {})

    def test_inline_pin_conflicting_lockfile_refuses(self, tmp_path):
        manifest = fb.load_manifest(self.MANIFEST)
        with pytest.raises(fb.FetchError, match="resolve the conflict"):
            fb.fetch("c17", manifest["c17"], tmp_path / "c", {"c17": "1" * 64})

    def test_cli_round_trip_with_committed_manifest(self, tmp_path, capsys):
        lockfile = tmp_path / "pins.json"
        argv = ["c17", "--manifest", str(self.MANIFEST),
                "--lockfile", str(lockfile), "--dest", str(tmp_path / "c")]
        assert fb.main(argv) == 0
        assert fb.load_pins(lockfile)["c17"] == fb.load_pins(self.LOCKFILE)["c17"]
        capsys.readouterr()
        assert fb.main(argv) == 0  # second run verifies against the pin
        assert "verified" in capsys.readouterr().out


class TestRetries:
    """Satellite 2: transient failures retry with backoff + socket timeout."""

    def test_retry_recovers_after_transient_failures(self, source, tmp_path, monkeypatch):
        import urllib.error
        import urllib.request

        real_urlopen = urllib.request.urlopen
        calls = {"n": 0}

        def flaky(url, timeout=None):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise urllib.error.URLError("connection reset")
            return real_urlopen(url, timeout=timeout)

        monkeypatch.setattr(urllib.request, "urlopen", flaky)
        monkeypatch.setattr(fb.time, "sleep", lambda s: None)  # no real waits
        dest = tmp_path / "circuits"
        path, updated = fb.fetch(
            "tiny", source["entry"], dest, {}, retries=3, timeout=5.0
        )
        assert updated and path.read_bytes() == source["payload"]
        assert calls["n"] == 3  # two failures, then success

    def test_exhausted_retries_raise_with_attempt_count(self, source, tmp_path, monkeypatch):
        import urllib.error
        import urllib.request

        def dead(url, timeout=None):
            raise urllib.error.URLError("no route to host")

        monkeypatch.setattr(urllib.request, "urlopen", dead)
        monkeypatch.setattr(fb.time, "sleep", lambda s: None)
        with pytest.raises(fb.FetchError, match="3 attempt"):
            fb.fetch("tiny", source["entry"], tmp_path / "c", {}, retries=2)

    def test_backoff_is_exponential(self, source, tmp_path, monkeypatch):
        import urllib.error
        import urllib.request

        def dead(url, timeout=None):
            raise urllib.error.URLError("down")

        sleeps = []
        monkeypatch.setattr(urllib.request, "urlopen", dead)
        monkeypatch.setattr(fb.time, "sleep", sleeps.append)
        with pytest.raises(fb.FetchError):
            fb.fetch("tiny", source["entry"], tmp_path / "c", {}, retries=3)
        assert sleeps == [fb._BACKOFF_BASE * 2 ** n for n in range(3)]

    def test_timeout_is_passed_to_urlopen(self, source, tmp_path, monkeypatch):
        import urllib.request

        seen = {}
        real_urlopen = urllib.request.urlopen

        def recording(url, timeout=None):
            seen["timeout"] = timeout
            return real_urlopen(url)

        monkeypatch.setattr(urllib.request, "urlopen", recording)
        fb.fetch("tiny", source["entry"], tmp_path / "c", {}, timeout=7.5)
        assert seen["timeout"] == 7.5

    def test_cli_flags_validate(self, capsys):
        with pytest.raises(SystemExit):
            fb.main(["--timeout", "0", "--list"])
        with pytest.raises(SystemExit):
            fb.main(["--retries", "-1", "--list"])

    def test_cli_flags_reach_fetch(self, source, tmp_path, monkeypatch):
        seen = {}
        real_fetch = fb.fetch

        def recording(name, entry, dest, pins, **kwargs):
            seen.update(kwargs)
            return real_fetch(name, entry, dest, pins, **kwargs)

        monkeypatch.setattr(fb, "fetch", recording)
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps({"tiny": source["entry"]}))
        code = fb.main([
            "--manifest", str(manifest), "--dest", str(tmp_path / "c"),
            "--lockfile", str(tmp_path / "pins.json"),
            "--timeout", "9", "--retries", "5",
        ])
        assert code == 0
        assert seen["timeout"] == 9.0 and seen["retries"] == 5
