"""Tests for instruction encoding and the fetching controller."""

import pytest

from repro.core.pipeline import compile_mig
from repro.errors import MachineError
from repro.plim.controller import FetchingController
from repro.plim.encoding import (
    ProgramImage,
    address_bits_for,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    instruction_bits,
)
from repro.plim.isa import Instruction, ONE, Operand, ZERO
from repro.plim.machine import PlimMachine

from conftest import random_mig


class TestEncoding:
    def test_address_bits(self):
        assert address_bits_for(1) == 1
        assert address_bits_for(2) == 1
        assert address_bits_for(3) == 2
        assert address_bits_for(256) == 8
        assert address_bits_for(257) == 9
        with pytest.raises(MachineError):
            address_bits_for(0)

    def test_instruction_bits(self):
        assert instruction_bits(8) == 26

    @pytest.mark.parametrize(
        "instruction",
        [
            Instruction(ZERO, ONE, 0),
            Instruction(ONE, ZERO, 255),
            Instruction(Operand.cell(3), Operand.cell(200), 17),
            Instruction(Operand.cell(0), ONE, 1),
        ],
    )
    def test_roundtrip(self, instruction):
        word = encode_instruction(instruction, 8)
        assert word < (1 << instruction_bits(8))
        back = decode_instruction(word, 8)
        assert back.a == instruction.a
        assert back.b == instruction.b
        assert back.z == instruction.z

    def test_address_overflow_rejected(self):
        with pytest.raises(MachineError):
            encode_instruction(Instruction(Operand.cell(300), ZERO, 0), 8)
        with pytest.raises(MachineError):
            encode_instruction(Instruction(ZERO, ONE, 300), 8)

    def test_program_roundtrip(self):
        mig = random_mig(1, num_pis=4, num_gates=15)
        program = compile_mig(mig).program
        image = encode_program(program)
        decoded = decode_program(image)
        assert len(decoded) == len(program)
        for original, back in zip(program, decoded):
            assert (original.a, original.b, original.z) == (back.a, back.b, back.z)

    def test_image_geometry(self):
        mig = random_mig(2, num_pis=3, num_gates=8)
        program = compile_mig(mig).program
        image = encode_program(program)
        assert len(image.bits) == image.num_instructions * image.bits_per_instruction
        assert set(image.bits) <= {0, 1}


class TestFetchingController:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_direct_execution(self, seed):
        """The von Neumann machine computes what direct execution computes."""
        mig = random_mig(seed + 30, num_pis=4, num_gates=20)
        program = compile_mig(mig).program
        inputs = {name: (seed >> i) & 1 for i, name in enumerate(mig.pi_names())}

        direct = PlimMachine.for_program(program).run_program(program, inputs)
        fetched = FetchingController(program).run(inputs)
        assert fetched == direct

    def test_program_stored_in_array(self):
        mig = random_mig(5, num_pis=3, num_gates=10)
        program = compile_mig(mig).program
        controller = FetchingController(program)
        # The code region holds exactly the encoded image.
        stored = [
            controller.machine.read(controller.code_base + i)
            for i in range(len(controller.image.bits))
        ]
        assert tuple(stored) == controller.image.bits

    def test_cycle_accounting(self):
        mig = random_mig(6, num_pis=3, num_gates=10)
        program = compile_mig(mig).program
        controller = FetchingController(program)
        controller.run({name: 0 for name in mig.pi_names()})
        n = len(program)
        assert controller.execute_cycles == 3 * n
        assert controller.fetch_cycles == n * controller.image.bits_per_instruction
        assert controller.total_cycles == controller.fetch_cycles + 3 * n

    def test_halts_exactly_once(self):
        mig = random_mig(7, num_pis=3, num_gates=6)
        program = compile_mig(mig).program
        controller = FetchingController(program)
        controller.load_inputs({name: 1 for name in mig.pi_names()})
        steps = 0
        while controller.step():
            steps += 1
        assert steps == len(program)
        assert controller.halted
        assert not controller.step()

    def test_code_region_protected(self):
        """A stored instruction whose destination decodes into the code
        region must be refused (self-modifying programs are not modelled)."""
        from repro.plim.program import Program

        program = Program(input_cells={"a": 0, "b": 1})
        program.register_work_cell(2)
        program.append(Instruction(ZERO, ONE, 2))
        program.set_output("f", 2)
        controller = FetchingController(program)
        # data_cells = 3, addr_bits = 2 → z = 3 is encodable but points at
        # the first code cell.  Poke the stored z field of instruction 0.
        addr_bits = controller.image.addr_bits
        assert controller.data_cells < (1 << addr_bits)
        z_offset = 2 * (addr_bits + 1)
        for i in range(addr_bits):
            controller.machine.write(
                controller.code_base + z_offset + i,
                (controller.data_cells >> i) & 1,
            )
        controller.load_inputs({"a": 0, "b": 0})
        with pytest.raises(MachineError):
            controller.step()

    def test_repr(self):
        mig = random_mig(9, num_pis=3, num_gates=5)
        program = compile_mig(mig).program
        assert "data cells" in repr(FetchingController(program))
