"""Unit tests for repro.mig.words (word-level arithmetic builders)."""

import pytest

from repro.errors import MigError
from repro.mig.build import LogicBuilder
from repro.mig.simulate import evaluate
from repro.mig.words import (
    add,
    barrel_rotate_left,
    barrel_shift_left,
    constant_word,
    divide,
    equal,
    isqrt,
    leading_one_index,
    less_than,
    max_word,
    multiply,
    mux_word,
    negate,
    popcount,
    square,
    sub,
    word_value,
    zero_extend,
)

from conftest import read_word, word_assignment


def build_and_eval(setup, assignment):
    """setup(builder) builds outputs; returns evaluate() results."""
    builder = LogicBuilder()
    setup(builder)
    return evaluate(builder.mig, assignment)


W = 5  # word width used in most tests
ALL = (1 << W) - 1


def binary_op_cases():
    return [(3, 9), (0, 0), (ALL, 1), (17, 17), (ALL, ALL), (1, 30)]


class TestAddSub:
    @pytest.mark.parametrize("x,y", binary_op_cases())
    def test_add(self, x, y):
        def setup(b):
            s, c = add(b, b.inputs(W, "a"), b.inputs(W, "b"))
            b.outputs(s, "s")
            b.output(c, "c")

        out = build_and_eval(setup, word_assignment("a", x, W) | word_assignment("b", y, W))
        assert read_word(out, "s", W) | (out["c"] << W) == x + y

    @pytest.mark.parametrize("x,y", binary_op_cases())
    def test_sub(self, x, y):
        def setup(b):
            d, no_borrow = sub(b, b.inputs(W, "a"), b.inputs(W, "b"))
            b.outputs(d, "d")
            b.output(no_borrow, "nb")

        out = build_and_eval(setup, word_assignment("a", x, W) | word_assignment("b", y, W))
        assert read_word(out, "d", W) == (x - y) % (1 << W)
        assert out["nb"] == int(x >= y)

    def test_width_mismatch(self):
        builder = LogicBuilder()
        with pytest.raises(MigError):
            add(builder, builder.inputs(3, "a"), builder.inputs(4, "b"))

    def test_negate(self):
        def setup(b):
            b.outputs(negate(b, b.inputs(W, "a")), "n")

        for x in (0, 1, 12, ALL):
            out = build_and_eval(setup, word_assignment("a", x, W))
            assert read_word(out, "n", W) == (-x) % (1 << W)


class TestComparisons:
    @pytest.mark.parametrize("x,y", binary_op_cases())
    def test_less_than(self, x, y):
        def setup(b):
            b.output(less_than(b, b.inputs(W, "a"), b.inputs(W, "b")), "lt")

        out = build_and_eval(setup, word_assignment("a", x, W) | word_assignment("b", y, W))
        assert out["lt"] == int(x < y)

    @pytest.mark.parametrize("x,y", binary_op_cases())
    def test_equal(self, x, y):
        def setup(b):
            b.output(equal(b, b.inputs(W, "a"), b.inputs(W, "b")), "eq")

        out = build_and_eval(setup, word_assignment("a", x, W) | word_assignment("b", y, W))
        assert out["eq"] == int(x == y)

    @pytest.mark.parametrize("x,y", binary_op_cases())
    def test_max_word(self, x, y):
        def setup(b):
            b.outputs(max_word(b, b.inputs(W, "a"), b.inputs(W, "b")), "m")

        out = build_and_eval(setup, word_assignment("a", x, W) | word_assignment("b", y, W))
        assert read_word(out, "m", W) == max(x, y)


class TestMux:
    def test_mux_word(self):
        def setup(b):
            s = b.input("s")
            b.outputs(mux_word(b, s, b.inputs(W, "a"), b.inputs(W, "b")), "m")

        base = word_assignment("a", 21, W) | word_assignment("b", 9, W)
        assert read_word(build_and_eval(setup, base | {"s": 1}), "m", W) == 21
        assert read_word(build_and_eval(setup, base | {"s": 0}), "m", W) == 9


class TestMultiply:
    @pytest.mark.parametrize("x,y", [(0, 0), (1, 19), (7, 6), (ALL, ALL), (12, 5)])
    def test_full_product(self, x, y):
        def setup(b):
            b.outputs(multiply(b, b.inputs(W, "a"), b.inputs(W, "b")), "p")

        out = build_and_eval(setup, word_assignment("a", x, W) | word_assignment("b", y, W))
        assert read_word(out, "p", 2 * W) == x * y

    def test_truncated_product(self):
        def setup(b):
            b.outputs(multiply(b, b.inputs(W, "a"), b.inputs(W, "b"), result_width=W), "p")

        out = build_and_eval(setup, word_assignment("a", 9, W) | word_assignment("b", 7, W))
        assert read_word(out, "p", W) == (9 * 7) % (1 << W)

    @pytest.mark.parametrize("x", [0, 1, 5, 23, ALL])
    def test_square(self, x):
        def setup(b):
            b.outputs(square(b, b.inputs(W, "a")), "p")

        out = build_and_eval(setup, word_assignment("a", x, W))
        assert read_word(out, "p", 2 * W) == x * x


class TestShifters:
    @pytest.mark.parametrize("amount", range(8))
    def test_rotate_left(self, amount):
        def setup(b):
            data = b.inputs(8, "d")
            sel = b.inputs(3, "s")
            b.outputs(barrel_rotate_left(b, data, sel), "q")

        x = 0b10110001
        out = build_and_eval(
            setup, word_assignment("d", x, 8) | word_assignment("s", amount, 3)
        )
        expected = ((x << amount) | (x >> (8 - amount))) & 0xFF if amount else x
        assert read_word(out, "q", 8) == expected

    @pytest.mark.parametrize("amount", range(8))
    def test_shift_left(self, amount):
        def setup(b):
            data = b.inputs(8, "d")
            sel = b.inputs(3, "s")
            b.outputs(barrel_shift_left(b, data, sel), "q")

        x = 0b10110001
        out = build_and_eval(
            setup, word_assignment("d", x, 8) | word_assignment("s", amount, 3)
        )
        assert read_word(out, "q", 8) == (x << amount) & 0xFF


class TestDivide:
    @pytest.mark.parametrize(
        "n,d", [(13, 3), (0, 5), (31, 1), (31, 31), (7, 9), (20, 4)]
    )
    def test_quotient_remainder(self, n, d):
        def setup(b):
            q, r = divide(b, b.inputs(W, "n"), b.inputs(W, "d"))
            b.outputs(q, "q")
            b.outputs(r, "r")

        out = build_and_eval(setup, word_assignment("n", n, W) | word_assignment("d", d, W))
        assert read_word(out, "q", W) == n // d
        assert read_word(out, "r", W) == n % d

    def test_divide_by_zero_convention(self):
        def setup(b):
            q, r = divide(b, b.inputs(W, "n"), b.inputs(W, "d"))
            b.outputs(q, "q")
            b.outputs(r, "r")

        out = build_and_eval(setup, word_assignment("n", 13, W) | word_assignment("d", 0, W))
        assert read_word(out, "q", W) == ALL
        assert read_word(out, "r", W) == 13


class TestIsqrt:
    @pytest.mark.parametrize("x", [0, 1, 2, 3, 4, 15, 16, 17, 49, 63])
    def test_values(self, x):
        def setup(b):
            b.outputs(isqrt(b, b.inputs(6, "x")), "rt")

        out = build_and_eval(setup, word_assignment("x", x, 6))
        assert read_word(out, "rt", 3) == int(x ** 0.5)

    def test_odd_width_padded(self):
        def setup(b):
            b.outputs(isqrt(b, b.inputs(5, "x")), "rt")

        out = build_and_eval(setup, word_assignment("x", 26, 5))
        assert read_word(out, "rt", 3) == 5


class TestPopcount:
    @pytest.mark.parametrize("x", [0, 1, 0b1011, 0x7F, 0b1010101])
    def test_values(self, x):
        def setup(b):
            b.outputs(popcount(b, b.inputs(7, "v")), "c")

        out = build_and_eval(setup, word_assignment("v", x, 7))
        assert read_word(out, "c", 3) == bin(x).count("1")

    def test_empty(self):
        builder = LogicBuilder()
        builder.input("dummy")
        result = popcount(builder, [])
        assert len(result) == 1


class TestLeadingOne:
    @pytest.mark.parametrize("x", [0, 1, 2, 0b100100, 0b111111, 0b010000])
    def test_index(self, x):
        def setup(b):
            idx, found = leading_one_index(b, b.inputs(6, "x"))
            b.outputs(idx, "i")
            b.output(found, "found")

        out = build_and_eval(setup, word_assignment("x", x, 6))
        assert out["found"] == int(x != 0)
        if x:
            assert read_word(out, "i", 3) == x.bit_length() - 1


class TestHelpers:
    def test_constant_word(self):
        builder = LogicBuilder()
        builder.input("dummy")
        word = constant_word(builder, 0b101, 3)
        values = [s.const_value for s in word]
        assert values == [1, 0, 1]

    def test_zero_extend(self):
        builder = LogicBuilder()
        word = builder.inputs(2, "a")
        extended = zero_extend(word, 4, builder)
        assert len(extended) == 4
        with pytest.raises(MigError):
            zero_extend(extended, 2, builder)

    def test_word_value(self):
        assert word_value([1, 0, 1]) == 5
