"""Unit tests for the three circuit file formats (.mig, .blif, .aag)."""

import io

import pytest

from repro.errors import ParseError
from repro.mig.graph import Mig
from repro.mig.io_aiger import read_aiger, write_aiger
from repro.mig.io_blif import read_blif, write_blif
from repro.mig.io_mig import read_mig, write_mig
from repro.mig.signal import Signal
from repro.mig.simulate import truth_tables

from conftest import random_mig


def roundtrip(mig, writer, reader):
    buffer = io.StringIO()
    writer(mig, buffer)
    buffer.seek(0)
    return reader(buffer)


class TestMigFormat:
    @pytest.mark.parametrize("seed", range(4))
    def test_roundtrip_function(self, seed):
        mig = random_mig(seed, num_pis=4, num_gates=15)
        back = roundtrip(mig, write_mig, read_mig)
        assert truth_tables(back) == truth_tables(mig)

    def test_roundtrip_preserves_child_order(self):
        mig = Mig(name="ord")
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        g = mig.add_maj(c, ~a, b)
        mig.add_po(g, "f")
        back = roundtrip(mig, write_mig, read_mig)
        gate = next(iter(back.gates()))
        names = [back.signal_name(s) for s in back.children(gate)]
        assert names == ["c", "~a", "b"]

    def test_roundtrip_name_and_interface(self):
        mig = random_mig(1, num_pis=3, num_gates=8)
        back = roundtrip(mig, write_mig, read_mig)
        assert back.name == mig.name
        assert back.pi_names() == mig.pi_names()
        assert back.po_names() == mig.po_names()

    def test_parse_error_unknown_signal(self):
        text = ".mig t\n.pi a\nn1 = <a, b, 0>\n.end\n"
        with pytest.raises(ParseError):
            read_mig(io.StringIO(text))

    def test_parse_error_no_header(self):
        with pytest.raises(ParseError):
            read_mig(io.StringIO("n1 = <a, b, 0>\n"))

    def test_parse_error_bad_gate(self):
        with pytest.raises(ParseError):
            read_mig(io.StringIO(".mig t\n.pi a b\nn1 = <a, b>\n.end\n"))

    def test_comments_and_blank_lines(self):
        text = """
.mig demo
# a comment
.pi a b

n1 = <a, ~b, 1>   # trailing comment
.po f = ~n1
.end
"""
        mig = read_mig(io.StringIO(text))
        assert mig.num_gates == 1
        assert mig.pos()[0].inverted

    def test_file_path_roundtrip(self, tmp_path):
        mig = random_mig(5, num_pis=3, num_gates=10)
        path = tmp_path / "circuit.mig"
        write_mig(mig, str(path))
        assert truth_tables(read_mig(str(path))) == truth_tables(mig)


class TestBlif:
    @pytest.mark.parametrize("seed", range(4))
    def test_roundtrip_function(self, seed):
        mig = random_mig(seed, num_pis=4, num_gates=15)
        back = roundtrip(mig, write_blif, read_blif)
        assert truth_tables(back) == truth_tables(mig)

    def test_read_sop(self):
        text = """
.model test
.inputs a b c
.outputs f
.names a b c f
11- 1
--1 1
.end
"""
        mig = read_blif(io.StringIO(text))
        tables = truth_tables(mig)
        assert tables["f"] == ((0b10101010 & 0b11001100) | 0b11110000)

    def test_read_offset_cover(self):
        text = ".model t\n.inputs a\n.outputs f\n.names a f\n1 0\n.end\n"
        mig = read_blif(io.StringIO(text))
        assert truth_tables(mig)["f"] == 0b01  # f = ~a

    def test_read_constant(self):
        text = ".model t\n.inputs a\n.outputs f\n.names f\n1\n.end\n"
        mig = read_blif(io.StringIO(text))
        assert truth_tables(mig)["f"] == 0b11

    def test_out_of_order_names(self):
        text = """
.model t
.inputs a b
.outputs f
.names t1 b f
11 1
.names a t1
0 1
.end
"""
        mig = read_blif(io.StringIO(text))
        assert truth_tables(mig)["f"] == (0b0101 & 0b1100)

    def test_latch_rejected(self):
        text = ".model t\n.inputs a\n.outputs f\n.latch a f\n.end\n"
        with pytest.raises(ParseError):
            read_blif(io.StringIO(text))

    def test_undriven_output_rejected(self):
        text = ".model t\n.inputs a\n.outputs f\n.end\n"
        with pytest.raises(ParseError):
            read_blif(io.StringIO(text))

    def test_line_continuation(self):
        text = ".model t\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
        mig = read_blif(io.StringIO(text))
        assert mig.num_pis == 2


class TestAiger:
    @pytest.mark.parametrize("seed", range(4))
    def test_roundtrip_function(self, seed):
        mig = random_mig(seed, num_pis=4, num_gates=15)
        back = roundtrip(mig, write_aiger, read_aiger)
        assert truth_tables(back) == truth_tables(mig)

    def test_read_simple_and(self):
        text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 x\ni1 y\no0 f\n"
        mig = read_aiger(io.StringIO(text))
        assert mig.pi_names() == ["x", "y"]
        assert truth_tables(mig)["f"] == 0b1000

    def test_read_inverted_output(self):
        text = "aag 1 1 0 1 0\n2\n3\n"
        mig = read_aiger(io.StringIO(text))
        assert truth_tables(mig)["o0"] == 0b01

    def test_read_constants(self):
        text = "aag 1 1 0 2 0\n2\n0\n1\n"
        mig = read_aiger(io.StringIO(text))
        tables = truth_tables(mig)
        assert tables["o0"] == 0
        assert tables["o1"] == 0b11

    def test_latches_rejected(self):
        with pytest.raises(ParseError):
            read_aiger(io.StringIO("aag 2 1 1 1 0\n2\n4 2\n2\n"))

    def test_bad_header_rejected(self):
        with pytest.raises(ParseError):
            read_aiger(io.StringIO("agg 1 1 0 1 0\n"))

    def test_maj_decomposition_size(self):
        """A majority gate becomes exactly four AIG ANDs."""
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        mig.add_po(mig.add_maj(a, b, c), "m")
        buffer = io.StringIO()
        write_aiger(mig, buffer)
        header = buffer.getvalue().splitlines()[0].split()
        assert int(header[5]) == 4
