"""Tests for the AnalysisContext cache and the batched compilation driver.

Covers the PR's acceptance criteria directly:

* ``compile_many`` with 1 worker and with 4 workers produces identical
  (#N, #I, #R) tuples in identical order for registry circuits;
* a cached :class:`AnalysisContext` returns the same parents/levels as the
  direct ``analysis.py`` functions;
* compiling one registry MIG under the five ablation option sets computes
  ``parents_of``/``levels`` at most once per distinct node order
  (call-counting via monkeypatch);
* with ≥4 CPUs, the parallel driver beats the sequential loop by ≥2×.
"""

import os
import time

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build
from repro.core.batch import BatchResult, compile_many, parallel_map, resolve_workers
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.resilience import Fault, FaultPlan, TaskFailure, TaskPolicy
from repro.errors import MigError, ReproError
from repro.mig import analysis
from repro.mig.context import AnalysisContext

from conftest import random_mig

CI_SPECS = [(name, "ci") for name in BENCHMARK_NAMES]

#: the five ablation option sets of the selection study (X2/X5), i.e. every
#: distinct compiler configuration the evaluation sweeps one MIG through
FIVE_OPTION_SETS = {
    "naive": CompilerOptions.naive(fix_output_polarity=False),
    "no-selection": CompilerOptions.no_selection(fix_output_polarity=False),
    "releasing": CompilerOptions(fix_output_polarity=False, reorder="none"),
    "paper-rules": CompilerOptions(
        fix_output_polarity=False, reorder="none", level_rule=True
    ),
    "default-best": CompilerOptions(fix_output_polarity=False),
}


class TestAnalysisContext:
    def test_matches_direct_analysis_functions(self):
        mig = build("ctrl", "ci")
        ctx = AnalysisContext(mig)
        assert ctx.parents == analysis.parents_of(mig)
        assert ctx.levels == analysis.levels(mig)
        assert ctx.fanout == analysis.fanout_counts(mig)
        assert ctx.use_counts == analysis.use_counts(mig)
        assert ctx.depth == analysis.depth(mig)
        assert list(ctx.gate_order) == list(mig.gates())

    def test_results_are_cached_objects(self):
        ctx = AnalysisContext(random_mig(seed=3))
        assert ctx.parents is ctx.parents
        assert ctx.levels is ctx.levels
        assert ctx.cleaned() is ctx.cleaned()
        assert ctx.reordered_dfs() is ctx.reordered_dfs()

    def test_fresh_uses_is_a_copy(self):
        ctx = AnalysisContext(random_mig(seed=4))
        uses = ctx.fresh_uses()
        uses[next(iter(uses))] = 10**6
        assert ctx.fresh_uses() == ctx.use_counts

    def test_stale_context_raises(self):
        mig = random_mig(seed=5)
        ctx = AnalysisContext(mig)
        assert ctx.levels  # prime one analysis
        mig.add_pi("late")
        with pytest.raises(MigError, match="stale"):
            _ = ctx.parents
        with pytest.raises(MigError, match="stale"):
            _ = ctx.levels  # even the already-cached analysis refuses

    def test_of_reuses_matching_context(self):
        mig = random_mig(seed=6)
        ctx = AnalysisContext(mig)
        assert AnalysisContext.of(mig, ctx) is ctx
        assert AnalysisContext.of(mig, None) is not ctx
        other = random_mig(seed=7)
        assert AnalysisContext.of(other, ctx) is not ctx

    def test_compile_with_context_matches_compile_without(self):
        mig = build("int2float", "ci")
        ctx = AnalysisContext(mig)
        for options in FIVE_OPTION_SETS.values():
            with_ctx = PlimCompiler(options).compile(mig, context=ctx)
            without = PlimCompiler(options).compile(mig)
            assert with_ctx.to_text() == without.to_text()


class TestAnalysisSharing:
    def test_analyses_once_per_node_order_across_option_sets(self, monkeypatch):
        """5 option sets on one registry MIG → parents/levels at most once
        per distinct node order (here: cleaned as-given + cleaned DFS)."""
        calls = {"parents_of": 0, "levels": 0}
        real_parents, real_levels = analysis.parents_of, analysis.levels

        def counting_parents(mig):
            calls["parents_of"] += 1
            return real_parents(mig)

        def counting_levels(mig):
            calls["levels"] += 1
            return real_levels(mig)

        monkeypatch.setattr(analysis, "parents_of", counting_parents)
        monkeypatch.setattr(analysis, "levels", counting_levels)

        mig = build("ctrl", "ci")
        ctx = AnalysisContext(mig)
        for options in FIVE_OPTION_SETS.values():
            PlimCompiler(options).compile(mig, context=ctx)

        # All five option sets clean first (one shared cleanup image); only
        # reorder="best" adds the DFS image — two distinct node orders.
        assert calls["parents_of"] <= 2
        assert calls["levels"] <= 2

    def test_best_reorder_shares_cleanup_and_reorder(self, monkeypatch):
        """reorder='best' compiles twice but cleans and DFS-reorders once."""
        cleanups = {"n": 0}
        original = AnalysisContext.cleaned

        def counting_cleaned(self):
            if self._cleaned is None:
                cleanups["n"] += 1
            return original(self)

        monkeypatch.setattr(AnalysisContext, "cleaned", counting_cleaned)
        mig = build("dec", "ci")
        ctx = AnalysisContext(mig)
        PlimCompiler(CompilerOptions()).compile(mig, context=ctx)
        PlimCompiler(CompilerOptions(level_rule=True)).compile(mig, context=ctx)
        assert cleanups["n"] == 1


def _result_key(results):
    return [(r.circuit, r.option_label, r.counts) for r in results]


class TestCompileMany:
    def test_workers_1_and_4_identical(self):
        option_sets = {
            "full": CompilerOptions(),
            "naive": CompilerOptions.naive(),
        }
        sequential = compile_many(CI_SPECS, option_sets, workers=1)
        parallel = compile_many(CI_SPECS, option_sets, workers=4)
        assert _result_key(sequential) == _result_key(parallel)
        # circuit-major, option-minor ordering
        assert [r.circuit for r in sequential[:2]] == [BENCHMARK_NAMES[0]] * 2
        assert [r.option_label for r in sequential[:2]] == ["full", "naive"]

    def test_matches_direct_compilation(self):
        results = compile_many(
            [("ctrl", "ci")], [CompilerOptions(fix_output_polarity=False)]
        )
        (result,) = results
        program = PlimCompiler(CompilerOptions(fix_output_polarity=False)).compile(
            build("ctrl", "ci")
        )
        assert result.counts[1:] == (program.num_instructions, program.num_rrams)

    def test_accepts_mig_objects_and_name_specs(self):
        mig = build("dec", "ci")
        by_mig = compile_many([mig], workers=1)
        by_spec = compile_many([("dec", "ci")], workers=1)
        # the display name differs (mig.name vs registry key); counts match
        assert [r.counts for r in by_mig] == [r.counts for r in by_spec]
        assert by_spec[0].circuit == "dec"

    def test_rejects_bad_spec(self):
        with pytest.raises(ReproError, match="circuit spec"):
            compile_many([42])

    def test_keep_programs(self):
        with_programs = compile_many([("ctrl", "ci")], keep_programs=True)
        without = compile_many([("ctrl", "ci")])
        assert with_programs[0].program is not None
        assert without[0].program is None
        assert (
            with_programs[0].program.num_instructions
            == with_programs[0].num_instructions
        )

    def test_rewrite_in_batch(self):
        (plain,) = compile_many([("int2float", "ci")])
        (rewritten,) = compile_many([("int2float", "ci")], rewrite=True)
        assert rewritten.num_instructions <= plain.num_instructions

    def test_result_repr_and_counts(self):
        (result,) = compile_many([("ctrl", "ci")])
        assert isinstance(result, BatchResult)
        assert result.counts == (
            result.num_gates,
            result.num_instructions,
            result.num_rrams,
        )
        assert "ctrl" in repr(result)


class TestParallelMap:
    def test_inline_and_pooled_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=1) == [i * i for i in items]
        assert parallel_map(_square, items, workers=3) == [i * i for i in items]

    def test_single_item_runs_inline(self):
        assert parallel_map(_square, [7], workers=8) == [49]


class TestResolveWorkers:
    """Satellite 6: the Optional[int] drift is an explicit error now."""

    def test_none_means_one_per_cpu(self):
        assert resolve_workers(None) == (os.cpu_count() or 1)
        assert resolve_workers(2) == 2

    @pytest.mark.parametrize("bad", [0, -1, -100, 1.5, True, "3"])
    def test_non_positive_or_non_int_raises(self, bad):
        with pytest.raises(ReproError, match="positive integer"):
            resolve_workers(bad)

    def test_policy_validation_reaches_parallel_map(self):
        with pytest.raises(ReproError, match="timeout_s"):
            parallel_map(
                _square, [1, 2], workers=1, policy=TaskPolicy(timeout_s=-5)
            )


class TestCompileManyResilience:
    """Policy plumbing through the batch driver (ISSUE 7 tentpole)."""

    def test_crashed_circuit_becomes_one_failure_slot(self):
        specs = [("ctrl", "ci"), ("dec", "ci"), ("int2float", "ci")]
        clean = compile_many(specs, workers=2)
        plan = FaultPlan({1: Fault("exit")})
        out = compile_many(
            specs, workers=2,
            policy=TaskPolicy(on_error="skip"), fault_plan=plan,
        )
        # one task per circuit: the dec slot fails, the others survive
        # byte-identically (circuit-major order is preserved)
        failures = [r for r in out if isinstance(r, TaskFailure)]
        assert len(failures) == 1 and failures[0].kind == "crash"
        assert failures[0].index == 1
        survivors = [r for r in out if isinstance(r, BatchResult)]
        expected = [r for r in clean if r.circuit != "dec"]
        assert _result_key(survivors) == _result_key(expected)

    def test_raise_mode_is_the_default_and_aborts(self):
        from repro.core.resilience import TaskError

        plan = FaultPlan({0: Fault("exit")})
        with pytest.raises(TaskError):
            compile_many([("ctrl", "ci"), ("dec", "ci")], workers=2,
                         fault_plan=plan)

    def test_retry_recovers_a_transient_crash(self):
        specs = [("ctrl", "ci"), ("dec", "ci")]
        plan = FaultPlan({0: Fault("exit", attempts=(1,))})
        out = compile_many(
            specs, workers=2,
            policy=TaskPolicy(retries=1, backoff=0), fault_plan=plan,
        )
        assert _result_key(out) == _result_key(compile_many(specs, workers=2))


def _square(x):
    return x * x


@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="needs >= 4 CPUs for a meaningful speedup"
)
def test_four_workers_at_least_twice_as_fast():
    """Acceptance: the batched driver beats the sequential loop >= 2x."""
    option_sets = {
        "full": CompilerOptions(),
        "naive": CompilerOptions.naive(),
        "no-selection": CompilerOptions.no_selection(),
    }
    start = time.perf_counter()
    sequential = compile_many(CI_SPECS, option_sets, workers=1, rewrite=True)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = compile_many(CI_SPECS, option_sets, workers=4, rewrite=True)
    parallel_s = time.perf_counter() - start

    assert _result_key(sequential) == _result_key(parallel)
    assert parallel_s * 2 <= sequential_s, (
        f"parallel {parallel_s:.2f}s vs sequential {sequential_s:.2f}s"
    )
