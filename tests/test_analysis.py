"""Unit tests for repro.mig.analysis."""

import pytest

from repro.mig.analysis import (
    complement_stats,
    complemented_child_count,
    depth,
    fanout_counts,
    levels,
    parents_of,
    stats,
)
from repro.mig.graph import Mig
from repro.mig.signal import Signal


@pytest.fixture
def chain():
    """a -> g1 -> g2 -> g3 with extra fanout from g1."""
    mig = Mig()
    a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
    g1 = mig.add_maj(a, b, c)
    g2 = mig.add_maj(g1, ~a, Signal.CONST0)
    g3 = mig.add_maj(g2, g1, ~b)
    mig.add_po(g3, "f")
    return mig, (a, b, c), (g1, g2, g3)


class TestLevels:
    def test_leaves_are_level_zero(self, chain):
        mig, (a, b, c), _ = chain
        lv = levels(mig)
        assert lv[0] == 0
        assert lv[a.node] == lv[b.node] == lv[c.node] == 0

    def test_gate_levels(self, chain):
        mig, _, (g1, g2, g3) = chain
        lv = levels(mig)
        assert lv[g1.node] == 1
        assert lv[g2.node] == 2
        assert lv[g3.node] == 3

    def test_depth(self, chain):
        mig, *_ = chain
        assert depth(mig) == 3

    def test_depth_empty(self):
        mig = Mig()
        mig.add_pi("a")
        assert depth(mig) == 0

    def test_depth_uses_pos(self):
        """Dead deep gates do not count toward depth."""
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        g1 = mig.add_maj(a, b, Signal.CONST0)
        mig.add_maj(g1, a, Signal.CONST1)  # dead, level 2
        mig.add_po(g1, "f")
        assert depth(mig) == 1


class TestFanout:
    def test_counts(self, chain):
        mig, (a, b, c), (g1, g2, g3) = chain
        fo = fanout_counts(mig)
        assert fo[g1.node] == 2  # feeds g2 and g3
        assert fo[g2.node] == 1
        assert fo[g3.node] == 1  # the PO
        assert fo[a.node] == 2  # g1 and ~a in g2
        assert fo[c.node] == 1

    def test_parents(self, chain):
        mig, (a, _, _), (g1, g2, g3) = chain
        parents = parents_of(mig)
        assert parents[g1.node] == [g2.node, g3.node]
        assert parents[g3.node] == []
        assert set(parents[a.node]) == {g1.node, g2.node}


class TestComplementStats:
    def test_complemented_child_count(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        g = mig.add_maj(~a, ~b, Signal.CONST1)
        assert complemented_child_count(mig, g.node) == 2
        assert complemented_child_count(mig, g.node, count_constants=True) == 3

    def test_histogram(self):
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        mig.add_maj(a, b, c)  # 0 complements
        mig.add_maj(~a, b, c)  # 1
        mig.add_maj(~a, ~b, c)  # 2
        mig.add_maj(~a, ~b, ~c)  # 3
        cs = complement_stats(mig)
        assert cs.by_count == (1, 1, 1, 1)
        assert cs.multi_complement_gates == 2

    def test_stats_summary(self, chain):
        mig, *_ = chain
        s = stats(mig)
        assert s.num_pis == 3
        assert s.num_gates == 3
        assert s.depth == 3
        assert "gates=3" in str(s)
