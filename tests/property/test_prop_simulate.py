"""Property tests pinning the word-parallel simulation kernels to the
scalar definition.

Three claims, each checked by hypothesis over arbitrary MIGs:

* batched ``truth_tables``/``simulate_outputs`` agree bit-for-bit with the
  single-pattern ``evaluate`` loop (the scalar semantics are the spec);
* the chunked numpy kernel and the compiled big-int kernel are
  interchangeable — same outputs on the same plan, pattern count and
  chunking notwithstanding (forced via the engagement thresholds);
* duplicate output names fail loudly in the name-keyed API and work in
  the index-keyed one.

Plus a deterministic wide-circuit case: a >64-PI graph exercises the
multi-word path of both kernels (packed values no longer fit one
machine word on any backend).
"""

from __future__ import annotations

import contextlib
import random
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.mig.simulate  # noqa: F401 — bind the module, not the re-exported function
from repro.errors import MigError
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.mig.simulate import (
    evaluate,
    output_tables,
    simulate,
    simulate_outputs,
    truth_tables,
)

from .strategies import migs

# ``repro.mig`` re-exports the ``simulate`` *function* under the package
# attribute of the same name, so ``import repro.mig.simulate as sim`` would
# bind the function; go through ``sys.modules`` for the module itself.
sim = sys.modules["repro.mig.simulate"]


def _scalar_tables(mig: Mig) -> list[int]:
    """Reference truth tables built one ``evaluate`` call at a time."""
    names = mig.pi_names()
    tables = [0] * mig.num_pos
    for row in range(1 << mig.num_pis):
        assignment = {name: (row >> i) & 1 for i, name in enumerate(names)}
        row_sim = simulate_outputs(mig, assignment, 1)
        for k, bit in enumerate(row_sim):
            tables[k] |= bit << row
    return tables


@given(migs())
@settings(max_examples=60, deadline=None)
def test_batched_tables_match_scalar_evaluate(mig):
    assert output_tables(mig) == _scalar_tables(mig)


@given(migs(), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_packed_simulation_matches_per_pattern_evaluate(mig, seed):
    rng = random.Random(seed)
    num_patterns = rng.randint(1, 130)  # crosses the 64-bit word boundary
    packed = {
        name: rng.getrandbits(num_patterns) for name in mig.pi_names()
    }
    batched = simulate_outputs(mig, packed, num_patterns)
    for p in range(num_patterns):
        row = {name: (packed[name] >> p) & 1 for name in packed}
        scalar = simulate_outputs(mig, row, 1)
        assert [(v >> p) & 1 for v in batched] == scalar


@contextlib.contextmanager
def _thresholds(*, patterns, gates, chunk_bytes=None):
    """Temporarily override the numpy-kernel engagement thresholds."""
    saved = (sim._NUMPY_MIN_PATTERNS, sim._NUMPY_MIN_GATES, sim._CHUNK_TARGET_BYTES)
    sim._NUMPY_MIN_PATTERNS = patterns
    sim._NUMPY_MIN_GATES = gates
    if chunk_bytes is not None:
        sim._CHUNK_TARGET_BYTES = chunk_bytes
    try:
        yield
    finally:
        sim._NUMPY_MIN_PATTERNS, sim._NUMPY_MIN_GATES, sim._CHUNK_TARGET_BYTES = saved


@given(mig=migs(max_pis=4, max_gates=40), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_numpy_kernel_matches_bigint_kernel(mig, seed):
    """Force both kernels over the same batch and compare verbatim.

    The engagement thresholds are dropped to zero so even tiny graphs and
    narrow batches route through numpy; the chunk target is shrunk so
    multi-chunk assembly is exercised, not just the single-chunk path.
    """
    if sim._np is None:  # pragma: no cover - CI ships numpy
        pytest.skip("numpy not available")
    rng = random.Random(seed)
    num_patterns = rng.randint(1, 300)
    packed = [rng.getrandbits(num_patterns) for _ in range(mig.num_pis)]
    encodings = [int(po) for po in mig.pos()]

    with _thresholds(patterns=1 << 60, gates=1 << 60):
        via_bigint = sim._simulate_encodings(mig, packed, num_patterns, encodings)
    with _thresholds(patterns=1, gates=0, chunk_bytes=64):
        via_numpy = sim._simulate_encodings(mig, packed, num_patterns, encodings)
    assert via_numpy == via_bigint


def _wide_majority_chain(num_pis: int) -> Mig:
    """A deterministic >64-PI circuit (majority-reduction tree)."""
    mig = Mig(name=f"wide{num_pis}")
    layer = [mig.add_pi(f"x{i}") for i in range(num_pis)]
    k = 0
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 2, 3):
            nxt.append(mig.add_maj(layer[i], ~layer[i + 1], layer[i + 2]))
        nxt.extend(layer[len(layer) - (len(layer) - 2) % 3 - 2:])
        layer = nxt
        k += 1
        if k > 64:  # safety against a non-shrinking layer
            break
    mig.add_po(layer[0], "root")
    mig.add_po(~layer[0], "root_n")
    return mig


def test_wide_circuit_over_64_pis_matches_scalar():
    mig = _wide_majority_chain(80)
    assert mig.num_pis == 80
    rng = random.Random(20160605)
    num_patterns = 200
    packed = {
        name: rng.getrandbits(num_patterns) for name in mig.pi_names()
    }
    batched = simulate(mig, packed, num_patterns)
    for p in rng.sample(range(num_patterns), 32):
        row = {name: (packed[name] >> p) & 1 for name in packed}
        scalar = evaluate(mig, row)
        assert {n: (v >> p) & 1 for n, v in batched.items()} == scalar


def test_wide_circuit_numpy_agrees():
    if sim._np is None:  # pragma: no cover
        pytest.skip("numpy not available")
    mig = _wide_majority_chain(70)
    rng = random.Random(7)
    num_patterns = 257  # deliberately not a multiple of 64
    packed = [rng.getrandbits(num_patterns) for _ in range(mig.num_pis)]
    encodings = [int(po) for po in mig.pos()]
    with _thresholds(patterns=1 << 60, gates=1 << 60):
        via_bigint = sim._simulate_encodings(mig, packed, num_patterns, encodings)
    with _thresholds(patterns=1, gates=0, chunk_bytes=1024):
        via_numpy = sim._simulate_encodings(mig, packed, num_patterns, encodings)
    assert via_numpy == via_bigint


class TestDuplicateOutputs:
    def _dup(self) -> Mig:
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        g = mig.add_maj(a, b, Signal.CONST0)
        mig.add_po(g, "f")
        mig.add_po(~g, "f")
        return mig

    def test_name_keyed_apis_raise(self):
        mig = self._dup()
        with pytest.raises(MigError, match="duplicate"):
            simulate(mig, {"a": 1, "b": 1})
        with pytest.raises(MigError, match="duplicate"):
            truth_tables(mig)

    def test_index_keyed_apis_work(self):
        mig = self._dup()
        assert simulate_outputs(mig, {"a": 1, "b": 1}, 1) == [1, 0]
        and_table, nand_table = output_tables(mig)
        assert and_table == 0b1000 and nand_table == 0b0111
