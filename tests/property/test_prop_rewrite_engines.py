"""Property-based differential tests: worklist engine vs rebuild oracle.

Hypothesis generates arbitrary well-formed MIGs (including reducible and
complement-heavy ones); on every one of them the worklist engine must
compute the same functions as the rebuild pipeline and never end up larger
in gates or estimated instructions.  A second property drives the mutable
core directly: replacing a gate by a freshly built equivalent must preserve
all outputs and every maintained invariant.
"""

from hypothesis import given, settings

from repro.core.cost import estimate_instructions
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.mig import analysis
from repro.mig.simulate import truth_tables

from .strategies import migs

FAST = settings(max_examples=40, deadline=None)


@FAST
@given(mig=migs())
def test_worklist_matches_rebuild_functionally(mig):
    worklist = rewrite_for_plim(mig, RewriteOptions(engine="worklist"))
    rebuild = rewrite_for_plim(mig, RewriteOptions(engine="rebuild"))
    assert truth_tables(worklist) == truth_tables(mig)
    assert truth_tables(worklist) == truth_tables(rebuild)
    assert worklist.num_gates <= rebuild.num_gates
    assert estimate_instructions(worklist) <= estimate_instructions(rebuild)


@FAST
@given(mig=migs())
def test_replace_node_preserves_outputs_and_invariants(mig):
    """Flipping every flippable gate in place is function-preserving and
    keeps the incremental refs/parents/histogram consistent."""
    before = truth_tables(mig)
    work, _ = mig.rebuild()
    work.enable_inplace()
    for v in list(work.topo_gates()):
        if not work.is_gate(v):
            continue
        a, b, c = work.children(v)
        flipped = work.add_maj(~a, ~b, ~c)
        if flipped.node != v:
            work.replace_node(v, ~flipped)
    assert truth_tables(work) == before

    # maintained structures match a from-scratch recomputation
    refs = {v: 0 for v in work.nodes()}
    for v in work.gates():
        for child in work.children(v):
            refs[child.node] += 1
    for po in work.pos():
        refs[po.node] += 1
    for v in work.nodes():
        if work.is_gate(v) or work.is_pi(v) or work.is_const(v):
            assert work.fanout_of(v) == refs[v], f"refs of node {v}"
    num_gates, hist, _ = work.inplace_signature()
    assert num_gates == work.num_gates
    assert hist == analysis.complement_stats(work).by_count

    # and the final cleanup yields a compact, equivalent graph
    clean, _ = work.rebuild()
    assert truth_tables(clean) == before
