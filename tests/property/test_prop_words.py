"""Property-based tests of the word-level builders against Python ints."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mig.build import LogicBuilder
from repro.mig.simulate import evaluate
from repro.mig.words import (
    add,
    barrel_rotate_left,
    divide,
    isqrt,
    less_than,
    multiply,
    popcount,
    sub,
)

FAST = settings(max_examples=25, deadline=None)


def assignment(prefix, value, width):
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(width)}


def read(outputs, prefix, width):
    return sum((outputs[f"{prefix}{i}"] & 1) << i for i in range(width))


@FAST
@given(data=st.data(), width=st.integers(2, 8))
def test_add(data, width):
    top = (1 << width) - 1
    x = data.draw(st.integers(0, top))
    y = data.draw(st.integers(0, top))
    builder = LogicBuilder()
    total, carry = add(builder, builder.inputs(width, "a"), builder.inputs(width, "b"))
    builder.outputs(total, "s")
    builder.output(carry, "c")
    out = evaluate(builder.mig, assignment("a", x, width) | assignment("b", y, width))
    assert read(out, "s", width) | (out["c"] << width) == x + y


@FAST
@given(data=st.data(), width=st.integers(2, 8))
def test_sub_and_less_than(data, width):
    top = (1 << width) - 1
    x = data.draw(st.integers(0, top))
    y = data.draw(st.integers(0, top))
    builder = LogicBuilder()
    a, b = builder.inputs(width, "a"), builder.inputs(width, "b")
    difference, no_borrow = sub(builder, a, b)
    builder.outputs(difference, "d")
    builder.output(no_borrow, "nb")
    builder.output(less_than(builder, a, b), "lt")
    out = evaluate(builder.mig, assignment("a", x, width) | assignment("b", y, width))
    assert read(out, "d", width) == (x - y) % (1 << width)
    assert out["nb"] == int(x >= y)
    assert out["lt"] == int(x < y)


@FAST
@given(data=st.data(), width=st.integers(2, 6))
def test_multiply(data, width):
    top = (1 << width) - 1
    x = data.draw(st.integers(0, top))
    y = data.draw(st.integers(0, top))
    builder = LogicBuilder()
    product = multiply(builder, builder.inputs(width, "a"), builder.inputs(width, "b"))
    builder.outputs(product, "p")
    out = evaluate(builder.mig, assignment("a", x, width) | assignment("b", y, width))
    assert read(out, "p", 2 * width) == x * y


@FAST
@given(data=st.data(), width=st.integers(2, 6))
def test_divide(data, width):
    top = (1 << width) - 1
    n = data.draw(st.integers(0, top))
    d = data.draw(st.integers(1, top))
    builder = LogicBuilder()
    q, r = divide(builder, builder.inputs(width, "n"), builder.inputs(width, "d"))
    builder.outputs(q, "q")
    builder.outputs(r, "r")
    out = evaluate(builder.mig, assignment("n", n, width) | assignment("d", d, width))
    assert read(out, "q", width) == n // d
    assert read(out, "r", width) == n % d


@FAST
@given(data=st.data(), width=st.integers(2, 8))
def test_isqrt(data, width):
    import math

    x = data.draw(st.integers(0, (1 << width) - 1))
    builder = LogicBuilder()
    root = isqrt(builder, builder.inputs(width, "x"))
    builder.outputs(root, "rt")
    out = evaluate(builder.mig, assignment("x", x, width))
    assert read(out, "rt", (width + 1) // 2) == math.isqrt(x)


@FAST
@given(data=st.data(), width=st.integers(1, 10))
def test_popcount(data, width):
    x = data.draw(st.integers(0, (1 << width) - 1))
    builder = LogicBuilder()
    count = popcount(builder, builder.inputs(width, "v"))
    builder.outputs(count, "c")
    out = evaluate(builder.mig, assignment("v", x, width))
    assert read(out, "c", len(count)) == bin(x).count("1")


@FAST
@given(data=st.data(), width=st.sampled_from([4, 8]))
def test_rotate(data, width):
    select = width.bit_length() - 1
    x = data.draw(st.integers(0, (1 << width) - 1))
    amount = data.draw(st.integers(0, width - 1))
    builder = LogicBuilder()
    rotated = barrel_rotate_left(
        builder, builder.inputs(width, "d"), builder.inputs(select, "s")
    )
    builder.outputs(rotated, "q")
    out = evaluate(
        builder.mig, assignment("d", x, width) | assignment("s", amount, select)
    )
    mask = (1 << width) - 1
    expected = ((x << amount) | (x >> (width - amount))) & mask if amount else x
    assert read(out, "q", width) == expected
