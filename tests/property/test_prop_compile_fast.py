"""Property sweep of the array-fast Algorithm 2 and the machine kernels.

Two families of invariants:

* **compile identity** — for arbitrary graphs and option sets, the fast
  engine's ``.plim`` text equals the object oracle's byte for byte;
* **execution identity** — for one program, the object interpreter, the
  compiled plan kernel, and (when numpy is available) the chunked uint64
  kernel produce the same cells, outputs, and endurance counters
  (``write_counts``, ``flip_counts``, instruction/cycle counts) at the
  widths where the numpy kernel actually engages.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.plim import machine as machine_mod
from repro.plim.machine import PlimMachine
from repro.plim.verify import verify_program

from .strategies import migs

SLOWER = settings(max_examples=30, deadline=None)

option_sets = st.builds(
    CompilerOptions,
    scheduling=st.sampled_from(["priority", "index"]),
    operand_selection=st.sampled_from(["cases", "child_order"]),
    complement_caching=st.booleans(),
    allocator_policy=st.sampled_from(["fifo", "lifo", "fresh"]),
    fix_output_polarity=st.booleans(),
    reorder=st.sampled_from(["none", "dfs", "best"]),
    unblocking_rule=st.booleans(),
    level_rule=st.booleans(),
)


@SLOWER
@given(mig=migs(max_gates=20), options=option_sets)
def test_fast_equals_oracle_byte_for_byte(mig, options):
    from dataclasses import replace

    fast = PlimCompiler(replace(options, implementation="fast")).compile(mig)
    oracle = PlimCompiler(replace(options, implementation="object")).compile(mig)
    assert fast.to_text() == oracle.to_text()


@SLOWER
@given(mig=migs(max_gates=15), seed=st.integers(0, 2**16))
def test_kernels_agree_exactly(mig, seed):
    """Object loop vs compiled plan vs numpy kernel: same machine state."""
    import random

    program = PlimCompiler().compile(mig)
    # wide enough to clear _NUMPY_MIN_WIDTH; instruction floor is forced
    # off by running the numpy kernel explicitly
    width = machine_mod._NUMPY_MIN_WIDTH
    rng = random.Random(seed)
    mask = (1 << width) - 1
    inputs = {name: rng.randrange(0, 1 << width) & mask for name in program.input_cells}

    kernels = ["object", "plan"]
    if machine_mod._np is not None:
        kernels.append("numpy")
    runs = {}
    for kernel in kernels:
        machine = PlimMachine.for_program(program, width=width, kernel=kernel)
        outputs = machine.run_program(program, inputs)
        runs[kernel] = (
            outputs,
            list(machine.cells),
            list(machine.write_counts),
            list(machine.flip_counts),
            machine.instruction_count,
            machine.cycle_count,
        )
    reference = runs["object"]
    for kernel in kernels[1:]:
        assert runs[kernel] == reference, kernel


@SLOWER
@given(mig=migs(max_gates=12, max_pis=4))
def test_exhaustive_verify_at_numpy_widths(mig):
    """verify_program's exhaustive mode (wide packed patterns → the numpy
    kernel where available) agrees with the MIG on every input pattern."""
    program = PlimCompiler().compile(mig)
    check = verify_program(mig, program, raise_on_mismatch=True)
    assert check.ok


@pytest.mark.skipif(machine_mod._np is None, reason="numpy not available")
@SLOWER
@given(mig=migs(max_gates=15), seed=st.integers(0, 2**16))
def test_auto_kernel_dispatch_matches_forced_kernels(mig, seed):
    """kernel="auto" output equals both forced kernels at any width."""
    import random

    program = PlimCompiler().compile(mig)
    rng = random.Random(seed)
    for width in (1, machine_mod._NUMPY_MIN_WIDTH):
        mask = (1 << width) - 1
        inputs = {
            name: rng.randrange(0, 1 << width) & mask
            for name in program.input_cells
        }
        auto = PlimMachine.for_program(program, width=width, kernel="auto")
        plan = PlimMachine.for_program(program, width=width, kernel="plan")
        assert auto.run_program(program, inputs) == plan.run_program(program, inputs)
        assert auto.cells == plan.cells
        assert auto.write_counts == plan.write_counts
        assert auto.flip_counts == plan.flip_counts
