"""Property-based end-to-end compiler correctness.

The central invariant of the whole package: *any* MIG compiled under *any*
option combination executes on the PLiM machine model to exactly the MIG's
functions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.pipeline import compile_mig
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.mig.simulate import truth_tables
from repro.plim.verify import verify_program

from .strategies import migs

SLOWER = settings(max_examples=30, deadline=None)

option_sets = st.builds(
    CompilerOptions,
    scheduling=st.sampled_from(["priority", "index"]),
    operand_selection=st.sampled_from(["cases", "child_order"]),
    complement_caching=st.booleans(),
    allocator_policy=st.sampled_from(["fifo", "lifo", "fresh"]),
    fix_output_polarity=st.booleans(),
    reorder=st.sampled_from(["none", "dfs"]),
    unblocking_rule=st.booleans(),
    level_rule=st.booleans(),
)


@SLOWER
@given(mig=migs(max_gates=20), options=option_sets)
def test_compiled_program_computes_the_mig(mig, options):
    program = PlimCompiler(options).compile(mig)
    assert verify_program(mig, program, raise_on_mismatch=True).ok


@SLOWER
@given(mig=migs(max_gates=20), effort=st.integers(0, 3))
def test_rewriting_preserves_function_and_pipeline_verifies(mig, effort):
    rewritten = rewrite_for_plim(mig, RewriteOptions(effort=effort))
    assert truth_tables(rewritten) == truth_tables(mig)
    result = compile_mig(mig, effort=max(effort, 1))
    assert verify_program(mig, result.program, raise_on_mismatch=True).ok


@SLOWER
@given(mig=migs(max_gates=20))
def test_instruction_count_bounds(mig):
    """1 ≤ #I per gate ≤ 7 (paper: worst case six extra instructions)."""
    clean, _ = mig.cleanup()
    program = PlimCompiler(
        CompilerOptions(fix_output_polarity=False)
    ).compile(mig)
    gates = clean.num_gates
    if gates:
        assert gates <= program.num_instructions <= 7 * gates + 2 * clean.num_pos


@SLOWER
@given(mig=migs(max_gates=20))
def test_input_cells_are_read_only(mig):
    program = PlimCompiler(CompilerOptions()).compile(mig)
    inputs = set(program.input_cells.values())
    assert all(instr.z not in inputs for instr in program)


@SLOWER
@given(mig=migs(max_gates=20))
def test_work_cell_inventory_is_consistent(mig):
    """#R equals the distinct non-input destinations/operands used."""
    program = PlimCompiler(CompilerOptions()).compile(mig)
    inputs = set(program.input_cells.values())
    touched = set()
    for instr in program:
        touched.add(instr.z)
        for op in (instr.a, instr.b):
            if not op.is_const:
                touched.add(op.value)
    touched -= inputs
    assert touched == set(program.work_cells)
