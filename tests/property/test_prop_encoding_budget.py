"""Property-based tests for instruction encoding, the fetching controller,
and RRAM-budgeted compilation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.errors import CompilationError
from repro.plim.controller import FetchingController
from repro.plim.encoding import (
    decode_instruction,
    encode_instruction,
    instruction_bits,
)
from repro.plim.isa import Instruction, Operand
from repro.plim.machine import PlimMachine
from repro.plim.verify import verify_program

from .strategies import migs

FAST = settings(max_examples=50, deadline=None)
SLOW = settings(max_examples=20, deadline=None)


@st.composite
def instructions(draw, addr_bits=8):
    top = (1 << addr_bits) - 1

    def operand():
        if draw(st.booleans()):
            return Operand.const(draw(st.integers(0, 1)))
        return Operand.cell(draw(st.integers(0, top)))

    return Instruction(operand(), operand(), draw(st.integers(0, top)))


class TestEncodingRoundtrip:
    @FAST
    @given(instruction=instructions())
    def test_roundtrip(self, instruction):
        word = encode_instruction(instruction, 8)
        assert 0 <= word < (1 << instruction_bits(8))
        back = decode_instruction(word, 8)
        assert (back.a, back.b, back.z) == (
            instruction.a,
            instruction.b,
            instruction.z,
        )

    @FAST
    @given(instruction=instructions(addr_bits=4), other=instructions(addr_bits=4))
    def test_injective(self, instruction, other):
        """Distinct instructions encode to distinct words."""
        same = (instruction.a, instruction.b, instruction.z) == (
            other.a,
            other.b,
            other.z,
        )
        words_equal = encode_instruction(instruction, 4) == encode_instruction(other, 4)
        assert words_equal == same


class TestControllerAgreement:
    @SLOW
    @given(mig=migs(max_gates=12), data=st.data())
    def test_fetching_controller_matches_machine(self, mig, data):
        program = PlimCompiler(CompilerOptions()).compile(mig)
        inputs = {
            name: data.draw(st.integers(0, 1), label=name)
            for name in mig.pi_names()
        }
        direct = PlimMachine.for_program(program).run_program(program, inputs)
        fetched = FetchingController(program).run(inputs)
        assert fetched == direct


class TestBudgetProperties:
    @SLOW
    @given(mig=migs(max_gates=15), slack=st.integers(0, 3))
    def test_budget_respected_or_infeasible(self, mig, slack):
        free = PlimCompiler(CompilerOptions(fix_output_polarity=False)).compile(mig)
        budget = max(1, free.num_rrams - slack)
        options = CompilerOptions(fix_output_polarity=False, max_work_cells=budget)
        try:
            program = PlimCompiler(options).compile(mig)
        except CompilationError:
            return
        assert program.num_rrams <= budget
        assert verify_program(mig, program, raise_on_mismatch=True).ok
