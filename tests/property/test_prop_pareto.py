"""Property-based tests for depth-budgeted rewriting and the Pareto sweep.

Hypothesis generates arbitrary well-formed MIGs; on every one of them:

* size rewriting under any feasible depth budget keeps depth within the
  budget, preserves functions, and never grows beyond the cleaned input;
* every :func:`pareto_sweep` point is functionally equivalent to the
  input, no returned point is dominated by another, the frontier is
  unique-coordinate and depth-sorted, and every budgeted point respects
  its budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import pareto_sweep
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.mig.analysis import depth
from repro.mig.simulate import output_tables

from .strategies import migs

FAST = settings(max_examples=30, deadline=None)


@FAST
@given(mig=migs(), slack=st.integers(0, 3))
def test_budgeted_size_rewriting_respects_budget(mig, slack):
    clean = mig.cleanup()[0]
    budget = depth(clean) + slack
    rewritten = rewrite_for_plim(mig, RewriteOptions(depth_budget=budget))
    assert depth(rewritten) <= budget
    assert rewritten.num_gates <= clean.num_gates
    assert output_tables(rewritten) == output_tables(mig)


@FAST
@given(mig=migs(max_gates=15))
def test_pareto_points_equivalent_and_non_dominated(mig):
    front = pareto_sweep(mig, workers=1)
    tables = output_tables(mig)
    assert front.points
    for p in front.points:
        assert p.equivalence == "exhaustive"
        if p.budget is not None:
            assert p.depth <= p.budget
        for q in front.points:
            assert not p.dominates(q)
    coords = [p.counts for p in front.points]
    assert len(set(coords)) == len(coords)
    assert coords == sorted(coords, key=lambda c: c[1])
    # the sweep's verification already compared against the input; assert
    # the frontier extremes independently here as well
    size_ref = rewrite_for_plim(mig)
    depth_ref = rewrite_for_plim(mig, RewriteOptions(objective="depth"))
    assert output_tables(size_ref) == tables
    assert front.size_point.num_gates <= size_ref.num_gates
    assert front.depth_point.depth <= depth(depth_ref)
