"""Property-based tests for :meth:`repro.mig.graph.Mig.fingerprint`.

The fingerprint is the synthesis cache's content address, so its contract
is load-bearing: on arbitrary well-formed MIGs it must be

* *invariant* under gate-creation order (any topological re-creation of
  the same circuit), under clone and rebuild round-trips of clean graphs,
  and under dead/unreachable cones;
* *sensitive* to anything that changes what the circuit computes or how
  its interface looks: a PI rename, a PO rename, an output polarity flip,
  a dropped output, a changed function.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mig.graph import Mig
from repro.mig.reorder import reorder_dfs, shuffle_topological

from .strategies import migs

FAST = settings(max_examples=40, deadline=None)


@FAST
@given(mig=migs(), seed=st.integers(0, 2**16))
def test_fingerprint_invariant_under_creation_order(mig, seed):
    shuffled = shuffle_topological(mig.cleanup()[0], seed=seed)
    assert shuffled.fingerprint() == mig.fingerprint()
    assert reorder_dfs(mig.cleanup()[0]).fingerprint() == mig.fingerprint()


@FAST
@given(mig=migs())
def test_fingerprint_invariant_under_clone_and_rebuild(mig):
    # A raw strategy graph may contain trivially reducible gates that a
    # rebuild would simplify away; fingerprint the *clean* form, whose
    # rebuilds are structure-preserving.
    clean = mig.cleanup()[0]
    reference = clean.fingerprint()
    assert clean.clone().fingerprint() == reference
    assert clean.rebuild()[0].fingerprint() == reference
    assert clean.rebuild()[0].rebuild()[0].fingerprint() == reference


@FAST
@given(mig=migs())
def test_fingerprint_ignores_unreachable_cones(mig):
    clean = mig.cleanup()[0]
    reference = clean.fingerprint()
    # Grow a cone no output reaches: the content address must not move.
    extended = clean.clone()
    pis = extended.pis()
    a, b = pis[0], pis[-1]
    extended.add_maj(a, ~b, extended.add_maj(a, b, ~a))
    assert extended.fingerprint() == reference


@FAST
@given(mig=migs())
def test_fingerprint_sensitive_to_interface_and_function(mig):
    clean = mig.cleanup()[0]
    reference = clean.fingerprint()

    def rebuilt(pi_rename=None, po_rename=None, po_flip=False, drop_po=False):
        from repro.mig.signal import Signal

        new = Mig(name=clean.name)
        mapping = {0: Signal.CONST0}
        for pi in clean.pis():
            name = clean.pi_name(pi.node)
            mapping[pi.node] = new.add_pi(
                pi_rename.get(name, name) if pi_rename else name
            )
        for v in clean.topo_gates():
            a, b, c = clean.children(v)
            mapping[v] = new.add_maj(
                mapping[a.node].xor_inversion(a.inverted),
                mapping[b.node].xor_inversion(b.inverted),
                mapping[c.node].xor_inversion(c.inverted),
            )
        pos = list(zip(clean.pos(), clean.po_names()))
        if drop_po and len(pos) > 1:
            pos = pos[:-1]
        for index, (po, name) in enumerate(pos):
            signal = mapping[po.node].xor_inversion(po.inverted)
            if po_flip and index == 0:
                signal = ~signal
            new.add_po(signal, (po_rename or {}).get(name, name))
        return new

    first_pi = clean.pi_names()[0]
    assert rebuilt(pi_rename={first_pi: f"{first_pi}_renamed"}).fingerprint() != reference
    first_po = clean.po_names()[0]
    assert rebuilt(po_rename={first_po: f"{first_po}_renamed"}).fingerprint() != reference
    assert rebuilt(po_flip=True).fingerprint() != reference
    if clean.num_pos > 1:
        assert rebuilt(drop_po=True).fingerprint() != reference
