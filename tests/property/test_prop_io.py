"""Property-based roundtrip tests for every circuit file format."""

import io

from hypothesis import given, settings

from repro.mig.io_aiger import read_aiger, write_aiger
from repro.mig.io_blif import read_blif, write_blif
from repro.mig.io_mig import read_mig, write_mig
from repro.mig.simulate import truth_tables

from .strategies import migs

FAST = settings(max_examples=25, deadline=None)


def roundtrip(mig, writer, reader):
    buffer = io.StringIO()
    writer(mig, buffer)
    buffer.seek(0)
    return reader(buffer)


@FAST
@given(mig=migs(max_gates=15))
def test_mig_format_roundtrip(mig):
    back = roundtrip(mig, write_mig, read_mig)
    assert back.pi_names() == mig.pi_names()
    assert back.po_names() == mig.po_names()
    assert truth_tables(back) == truth_tables(mig)


@FAST
@given(mig=migs(max_gates=15))
def test_blif_roundtrip(mig):
    back = roundtrip(mig, write_blif, read_blif)
    assert truth_tables(back) == truth_tables(mig)


@FAST
@given(mig=migs(max_gates=15))
def test_aiger_roundtrip(mig):
    back = roundtrip(mig, write_aiger, read_aiger)
    assert truth_tables(back) == truth_tables(mig)


@FAST
@given(mig=migs(max_gates=15))
def test_mig_format_preserves_structure_exactly(mig):
    """The native format is lossless: same gate count and child order."""
    back = roundtrip(mig, write_mig, read_mig)
    assert back.num_gates == mig.num_gates
    old_gates = list(mig.gates())
    new_gates = list(back.gates())
    for old_v, new_v in zip(old_gates, new_gates):
        old_names = [mig.signal_name(s) for s in mig.children(old_v)]
        new_names = [back.signal_name(s) for s in back.children(new_v)]
        # gate identifiers differ (re-indexed) but PI/const/polarity
        # structure and order must survive
        for old_name, new_name in zip(old_names, new_names):
            if not old_name.lstrip("~").startswith("n"):
                assert old_name == new_name


@FAST
@given(mig=migs(max_gates=15))
def test_plim_program_roundtrip(mig):
    """Compiled programs survive .plim serialization byte-exactly."""
    from repro.core.pipeline import compile_mig
    from repro.plim.program import Program

    program = compile_mig(mig).program
    back = Program.from_text(program.to_text())
    assert [str(i) for i in back] == [str(i) for i in program]
    assert back.input_cells == program.input_cells
    assert back.output_cells == program.output_cells
    assert back.work_cells == program.work_cells
