"""Property-based tests of RM3 semantics and the RRAM allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import RramAllocator
from repro.plim.isa import rm3

from .strategies import packed_bits

FAST = settings(max_examples=60, deadline=None)


class TestRm3Identities:
    @FAST
    @given(a=packed_bits(), nb=packed_bits(), z=packed_bits())
    def test_symmetry_in_all_operands(self, a, nb, z):
        assert rm3(a, nb, z) == rm3(nb, a, z) == rm3(z, nb, a)

    @FAST
    @given(a=packed_bits(), nb=packed_bits(), z=packed_bits())
    def test_idempotent_reapplication(self, a, nb, z):
        """Writing the same RM3 twice equals writing it once (absorption)."""
        once = rm3(a, nb, z)
        assert rm3(a, nb, once) == once

    @FAST
    @given(a=packed_bits(), z=packed_bits())
    def test_equal_operands_decide(self, a, z):
        assert rm3(a, a, z) == a

    @FAST
    @given(a=packed_bits(), z=packed_bits())
    def test_complementary_operands_keep_z(self, a, z):
        mask = (1 << 64) - 1
        assert rm3(a, a ^ mask, z) & mask == z & mask

    @FAST
    @given(a=packed_bits(), nb=packed_bits(), z=packed_bits())
    def test_self_duality(self, a, nb, z):
        """⟨x̄ ȳ z̄⟩ = ¬⟨x y z⟩ — the Ω.I axiom at the bit level."""
        mask = (1 << 64) - 1
        lhs = rm3(a ^ mask, nb ^ mask, z ^ mask) & mask
        rhs = rm3(a, nb, z) ^ mask
        assert lhs == rhs & mask


alloc_ops = st.lists(
    st.tuples(st.sampled_from(["request", "release"]), st.integers(0, 7)),
    max_size=60,
)


class TestAllocatorProperties:
    @FAST
    @given(ops=alloc_ops, policy=st.sampled_from(["fifo", "lifo", "fresh"]))
    def test_no_double_allocation(self, ops, policy):
        """No address is handed out twice without an intervening release."""
        alloc = RramAllocator(policy=policy)
        held = []
        for op, index in ops:
            if op == "request":
                address = alloc.request()
                assert address not in held
                held.append(address)
            elif held:
                alloc.release(held.pop(index % len(held)))
        assert alloc.num_in_use == len(held)

    @FAST
    @given(ops=alloc_ops)
    def test_fresh_policy_monotone_addresses(self, ops):
        alloc = RramAllocator(policy="fresh", first_address=3)
        held = []
        last = 2
        for op, index in ops:
            if op == "request":
                address = alloc.request()
                assert address == last + 1
                last = address
                held.append(address)
            elif held:
                alloc.release(held.pop(index % len(held)))

    @FAST
    @given(count=st.integers(1, 20))
    def test_fifo_round_robin(self, count):
        """After releasing all cells, FIFO reuses each exactly once before
        any repeats — the endurance-spreading property."""
        alloc = RramAllocator(policy="fifo")
        cells = [alloc.request() for _ in range(count)]
        for cell in cells:
            alloc.release(cell)
        assert [alloc.request() for _ in range(count)] == cells

    @FAST
    @given(ops=alloc_ops, policy=st.sampled_from(["fifo", "lifo"]))
    def test_num_allocated_is_peak_concurrent(self, ops, policy):
        """With reuse, #R equals the high-water mark of cells in use."""
        alloc = RramAllocator(policy=policy)
        held = []
        peak = 0
        for op, index in ops:
            if op == "request":
                held.append(alloc.request())
                peak = max(peak, len(held))
            elif held:
                alloc.release(held.pop(index % len(held)))
        assert alloc.num_allocated == peak
