"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.mig.graph import Mig
from repro.mig.signal import Signal


@st.composite
def migs(draw, max_pis: int = 5, max_gates: int = 25, min_pis: int = 2):
    """Arbitrary well-formed MIGs with named PIs/POs."""
    num_pis = draw(st.integers(min_pis, max_pis))
    num_gates = draw(st.integers(1, max_gates))
    mig = Mig(name="prop")
    signals = [mig.add_pi(f"x{i}") for i in range(num_pis)]
    signals.append(Signal.CONST0)
    for _ in range(num_gates):
        picks = draw(
            st.lists(st.integers(0, len(signals) - 1), min_size=3, max_size=3)
        )
        flips = draw(st.lists(st.booleans(), min_size=3, max_size=3))
        children = [
            ~signals[i] if flip else signals[i] for i, flip in zip(picks, flips)
        ]
        signals.append(mig.add_maj(*children))
    num_pos = draw(st.integers(1, 3))
    for k in range(num_pos):
        index = draw(st.integers(0, len(signals) - 1))
        flip = draw(st.booleans())
        mig.add_po(~signals[index] if flip else signals[index], f"f{k}")
    return mig


def packed_bits(width: int = 64):
    """Packed evaluation words for bit-parallel identities."""
    return st.integers(0, (1 << width) - 1)
