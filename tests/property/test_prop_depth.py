"""Property-based differential tests for the depth rewriting engines.

Hypothesis generates arbitrary well-formed MIGs; on every one of them the
worklist depth engine must compute the same functions as the
``pass_associativity_depth`` rebuild oracle, reach a depth no worse than
the oracle's, and never grow beyond the cleaned input (the depth move is
size-neutral beyond Ω.A).  A second property checks the incremental level
table against a from-scratch recomputation after arbitrary local moves,
and a third drives the ``balanced`` multi-objective loop.
"""

from hypothesis import given, settings

from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.mig.algebra import try_associativity_depth
from repro.mig.analysis import depth, levels
from repro.mig.simulate import output_tables

from .strategies import migs

FAST = settings(max_examples=40, deadline=None)


@FAST
@given(mig=migs())
def test_depth_worklist_matches_oracle(mig):
    clean = mig.cleanup()[0]
    worklist = rewrite_for_plim(
        mig, RewriteOptions(engine="worklist", objective="depth")
    )
    oracle = rewrite_for_plim(
        mig, RewriteOptions(engine="rebuild", objective="depth")
    )
    assert output_tables(worklist) == output_tables(mig)
    assert output_tables(worklist) == output_tables(oracle)
    assert depth(worklist) <= depth(oracle)
    assert worklist.num_gates <= clean.num_gates


@FAST
@given(mig=migs())
def test_local_depth_moves_keep_levels_exact(mig):
    """Every committed local move keeps the incremental level table equal
    to a from-scratch recomputation and never raises the global depth."""
    work, _ = mig.rebuild()
    work.enable_inplace()
    work.enable_levels()
    before_tables = output_tables(work)
    before_depth = work.current_depth()
    fanouts = work.fanout_snapshot()
    for v in list(work.topo_gates()):
        if work.is_gate(v):
            try_associativity_depth(work, v, fanouts)
    fresh = levels(work)
    for v in work.topo_gates():
        assert work.level_of(v) == fresh[v]
    assert work.current_depth() <= before_depth
    assert output_tables(work) == before_tables


@FAST
@given(mig=migs())
def test_balanced_objective_function_preserving(mig):
    clean = mig.cleanup()[0]
    balanced = rewrite_for_plim(mig, RewriteOptions(objective="balanced"))
    assert output_tables(balanced) == output_tables(mig)
    assert balanced.num_gates <= clean.num_gates
