"""Property-based tests of the Ω algebra passes and MIG invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mig import algebra
from repro.mig.graph import Mig
from repro.mig.reorder import reorder_dfs, shuffle_topological
from repro.mig.signal import Signal
from repro.mig.simulate import truth_tables

from .strategies import migs

FAST = settings(max_examples=40, deadline=None)

PASSES = [
    algebra.pass_majority,
    algebra.pass_commutativity,
    algebra.pass_distributivity_rl,
    algebra.pass_distributivity_lr,
    algebra.pass_associativity,
    algebra.pass_push_inverters,
]


@FAST
@given(mig=migs(), pass_index=st.integers(0, len(PASSES) - 1))
def test_every_pass_preserves_all_outputs(mig, pass_index):
    assert truth_tables(PASSES[pass_index](mig)) == truth_tables(mig)


@FAST
@given(mig=migs())
def test_size_passes_never_grow(mig):
    baseline = mig.cleanup()[0].num_gates
    for pass_fn in (
        algebra.pass_majority,
        algebra.pass_commutativity,
        algebra.pass_distributivity_rl,
        algebra.pass_associativity,
    ):
        assert pass_fn(mig).num_gates <= baseline


@FAST
@given(mig=migs())
def test_push_inverters_removes_multi_complements(mig):
    result = algebra.pass_push_inverters(mig)
    for v in result.gates():
        inverted = sum(
            1 for s in result.children(v) if s.inverted and not s.is_const
        )
        assert inverted <= 1


@FAST
@given(mig=migs(), seed=st.integers(0, 2**16))
def test_reorderings_preserve_function(mig, seed):
    assert truth_tables(shuffle_topological(mig, seed)) == truth_tables(mig)
    assert truth_tables(reorder_dfs(mig)) == truth_tables(mig)


@FAST
@given(
    values=st.lists(st.integers(0, 1), min_size=3, max_size=3),
    flips=st.lists(st.booleans(), min_size=3, max_size=3),
)
def test_add_maj_agrees_with_boolean_majority(values, flips):
    """Construction-time simplification never changes the function."""
    mig = Mig()
    pis = [mig.add_pi(f"x{i}") for i in range(3)]
    children = [~pis[i] if flips[i] else pis[i] for i in range(3)]
    mig.add_po(mig.add_maj(*children), "f")
    from repro.mig.simulate import evaluate

    out = evaluate(mig, {f"x{i}": values[i] for i in range(3)})
    literals = [values[i] ^ flips[i] for i in range(3)]
    assert out["f"] == int(sum(literals) >= 2)


@FAST
@given(mig=migs())
def test_strash_no_duplicate_gate_structures(mig):
    seen = set()
    for v in mig.gates():
        key = tuple(sorted(int(s) for s in mig.children(v)))
        assert key not in seen
        seen.add(key)


@FAST
@given(mig=migs())
def test_children_always_precede_parents(mig):
    for v in mig.gates():
        for child in mig.children(v):
            assert child.node < v
