"""Property: the server is a pure transport over ``compile_mig``.

For arbitrary circuits and option combinations, a ``POST /compile``
response must be *equivalence-identical* to running the library pipeline
directly with the same options: same counts, same rewritten graph text,
same program text.  Anything else means the serving layer grew compiler
behavior of its own — the one thing it must never do.
"""

from __future__ import annotations

import asyncio
import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import compile_mig
from repro.serve.app import PlimServer, ServerConfig
from repro.serve.protocol import Request, canonical_json
from repro.serve.worker import build_record, request_option_sets
from repro.mig.io_mig import read_mig, write_mig

from .strategies import migs

FAST = settings(max_examples=15, deadline=None)

option_sets = st.fixed_dictionaries(
    {},
    optional={
        "rewrite": st.booleans(),
        "effort": st.integers(1, 3),
        "engine": st.sampled_from(["worklist", "rebuild"]),
        "objective": st.sampled_from(["size", "depth", "balanced"]),
    },
)


@FAST
@given(mig=migs(max_gates=15), options=option_sets)
def test_server_response_equals_direct_compile(mig, options):
    buf = io.StringIO()
    write_mig(mig, buf)
    payload = {"circuit": buf.getvalue(), "format": "mig", "options": options}

    app = PlimServer(ServerConfig())
    response = asyncio.run(
        app.handle(Request("POST", "/compile", canonical_json(payload)))
    )
    assert response.status == 200, response.body
    served = response.json()

    # the ground truth: the pipeline run directly on the same parse with
    # the same normalized options
    from repro.serve.protocol import compile_options

    normalized = compile_options({"options": options})
    parsed = read_mig(io.StringIO(payload["circuit"]))
    ropts, copts = request_option_sets(normalized)
    direct = build_record(
        parsed.name,
        compile_mig(
            parsed,
            rewrite=normalized["rewrite"],
            rewrite_options=ropts,
            compiler_options=copts,
        ),
    )

    assert served["num_gates"] == direct["num_gates"]
    assert served["num_instructions"] == direct["num_instructions"]
    assert served["num_rrams"] == direct["num_rrams"]
    assert served["mig"] == direct["mig"]
    assert served["program"] == direct["program"]
    # the timing fields are wall-clock (nondeterministic); compare the
    # records with them normalized away, after checking shape
    timing_fields = (
        "rewrite_seconds", "schedule_seconds", "translate_seconds",
        "verify_seconds",
    )
    for record in (served, direct):
        for fld in timing_fields:
            value = record.pop(fld)
            assert isinstance(value, float) and value >= 0.0, (fld, value)
    served.pop("cached")
    assert served == direct
