"""Unit tests for repro.utils.bits."""

import pytest

from repro.utils.bits import (
    bit_length_of_mask,
    bits_of,
    from_bits,
    full_mask,
    pattern_mask,
    popcount,
)


class TestFullMask:
    def test_zero_width(self):
        assert full_mask(0) == 0

    def test_small_widths(self):
        assert full_mask(1) == 1
        assert full_mask(4) == 0b1111
        assert full_mask(8) == 255

    def test_large_width(self):
        assert full_mask(200) == (1 << 200) - 1

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            full_mask(-1)


class TestPatternMask:
    def test_three_variables(self):
        assert pattern_mask(0, 3) == 0b10101010
        assert pattern_mask(1, 3) == 0b11001100
        assert pattern_mask(2, 3) == 0b11110000

    def test_single_variable(self):
        assert pattern_mask(0, 1) == 0b10

    def test_columns_enumerate_all_patterns(self):
        n = 4
        masks = [pattern_mask(i, n) for i in range(n)]
        seen = set()
        for p in range(1 << n):
            pattern = tuple((m >> p) & 1 for m in masks)
            seen.add(pattern)
        assert len(seen) == 1 << n

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pattern_mask(3, 3)
        with pytest.raises(ValueError):
            pattern_mask(-1, 3)


class TestPopcount:
    def test_values(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(full_mask(100)) == 100

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)


class TestBitsRoundtrip:
    def test_bits_of(self):
        assert bits_of(6, 4) == [0, 1, 1, 0]

    def test_from_bits(self):
        assert from_bits([0, 1, 1, 0]) == 6

    def test_roundtrip(self):
        for value in (0, 1, 5, 1023, 2**40 + 17):
            width = max(1, value.bit_length())
            assert from_bits(bits_of(value, width)) == value

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            from_bits([0, 2, 1])

    def test_truncation(self):
        assert bits_of(0b111, 2) == [1, 1]


def test_bit_length_of_mask():
    assert bit_length_of_mask(full_mask(7)) == 7
    assert bit_length_of_mask(0) == 0
