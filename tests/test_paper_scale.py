"""Paper-scale smoke tests (marked slow; deselect with -m "not slow").

A handful of full-size Table 1 circuits through the complete pipeline with
randomized machine verification — evidence that the stack holds at the
paper's problem sizes, not just at CI scale.
"""

import pytest

from repro.circuits.registry import benchmark_info, build
from repro.core.compiler import CompilerOptions
from repro.core.pipeline import compile_mig
from repro.plim.verify import verify_program

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("name", ["adder", "bar", "sin", "priority"])
def test_paper_scale_pipeline(name):
    info = benchmark_info(name)
    mig = build(name, "paper")
    assert (mig.num_pis, mig.num_pos) == (info.paper.pi, info.paper.po)
    result = compile_mig(
        mig, compiler_options=CompilerOptions(fix_output_polarity=False)
    )
    # The compiled program must be in the paper's order of magnitude.
    assert 0.2 * info.paper.full_i <= result.num_instructions <= 5 * info.paper.full_i
    check = verify_program(
        mig, result.program, num_random_rounds=1, patterns_per_round=64
    )
    assert check.ok


def test_paper_scale_voter_headline():
    """voter at full scale: 1001 inputs, single output, large #R win."""
    from repro.core.compiler import PlimCompiler

    mig = build("voter", "paper")
    naive = PlimCompiler(CompilerOptions.naive(fix_output_polarity=False)).compile(mig)
    smart = compile_mig(
        mig, compiler_options=CompilerOptions(fix_output_polarity=False)
    ).program
    assert smart.num_instructions < 0.7 * naive.num_instructions
    assert verify_program(mig, smart, num_random_rounds=1, patterns_per_round=32).ok
