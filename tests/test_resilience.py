"""The fault-tolerant execution engine (``repro.core.resilience``).

The fault-injection tests here are real, not mocked: ``Fault("exit")``
genuinely ``os._exit``\\ s a pool worker mid-task and the supervisor must
recover, ``Fault("sleep")`` genuinely blows a deadline and the worker is
killed.  The acceptance bar (ISSUE 7): a crashed worker loses only its
own task under ``on_error="skip"`` (all other results byte-identical to
a clean run), a hung task is cancelled at ``timeout_s``, and results
arrive in input order for any worker count and fault pattern.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.core.resilience import (
    Fault,
    FaultPlan,
    InjectedFault,
    TaskError,
    TaskFailure,
    TaskPolicy,
    run_tasks,
    split_failures,
)
from repro.errors import ReproError

POOL = 2  # pooled-path worker count (works on any CPU count)


def _square(x):
    return x * x


def _fail_on_negative(x):
    if x < 0:
        raise ValueError(f"negative input {x}")
    return x * x


class Unpicklable(Exception):
    def __init__(self, handle):
        super().__init__("carries a live handle")
        self.handle = handle

    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


def _raise_unpicklable(x):
    raise Unpicklable(object())


def _return_unpicklable(x):
    return lambda: x  # lambdas don't pickle


class TestTaskPolicy:
    def test_defaults(self):
        policy = TaskPolicy()
        assert policy.timeout_s is None
        assert policy.retries == 0
        assert policy.on_error == "raise"

    @pytest.mark.parametrize("kwargs", [
        {"timeout_s": 0}, {"timeout_s": -1.5},
        {"retries": -1}, {"retries": 1.5},
        {"backoff": -0.1},
        {"on_error": "ignore"}, {"on_error": ""},
    ])
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ReproError):
            TaskPolicy(**kwargs)

    def test_retry_delay_is_exponential(self):
        policy = TaskPolicy(backoff=0.5)
        assert [policy.retry_delay(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]
        assert TaskPolicy(backoff=0).retry_delay(3) == 0.0


class TestTaskFailure:
    def test_dict_roundtrip(self):
        failure = TaskFailure(3, "timeout", "too slow", attempts=2)
        assert TaskFailure.from_dict(failure.to_dict()) == failure

    def test_repr_mentions_what_failed(self):
        failure = TaskFailure(7, "error", "boom", error_type="ValueError")
        text = repr(failure)
        assert "#7" in text and "ValueError" in text and "boom" in text


class TestFaultPlan:
    def test_invalid_kind_raises(self):
        with pytest.raises(ReproError):
            Fault("oom")

    def test_fires_on_listed_attempts_only(self):
        fault = Fault("raise", attempts=(1, 3))
        assert fault.fires(1) and not fault.fires(2) and fault.fires(3)
        assert Fault("raise", attempts=()).fires(99)  # empty = every attempt

    def test_scoped_phases(self):
        plan = FaultPlan(
            {0: Fault("raise")}, phases={"chain": {2: Fault("exit")}}
        )
        assert plan.fault_for(0, 1) is not None
        assert plan.fault_for(2, 1) is None  # phase faults need scoping
        chain = plan.scoped("chain")
        assert chain.fault_for(2, 1).kind == "exit"
        assert not plan.scoped("nonexistent")
        assert bool(plan) and bool(chain)
        assert not FaultPlan()


class TestInlinePath:
    """workers=1 — same policy semantics, no real processes."""

    def test_plain_map(self):
        assert run_tasks(_square, [1, 2, 3], workers=1) == [1, 4, 9]
        assert run_tasks(_square, [], workers=1) == []

    def test_raise_mode_reraises_the_original_exception(self):
        with pytest.raises(ValueError, match="negative input -2"):
            run_tasks(_fail_on_negative, [1, -2, 3], workers=1)

    def test_skip_mode_records_the_failure_in_place(self):
        out = run_tasks(
            _fail_on_negative, [1, -2, 3], workers=1,
            policy=TaskPolicy(on_error="skip"),
        )
        assert out[0] == 1 and out[2] == 9
        assert isinstance(out[1], TaskFailure)
        assert out[1].index == 1 and out[1].kind == "error"
        assert out[1].error_type == "ValueError"

    def test_retry_recovers_a_transient_fault(self):
        plan = FaultPlan({1: Fault("raise", attempts=(1,))})
        out = run_tasks(
            _square, [1, 2, 3], workers=1,
            policy=TaskPolicy(retries=1, backoff=0), fault_plan=plan,
        )
        assert out == [1, 4, 9]

    def test_injected_exit_becomes_a_crash_record_not_driver_death(self):
        plan = FaultPlan({0: Fault("exit")})
        out = run_tasks(
            _square, [5], workers=1,
            policy=TaskPolicy(on_error="skip"), fault_plan=plan,
        )
        assert isinstance(out[0], TaskFailure) and out[0].kind == "crash"

    def test_degrade_retries_worker_only_faults_inline(self):
        # worker_only=False → the fault also fires inline; the degrade
        # attempt fires it again (attempts=()) so the failure stands
        always = FaultPlan({0: Fault("raise", attempts=())})
        out = run_tasks(
            _square, [3], workers=1,
            policy=TaskPolicy(on_error="degrade"), fault_plan=always,
        )
        assert isinstance(out[0], TaskFailure)
        # fault limited to attempt 1 → the degrade attempt (attempt 2) runs clean
        once = FaultPlan({0: Fault("raise", attempts=(1,))})
        out = run_tasks(
            _square, [3], workers=1,
            policy=TaskPolicy(on_error="degrade"), fault_plan=once,
        )
        assert out == [9]


class TestPooledPath:
    """Real worker processes, real crashes, real deadlines."""

    def test_plain_map_matches_inline(self):
        items = list(range(10))
        assert run_tasks(_square, items, workers=POOL) == [x * x for x in items]

    def test_worker_crash_loses_only_that_task(self):
        """ISSUE 7 acceptance: os._exit mid-run costs exactly one slot and
        every surviving result is byte-identical to a clean run."""
        items = list(range(8))
        clean = run_tasks(_square, items, workers=POOL)
        plan = FaultPlan({3: Fault("exit")})
        out = run_tasks(
            _square, items, workers=POOL,
            policy=TaskPolicy(on_error="skip"), fault_plan=plan,
        )
        assert isinstance(out[3], TaskFailure)
        assert out[3].kind == "crash" and out[3].index == 3
        for i in range(len(items)):
            if i != 3:
                assert pickle.dumps(out[i]) == pickle.dumps(clean[i])

    def test_crash_then_retry_recovers(self):
        plan = FaultPlan({2: Fault("exit", attempts=(1,))})
        out = run_tasks(
            _square, list(range(6)), workers=POOL,
            policy=TaskPolicy(retries=1, backoff=0), fault_plan=plan,
        )
        assert out == [x * x for x in range(6)]

    def test_crash_under_raise_mode_raises_task_error(self):
        plan = FaultPlan({1: Fault("exit")})
        with pytest.raises(TaskError) as excinfo:
            run_tasks(_square, list(range(4)), workers=POOL, fault_plan=plan)
        assert excinfo.value.failure.kind == "crash"
        assert excinfo.value.failure.index == 1

    def test_hung_task_is_cancelled_at_the_deadline(self):
        """ISSUE 7 acceptance: a task sleeping far past ``timeout_s`` is
        killed at the deadline, not awaited."""
        plan = FaultPlan({1: Fault("sleep", seconds=60)})
        start = time.monotonic()
        out = run_tasks(
            _square, list(range(4)), workers=POOL,
            policy=TaskPolicy(timeout_s=1.0, on_error="skip"),
            fault_plan=plan,
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30, f"deadline not enforced ({elapsed:.1f}s)"
        assert isinstance(out[1], TaskFailure) and out[1].kind == "timeout"
        assert [out[0], out[2], out[3]] == [0, 4, 9]

    def test_task_exception_reraises_original_type(self):
        with pytest.raises(ValueError, match="negative input -7"):
            run_tasks(_fail_on_negative, [1, -7, 2, 3], workers=POOL)

    def test_unpicklable_exception_still_reports_cleanly(self):
        out = run_tasks(
            _raise_unpicklable, [1, 2], workers=POOL,
            policy=TaskPolicy(on_error="skip"),
        )
        assert all(isinstance(o, TaskFailure) for o in out)
        assert out[0].error_type == "Unpicklable"

    def test_unpicklable_result_is_an_error_not_a_crash(self):
        out = run_tasks(
            _return_unpicklable, [1], workers=POOL,
            policy=TaskPolicy(on_error="skip"),
        )
        # single item runs inline; force the pooled path with two
        out = run_tasks(
            _return_unpicklable, [1, 2], workers=POOL,
            policy=TaskPolicy(on_error="skip"),
        )
        assert all(isinstance(o, TaskFailure) for o in out)
        assert all(o.kind == "error" for o in out)
        assert "pickle" in out[0].message

    def test_order_is_input_order_for_any_worker_count(self):
        items = list(range(12))
        plan = FaultPlan({5: Fault("exit")})
        expected = None
        for workers in (2, 3, 4):
            out = run_tasks(
                _square, items, workers=workers,
                policy=TaskPolicy(on_error="skip"), fault_plan=plan,
            )
            key = [
                ("fail", o.index, o.kind) if isinstance(o, TaskFailure) else o
                for o in out
            ]
            if expected is None:
                expected = key
            assert key == expected

    def test_degrade_recovers_worker_only_faults(self):
        # the fault fires on every pooled attempt but never inline, so
        # only the degrade disposition's in-driver attempt can succeed
        plan = FaultPlan({1: Fault("raise", attempts=(), worker_only=True)})
        out = run_tasks(
            _square, [1, 2, 3], workers=POOL,
            policy=TaskPolicy(on_error="degrade"), fault_plan=plan,
        )
        assert out == [1, 4, 9]


class TestSplitFailures:
    def test_partitions_in_order(self):
        out = run_tasks(
            _fail_on_negative, [1, -2, 3, -4], workers=1,
            policy=TaskPolicy(on_error="skip"),
        )
        results, failures = split_failures(out)
        assert results == [1, 9]
        assert [f.index for f in failures] == [1, 3]


class TestInjectedFaultTypes:
    def test_raise_fault_raises_injected_fault(self):
        with pytest.raises(InjectedFault, match="injected fault"):
            Fault("raise").apply(in_worker=False)

    def test_worker_only_fault_is_inert_inline(self):
        Fault("raise", worker_only=True).apply(in_worker=False)  # no raise
