"""Binary AIGER (``aig``) reader/writer tests.

The binary flavour shares the literal assignment and the MIG↔AND bridge
with the ASCII writer, so the regression of record is: for the same MIG,
the binary round-trip and the ASCII round-trip land on the *same* graph
(fingerprint-identical), not merely equivalent ones.
"""

import io

import pytest

from repro.circuits.registry import build
from repro.errors import ParseError
from repro.mig.equivalence import equivalent
from repro.mig.graph import Mig
from repro.mig.io_aiger import read_aiger, write_aiger
from repro.mig.simulate import output_tables, truth_tables

from conftest import random_mig


def binary_roundtrip(mig: Mig) -> Mig:
    buffer = io.BytesIO()
    write_aiger(mig, buffer, binary=True)
    buffer.seek(0)
    return read_aiger(buffer)


def ascii_roundtrip(mig: Mig) -> Mig:
    buffer = io.StringIO()
    write_aiger(mig, buffer)
    buffer.seek(0)
    return read_aiger(buffer)


class TestBinaryRoundtrip:
    @pytest.mark.parametrize("seed", range(6))
    def test_function_preserved(self, seed):
        mig = random_mig(seed, num_pis=4, num_gates=15)
        back = binary_roundtrip(mig)
        assert truth_tables(back) == truth_tables(mig)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_ascii_writer_exactly(self, seed):
        """Both flavours decode to the identical graph, gate for gate."""
        mig = random_mig(seed, num_pis=4, num_gates=15)
        assert binary_roundtrip(mig).fingerprint() == ascii_roundtrip(mig).fingerprint()

    def test_interface_preserved(self):
        mig = random_mig(2, num_pis=3, num_gates=8)
        back = binary_roundtrip(mig)
        assert back.pi_names() == mig.pi_names()
        assert back.po_names() == mig.po_names()

    @pytest.mark.parametrize("name", ["ctrl", "int2float", "router"])
    def test_registry_circuits(self, name):
        mig = build(name, "ci")
        back = binary_roundtrip(mig)
        assert equivalent(back, mig)
        assert binary_roundtrip(mig).fingerprint() == ascii_roundtrip(mig).fingerprint()

    def test_rewritten_graph_writes_cleanly(self):
        """A worklist-rewritten (non-append-clean) MIG serializes fine —
        the literal assignment walks ``topo_gates``, not raw slot order."""
        from repro.core.rewriting import RewriteOptions, rewrite_for_plim

        mig = rewrite_for_plim(build("cavlc", "ci"), RewriteOptions(effort=1))
        back = binary_roundtrip(mig)
        assert equivalent(back, mig)

    def test_binary_is_smaller(self):
        mig = build("voter", "ci")
        ascii_buf, binary_buf = io.StringIO(), io.BytesIO()
        write_aiger(mig, ascii_buf)
        write_aiger(mig, binary_buf, binary=True)
        assert len(binary_buf.getvalue()) < len(ascii_buf.getvalue().encode())


class TestPathInference:
    def test_aig_extension_writes_binary(self, tmp_path):
        mig = random_mig(0, num_pis=3, num_gates=6)
        target = tmp_path / "circuit.aig"
        write_aiger(mig, target)
        assert target.read_bytes().startswith(b"aig ")
        assert truth_tables(read_aiger(target)) == truth_tables(mig)

    def test_aag_extension_writes_ascii(self, tmp_path):
        mig = random_mig(0, num_pis=3, num_gates=6)
        target = tmp_path / "circuit.aag"
        write_aiger(mig, target)
        assert target.read_bytes().startswith(b"aag ")
        assert truth_tables(read_aiger(target)) == truth_tables(mig)

    def test_explicit_override_beats_extension(self, tmp_path):
        mig = random_mig(0, num_pis=3, num_gates=6)
        target = tmp_path / "circuit.aag"
        write_aiger(mig, target, binary=True)
        assert target.read_bytes().startswith(b"aig ")
        assert truth_tables(read_aiger(target)) == truth_tables(mig)


class TestKnownVectors:
    def test_minimal_and_gate(self):
        # aig 3 2 0 1 1 ; output 6 ; AND 6 = 4 & 2 → deltas (2, 2)
        mig = read_aiger(io.BytesIO(b"aig 3 2 0 1 1\n6\n\x02\x02"))
        assert (mig.num_pis, mig.num_pos) == (2, 1)
        assert output_tables(mig) == [0b1000]

    def test_multi_byte_delta(self):
        # 200 ANDs chained: the last deltas exceed 127 and need two bytes.
        mig = random_mig(3, num_pis=5, num_gates=80)
        buffer = io.BytesIO()
        write_aiger(mig, buffer, binary=True)
        payload = buffer.getvalue()
        assert any(b & 0x80 for b in payload.split(b"\n", 1)[1])  # continuation bits present
        buffer.seek(0)
        assert truth_tables(read_aiger(buffer)) == truth_tables(mig)

    def test_symbol_table_read(self):
        data = b"aig 3 2 0 1 1\n6\n\x02\x02i0 alpha\ni1 beta\no0 out\n"
        mig = read_aiger(io.BytesIO(data))
        assert mig.pi_names() == ["alpha", "beta"]
        assert mig.po_names() == ["out"]


class TestBinaryErrors:
    def test_latches_rejected(self):
        with pytest.raises(ParseError, match="latches"):
            read_aiger(io.BytesIO(b"aig 2 1 1 0 0\n"))

    def test_header_invariant_enforced(self):
        with pytest.raises(ParseError, match="M = I \\+ L \\+ A"):
            read_aiger(io.BytesIO(b"aig 5 2 0 1 2\n"))

    def test_truncated_header(self):
        with pytest.raises(ParseError, match="truncated"):
            read_aiger(io.BytesIO(b"aig 1 1 0 0 0"))

    def test_truncated_output_section(self):
        with pytest.raises(ParseError, match="truncated output"):
            read_aiger(io.BytesIO(b"aig 1 1 0 1 0\n"))

    def test_non_numeric_output(self):
        with pytest.raises(ParseError, match="non-numeric output"):
            read_aiger(io.BytesIO(b"aig 1 1 0 1 0\nxyz\n"))

    def test_truncated_delta_stream(self):
        # continuation bit set, then the file ends
        with pytest.raises(ParseError, match="truncated delta"):
            read_aiger(io.BytesIO(b"aig 2 1 0 1 1\n4\n\x80"))

    def test_delta_underflow(self):
        # lhs=4: delta0=1 → rhs0=3, delta1=4 → rhs1=-1
        with pytest.raises(ParseError, match="underflow"):
            read_aiger(io.BytesIO(b"aig 2 1 0 1 1\n4\n\x01\x04"))

    def test_bad_magic(self):
        with pytest.raises(ParseError):
            read_aiger(io.BytesIO(b"axg 1 1 0 1 0\n2\n"))
