"""Unit tests for repro.core.allocator (§4.2.3 RRAM allocation)."""

import pytest

from repro.core.allocator import RramAllocator
from repro.errors import AllocationError


class TestBasics:
    def test_fresh_addresses_sequential(self):
        alloc = RramAllocator(first_address=10)
        assert [alloc.request() for _ in range(3)] == [10, 11, 12]

    def test_num_allocated_counts_distinct(self):
        alloc = RramAllocator()
        a = alloc.request()
        alloc.release(a)
        b = alloc.request()  # reuses a
        assert a == b
        assert alloc.num_allocated == 1

    def test_in_use_and_free_counts(self):
        alloc = RramAllocator()
        a, b = alloc.request(), alloc.request()
        alloc.release(a)
        assert alloc.num_in_use == 1
        assert alloc.num_free == 1
        assert alloc.is_allocated(b)
        assert not alloc.is_allocated(a)

    def test_double_free_rejected(self):
        alloc = RramAllocator()
        a = alloc.request()
        alloc.release(a)
        with pytest.raises(AllocationError):
            alloc.release(a)

    def test_foreign_release_rejected(self):
        alloc = RramAllocator()
        with pytest.raises(AllocationError):
            alloc.release(3)

    def test_invalid_config(self):
        with pytest.raises(AllocationError):
            RramAllocator(policy="random")
        with pytest.raises(AllocationError):
            RramAllocator(first_address=-1)

    def test_allocated_addresses_order(self):
        alloc = RramAllocator(first_address=5)
        alloc.request()
        alloc.request()
        assert alloc.allocated_addresses == [5, 6]


class TestPolicies:
    def test_fifo_returns_oldest_released(self):
        alloc = RramAllocator(policy="fifo")
        a, b, c = (alloc.request() for _ in range(3))
        alloc.release(b)
        alloc.release(a)
        alloc.release(c)
        assert alloc.request() == b  # oldest released first
        assert alloc.request() == a
        assert alloc.request() == c

    def test_lifo_returns_newest_released(self):
        alloc = RramAllocator(policy="lifo")
        a, b, c = (alloc.request() for _ in range(3))
        alloc.release(b)
        alloc.release(a)
        alloc.release(c)
        assert alloc.request() == c
        assert alloc.request() == a
        assert alloc.request() == b

    def test_fresh_never_reuses(self):
        alloc = RramAllocator(policy="fresh")
        a = alloc.request()
        alloc.release(a)
        assert alloc.request() == a + 1
        assert alloc.num_allocated == 2

    def test_fifo_spreads_reuse(self):
        """Round-robin behaviour: k cells cycling through the free list."""
        alloc = RramAllocator(policy="fifo")
        cells = [alloc.request() for _ in range(4)]
        for c in cells:
            alloc.release(c)
        order = [alloc.request() for _ in range(4)]
        assert order == cells  # every cell reused once before any repeats

    def test_repr(self):
        alloc = RramAllocator()
        alloc.request()
        assert "policy=fifo" in repr(alloc)
