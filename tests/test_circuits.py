"""Functional tests for the EPFL benchmark generators.

Exact-function circuits are checked against Python reference models over
many random (plus corner-case) inputs using bit-parallel simulation;
same-family circuits (sin, log2) against ``math`` with precision-derived
tolerances; surrogates for determinism and calibrated size.
"""

import math
import random

import pytest

from repro.circuits import arithmetic, control, cordic, divider, random_control
from repro.mig.simulate import evaluate, simulate, truth_tables

from conftest import read_word, word_assignment


def random_cases(count, width, seed):
    rng = random.Random(seed)
    top = (1 << width) - 1
    values = [0, 1, top]
    values += [rng.randint(0, top) for _ in range(count)]
    return values


class TestAdder:
    def test_signature(self):
        mig = arithmetic.make_adder(bits=128)
        assert (mig.num_pis, mig.num_pos) == (256, 129)

    def test_exhaustive_small(self):
        mig = arithmetic.make_adder(bits=3)
        for a in range(8):
            for b in range(8):
                out = evaluate(
                    mig, word_assignment("a", a, 3) | word_assignment("b", b, 3)
                )
                assert read_word(out, "s", 3) | (out["cout"] << 3) == a + b

    def test_random_wide(self):
        mig = arithmetic.make_adder(bits=32)
        for a in random_cases(8, 32, 1):
            for b in random_cases(2, 32, a):
                out = evaluate(
                    mig, word_assignment("a", a, 32) | word_assignment("b", b, 32)
                )
                assert read_word(out, "s", 32) | (out["cout"] << 32) == a + b


class TestBar:
    def test_signature(self):
        mig = arithmetic.make_bar(bits=128)
        assert (mig.num_pis, mig.num_pos) == (135, 128)

    @pytest.mark.parametrize("shift", range(8))
    def test_rotation(self, shift):
        mig = arithmetic.make_bar(bits=8)
        x = 0b11010010
        out = evaluate(
            mig, word_assignment("d", x, 8) | word_assignment("s", shift, 3)
        )
        expected = ((x << shift) | (x >> (8 - shift))) & 0xFF if shift else x
        assert read_word(out, "q", 8) == expected


class TestMax:
    def test_signature(self):
        mig = arithmetic.make_max(bits=128)
        assert (mig.num_pis, mig.num_pos) == (512, 130)

    def test_values_and_index(self):
        mig = arithmetic.make_max(bits=6)
        rng = random.Random(3)
        for _ in range(12):
            words = [rng.randint(0, 63) for _ in range(4)]
            assignment = {}
            for k, value in enumerate(words):
                assignment |= word_assignment(f"w{k}_", value, 6)
            out = evaluate(mig, assignment)
            assert read_word(out, "m", 6) == max(words)
            index = out["idx0"] | (out["idx1"] << 1)
            assert words[index] == max(words)

    def test_wrong_word_count_rejected(self):
        with pytest.raises(ValueError):
            arithmetic.make_max(bits=8, words=3)


class TestMultiplierSquare:
    def test_signatures(self):
        assert arithmetic.make_multiplier(bits=64).num_pis == 128
        assert arithmetic.make_square(bits=64).num_pos == 128

    def test_multiplier_values(self):
        mig = arithmetic.make_multiplier(bits=7)
        for a in random_cases(6, 7, 5):
            for b in random_cases(2, 7, a + 1):
                out = evaluate(
                    mig, word_assignment("a", a, 7) | word_assignment("b", b, 7)
                )
                assert read_word(out, "p", 14) == a * b

    def test_square_values(self):
        mig = arithmetic.make_square(bits=7)
        for a in random_cases(10, 7, 6):
            out = evaluate(mig, word_assignment("a", a, 7))
            assert read_word(out, "p", 14) == a * a


class TestDivSqrt:
    def test_signatures(self):
        assert divider.make_div(bits=64).num_pis == 128
        assert divider.make_sqrt(bits=128).num_pos == 64

    def test_div_values(self):
        mig = divider.make_div(bits=6)
        rng = random.Random(9)
        cases = [(13, 3), (63, 1), (5, 7), (42, 6)]
        cases += [(rng.randint(0, 63), rng.randint(1, 63)) for _ in range(10)]
        for n, d in cases:
            out = evaluate(
                mig, word_assignment("n", n, 6) | word_assignment("d", d, 6)
            )
            assert read_word(out, "q", 6) == n // d
            assert read_word(out, "r", 6) == n % d

    def test_sqrt_values(self):
        mig = divider.make_sqrt(bits=10)
        for x in random_cases(14, 10, 11):
            out = evaluate(mig, word_assignment("x", x, 10))
            assert read_word(out, "rt", 5) == math.isqrt(x)


class TestSin:
    def test_signature(self):
        mig = cordic.make_sin(bits=24)
        assert (mig.num_pis, mig.num_pos) == (24, 25)

    def test_accuracy(self):
        bits, iters = 12, 10
        mig = cordic.make_sin(bits=bits, iterations=iters)
        scale = 1 << (bits - 1)
        for theta in random_cases(10, bits, 13):
            out = evaluate(mig, word_assignment("a", theta, bits))
            raw = read_word(out, "s", bits + 1)
            if raw >= 1 << bits:  # sign-extend the (bits+1)-wide output
                raw -= 1 << (bits + 1)
            angle = theta / (1 << bits) * math.pi / 2
            expected = math.sin(angle) * scale
            # CORDIC converges ~1 bit/iteration plus rounding slack.
            tolerance = scale * (2 ** -(iters - 1)) + 4
            assert abs(raw - expected) <= tolerance


class TestLog2:
    def test_signature(self):
        mig = cordic.make_log2(bits=32)
        assert (mig.num_pis, mig.num_pos) == (32, 32)

    def test_integer_part_exact(self):
        mig = cordic.make_log2(bits=8, frac_bits=4, mantissa_bits=6)
        for x in [1, 2, 3, 8, 100, 255]:
            out = evaluate(mig, word_assignment("x", x, 8))
            exponent = read_word(out, "e", 3)
            assert exponent == x.bit_length() - 1

    def test_fraction_accuracy(self):
        frac, mant = 5, 8
        mig = cordic.make_log2(bits=8, frac_bits=frac, mantissa_bits=mant)
        for x in [3, 7, 100, 201, 255]:
            out = evaluate(mig, word_assignment("x", x, 8))
            got = read_word(out, "e", 3) + read_word(out, "f", frac) / (1 << frac)
            # truncation error: 2^-frac plus mantissa truncation noise
            assert abs(got - math.log2(x)) <= 2 ** -frac + 2 ** -(mant - 3)

    def test_zero_input(self):
        mig = cordic.make_log2(bits=8, frac_bits=4, mantissa_bits=6)
        out = evaluate(mig, word_assignment("x", 0, 8))
        assert all(v == 0 for v in out.values())


class TestDec:
    def test_signature(self):
        mig = control.make_dec(bits=8)
        assert (mig.num_pis, mig.num_pos) == (8, 256)

    def test_one_hot_exhaustive(self):
        mig = control.make_dec(bits=4)
        tables = truth_tables(mig)
        for k in range(16):
            assert tables[f"y{k}"] == 1 << k


class TestPriority:
    def test_signature(self):
        mig = control.make_priority(bits=128)
        assert (mig.num_pis, mig.num_pos) == (128, 8)

    def test_highest_wins(self):
        mig = control.make_priority(bits=16)
        rng = random.Random(17)
        for _ in range(12):
            x = rng.getrandbits(16)
            out = evaluate(mig, word_assignment("r", x, 16))
            assert out["valid"] == int(x != 0)
            if x:
                assert read_word(out, "y", 4) == x.bit_length() - 1


class TestInt2Float:
    def test_signature(self):
        mig = control.make_int2float()
        assert (mig.num_pis, mig.num_pos) == (11, 7)

    @staticmethod
    def reference(x, bits=11, exp_bits=3, mant_bits=3):
        sign = (x >> (bits - 1)) & 1
        magnitude = (-x if sign else x) % (1 << (bits - 1))
        if magnitude == 0:
            return sign, 0, 0
        exponent = magnitude.bit_length() - 1
        mantissa = 0
        for j in range(mant_bits):
            pos = exponent - 1 - j
            bit = (magnitude >> pos) & 1 if pos >= 0 else 0
            mantissa |= bit << (mant_bits - 1 - j)
        # little-endian mantissa output: m0 is the bit right below the MSB
        mantissa_le = 0
        for j in range(mant_bits):
            pos = exponent - 1 - j
            bit = (magnitude >> pos) & 1 if pos >= 0 else 0
            mantissa_le |= bit << j
        if exponent >= (1 << exp_bits):
            return sign, (1 << exp_bits) - 1, (1 << mant_bits) - 1
        return sign, exponent, mantissa_le

    def test_against_reference(self):
        mig = control.make_int2float()
        rng = random.Random(23)
        values = [0, 1, -1, 5, -1024, 1023, 512]
        values += [rng.randint(-1024, 1023) for _ in range(20)]
        for value in values:
            x = value % (1 << 11)
            out = evaluate(mig, word_assignment("x", x, 11))
            sign, exponent, mantissa = self.reference(value)
            assert out["sign"] == sign
            assert read_word(out, "e", 3) == exponent, value
            assert read_word(out, "m", 3) == mantissa, value


class TestVoter:
    def test_signature(self):
        mig = control.make_voter(inputs=1001)
        assert (mig.num_pis, mig.num_pos) == (1001, 1)

    def test_majority_threshold(self):
        mig = control.make_voter(inputs=15)
        rng = random.Random(29)
        for _ in range(12):
            x = rng.getrandbits(15)
            out = evaluate(mig, word_assignment("v", x, 15))
            assert out["majority"] == int(bin(x).count("1") >= 8)

    def test_even_inputs_rejected(self):
        with pytest.raises(ValueError):
            control.make_voter(inputs=10)


class TestCtrlRouter:
    def test_ctrl_signature(self):
        mig = control.make_ctrl()
        assert (mig.num_pis, mig.num_pos) == (7, 26)

    def test_ctrl_one_hot_decode(self):
        mig = control.make_ctrl()
        for op in range(8):
            out = evaluate(
                mig, word_assignment("op", op, 3) | word_assignment("f", 0, 4)
            )
            assert [out[f"dec{k}"] for k in range(8)] == [
                int(k == op) for k in range(8)
            ]

    def test_router_signature(self):
        mig = control.make_router()
        assert (mig.num_pis, mig.num_pos) == (60, 30)

    def test_router_xy_direction(self):
        mig = control.make_router()
        base = {name: 0 for name in mig.pi_names()}
        base |= {"p0_valid": 1, "credit0": 1, "credit1": 1, "credit2": 1, "credit3": 1}
        base |= word_assignment("cur_x", 3, 5) | word_assignment("cur_y", 3, 5)
        # destination east of the router
        a = dict(base) | word_assignment("p0_x", 7, 5) | word_assignment("p0_y", 3, 5)
        out = evaluate(mig, a)
        assert out["p0_e"] == 1 and out["p0_w"] == 0 and out["p0_l"] == 0
        # destination at the router → local
        b = dict(base) | word_assignment("p0_x", 3, 5) | word_assignment("p0_y", 3, 5)
        out = evaluate(mig, b)
        assert out["p0_l"] == 1 and out["p0_e"] == 0
        # grant goes to the only valid port
        assert out["grant0"] == 1

    def test_router_priority_rotates(self):
        mig = control.make_router()
        base = {name: 0 for name in mig.pi_names()}
        base |= {"p0_valid": 1, "p1_valid": 1}
        base |= {f"credit{k}": 1 for k in range(4)}
        out0 = evaluate(mig, dict(base) | word_assignment("rr", 0, 2))
        out1 = evaluate(mig, dict(base) | word_assignment("rr", 1, 2))
        assert out0["grant0"] == 1 and out0["grant1"] == 0
        assert out1["grant1"] == 1 and out1["grant0"] == 0


class TestSurrogates:
    def test_signatures(self):
        assert random_control.make_cavlc().num_pis == 10
        assert random_control.make_i2c().num_pos == 142
        mc = random_control.make_mem_ctrl(num_inputs=40, num_outputs=30)
        assert (mc.num_pis, mc.num_pos) == (40, 30)

    def test_deterministic(self):
        a = random_control.make_cavlc()
        b = random_control.make_cavlc()
        assert truth_tables(a) == truth_tables(b)

    def test_calibrated_sizes(self):
        """Surrogate sizes stay within 2x of the paper's node counts."""
        assert 350 <= random_control.make_cavlc().num_gates <= 1400
        assert 650 <= random_control.make_i2c().num_gates <= 2700

    def test_outputs_not_constant(self):
        tables = truth_tables(random_control.make_cavlc())
        nonconst = sum(1 for v in tables.values() if v not in (0, 2**10 - 1))
        assert nonconst >= len(tables) - 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_control.make_pla_surrogate("x", 4, 2, 0, 1, 2, seed=0)
        with pytest.raises(ValueError):
            random_control.make_pla_surrogate("x", 4, 2, 1, 3, 2, seed=0)
