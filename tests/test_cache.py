"""The content-addressed synthesis cache.

Contracts under test:

* hit/miss/store accounting, private-copy hits, and persistence across
  :class:`~repro.core.cache.SynthesisCache` instances sharing a
  ``cache_dir``;
* corrupt disk entries recover as misses (and are replaced), never as
  errors surfaced to callers;
* the read-only + merge worker protocol (``export_fresh``/``absorb``);
* a cache hit never changes what ``rewrite_for_plim``/``compile_mig``/
  ``compile_many`` return, only how fast;
* the ``workers`` default convention is uniform across the public entry
  points (the ``None`` = one-per-CPU convention).
"""

import inspect
import json

import pytest

from repro.circuits.registry import build
from repro.core.batch import compile_many, resolve_workers
from repro.core.cache import (
    FRONT_KIND,
    REWRITE_KIND,
    SynthesisCache,
    payload_cache_ref,
    worker_cache,
)
from repro.core.pareto import ParetoFront, ParetoPoint, pareto_sweep
from repro.core.pipeline import compile_mig
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.errors import ReproError
from repro.eval.table1 import run_table1
from repro.mig.equivalence import equivalent
from repro.mig.io_mig import write_mig

from conftest import random_mig


OPTS = RewriteOptions()


def _listing(mig):
    import io

    out = io.StringIO()
    write_mig(mig, out)
    return out.getvalue()


class TestRewriteEntries:
    def test_memory_hit_and_miss(self):
        mig = build("ctrl", "ci")
        cache = SynthesisCache()
        assert cache.get_rewrite(mig.fingerprint(), OPTS) is None
        first = rewrite_for_plim(mig, OPTS, cache=cache)
        second = rewrite_for_plim(mig, OPTS, cache=cache)
        assert _listing(first) == _listing(second)
        assert (cache.stats.hits, cache.stats.misses, cache.stats.stores) == (1, 2, 1)

    def test_hits_return_private_copies(self):
        mig = build("ctrl", "ci")
        cache = SynthesisCache()
        first = rewrite_for_plim(mig, OPTS, cache=cache)
        first.add_po(first.pis()[0], "mutation")  # mutate the returned copy
        second = rewrite_for_plim(mig, OPTS, cache=cache)
        assert "mutation" not in second.po_names()

    def test_distinct_options_distinct_entries(self):
        mig = build("ctrl", "ci")
        cache = SynthesisCache()
        size = rewrite_for_plim(mig, RewriteOptions(), cache=cache)
        depth = rewrite_for_plim(
            mig, RewriteOptions(objective="depth"), cache=cache
        )
        assert cache.stats.stores == 2
        assert equivalent(size, depth)

    def test_hit_across_creation_orders(self):
        from repro.mig.reorder import shuffle_topological

        mig = build("ctrl", "ci")
        cache = SynthesisCache()
        reference = rewrite_for_plim(mig, OPTS, cache=cache)
        shuffled = shuffle_topological(mig, seed=7)
        hit = rewrite_for_plim(shuffled, OPTS, cache=cache)
        assert cache.stats.hits == 1
        assert _listing(hit) == _listing(reference)
        assert equivalent(hit, shuffled)


class TestDiskStore:
    def test_persists_across_instances(self, tmp_path):
        mig = build("ctrl", "ci")
        first = rewrite_for_plim(mig, OPTS, cache=SynthesisCache(tmp_path))
        fresh = SynthesisCache(tmp_path)
        second = rewrite_for_plim(mig, OPTS, cache=fresh)
        assert fresh.stats.hits == 1 and fresh.stats.stores == 0
        assert _listing(first) == _listing(second)

    def test_aiger_ingested_circuit_round_trips(self, tmp_path):
        """An AIGER-ingested graph caches like a registry-built one.

        The binary reader produces a different creation order than the
        registry builder (MAJ gates re-assembled from the AND expansion),
        so this also exercises key stability across the ingest path: the
        same circuit ingested twice hits the entry stored by the first
        rewrite, and the hit decodes to the identical rewriting result.
        """
        from repro.mig.io_aiger import read_aiger, write_aiger

        target = tmp_path / "ctrl.aig"
        write_aiger(build("ctrl", "ci"), target)
        first = rewrite_for_plim(
            read_aiger(target), OPTS, cache=SynthesisCache(tmp_path / "store")
        )
        fresh = SynthesisCache(tmp_path / "store")
        second = rewrite_for_plim(read_aiger(target), OPTS, cache=fresh)
        assert fresh.stats.hits == 1 and fresh.stats.stores == 0
        assert _listing(first) == _listing(second)
        assert equivalent(second, read_aiger(target))

    def test_corrupt_entry_recovers_as_miss(self, tmp_path):
        mig = build("ctrl", "ci")
        cache = SynthesisCache(tmp_path)
        rewrite_for_plim(mig, OPTS, cache=cache)
        (entry,) = list((tmp_path / REWRITE_KIND).iterdir())
        entry.write_text("this is not a .mig file", encoding="utf-8")
        fresh = SynthesisCache(tmp_path)
        result = rewrite_for_plim(mig, OPTS, cache=fresh)
        assert equivalent(result, mig)
        assert fresh.stats.errors == 1 and fresh.stats.misses == 1
        # the corrupt file was replaced by the recomputed entry
        again = SynthesisCache(tmp_path)
        rewrite_for_plim(mig, OPTS, cache=again)
        assert again.stats.hits == 1 and again.stats.errors == 0

    def test_corrupt_front_recovers_as_miss(self, tmp_path):
        cache = SynthesisCache(tmp_path)
        front = pareto_sweep(("ctrl", "ci"), workers=1, cache=cache)
        (entry,) = list((tmp_path / FRONT_KIND).iterdir())
        entry.write_text("{not json", encoding="utf-8")
        fresh = SynthesisCache(tmp_path)
        again = pareto_sweep(("ctrl", "ci"), workers=1, cache=fresh)
        strip = lambda p: {**p.to_dict(), "seconds": None}
        assert [strip(p) for p in again.points] == [strip(p) for p in front.points]
        assert fresh.stats.errors >= 1

    def test_read_only_never_writes(self, tmp_path):
        mig = build("ctrl", "ci")
        cache = SynthesisCache(tmp_path, read_only=True)
        rewrite_for_plim(mig, OPTS, cache=cache)
        assert not (tmp_path / REWRITE_KIND).exists()
        assert len(cache.export_fresh()) == 1

    def test_clear_and_disk_usage(self, tmp_path):
        cache = SynthesisCache(tmp_path)
        pareto_sweep(("ctrl", "ci"), workers=1, cache=cache)
        usage = cache.disk_usage()
        assert usage[REWRITE_KIND]["entries"] >= 1
        assert usage[FRONT_KIND]["entries"] == 1
        total = sum(u["entries"] for u in usage.values())
        # every entry lives in memory AND on disk here; clear() counts
        # each once, not per location
        assert cache.clear() == total
        usage = cache.disk_usage()
        assert usage[REWRITE_KIND]["entries"] == 0
        assert usage[FRONT_KIND]["entries"] == 0

    def test_export_and_absorb_round_trip(self, tmp_path):
        mig = build("ctrl", "ci")
        worker = SynthesisCache(tmp_path, read_only=True)
        reference = rewrite_for_plim(mig, OPTS, cache=worker)
        entries = worker.export_fresh()
        parent = SynthesisCache(tmp_path)
        assert parent.absorb(entries) == 1
        merged = rewrite_for_plim(mig, OPTS, cache=SynthesisCache(tmp_path))
        assert _listing(merged) == _listing(reference)

    def test_absorb_skips_malformed_entries(self):
        cache = SynthesisCache()
        assert cache.absorb([(REWRITE_KIND, "key", "not a mig")]) == 0
        assert cache.stats.errors == 1

    def test_ordinary_caches_do_not_accumulate_fresh_entries(self, tmp_path):
        """Only worker-side collecting views retain serialized fresh
        entries; a long-lived cache must not grow them unboundedly."""
        cache = SynthesisCache(tmp_path)
        for seed in range(3):
            rewrite_for_plim(
                random_mig(seed=seed, num_pis=4, num_gates=10), OPTS, cache=cache
            )
        assert cache.export_fresh() == []
        assert len(cache._fresh) == 0

    def test_tmp_files_are_not_entries(self, tmp_path):
        cache = SynthesisCache(tmp_path)
        rewrite_for_plim(build("ctrl", "ci"), OPTS, cache=cache)
        stray = tmp_path / REWRITE_KIND / ".tmp-interrupted.mig"
        stray.write_text("partial write", encoding="utf-8")
        assert cache.disk_usage()[REWRITE_KIND]["entries"] == 1
        assert cache.clear() == 1  # the stray tmp file is reaped, not counted
        assert not stray.exists()


class TestFrontRoundTrip:
    def test_front_serialization_round_trip(self):
        front = pareto_sweep(("i2c", "ci"), workers=1)
        clone = ParetoFront.from_dict(json.loads(json.dumps(front.to_dict())))
        assert clone.to_dict() == front.to_dict()
        assert isinstance(clone.points[0], ParetoPoint)

    def test_point_from_dict_defaults_source(self):
        data = pareto_sweep(("ctrl", "ci"), workers=1).points[0].to_dict()
        del data["source"]  # pre-incremental cache entries lack the field
        assert ParetoPoint.from_dict(data).source == "cold"


class TestPipelineIntegration:
    def test_compile_mig_cache_preserves_result(self):
        mig = build("ctrl", "ci")
        cache = SynthesisCache()
        plain = compile_mig(mig)
        cold = compile_mig(mig, cache=cache)
        hit = compile_mig(mig, cache=cache)
        for result in (cold, hit):
            assert result.num_instructions == plain.num_instructions
            assert result.num_rrams == plain.num_rrams
            assert result.num_gates == plain.num_gates
        assert cache.stats.hits == 1

    @pytest.mark.parametrize("workers", [1, 2])
    def test_compile_many_cache_preserves_results(self, tmp_path, workers):
        specs = [("ctrl", "ci"), ("dec", "ci")]
        plain = compile_many(specs, workers=1, rewrite=True)
        cache = SynthesisCache(tmp_path)
        cached = compile_many(specs, workers=workers, rewrite=True, cache=cache)
        strip = lambda r: {**r.to_dict(), "seconds": None}
        assert [strip(r) for r in plain] == [strip(r) for r in cached]
        # the rewrites were persisted (merged from workers when pooled)
        assert cache.disk_usage()[REWRITE_KIND]["entries"] == 2
        warm = compile_many(specs, workers=1, rewrite=True, cache_dir=tmp_path)
        assert [r.counts for r in warm] == [r.counts for r in plain]

    def test_shuffled_table1_ignores_the_cache(self, tmp_path):
        """--shuffled measures order sensitivity; the order-invariant
        fingerprint would alias shuffled and as-built builds, so shuffled
        rows must bypass the cache entirely."""
        run_table1(names=["bar"], scale="ci", workers=1, cache_dir=tmp_path)
        plain = run_table1(names=["bar"], scale="ci", workers=1, shuffled=True)
        cached = run_table1(
            names=["bar"], scale="ci", workers=1, shuffled=True,
            cache_dir=tmp_path,
        )
        row_plain, row_cached = plain.rows[0], cached.rows[0]
        assert (row_plain.rewr_n, row_plain.rewr_i, row_plain.rewr_r) == (
            row_cached.rewr_n, row_cached.rewr_i, row_cached.rewr_r
        )

    def test_run_table1_cache_preserves_rows(self, tmp_path):
        cold = run_table1(names=["ctrl"], scale="ci", workers=1)
        cached = run_table1(
            names=["ctrl"], scale="ci", workers=1, cache_dir=tmp_path
        )
        hit = run_table1(
            names=["ctrl"], scale="ci", workers=1, cache_dir=tmp_path
        )
        def strip(row):
            return {
                k: v
                for k, v in row.__dict__.items()
                if k != "seconds"
            }
        assert strip(cold.rows[0]) == strip(cached.rows[0]) == strip(hit.rows[0])

    def test_random_migs_cache_equivalence(self, tmp_path):
        cache = SynthesisCache(tmp_path)
        for seed in range(3):
            mig = random_mig(seed=seed, num_pis=4, num_gates=15)
            cold = rewrite_for_plim(mig, OPTS, cache=cache)
            hit = rewrite_for_plim(mig, OPTS, cache=cache)
            assert equivalent(cold, mig) and _listing(cold) == _listing(hit)


class TestWorkerProtocolHelpers:
    def test_payload_ref_inline_passes_instance(self):
        cache = SynthesisCache()
        assert payload_cache_ref(cache, inline=True) is cache
        assert worker_cache(cache) is cache

    def test_payload_ref_pool_variants(self, tmp_path):
        assert payload_cache_ref(None, inline=False) is None
        disk = SynthesisCache(tmp_path)
        ref = payload_cache_ref(disk, inline=False)
        assert ref == str(tmp_path)
        rebuilt = worker_cache(ref)
        assert rebuilt.read_only and rebuilt.cache_dir == tmp_path
        mem_ref = payload_cache_ref(SynthesisCache(), inline=False)
        assert mem_ref is True
        assert worker_cache(mem_ref).cache_dir is None


class TestWorkersConvention:
    def test_public_entry_points_share_the_none_default(self):
        from repro.core.batch import parallel_map
        from repro.eval.ablations import run_benchmark_ablations

        for fn in (pareto_sweep, compile_many, parallel_map, run_table1,
                   run_benchmark_ablations):
            default = inspect.signature(fn).parameters["workers"].default
            assert default is None, f"{fn.__name__} breaks the workers=None convention"

    def test_resolve_workers_none_is_per_cpu(self):
        import os

        assert resolve_workers(None) == (os.cpu_count() or 1)
        assert resolve_workers(3) == 3

    def test_resolve_workers_rejects_non_positive(self):
        # 0 used to clamp to 1 silently; it is now an explicit error
        for bad in (0, -1, 2.5, "4"):
            with pytest.raises(ReproError):
                resolve_workers(bad)


def _writer_process(cache_dir, seeds, max_bytes):
    """One concurrent writer: populate ``cache_dir`` with rewrites.

    Module-level so ``multiprocessing.Process`` can run it (fork or
    spawn); overlapping ``seeds`` across writers force same-key races.
    """
    cache = SynthesisCache(cache_dir, max_bytes=max_bytes)
    for seed in seeds:
        mig = random_mig(seed=seed, num_pis=4, num_gates=12)
        rewrite_for_plim(mig, OPTS, cache=cache)


class TestEviction:
    """The ``max_bytes`` LRU cap (the carried-over roadmap item)."""

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "big"])
    def test_invalid_cap_raises(self, bad):
        with pytest.raises(ReproError, match="max_bytes"):
            SynthesisCache(max_bytes=bad)

    def test_disk_stays_under_the_cap(self, tmp_path):
        import time

        cache = SynthesisCache(tmp_path, max_bytes=400)
        for seed in range(8):
            rewrite_for_plim(
                random_mig(seed=seed, num_pis=4, num_gates=12),
                OPTS, cache=cache,
            )
            time.sleep(0.01)  # distinct mtimes -> deterministic LRU order
        usage = cache.disk_usage()
        total = sum(u["bytes"] for u in usage.values())
        entries = sum(u["entries"] for u in usage.values())
        assert total <= 400 or entries == 1  # newest always survives
        assert cache.stats.evictions > 0

    def test_memory_is_lru(self):
        cache = SynthesisCache(max_bytes=1)  # evicts all but the newest
        for seed in range(3):
            rewrite_for_plim(
                random_mig(seed=seed, num_pis=4, num_gates=10),
                OPTS, cache=cache,
            )
        assert len(cache._mem) == 1  # only the most recent store survives

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = SynthesisCache(tmp_path)
        for seed in range(6):
            rewrite_for_plim(
                random_mig(seed=seed, num_pis=4, num_gates=12),
                OPTS, cache=cache,
            )
        assert cache.stats.evictions == 0
        assert cache.max_bytes is None

    def test_surviving_entries_still_hit(self, tmp_path):
        import time

        cache = SynthesisCache(tmp_path, max_bytes=100_000)  # roomy: no evictions
        migs = [random_mig(seed=s, num_pis=4, num_gates=12) for s in range(3)]
        for mig in migs:
            rewrite_for_plim(mig, OPTS, cache=cache)
            time.sleep(0.01)
        fresh = SynthesisCache(tmp_path, max_bytes=100_000)
        rewrite_for_plim(migs[-1], OPTS, cache=fresh)
        assert fresh.stats.hits == 1 and fresh.stats.stores == 0

    def test_trim_enforces_an_explicit_budget(self, tmp_path):
        import time

        cache = SynthesisCache(tmp_path)
        for seed in range(5):
            rewrite_for_plim(
                random_mig(seed=seed, num_pis=4, num_gates=12),
                OPTS, cache=cache,
            )
            time.sleep(0.01)
        before = sum(u["bytes"] for u in cache.disk_usage().values())
        assert before > 500
        evicted = cache.trim(500)
        assert evicted > 0
        assert sum(u["bytes"] for u in cache.disk_usage().values()) <= 500
        # trim(0) has no keep-the-latest exemption: the cache empties
        cache.trim(0)
        assert sum(u["entries"] for u in cache.disk_usage().values()) == 0
        assert len(cache._mem) == 0

    def test_trim_rejects_negative_budgets(self, tmp_path):
        with pytest.raises(ReproError, match="trim"):
            SynthesisCache(tmp_path).trim(-1)

    def test_corrupt_entry_recovery_under_eviction(self, tmp_path):
        """Satellite 3: corrupt-entry recovery still works while the LRU
        cap is evicting around it."""
        import time

        cache = SynthesisCache(tmp_path, max_bytes=5_000)
        mig = build("ctrl", "ci")
        rewrite_for_plim(mig, OPTS, cache=cache)
        (entry,) = list((tmp_path / REWRITE_KIND).iterdir())
        entry.write_text("this is not a .mig file", encoding="utf-8")
        fresh = SynthesisCache(tmp_path, max_bytes=5_000)
        result = rewrite_for_plim(mig, OPTS, cache=fresh)
        assert equivalent(result, mig)
        assert fresh.stats.errors == 1  # recovered as a miss, not an error
        # keep storing under the cap: the recomputed entry must stay valid
        for seed in range(4):
            rewrite_for_plim(
                random_mig(seed=seed, num_pis=4, num_gates=12),
                OPTS, cache=fresh,
            )
            time.sleep(0.01)
        total = sum(u["bytes"] for u in fresh.disk_usage().values())
        entries = sum(u["entries"] for u in fresh.disk_usage().values())
        assert total <= 5_000 or entries == 1


class TestConcurrentWriters:
    """Satellite 3: two processes sharing one ``cache_dir`` never corrupt
    entries or double-count ``disk_usage()`` — even while both evict."""

    def _run_writers(self, cache_dir, max_bytes):
        import multiprocessing

        ctx = multiprocessing.get_context()
        # overlapping seed ranges force same-key write races
        procs = [
            ctx.Process(
                target=_writer_process,
                args=(str(cache_dir), list(range(start, start + 6)), max_bytes),
            )
            for start in (0, 3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0

    def _assert_store_healthy(self, cache_dir):
        from repro.core.cache import _TMP_PREFIX
        from repro.mig.io_mig import read_mig
        import io

        files = [
            p for p in (cache_dir / REWRITE_KIND).iterdir()
            if not p.name.startswith(_TMP_PREFIX)
        ]
        # every surviving entry parses — atomic writes mean no torn files
        for path in files:
            read_mig(io.StringIO(path.read_text(encoding="utf-8")))
        usage = SynthesisCache(cache_dir).disk_usage()
        assert usage[REWRITE_KIND]["entries"] == len(files)
        assert usage[REWRITE_KIND]["bytes"] == sum(
            p.stat().st_size for p in files
        )

    def test_two_writers_unbounded(self, tmp_path):
        self._run_writers(tmp_path / "shared", None)
        self._assert_store_healthy(tmp_path / "shared")
        # the shared keys deduplicated: at most one file per distinct seed
        usage = SynthesisCache(tmp_path / "shared").disk_usage()
        assert 1 <= usage[REWRITE_KIND]["entries"] <= 9

    def test_two_writers_with_eviction_races(self, tmp_path):
        """Both processes enforce a tight cap, so unlink races happen;
        losing one must never corrupt the store or crash a writer."""
        self._run_writers(tmp_path / "capped", 1_500)
        self._assert_store_healthy(tmp_path / "capped")


class TestStatsSnapshotConsistency:
    """The atomic counter snapshot behind ``plimc cache stats --json``
    and ``GET /cache/stats``: derived numbers must stay internally
    consistent no matter how many threads are bumping counters or
    trimming concurrently (hits can never exceed lookups)."""

    def test_snapshot_is_internally_consistent_under_load(self, tmp_path):
        import threading
        import time

        cache = SynthesisCache(tmp_path / "c")
        mig = random_mig(17, num_gates=4)
        stop = threading.Event()
        failures = []

        def hammer(seed):
            # lookups racing trim() must degrade to misses or stale hits,
            # never raise (the LRU recency bump can lose to an eviction)
            i = 0
            while not stop.is_set():
                fp = f"fp-{seed}-{i % 7}"
                try:
                    if cache.get_rewrite(fp, f"opts{seed}") is None:
                        cache.put_rewrite(fp, f"opts{seed}", mig)
                except Exception as exc:  # noqa: BLE001
                    failures.append(("hammer", repr(exc)))
                    return
                i += 1

        def trimmer():
            while not stop.is_set():
                cache.trim(512)

        def snapshotter():
            while not stop.is_set():
                snap = cache.stats.snapshot()
                if snap["hits"] > snap["lookups"]:
                    failures.append(snap)
                if snap["lookups"] != snap["hits"] + snap["misses"]:
                    failures.append(snap)
                if not (0.0 <= snap["hit_rate"] <= 1.0):
                    failures.append(snap)

        threads = [
            threading.Thread(target=hammer, args=(0,)),
            threading.Thread(target=hammer, args=(1,)),
            threading.Thread(target=trimmer),
            threading.Thread(target=snapshotter),
            threading.Thread(target=snapshotter),
        ]
        for t in threads:
            t.start()
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not failures, failures[:3]
        final = cache.stats.snapshot()
        assert final["lookups"] == final["hits"] + final["misses"]
        assert final["hits"] <= final["lookups"]

    def test_snapshot_matches_to_dict(self, tmp_path):
        cache = SynthesisCache(tmp_path / "c")
        mig = random_mig(18, num_gates=4)
        cache.put_rewrite("fp", "opts", mig)
        cache.get_rewrite("fp", "opts")
        cache.get_rewrite("missing", "opts")
        snap = cache.stats.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["lookups"] == 2
        assert snap["hit_rate"] == 0.5
        # to_dict keeps the legacy raw-counter schema: the exact
        # snapshot values minus the derived fields (one code path)
        assert cache.stats.to_dict() == {
            k: snap[k]
            for k in ("hits", "misses", "stores", "errors", "evictions")
        }

    def test_server_snapshot_reuses_cache_snapshot(self, tmp_path):
        # the full stats_snapshot shape served by CLI --json and the
        # serve endpoint
        cache = SynthesisCache(tmp_path / "c", max_bytes=10_000)
        snapshot = cache.stats_snapshot()
        assert snapshot["cache_dir"] == str(tmp_path / "c")
        assert snapshot["max_bytes"] == 10_000
        assert snapshot["read_only"] is False
        assert set(snapshot["counters"]) == {
            "hits", "misses", "stores", "errors", "evictions",
            "lookups", "hit_rate",
        }
        assert set(snapshot["memory"]) == {"entries", "bytes"}
